//! Simulation drivers: full runs and interval-sliced runs.
//!
//! The performance model is CMP$im's in-order core (§4): every
//! instruction costs one cycle, plus each data access costs the hit
//! latency of the level that services it. Sliced runs additionally
//! report per-interval `(instructions, cycles)` so the harness can
//! compute each interval's *in-context* CPI — the ground truth that
//! simulation-point estimates are judged against.
//!
//! Slicing semantics match the profilers exactly:
//! * fixed-length slices close after the basic block that reaches the
//!   target (same rule as [`cbsp_profile::FliProfiler`]);
//! * marker slices close when the boundary marker fires, *before* the
//!   marker's following block (same rule as the VLI builder in
//!   `cbsp-core`).

use crate::branch::Gshare;
use crate::config::MemoryConfig;
use crate::hierarchy::{Hierarchy, ServicedBy};
use crate::stats::{IntervalSim, SimStats};
use cbsp_par::Pool;
use cbsp_profile::{ExecPoint, MarkerCounts};
use cbsp_program::{run, Binary, BlockId, Input, Marker, TraceSink};

/// The shared cache + accounting engine behind every simulation sink.
#[derive(Debug)]
pub(crate) struct Engine {
    hierarchy: Hierarchy,
    predictor: Option<Gshare>,
    stats: SimStats,
    pub(crate) cur: IntervalSim,
    intervals: Vec<IntervalSim>,
}

impl Engine {
    pub(crate) fn new(config: &MemoryConfig) -> Self {
        Engine {
            hierarchy: Hierarchy::new(config),
            predictor: config.branch.as_ref().map(Gshare::new),
            stats: SimStats::default(),
            cur: IntervalSim::default(),
            intervals: Vec::new(),
        }
    }

    // The per-event methods touch only the open interval's counters;
    // whole-run totals are folded in at interval close (`absorb`), so
    // the hot path updates one accumulator instead of two. The sums
    // are associative u64 additions, so the finished totals are
    // identical to per-event accounting.

    #[inline]
    pub(crate) fn branch(&mut self, branch: u64, taken: bool) {
        if let Some(p) = &mut self.predictor {
            let penalty = p.resolve(branch, taken);
            self.cur.cycles += penalty;
        }
    }

    #[inline]
    pub(crate) fn block(&mut self, instrs: u64) {
        self.cur.instructions += instrs;
        self.cur.cycles += instrs;
    }

    #[inline]
    pub(crate) fn access(&mut self, addr: u64, is_write: bool) {
        let (lvl, latency) = self.hierarchy.access(addr, is_write);
        self.cur.accesses += 1;
        self.cur.cycles += latency;
        if lvl != ServicedBy::L1 {
            self.cur.l1_misses += 1;
        }
        if lvl == ServicedBy::Dram {
            self.cur.dram_accesses += 1;
        }
    }

    /// Packs the microarchitectural state — cache hierarchy plus the
    /// optional branch predictor — into a flat byte buffer. Together
    /// with [`Engine::restore_state`] this is the checkpoint mechanism
    /// behind trace slicing: a fresh engine restored from the packed
    /// bytes simulates any future event sequence bit-identically to
    /// the engine that packed them (statistics counters restart at
    /// zero; per-interval `cur` accounting is unaffected by them).
    pub(crate) fn pack_state(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.hierarchy.pack_state(&mut out);
        if let Some(p) = &self.predictor {
            p.pack_state(&mut out);
        }
        out
    }

    /// Restores state packed by [`Engine::pack_state`] on an engine of
    /// the same [`MemoryConfig`] (which fixes the geometry of every
    /// component, and whether a predictor is present).
    ///
    /// # Errors
    ///
    /// Returns a [`crate::replay::TraceError`] if the bytes are
    /// truncated, structurally invalid, or longer than the
    /// configuration calls for.
    pub(crate) fn restore_state(&mut self, bytes: &[u8]) -> Result<(), crate::replay::TraceError> {
        let pos = self.hierarchy.unpack_state(bytes, 0)?;
        let pos = match &mut self.predictor {
            Some(p) => p.unpack_state(bytes, pos)?,
            None => pos,
        };
        if pos != bytes.len() {
            return Err(crate::replay::TraceError::CorruptState);
        }
        Ok(())
    }

    /// Folds the open interval's counters into the whole-run totals.
    fn absorb(&mut self) {
        self.stats.instructions += self.cur.instructions;
        self.stats.cycles += self.cur.cycles;
        self.stats.accesses += self.cur.accesses;
        self.stats.dram_accesses += self.cur.dram_accesses;
    }

    pub(crate) fn close_interval(&mut self) {
        self.absorb();
        self.intervals.push(self.cur);
        self.cur = IntervalSim::default();
    }

    fn finish(mut self) -> (SimStats, Vec<IntervalSim>) {
        if self.cur.instructions > 0 {
            self.close_interval();
        } else {
            // A tail that executed no instructions is not an interval,
            // but any cycles it carries still belong to the totals.
            self.absorb();
        }
        self.stats.levels = self.hierarchy.level_stats();
        self.stats.dram_writebacks = self.hierarchy.writebacks_to_dram();
        if let Some(p) = &self.predictor {
            self.stats.branches = p.branches();
            self.stats.branch_mispredicts = p.mispredicts();
        }
        (self.stats, self.intervals)
    }
}

/// Sink for an unsliced full-program simulation.
#[derive(Debug)]
pub struct FullSim {
    engine: Engine,
}

impl FullSim {
    /// Creates a full-simulation sink.
    pub fn new(config: &MemoryConfig) -> Self {
        FullSim {
            engine: Engine::new(config),
        }
    }

    /// Finishes and returns the aggregate statistics.
    pub fn finish(self) -> SimStats {
        self.engine.finish().0
    }
}

impl TraceSink for FullSim {
    #[inline]
    fn on_branch(&mut self, branch: u64, taken: bool) {
        self.engine.branch(branch, taken);
    }

    #[inline]
    fn on_block(&mut self, _: BlockId, instrs: u64) {
        self.engine.block(instrs);
    }

    #[inline]
    fn on_access(&mut self, addr: u64, is_write: bool) {
        self.engine.access(addr, is_write);
    }
}

/// Sink that slices the simulation into fixed-length intervals.
#[derive(Debug)]
pub struct FliSlicedSim {
    engine: Engine,
    target: u64,
}

impl FliSlicedSim {
    /// Creates a sliced-simulation sink cutting every `target`
    /// instructions.
    ///
    /// # Panics
    ///
    /// Panics if `target` is zero.
    pub fn new(config: &MemoryConfig, target: u64) -> Self {
        assert!(target > 0, "interval target must be positive");
        FliSlicedSim {
            engine: Engine::new(config),
            target,
        }
    }

    /// Finishes, returning aggregate and per-interval statistics.
    pub fn finish(self) -> (SimStats, Vec<IntervalSim>) {
        self.engine.finish()
    }
}

impl TraceSink for FliSlicedSim {
    #[inline]
    fn on_branch(&mut self, branch: u64, taken: bool) {
        self.engine.branch(branch, taken);
    }

    #[inline]
    fn on_block(&mut self, _: BlockId, instrs: u64) {
        self.engine.block(instrs);
        if self.engine.cur.instructions >= self.target {
            self.engine.close_interval();
        }
    }

    #[inline]
    fn on_access(&mut self, addr: u64, is_write: bool) {
        self.engine.access(addr, is_write);
    }
}

/// Sink that slices the simulation at marker execution coordinates
/// (the mapped VLI boundaries of `cbsp-core`).
#[derive(Debug)]
pub struct MarkerSlicedSim {
    engine: Engine,
    boundaries: Vec<ExecPoint>,
    next: usize,
    counts: MarkerCounts,
}

impl MarkerSlicedSim {
    /// Creates a sink cutting at each of `boundaries`, which must be in
    /// execution order for the binary being simulated.
    pub fn new(config: &MemoryConfig, binary: &Binary, boundaries: Vec<ExecPoint>) -> Self {
        Self::with_dims(config, binary.procs.len(), binary.loops.len(), boundaries)
    }

    /// [`MarkerSlicedSim::new`] with explicit marker-vector dimensions,
    /// for callers that consume a recorded [`crate::EventTrace`] and so
    /// have no [`Binary`] at hand.
    pub fn with_dims(
        config: &MemoryConfig,
        n_procs: usize,
        n_loops: usize,
        boundaries: Vec<ExecPoint>,
    ) -> Self {
        MarkerSlicedSim {
            engine: Engine::new(config),
            boundaries,
            next: 0,
            counts: MarkerCounts::new(n_procs, n_loops),
        }
    }

    /// Finishes, returning aggregate and per-interval statistics.
    /// There is one interval per boundary plus a final tail (if it
    /// executed any instructions).
    pub fn finish(self) -> (SimStats, Vec<IntervalSim>) {
        self.engine.finish()
    }

    /// Number of boundaries not yet reached (0 after a complete run).
    pub fn unreached_boundaries(&self) -> usize {
        self.boundaries.len() - self.next
    }

    /// Number of intervals closed so far — equivalently, the index of
    /// the interval the next event will be charged to. Trace slicing
    /// uses this to attribute each replayed event to an interval.
    pub fn intervals_closed(&self) -> usize {
        self.next
    }

    /// Packs the engine's microarchitectural state (see
    /// [`Engine::pack_state`]). Trace slicing checkpoints this at each
    /// selected interval's first event so a slice replay can resume
    /// mid-run with the exact cache and predictor contents.
    pub(crate) fn state_snapshot(&self) -> Vec<u8> {
        self.engine.pack_state()
    }
}

impl TraceSink for MarkerSlicedSim {
    #[inline]
    fn on_branch(&mut self, branch: u64, taken: bool) {
        self.engine.branch(branch, taken);
    }

    #[inline]
    fn on_block(&mut self, _: BlockId, instrs: u64) {
        self.engine.block(instrs);
    }

    #[inline]
    fn on_access(&mut self, addr: u64, is_write: bool) {
        self.engine.access(addr, is_write);
    }

    #[inline]
    fn on_marker(&mut self, marker: Marker) {
        let count = self.counts.observe(marker);
        if let Some(b) = self.boundaries.get(self.next) {
            if b.marker.to_marker() == marker && b.count == count {
                self.engine.close_interval();
                self.next += 1;
            }
        }
    }
}

/// Simulates `binary` on `input` to completion.
pub fn simulate_full(binary: &Binary, input: &Input, config: &MemoryConfig) -> SimStats {
    let _span = cbsp_trace::span_labeled("sim/full", || binary.label());
    let mut sink = FullSim::new(config);
    run(binary, input, &mut sink);
    let stats = sink.finish();
    cbsp_trace::add("sim/instructions", stats.instructions);
    stats
}

/// Simulates `binary` sliced into fixed-length intervals of `target`
/// instructions. Returns `(whole-program stats, per-interval stats)`.
pub fn simulate_fli_sliced(
    binary: &Binary,
    input: &Input,
    config: &MemoryConfig,
    target: u64,
) -> (SimStats, Vec<IntervalSim>) {
    let _span = cbsp_trace::span_labeled("sim/fli_sliced", || binary.label());
    let mut sink = FliSlicedSim::new(config, target);
    run(binary, input, &mut sink);
    let (stats, intervals) = sink.finish();
    cbsp_trace::add("sim/instructions", stats.instructions);
    (stats, intervals)
}

/// Simulates `binary` sliced at marker boundaries.
///
/// # Panics
///
/// Panics if some boundary was never reached — that means the
/// boundaries do not belong to this `(binary, input)` pair.
pub fn simulate_marker_sliced(
    binary: &Binary,
    input: &Input,
    config: &MemoryConfig,
    boundaries: &[ExecPoint],
) -> (SimStats, Vec<IntervalSim>) {
    let _span = cbsp_trace::span_labeled("sim/marker_sliced", || binary.label());
    let mut sink = MarkerSlicedSim::new(config, binary, boundaries.to_vec());
    run(binary, input, &mut sink);
    assert_eq!(
        sink.unreached_boundaries(),
        0,
        "marker boundaries must all occur in this binary's execution"
    );
    let (stats, intervals) = sink.finish();
    cbsp_trace::add("sim/instructions", stats.instructions);
    (stats, intervals)
}

/// [`simulate_full`] for a batch of binaries, one job per binary fanned
/// out over `pool`. Each job is a complete detailed simulation of one
/// binary — the dominant cost of a cross-binary evaluation — and the
/// jobs share nothing, so this scales with `min(threads, binaries)`.
pub fn simulate_full_all(
    binaries: &[&Binary],
    input: &Input,
    config: &MemoryConfig,
    pool: &Pool,
) -> Vec<SimStats> {
    pool.run_indexed(binaries.len(), |i| {
        simulate_full(binaries[i], input, config)
    })
}

/// [`simulate_fli_sliced`] for a batch of binaries, fanned out over
/// `pool`. Results are in input order.
pub fn simulate_fli_sliced_all(
    binaries: &[&Binary],
    input: &Input,
    config: &MemoryConfig,
    target: u64,
    pool: &Pool,
) -> Vec<(SimStats, Vec<IntervalSim>)> {
    pool.run_indexed(binaries.len(), |i| {
        simulate_fli_sliced(binaries[i], input, config, target)
    })
}

/// [`simulate_marker_sliced`] for a batch of binaries, each with its
/// own boundary list, fanned out over `pool`.
///
/// # Panics
///
/// Panics if `boundaries.len() != binaries.len()`, or if any binary
/// fails to reach one of its boundaries (see
/// [`simulate_marker_sliced`]).
pub fn simulate_marker_sliced_all(
    binaries: &[&Binary],
    input: &Input,
    config: &MemoryConfig,
    boundaries: &[Vec<ExecPoint>],
    pool: &Pool,
) -> Vec<(SimStats, Vec<IntervalSim>)> {
    assert_eq!(
        binaries.len(),
        boundaries.len(),
        "one boundary list per binary"
    );
    pool.run_indexed(binaries.len(), |i| {
        simulate_marker_sliced(binaries[i], input, config, &boundaries[i])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbsp_program::{compile, CompileTarget, ProgramBuilder, Scale};

    fn test_binary() -> Binary {
        let mut b = ProgramBuilder::new("t");
        let small = b.array_f64("small", 1_000); // 8 KB: L1-resident
        let big = b.array_f64("big", 512_000); // 4 MB: DRAM tier
        b.proc("main", |p| {
            p.loop_fixed(60, |body| {
                body.compute(50, |k| {
                    k.seq(small, 8);
                });
            });
            p.loop_fixed(60, |body| {
                body.compute(50, |k| {
                    k.random(big, 8);
                });
            });
        });
        compile(&b.finish(), CompileTarget::W32_O2)
    }

    #[test]
    fn full_stats_are_consistent() {
        let bin = test_binary();
        let input = Input::new("t", 5, Scale::Test);
        let s = simulate_full(&bin, &input, &MemoryConfig::table1());
        assert!(s.instructions > 0);
        assert!(s.cycles > s.instructions, "memory stalls add cycles");
        assert_eq!(s.levels[0].hits + s.levels[0].misses, s.accesses);
        assert!(s.cpi() > 1.0);
    }

    #[test]
    fn random_dram_phase_has_higher_cpi_than_l1_phase() {
        let bin = test_binary();
        let input = Input::new("t", 5, Scale::Test);
        let (_, intervals) = simulate_fli_sliced(&bin, &input, &MemoryConfig::table1(), 1_000);
        assert!(intervals.len() >= 4);
        let first = intervals.first().expect("nonempty").cpi();
        let last = intervals.last().expect("nonempty").cpi();
        assert!(
            last > first + 0.5,
            "random DRAM phase ({last:.2}) must be slower than L1 phase ({first:.2})"
        );
    }

    #[test]
    fn sliced_totals_match_full_run() {
        let bin = test_binary();
        let input = Input::new("t", 5, Scale::Test);
        let cfg = MemoryConfig::table1();
        let full = simulate_full(&bin, &input, &cfg);
        let (sliced_total, intervals) = simulate_fli_sliced(&bin, &input, &cfg, 2_000);
        assert_eq!(full, sliced_total, "slicing must not change the simulation");
        assert_eq!(intervals.iter().map(|i| i.cycles).sum::<u64>(), full.cycles);
        assert_eq!(
            intervals.iter().map(|i| i.instructions).sum::<u64>(),
            full.instructions
        );
    }

    #[test]
    fn marker_sliced_cuts_at_the_requested_points() {
        use cbsp_profile::MarkerRef;
        let bin = test_binary();
        let input = Input::new("t", 5, Scale::Test);
        let cfg = MemoryConfig::table1();
        // Cut at the 30th back-branch of loop 0 and the 10th of loop 1.
        let boundaries = vec![
            ExecPoint {
                marker: MarkerRef::LoopBack(0),
                count: 30,
            },
            ExecPoint {
                marker: MarkerRef::LoopBack(1),
                count: 10,
            },
        ];
        let (total, intervals) = simulate_marker_sliced(&bin, &input, &cfg, &boundaries);
        assert_eq!(intervals.len(), 3);
        assert_eq!(
            intervals.iter().map(|i| i.instructions).sum::<u64>(),
            total.instructions
        );
        // First interval: ~30 of 60 iterations of the first loop.
        let whole = total.instructions as f64;
        let frac = intervals[0].instructions as f64 / whole;
        assert!((0.15..0.35).contains(&frac), "frac {frac}");
    }

    #[test]
    fn branch_predictor_adds_mispredict_cycles() {
        use cbsp_program::{Cond, ProgramBuilder};
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.loop_fixed(2_000, |body| {
                body.if_else(
                    Cond::Random { num: 1, den: 2 },
                    |t| t.work(10),
                    |e| e.work(10),
                );
            });
        });
        let bin = compile(&b.finish(), CompileTarget::W32_O2);
        let input = Input::new("t", 9, Scale::Test);
        let plain = simulate_full(&bin, &input, &MemoryConfig::table1());
        let mut cfg = MemoryConfig::table1();
        cfg.branch = Some(cbsp_sim_branch_default());
        let predicted = simulate_full(&bin, &input, &cfg);
        assert_eq!(plain.branches, 0);
        assert!(predicted.branches > 2_000, "branches resolved");
        // A 50/50 random branch per iteration: mispredict rate near 0.5
        // on those, so cycles must grow measurably.
        assert!(predicted.branch_mispredicts > predicted.branches / 8);
        assert!(predicted.cycles > plain.cycles);
        assert_eq!(predicted.instructions, plain.instructions);
    }

    fn cbsp_sim_branch_default() -> crate::branch::BranchConfig {
        crate::branch::BranchConfig::default()
    }

    #[test]
    #[should_panic(expected = "must all occur")]
    fn unreachable_boundary_panics() {
        use cbsp_profile::MarkerRef;
        let bin = test_binary();
        let input = Input::new("t", 5, Scale::Test);
        let boundaries = vec![ExecPoint {
            marker: MarkerRef::LoopBack(0),
            count: 10_000_000,
        }];
        let _ = simulate_marker_sliced(&bin, &input, &MemoryConfig::table1(), &boundaries);
    }
}
