//! Region-driven simulation: execute a binary and collect detailed
//! statistics only inside the simulation regions of a
//! [`PinPointsFile`] — the consumption side of the paper's tool chain
//! ("we ran each binary under CMP$im ... with the PinPoints file
//! describing the simulation regions for the binary", §4).
//!
//! The rest of the execution is functionally warmed: it still streams
//! through the cache hierarchy (so each region starts with the memory
//! state it would have in a full run) but is not charged to any region.

use crate::config::MemoryConfig;
use crate::hierarchy::{Hierarchy, ServicedBy};
use crate::stats::IntervalSim;
use cbsp_par::Pool;
use cbsp_profile::{MarkerCounts, PinPointsFile, RegionBound, SimRegion};
use cbsp_program::{run, Binary, BlockId, Input, Marker, TraceSink};
use std::collections::HashMap;

/// How cache state is prepared before each simulation region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Warmup {
    /// Functional warming: out-of-region execution still streams
    /// through the caches, so each region starts with the state it
    /// would have in a full run (what checkpoint-based tool chains
    /// approximate, and what the accuracy evaluation assumes).
    #[default]
    Functional,
    /// Cold start: the hierarchy is emptied when each region begins —
    /// the naive fast-forwarding a simulator does without any warming.
    /// Exists to *measure* the warmup error, not to be used.
    Cold,
}

/// Statistics for one simulation region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionStats {
    /// Phase this region represents.
    pub phase: u32,
    /// Weight from the region file.
    pub weight: f64,
    /// In-region measurements.
    pub stats: IntervalSim,
    /// Whether the region's start (and end) were actually reached.
    pub reached: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegionState {
    Pending,
    Active,
    Done,
}

struct TrackedRegion {
    region: SimRegion,
    state: RegionState,
    stats: IntervalSim,
}

/// The region-restricted simulation sink.
///
/// Per-event cost is O(active regions), not O(regions in the file):
/// regions waiting to start sit in index structures keyed by what
/// triggers them — a cursor over a start-instruction-sorted list for
/// instruction bounds, a `(marker, count)` map for marker bounds — and
/// only the (typically zero or one) currently active regions are
/// visited per block or access event.
pub(crate) struct RegionSink {
    hierarchy: Hierarchy,
    counts: MarkerCounts,
    instrs: u64,
    regions: Vec<TrackedRegion>,
    /// Indices of currently active regions.
    active: Vec<usize>,
    /// Pending regions with `Instr` starts, sorted by start descending
    /// (so the back of the vec is the next region to activate).
    instr_pending: Vec<usize>,
    /// Pending regions with `Point` starts, keyed by the exact marker
    /// execution that activates them.
    point_pending: HashMap<(Marker, u64), Vec<usize>>,
    warmup: Warmup,
    fresh: Hierarchy,
}

impl RegionSink {
    /// Retires active regions whose `Instr` end is reached, then
    /// activates pending regions whose `Instr` start is reached.
    /// Activation happens last so a region never ends in the pass that
    /// started it (a region spanning zero instructions still sees the
    /// block that closes it, matching one-pass state-machine order).
    fn roll_instr(&mut self) {
        let instrs = self.instrs;
        let regions = &mut self.regions;
        self.active.retain(|&i| {
            let t = &mut regions[i];
            if matches!(t.region.end, RegionBound::Instr(x) if instrs >= x) {
                t.state = RegionState::Done;
                false
            } else {
                true
            }
        });
        let mut activated = false;
        while let Some(&i) = self.instr_pending.last() {
            if matches!(regions[i].region.start, RegionBound::Instr(x) if instrs >= x) {
                self.instr_pending.pop();
                regions[i].state = RegionState::Active;
                self.active.push(i);
                activated = true;
            } else {
                break;
            }
        }
        if activated && self.warmup == Warmup::Cold {
            self.hierarchy = self.fresh.clone();
        }
    }
}

impl TraceSink for RegionSink {
    #[inline]
    fn on_block(&mut self, _: BlockId, instrs: u64) {
        for &i in &self.active {
            let t = &mut self.regions[i];
            t.stats.instructions += instrs;
            t.stats.cycles += instrs;
        }
        self.instrs += instrs;
        self.roll_instr();
    }

    #[inline]
    fn on_access(&mut self, addr: u64, is_write: bool) {
        // Functional warming: the hierarchy sees every access.
        let (lvl, latency) = self.hierarchy.access(addr, is_write);
        for &i in &self.active {
            let t = &mut self.regions[i];
            t.stats.accesses += 1;
            t.stats.cycles += latency;
            if lvl != ServicedBy::L1 {
                t.stats.l1_misses += 1;
            }
            if lvl == ServicedBy::Dram {
                t.stats.dram_accesses += 1;
            }
        }
    }

    #[inline]
    fn on_marker(&mut self, marker: Marker) {
        let count = self.counts.observe(marker);
        let regions = &mut self.regions;
        self.active.retain(|&i| {
            let t = &mut regions[i];
            if matches!(t.region.end, RegionBound::Point(p)
                if p.marker.to_marker() == marker && p.count == count)
            {
                t.state = RegionState::Done;
                false
            } else {
                true
            }
        });
        if let Some(starters) = self.point_pending.remove(&(marker, count)) {
            for i in starters {
                regions[i].state = RegionState::Active;
                self.active.push(i);
            }
            if self.warmup == Warmup::Cold {
                self.hierarchy = self.fresh.clone();
            }
        }
    }
}

/// Builds a [`RegionSink`] for `file` with marker-count vectors sized
/// `(n_procs, n_loops)`, ready to consume an event stream (regions
/// starting at instruction 0 are already active).
pub(crate) fn region_sink(
    config: &MemoryConfig,
    file: &PinPointsFile,
    warmup: Warmup,
    n_procs: usize,
    n_loops: usize,
) -> RegionSink {
    let mut instr_pending = Vec::new();
    let mut point_pending: HashMap<(Marker, u64), Vec<usize>> = HashMap::new();
    for (i, region) in file.regions.iter().enumerate() {
        match region.start {
            RegionBound::Instr(_) => instr_pending.push(i),
            RegionBound::Point(p) => point_pending
                .entry((p.marker.to_marker(), p.count))
                .or_default()
                .push(i),
        }
    }
    // Back of the vec = smallest start instruction.
    instr_pending.sort_by_key(|&i| {
        std::cmp::Reverse(match file.regions[i].start {
            RegionBound::Instr(x) => x,
            RegionBound::Point(_) => unreachable!("partitioned above"),
        })
    });
    let mut sink = RegionSink {
        hierarchy: Hierarchy::new(config),
        counts: MarkerCounts::new(n_procs, n_loops),
        instrs: 0,
        warmup,
        fresh: Hierarchy::new(config),
        regions: file
            .regions
            .iter()
            .map(|&region| TrackedRegion {
                region,
                state: RegionState::Pending,
                stats: IntervalSim::default(),
            })
            .collect(),
        active: Vec::new(),
        instr_pending,
        point_pending,
    };
    // Instr(0) starts active immediately.
    sink.roll_instr();
    sink
}

/// Extracts per-region results from a finished sink, in file order.
pub(crate) fn region_results(sink: RegionSink) -> Vec<RegionStats> {
    sink.regions
        .iter()
        .map(|t| RegionStats {
            phase: t.region.phase,
            weight: t.region.weight,
            stats: t.stats,
            reached: t.state != RegionState::Pending,
        })
        .collect()
}

/// Simulates only the regions of `file`, with functional warming in
/// between. Returns one [`RegionStats`] per region, in file order.
///
/// A region whose end bound is `Instr(u64::MAX)` runs to the end of
/// execution. Regions that never start are returned with
/// `reached: false` and empty stats — that means the file does not
/// belong to this `(binary, input)` pair.
pub fn simulate_regions(
    binary: &Binary,
    input: &Input,
    config: &MemoryConfig,
    file: &PinPointsFile,
) -> Vec<RegionStats> {
    simulate_regions_with(binary, input, config, file, Warmup::Functional)
}

/// [`simulate_regions`] with an explicit [`Warmup`] policy.
pub fn simulate_regions_with(
    binary: &Binary,
    input: &Input,
    config: &MemoryConfig,
    file: &PinPointsFile,
    warmup: Warmup,
) -> Vec<RegionStats> {
    let mut sink = region_sink(config, file, warmup, binary.procs.len(), binary.loops.len());
    run(binary, input, &mut sink);
    region_results(sink)
}

/// [`simulate_regions`] for a batch of `(binary, region file)` jobs,
/// fanned out over `pool` — e.g. one job per binary of a cross-binary
/// run, each replaying its own mapped region file. Results are in
/// input order.
pub fn simulate_regions_all(
    jobs: &[(&Binary, &PinPointsFile)],
    input: &Input,
    config: &MemoryConfig,
    pool: &Pool,
) -> Vec<Vec<RegionStats>> {
    pool.run_indexed(jobs.len(), |i| {
        simulate_regions(jobs[i].0, input, config, jobs[i].1)
    })
}

/// Weighted whole-program CPI estimate from region measurements (the
/// extrapolation of paper §2.3 step 6, done from a region file alone).
pub fn estimate_cpi_from_regions(regions: &[RegionStats]) -> f64 {
    regions
        .iter()
        .filter(|r| r.reached && r.stats.instructions > 0)
        .map(|r| r.weight * r.stats.cpi())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbsp_profile::{ExecPoint, MarkerRef};
    use cbsp_program::{compile, CompileTarget, ProgramBuilder, Scale};

    fn two_phase_binary() -> Binary {
        let mut b = ProgramBuilder::new("t");
        let small = b.array_f64("small", 1_000);
        let big = b.array_f64("big", 512_000);
        b.proc("main", |p| {
            p.loop_fixed(50, |body| {
                body.compute(50, |k| {
                    k.seq(small, 8);
                });
            });
            p.loop_fixed(50, |body| {
                body.compute(50, |k| {
                    k.random(big, 8);
                });
            });
        });
        compile(&b.finish(), CompileTarget::W32_O2)
    }

    fn file_for(regions: Vec<SimRegion>) -> PinPointsFile {
        PinPointsFile {
            program: "t".into(),
            binary: "t-32o".into(),
            input: "test".into(),
            interval_target: 1_000,
            regions,
        }
    }

    #[test]
    fn marker_bounded_regions_measure_the_right_code() {
        let bin = two_phase_binary();
        let input = Input::new("t", 5, Scale::Test);
        let file = file_for(vec![
            SimRegion {
                phase: 0,
                weight: 0.5,
                start: RegionBound::Point(ExecPoint {
                    marker: MarkerRef::LoopBack(0),
                    count: 10,
                }),
                end: RegionBound::Point(ExecPoint {
                    marker: MarkerRef::LoopBack(0),
                    count: 20,
                }),
            },
            SimRegion {
                phase: 1,
                weight: 0.5,
                start: RegionBound::Point(ExecPoint {
                    marker: MarkerRef::LoopBack(1),
                    count: 10,
                }),
                end: RegionBound::Point(ExecPoint {
                    marker: MarkerRef::LoopBack(1),
                    count: 20,
                }),
            },
        ]);
        let regions = simulate_regions(&bin, &input, &MemoryConfig::table1(), &file);
        assert!(regions.iter().all(|r| r.reached));
        // Both regions span 10 iterations of structurally identical
        // loops: similar instruction counts...
        let ratio = regions[0].stats.instructions as f64 / regions[1].stats.instructions as f64;
        assert!((0.8..1.25).contains(&ratio), "instr ratio {ratio}");
        // ...but the second loop misses to DRAM: much higher CPI.
        assert!(
            regions[1].stats.cpi() > regions[0].stats.cpi() + 1.0,
            "phase CPIs {} vs {}",
            regions[0].stats.cpi(),
            regions[1].stats.cpi()
        );
    }

    #[test]
    fn instruction_bounded_regions_partition_exactly() {
        let bin = two_phase_binary();
        let input = Input::new("t", 5, Scale::Test);
        let full = crate::runner::simulate_full(&bin, &input, &MemoryConfig::table1());
        let half = full.instructions / 2;
        let file = file_for(vec![
            SimRegion {
                phase: 0,
                weight: 0.5,
                start: RegionBound::Instr(0),
                end: RegionBound::Instr(half),
            },
            SimRegion {
                phase: 1,
                weight: 0.5,
                start: RegionBound::Instr(half),
                end: RegionBound::Instr(u64::MAX),
            },
        ]);
        let regions = simulate_regions(&bin, &input, &MemoryConfig::table1(), &file);
        let total: u64 = regions.iter().map(|r| r.stats.instructions).sum();
        assert_eq!(total, full.instructions, "two halves cover the run");
        let cycles: u64 = regions.iter().map(|r| r.stats.cycles).sum();
        assert_eq!(cycles, full.cycles);
    }

    #[test]
    fn unreached_regions_are_flagged() {
        let bin = two_phase_binary();
        let input = Input::new("t", 5, Scale::Test);
        let file = file_for(vec![SimRegion {
            phase: 0,
            weight: 1.0,
            start: RegionBound::Point(ExecPoint {
                marker: MarkerRef::LoopBack(0),
                count: 1_000_000,
            }),
            end: RegionBound::Instr(u64::MAX),
        }]);
        let regions = simulate_regions(&bin, &input, &MemoryConfig::table1(), &file);
        assert!(!regions[0].reached);
        assert_eq!(regions[0].stats.instructions, 0);
    }

    #[test]
    fn cold_start_inflates_region_cpi() {
        let bin = two_phase_binary();
        let input = Input::new("t", 5, Scale::Test);
        // A mid-run region over the L1-resident loop: warm it is cheap,
        // cold it pays compulsory misses again.
        let file = file_for(vec![SimRegion {
            phase: 0,
            weight: 1.0,
            start: RegionBound::Point(ExecPoint {
                marker: MarkerRef::LoopBack(0),
                count: 20,
            }),
            end: RegionBound::Point(ExecPoint {
                marker: MarkerRef::LoopBack(0),
                count: 40,
            }),
        }]);
        let cfg = MemoryConfig::table1();
        let warm = simulate_regions_with(&bin, &input, &cfg, &file, Warmup::Functional);
        let cold = simulate_regions_with(&bin, &input, &cfg, &file, Warmup::Cold);
        assert_eq!(warm[0].stats.instructions, cold[0].stats.instructions);
        assert!(
            cold[0].stats.cpi() > warm[0].stats.cpi(),
            "cold {} should exceed warm {}",
            cold[0].stats.cpi(),
            warm[0].stats.cpi()
        );
    }

    #[test]
    fn estimate_matches_weighted_region_cpis() {
        let regions = vec![
            RegionStats {
                phase: 0,
                weight: 0.75,
                stats: IntervalSim {
                    instructions: 100,
                    cycles: 200,
                    ..IntervalSim::default()
                },
                reached: true,
            },
            RegionStats {
                phase: 1,
                weight: 0.25,
                stats: IntervalSim {
                    instructions: 100,
                    cycles: 600,
                    ..IntervalSim::default()
                },
                reached: true,
            },
        ];
        let est = estimate_cpi_from_regions(&regions);
        assert!((est - (0.75 * 2.0 + 0.25 * 6.0)).abs() < 1e-12);
    }
}
