//! Per-simpoint *sliced* traces: cut a recorded [`EventTrace`] into
//! the byte ranges of selected intervals so a warm CPI estimate decodes
//! kilobytes instead of the full multi-megabyte stream.
//!
//! A full event trace covers the whole execution, but a SimPoint
//! estimate only ever charges a handful of selected intervals — exactly
//! the waste region-based sampling tool chains (PinPoints-style) avoid
//! by materializing per-region artifacts. [`slice_trace`] replays the
//! full trace **once**, producing both the whole-program ground-truth
//! statistics and one small re-based [`TraceSlice`] per selected
//! interval; [`replay_slice`] then reconstructs an interval's
//! statistics from its slice alone.
//!
//! # Slice layout: re-based events plus a state checkpoint
//!
//! The varint event encoding is self-delimiting, but operands are
//! delta-coded against running state, so a slice cannot be a raw byte
//! range of the parent buffer: its leading deltas would refer to
//! operands outside the slice. Each slice is therefore *re-based* —
//! the region's events are re-encoded through a fresh [`RecordSink`]
//! whose delta state starts at zero, exactly matching replay's decode
//! state, so the slice is a complete, independently decodable
//! [`EventTrace`].
//!
//! Cache and branch-predictor state at an interval's start also comes
//! from outside the region, and — unlike the event stream — it cannot
//! be approximated cheaply: a warmup prefix long enough to warm a
//! megabyte-scale last-level cache would be most of the trace, and a
//! short one charges cold misses at DRAM latency. Slices instead carry
//! an exact checkpoint: while the cutting replay runs, the simulator's
//! microarchitectural state (all three cache levels plus the optional
//! branch predictor) is packed into [`TraceSlice::state`] at the moment
//! the selected interval begins. [`replay_slice`] restores the
//! checkpoint into a fresh engine and replays only the interval's own
//! events, so the result is **bit-identical** to the interval's
//! in-context statistics from a full replay — sliced estimates equal
//! full-replay estimates exactly, cold or warm.
//!
//! The checkpoint is compact relative to the trace: it stores one
//! entry per *resident cache line* (bounded by total cache capacity,
//! with LRU stamps compressed to per-set ranks), while the trace
//! stores one event per *executed access* — and a trace worth slicing
//! has vastly more accesses than the caches have lines.

use crate::config::MemoryConfig;
use crate::record::{EventTrace, RecordSink};
use crate::replay::{replay, TraceError};
use crate::runner::{Engine, MarkerSlicedSim};
use crate::stats::{IntervalSim, SimStats};
use cbsp_profile::ExecPoint;
use cbsp_program::{BlockId, Marker, TraceSink};

/// One selected interval's re-based slice of a recorded trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSlice {
    /// Index of the interval this slice charges.
    pub interval: usize,
    /// Packed simulator state (caches + optional predictor) at the
    /// interval's start, captured during the cutting replay. For
    /// interval 0 — and for selected indices past the last interval —
    /// this is the initial (empty) state.
    pub state: Vec<u8>,
    /// The re-based event stream of the charged interval alone
    /// (including its closing boundary marker, when one exists).
    pub trace: EventTrace,
}

impl TraceSlice {
    /// Encoded size of the slice in bytes (state checkpoint plus event
    /// stream).
    pub fn encoded_len(&self) -> usize {
        self.state.len() + self.trace.encoded_len()
    }
}

/// The product of slicing one full trace: whole-program ground truth
/// plus one slice per selected interval.
#[derive(Debug, Clone, PartialEq)]
pub struct SlicedTrace {
    /// Whole-program statistics of the full replay (ground truth for
    /// `true_cpi`), byte-identical to
    /// [`replay_marker_sliced`](crate::replay_marker_sliced).
    pub full: SimStats,
    /// Number of intervals the full replay closed (boundaries reached
    /// plus a tail interval if it executed instructions).
    pub intervals: usize,
    /// Slices in ascending interval order, one per selected interval.
    pub slices: Vec<TraceSlice>,
}

impl SlicedTrace {
    /// Total encoded bytes across all slices.
    pub fn encoded_len(&self) -> usize {
        self.slices.iter().map(TraceSlice::encoded_len).sum()
    }
}

/// Builder for one slice: a zero-seeded recorder plus the state
/// checkpoint captured when its interval begins.
struct SliceBuilder {
    interval: usize,
    sink: RecordSink,
    /// Packed engine state at the interval's first event; `None` until
    /// the interval begins (and forever, for out-of-range selections).
    state: Option<Vec<u8>>,
}

/// Sink that drives a [`MarkerSlicedSim`] (for ground-truth statistics
/// and interval attribution) while teeing each event into the builder
/// charging the current interval and checkpointing engine state at
/// each selected interval's start.
struct SliceCutter {
    sim: MarkerSlicedSim,
    /// Sorted by interval, unique.
    builders: Vec<SliceBuilder>,
    /// Builders before this index charge already-closed intervals.
    lo: usize,
}

impl SliceCutter {
    /// Records one event into the builder charging the current
    /// interval, if that interval is selected. Builders are sorted and
    /// unique, so at most one is active at any time.
    #[inline]
    fn record_active(&mut self, f: impl Fn(&mut RecordSink)) {
        let cur = self.sim.intervals_closed();
        if let Some(b) = self.builders.get_mut(self.lo) {
            if b.interval == cur {
                f(&mut b.sink);
            }
        }
    }

    /// Handles the transition into interval `after`: the builder
    /// charging the closed interval is complete, and if `after` is
    /// selected, its builder checkpoints the engine state — taken
    /// right at the boundary, before any of `after`'s events.
    fn advance(&mut self, after: usize) {
        while self.lo < self.builders.len() && self.builders[self.lo].interval < after {
            self.lo += 1;
        }
        if let Some(b) = self.builders.get_mut(self.lo) {
            if b.interval == after && b.state.is_none() {
                b.state = Some(self.sim.state_snapshot());
            }
        }
    }
}

impl TraceSink for SliceCutter {
    #[inline]
    fn on_block(&mut self, block: BlockId, instrs: u64) {
        self.record_active(|s| s.on_block(block, instrs));
        self.sim.on_block(block, instrs);
    }

    #[inline]
    fn on_access(&mut self, addr: u64, is_write: bool) {
        self.record_active(|s| s.on_access(addr, is_write));
        self.sim.on_access(addr, is_write);
    }

    #[inline]
    fn on_branch(&mut self, branch: u64, taken: bool) {
        self.record_active(|s| s.on_branch(branch, taken));
        self.sim.on_branch(branch, taken);
    }

    #[inline]
    fn on_marker(&mut self, marker: Marker) {
        // The closing boundary marker belongs to the interval it
        // closes: record it before stepping the simulation, so it
        // lands in the closing interval's slice.
        self.record_active(|s| s.on_marker(marker));
        let before = self.sim.intervals_closed();
        self.sim.on_marker(marker);
        let after = self.sim.intervals_closed();
        if after != before {
            self.advance(after);
        }
    }
}

/// Replays `trace` once, computing whole-program statistics and
/// cutting one re-based, state-checkpointed [`TraceSlice`] per
/// interval in `selected` (indices into the marker-bounded interval
/// sequence; deduplicated and sorted internally).
///
/// # Errors
///
/// Returns a [`TraceError`] if the trace fails to decode.
///
/// # Panics
///
/// Panics if some boundary was never reached — that means the
/// boundaries do not belong to the recorded `(binary, input)` pair
/// (same contract as [`crate::replay_marker_sliced`]).
pub fn slice_trace(
    trace: &EventTrace,
    config: &MemoryConfig,
    boundaries: &[ExecPoint],
    selected: &[usize],
) -> Result<SlicedTrace, TraceError> {
    let _span = cbsp_trace::span_labeled("sim/slice_trace", || {
        format!("{} events, {} slices", trace.events, selected.len())
    });
    let mut wanted: Vec<usize> = selected.to_vec();
    wanted.sort_unstable();
    wanted.dedup();
    let sim = MarkerSlicedSim::with_dims(
        config,
        trace.n_procs as usize,
        trace.n_loops as usize,
        boundaries.to_vec(),
    );
    // The empty-engine checkpoint: interval 0's start state, and the
    // stand-in for selections past the last interval (whose slices
    // carry no events, so any valid state yields the correct default
    // statistics).
    let initial_state = sim.state_snapshot();
    let mut cutter = SliceCutter {
        sim,
        builders: wanted
            .into_iter()
            .map(|interval| SliceBuilder {
                interval,
                sink: RecordSink::with_dims(trace.n_procs, trace.n_loops),
                state: (interval == 0).then(|| initial_state.clone()),
            })
            .collect(),
        lo: 0,
    };
    replay(trace, &mut cutter)?;
    assert_eq!(
        cutter.sim.unreached_boundaries(),
        0,
        "marker boundaries must all occur in this binary's execution"
    );
    let builders = cutter.builders;
    let (full, intervals) = cutter.sim.finish();
    cbsp_trace::add("sim/instructions", full.instructions);
    let slices = builders
        .into_iter()
        .map(|b| TraceSlice {
            interval: b.interval,
            state: b.state.unwrap_or_else(|| initial_state.clone()),
            trace: b.sink.finish(),
        })
        .collect();
    Ok(SlicedTrace {
        full,
        intervals: intervals.len(),
        slices,
    })
}

/// Sink for replaying one slice into a state-restored engine; markers
/// carry no cost, so the default no-op handler applies.
struct SliceSim {
    engine: Engine,
}

impl TraceSink for SliceSim {
    #[inline]
    fn on_block(&mut self, _: BlockId, instrs: u64) {
        self.engine.block(instrs);
    }

    #[inline]
    fn on_access(&mut self, addr: u64, is_write: bool) {
        self.engine.access(addr, is_write);
    }

    #[inline]
    fn on_branch(&mut self, branch: u64, taken: bool) {
        self.engine.branch(branch, taken);
    }
}

/// Replays one slice, returning the charged interval's statistics.
///
/// The slice's state checkpoint is restored into a fresh engine and
/// only the interval's own events are replayed, so the result is
/// bit-identical to the interval's in-context statistics from a full
/// replay — for every interval, not just interval 0.
///
/// # Errors
///
/// Returns a [`TraceError`] if the state checkpoint or the event
/// stream fails to decode — callers holding a cached slice should
/// treat this as a miss and re-slice.
pub fn replay_slice(slice: &TraceSlice, config: &MemoryConfig) -> Result<IntervalSim, TraceError> {
    let mut sink = SliceSim {
        engine: Engine::new(config),
    };
    sink.engine.restore_state(&slice.state)?;
    replay(&slice.trace, &mut sink)?;
    cbsp_trace::add("sim/slice_replays", 1);
    cbsp_trace::add(
        "sim/slice_bytes_read",
        (slice.state.len() + slice.trace.bytes.len()) as u64,
    );
    Ok(sink.engine.cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordSink;
    use crate::replay::replay_marker_sliced;
    use cbsp_profile::MarkerRef;
    use cbsp_program::{compile, run, CompileTarget, Input, ProgramBuilder, Scale};

    fn phased_binary() -> cbsp_program::Binary {
        let mut b = ProgramBuilder::new("t");
        let small = b.array_f64("small", 1_000);
        let big = b.array_f64("big", 512_000);
        b.proc("main", |p| {
            p.loop_fixed(60, |body| {
                body.compute(50, |k| {
                    k.seq(small, 8);
                });
            });
            p.loop_fixed(60, |body| {
                body.compute(50, |k| {
                    k.random(big, 8);
                });
            });
        });
        compile(&b.finish(), CompileTarget::W32_O2)
    }

    fn record(bin: &cbsp_program::Binary) -> EventTrace {
        let mut sink = RecordSink::for_binary(bin);
        run(bin, &Input::new("t", 5, Scale::Test), &mut sink);
        sink.finish()
    }

    fn boundaries() -> Vec<ExecPoint> {
        vec![
            ExecPoint {
                marker: MarkerRef::LoopBack(0),
                count: 20,
            },
            ExecPoint {
                marker: MarkerRef::LoopBack(0),
                count: 40,
            },
            ExecPoint {
                marker: MarkerRef::LoopBack(1),
                count: 15,
            },
            ExecPoint {
                marker: MarkerRef::LoopBack(1),
                count: 45,
            },
        ]
    }

    #[test]
    fn slicing_preserves_full_statistics_and_interval_count() {
        let bin = phased_binary();
        let trace = record(&bin);
        let cfg = MemoryConfig::table1();
        let bounds = boundaries();
        let (full, intervals) = replay_marker_sliced(&trace, &cfg, &bounds).expect("valid");
        let sliced = slice_trace(&trace, &cfg, &bounds, &[0, 2, 4]).expect("valid");
        assert_eq!(sliced.full, full, "ground truth must be byte-identical");
        assert_eq!(sliced.intervals, intervals.len());
        assert_eq!(sliced.slices.len(), 3);
    }

    #[test]
    fn interval_zero_slice_matches_in_context_statistics_exactly() {
        let bin = phased_binary();
        let trace = record(&bin);
        let cfg = MemoryConfig::table1();
        let bounds = boundaries();
        let (_, intervals) = replay_marker_sliced(&trace, &cfg, &bounds).expect("valid");
        let sliced = slice_trace(&trace, &cfg, &bounds, &[0]).expect("valid");
        let replayed = replay_slice(&sliced.slices[0], &cfg).expect("valid slice");
        assert_eq!(replayed, intervals[0], "cold start == in-context");
    }

    #[test]
    fn every_slice_reproduces_in_context_statistics_exactly() {
        let bin = phased_binary();
        let trace = record(&bin);
        let cfg = MemoryConfig::table1();
        let bounds = boundaries();
        let (_, intervals) = replay_marker_sliced(&trace, &cfg, &bounds).expect("valid");
        let all: Vec<usize> = (0..intervals.len()).collect();
        let sliced = slice_trace(&trace, &cfg, &bounds, &all).expect("valid");
        for s in &sliced.slices {
            let replayed = replay_slice(s, &cfg).expect("valid slice");
            assert_eq!(
                replayed, intervals[s.interval],
                "interval {}: checkpoint restore must be bit-identical",
                s.interval
            );
        }
    }

    #[test]
    fn checkpoints_also_restore_the_branch_predictor() {
        use cbsp_program::Cond;
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.loop_fixed(200, |body| {
                body.if_else(
                    Cond::Random { num: 1, den: 2 },
                    |t| t.work(10),
                    |e| e.work(10),
                );
            });
        });
        let bin = compile(&b.finish(), CompileTarget::W32_O2);
        let mut sink = RecordSink::for_binary(&bin);
        run(&bin, &Input::new("t", 9, Scale::Test), &mut sink);
        let trace = sink.finish();
        let mut cfg = MemoryConfig::table1();
        cfg.branch = Some(crate::branch::BranchConfig::default());
        let bounds = vec![
            ExecPoint {
                marker: MarkerRef::LoopBack(0),
                count: 80,
            },
            ExecPoint {
                marker: MarkerRef::LoopBack(0),
                count: 150,
            },
        ];
        let (_, intervals) = replay_marker_sliced(&trace, &cfg, &bounds).expect("valid");
        let sliced = slice_trace(&trace, &cfg, &bounds, &[1, 2]).expect("valid");
        for s in &sliced.slices {
            let replayed = replay_slice(s, &cfg).expect("valid slice");
            assert_eq!(
                replayed, intervals[s.interval],
                "interval {}: predictor history and counters must restore",
                s.interval
            );
        }
    }

    #[test]
    fn slices_are_small_relative_to_the_full_trace() {
        let bin = phased_binary();
        let trace = record(&bin);
        let cfg = MemoryConfig::table1();
        let sliced = slice_trace(&trace, &cfg, &boundaries(), &[2]).expect("valid");
        assert!(
            sliced.encoded_len() * 2 < trace.encoded_len(),
            "one of five intervals (plus checkpoint) must be well under half the trace: {} vs {}",
            sliced.encoded_len(),
            trace.encoded_len()
        );
    }

    #[test]
    fn selected_past_the_last_interval_yields_an_uncharged_slice() {
        let bin = phased_binary();
        let trace = record(&bin);
        let cfg = MemoryConfig::table1();
        let sliced = slice_trace(&trace, &cfg, &boundaries(), &[99]).expect("valid");
        let s = &sliced.slices[0];
        assert_eq!(s.trace.events, 0, "no events charged");
        let replayed = replay_slice(s, &cfg).expect("valid slice");
        assert_eq!(replayed, IntervalSim::default());
    }

    #[test]
    fn corrupt_slice_replay_reports_typed_errors() {
        let bin = phased_binary();
        let trace = record(&bin);
        let cfg = MemoryConfig::table1();
        let sliced = slice_trace(&trace, &cfg, &boundaries(), &[1]).expect("valid");
        let mut s = sliced.slices[0].clone();
        s.trace.bytes.truncate(s.trace.bytes.len() / 2);
        let err = replay_slice(&s, &cfg).expect_err("truncated");
        assert!(matches!(err, TraceError::UnexpectedEof { .. }), "{err}");
    }

    #[test]
    fn corrupt_state_checkpoint_reports_typed_errors() {
        let bin = phased_binary();
        let trace = record(&bin);
        let cfg = MemoryConfig::table1();
        let sliced = slice_trace(&trace, &cfg, &boundaries(), &[2]).expect("valid");
        let good = &sliced.slices[0];
        assert!(!good.state.is_empty(), "a mid-run checkpoint has content");

        // Truncated checkpoint.
        let mut s = good.clone();
        s.state.truncate(s.state.len() / 2);
        let err = replay_slice(&s, &cfg).expect_err("truncated state");
        assert!(
            matches!(
                err,
                TraceError::UnexpectedEof { .. }
                    | TraceError::MalformedVarint { .. }
                    | TraceError::CorruptState
            ),
            "{err}"
        );

        // Trailing garbage after a valid checkpoint.
        let mut s = good.clone();
        s.state.push(0x7F);
        let err = replay_slice(&s, &cfg).expect_err("oversized state");
        assert!(
            matches!(
                err,
                TraceError::CorruptState
                    | TraceError::UnexpectedEof { .. }
                    | TraceError::MalformedVarint { .. }
            ),
            "{err}"
        );
    }
}
