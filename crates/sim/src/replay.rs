//! Event-trace replay: feed a recorded [`EventTrace`] into any
//! [`TraceSink`] without re-running the interpreter.
//!
//! Replay is the hot path of record-once/replay-many: a tight decode
//! loop over the flat byte buffer, with none of the executor's
//! statement-tree walking, occurrence counters, RNG, or address
//! arithmetic. The callback sequence is exactly the one the original
//! [`cbsp_program::run`] produced, so any sink computes byte-identical
//! results from a replay (see `tests/replay_equivalence.rs`).
//!
//! Decoding is total: corrupted or truncated buffers yield a typed
//! [`TraceError`], never a panic.

use crate::config::MemoryConfig;
use crate::record::{unzigzag, EventTrace, TAG_ACCESS, TAG_BLOCK, TAG_MARKER};
use crate::regions::{RegionStats, Warmup};
use crate::runner::{FliSlicedSim, FullSim, MarkerSlicedSim};
use crate::stats::{IntervalSim, SimStats};
use cbsp_profile::{ExecPoint, PinPointsFile};
use cbsp_program::{BinLoopId, BinProcId, BlockId, Marker, TraceSink};
use std::fmt;

/// A structural defect found while decoding an [`EventTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// The buffer ended in the middle of an event.
    UnexpectedEof {
        /// Byte offset at which more input was required.
        offset: usize,
    },
    /// A varint ran past the 64-bit value range.
    MalformedVarint {
        /// Byte offset of the offending varint byte.
        offset: usize,
    },
    /// A marker event carried an out-of-range marker kind.
    InvalidMarkerKind {
        /// Byte offset of the event head.
        offset: usize,
        /// The kind field found (valid kinds are 0, 1, 2).
        kind: u8,
    },
    /// Decoding consumed the declared event count with bytes left over.
    TrailingBytes {
        /// Offset of the first unconsumed byte.
        offset: usize,
    },
    /// A trace slice's packed simulator state failed to decode (see
    /// [`crate::slice::TraceSlice::state`]).
    CorruptState,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnexpectedEof { offset } => {
                write!(f, "trace truncated: event expected at byte {offset}")
            }
            TraceError::MalformedVarint { offset } => {
                write!(f, "malformed varint at byte {offset}")
            }
            TraceError::InvalidMarkerKind { offset, kind } => {
                write!(f, "invalid marker kind {kind} at byte {offset}")
            }
            TraceError::TrailingBytes { offset } => {
                write!(f, "trailing bytes after last event at byte {offset}")
            }
            TraceError::CorruptState => {
                write!(f, "corrupt packed simulator state in trace slice")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Reads one LEB128 varint starting at `pos`, returning the value and
/// the position after it. One- and two-byte varints — the overwhelming
/// majority under delta encoding — decode inline with one branch per
/// byte; longer (or malformed) varints take [`read_varint_tail`].
#[inline(always)]
pub(crate) fn read_varint(bytes: &[u8], pos: usize) -> Result<(u64, usize), TraceError> {
    match bytes.get(pos) {
        Some(&b0) if b0 & 0x80 == 0 => Ok((u64::from(b0), pos + 1)),
        Some(&b0) => match bytes.get(pos + 1) {
            Some(&b1) if b1 & 0x80 == 0 => {
                Ok((u64::from(b0 & 0x7F) | (u64::from(b1) << 7), pos + 2))
            }
            _ => read_varint_tail(bytes, pos, u64::from(b0 & 0x7F)),
        },
        None => Err(TraceError::UnexpectedEof { offset: pos }),
    }
}

/// Continues a varint whose first byte (already folded into `v`) had
/// its continuation bit set and whose second byte does too (or is
/// missing).
fn read_varint_tail(bytes: &[u8], start: usize, mut v: u64) -> Result<(u64, usize), TraceError> {
    let mut pos = start + 1;
    let mut shift = 7u32;
    loop {
        let b = *bytes
            .get(pos)
            .ok_or(TraceError::UnexpectedEof { offset: pos })?;
        if shift == 63 && b > 1 {
            return Err(TraceError::MalformedVarint { offset: pos });
        }
        v |= u64::from(b & 0x7F) << shift;
        pos += 1;
        if b & 0x80 == 0 {
            return Ok((v, pos));
        }
        shift += 7;
        if shift > 63 {
            return Err(TraceError::MalformedVarint { offset: pos });
        }
    }
}

/// Replays every recorded event into `sink`, in recorded order.
///
/// # Errors
///
/// Returns a [`TraceError`] if the buffer is truncated, structurally
/// corrupt, or disagrees with the trace's declared event count. Events
/// already decoded will have reached the sink.
pub fn replay<S: TraceSink>(trace: &EventTrace, sink: &mut S) -> Result<(), TraceError> {
    replay_bytes(&trace.bytes, trace.events, sink)
}

/// [`replay`] from a borrowed byte buffer: decodes `events` events out
/// of `bytes` into `sink` without requiring an owning [`EventTrace`].
/// This is the zero-copy entry point for callers holding trace bytes
/// in some other allocation — a store read buffer, a slice of a larger
/// file — who should not have to move or copy them into an
/// [`EventTrace`] just to replay.
///
/// # Errors
///
/// Returns a [`TraceError`] if the buffer is truncated, structurally
/// corrupt, or disagrees with the declared event count. Events already
/// decoded will have reached the sink.
pub fn replay_bytes<S: TraceSink>(
    bytes: &[u8],
    events: u64,
    sink: &mut S,
) -> Result<(), TraceError> {
    let mut pos = 0usize;
    let mut prev_block = 0u64;
    let mut prev_addr = 0u64;
    let mut prev_branch = 0u64;
    for _ in 0..events {
        let head_at = pos;
        let (head, p) = read_varint(bytes, pos)?;
        pos = p;
        match head & 0b11 {
            TAG_BLOCK => {
                let (instrs, p) = read_varint(bytes, pos)?;
                pos = p;
                prev_block = prev_block.wrapping_add(unzigzag(head >> 2) as u64);
                sink.on_block(BlockId::from(prev_block as u32), instrs);
            }
            TAG_ACCESS => {
                let zz = match head >> 3 {
                    0 => {
                        let (zz, p) = read_varint(bytes, pos)?;
                        pos = p;
                        zz
                    }
                    folded => folded - 1,
                };
                prev_addr = prev_addr.wrapping_add(unzigzag(zz) as u64);
                sink.on_access(prev_addr, head & 0b100 != 0);
            }
            TAG_MARKER => {
                let id = (head >> 4) as u32;
                let marker = match (head >> 2) & 0b11 {
                    0 => Marker::ProcEntry(BinProcId::from(id)),
                    1 => Marker::LoopEntry(BinLoopId::from(id)),
                    2 => Marker::LoopBack(BinLoopId::from(id)),
                    kind => {
                        return Err(TraceError::InvalidMarkerKind {
                            offset: head_at,
                            kind: kind as u8,
                        })
                    }
                };
                sink.on_marker(marker);
            }
            _ => {
                let zz = match head >> 3 {
                    0 => {
                        let (zz, p) = read_varint(bytes, pos)?;
                        pos = p;
                        zz
                    }
                    folded => folded - 1,
                };
                prev_branch = prev_branch.wrapping_add(unzigzag(zz) as u64);
                sink.on_branch(prev_branch, head & 0b100 != 0);
            }
        }
    }
    if pos != bytes.len() {
        return Err(TraceError::TrailingBytes { offset: pos });
    }
    cbsp_trace::add("sim/replays", 1);
    cbsp_trace::add("sim/replay_events", events);
    Ok(())
}

/// [`crate::simulate_full`] from a recorded trace.
///
/// # Errors
///
/// Returns a [`TraceError`] if the trace fails to decode.
pub fn replay_full(trace: &EventTrace, config: &MemoryConfig) -> Result<SimStats, TraceError> {
    let _span = cbsp_trace::span_labeled("sim/replay_full", || format!("{} events", trace.events));
    let mut sink = FullSim::new(config);
    replay(trace, &mut sink)?;
    let stats = sink.finish();
    cbsp_trace::add("sim/instructions", stats.instructions);
    Ok(stats)
}

/// [`crate::simulate_fli_sliced`] from a recorded trace.
///
/// # Errors
///
/// Returns a [`TraceError`] if the trace fails to decode.
pub fn replay_fli_sliced(
    trace: &EventTrace,
    config: &MemoryConfig,
    target: u64,
) -> Result<(SimStats, Vec<IntervalSim>), TraceError> {
    let _span = cbsp_trace::span_labeled("sim/replay_fli_sliced", || {
        format!("{} events", trace.events)
    });
    let mut sink = FliSlicedSim::new(config, target);
    replay(trace, &mut sink)?;
    let (stats, intervals) = sink.finish();
    cbsp_trace::add("sim/instructions", stats.instructions);
    Ok((stats, intervals))
}

/// [`crate::simulate_marker_sliced`] from a recorded trace.
///
/// # Errors
///
/// Returns a [`TraceError`] if the trace fails to decode.
///
/// # Panics
///
/// Panics if some boundary was never reached — that means the
/// boundaries do not belong to the recorded `(binary, input)` pair
/// (same contract as [`crate::simulate_marker_sliced`]).
pub fn replay_marker_sliced(
    trace: &EventTrace,
    config: &MemoryConfig,
    boundaries: &[ExecPoint],
) -> Result<(SimStats, Vec<IntervalSim>), TraceError> {
    let _span = cbsp_trace::span_labeled("sim/replay_marker_sliced", || {
        format!("{} events", trace.events)
    });
    let mut sink = MarkerSlicedSim::with_dims(
        config,
        trace.n_procs as usize,
        trace.n_loops as usize,
        boundaries.to_vec(),
    );
    replay(trace, &mut sink)?;
    assert_eq!(
        sink.unreached_boundaries(),
        0,
        "marker boundaries must all occur in this binary's execution"
    );
    let (stats, intervals) = sink.finish();
    cbsp_trace::add("sim/instructions", stats.instructions);
    Ok((stats, intervals))
}

/// [`crate::simulate_regions`] from a recorded trace.
///
/// # Errors
///
/// Returns a [`TraceError`] if the trace fails to decode.
pub fn replay_regions(
    trace: &EventTrace,
    config: &MemoryConfig,
    file: &PinPointsFile,
) -> Result<Vec<RegionStats>, TraceError> {
    replay_regions_with(trace, config, file, Warmup::Functional)
}

/// [`crate::simulate_regions_with`] from a recorded trace.
///
/// # Errors
///
/// Returns a [`TraceError`] if the trace fails to decode.
pub fn replay_regions_with(
    trace: &EventTrace,
    config: &MemoryConfig,
    file: &PinPointsFile,
    warmup: Warmup,
) -> Result<Vec<RegionStats>, TraceError> {
    let _span =
        cbsp_trace::span_labeled("sim/replay_regions", || format!("{} events", trace.events));
    let mut sink = crate::regions::region_sink(
        config,
        file,
        warmup,
        trace.n_procs as usize,
        trace.n_loops as usize,
    );
    replay(trace, &mut sink)?;
    Ok(crate::regions::region_results(sink))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{push_varint, RecordSink};
    use cbsp_program::{compile, run, CompileTarget, Input, ProgramBuilder};

    fn small_trace() -> EventTrace {
        let mut b = ProgramBuilder::new("t");
        let a = b.array_i32("a", 64);
        b.proc("main", |p| {
            p.loop_fixed(7, |body| {
                body.compute(10, |k| {
                    k.seq(a, 4);
                });
            });
        });
        let bin = compile(&b.finish(), CompileTarget::W32_O2);
        let mut sink = RecordSink::for_binary(&bin);
        run(&bin, &Input::test(), &mut sink);
        sink.finish()
    }

    /// Sink that records the raw callback sequence for comparison.
    #[derive(Default, PartialEq, Debug)]
    struct EventLog(Vec<(u64, u64, u64)>);

    impl TraceSink for EventLog {
        fn on_block(&mut self, b: BlockId, instrs: u64) {
            self.0.push((0, u64::from(u32::from(b)), instrs));
        }
        fn on_access(&mut self, addr: u64, w: bool) {
            self.0.push((1, addr, u64::from(w)));
        }
        fn on_marker(&mut self, m: Marker) {
            let (k, id) = match m {
                Marker::ProcEntry(p) => (0u64, u64::from(u32::from(p))),
                Marker::LoopEntry(l) => (1, u64::from(u32::from(l))),
                Marker::LoopBack(l) => (2, u64::from(u32::from(l))),
            };
            self.0.push((2, k, id));
        }
        fn on_branch(&mut self, br: u64, taken: bool) {
            self.0.push((3, br, u64::from(taken)));
        }
    }

    #[test]
    fn replay_reproduces_the_exact_event_sequence() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array_f64("a", 256);
        b.proc("main", |p| {
            p.loop_random(5, 15, |body| {
                body.compute(20, |k| {
                    k.random(a, 8).seq(a, 3);
                });
            });
        });
        let bin = compile(&b.finish(), CompileTarget::W64_O0);
        let mut direct = EventLog::default();
        let mut rec = RecordSink::for_binary(&bin);
        run(&bin, &Input::test(), &mut direct);
        run(&bin, &Input::test(), &mut rec);
        let trace = rec.finish();
        let mut replayed = EventLog::default();
        replay(&trace, &mut replayed).expect("valid trace");
        assert_eq!(direct, replayed);
    }

    #[test]
    fn huge_deltas_take_the_escape_encoding_and_round_trip() {
        use crate::record::{zigzag, FOLD_LIMIT};
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.work(1);
        });
        let bin = compile(&b.finish(), CompileTarget::W32_O2);
        let mut rec = RecordSink::for_binary(&bin);
        // Address/branch jumps so large their zigzag code cannot be
        // folded into the head varint — the escape encoding must kick
        // in, and the decoder must recover the exact operands.
        let addrs = [0u64, u64::MAX / 2 + 9, 3, u64::MAX, 0x10];
        let mut expected = Vec::new();
        let mut escapes = 0;
        let mut prev = 0u64;
        for (i, &a) in addrs.iter().enumerate() {
            rec.on_access(a, i % 2 == 0);
            rec.on_branch(!a, i % 2 == 1);
            expected.push((1, a, u64::from(i % 2 == 0)));
            expected.push((3, !a, u64::from(i % 2 == 1)));
            if zigzag(a.wrapping_sub(prev) as i64) >= FOLD_LIMIT {
                escapes += 1;
            }
            prev = a;
        }
        assert!(escapes > 0, "test must exercise the escape encoding");
        let trace = rec.finish();
        let mut log = EventLog::default();
        replay(&trace, &mut log).expect("valid trace");
        assert_eq!(log.0, expected);
    }

    #[test]
    fn truncated_trace_reports_eof_not_panic() {
        let full = small_trace();
        for cut in [0, 1, full.bytes.len() / 2, full.bytes.len() - 1] {
            let t = EventTrace {
                bytes: full.bytes[..cut].to_vec(),
                ..full.clone()
            };
            let err = replay(&t, &mut cbsp_program::NullSink).expect_err("truncated");
            assert!(
                matches!(err, TraceError::UnexpectedEof { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut t = small_trace();
        t.bytes.push(0);
        let err = replay(&t, &mut cbsp_program::NullSink).expect_err("trailing");
        assert!(matches!(err, TraceError::TrailingBytes { .. }), "{err}");
    }

    #[test]
    fn invalid_marker_kind_is_typed() {
        let mut t = EventTrace {
            n_procs: 1,
            n_loops: 1,
            events: 1,
            bytes: Vec::new(),
        };
        // Marker head with kind field 3 (invalid).
        push_varint(&mut t.bytes, (5 << 4) | (3 << 2) | TAG_MARKER);
        let err = replay(&t, &mut cbsp_program::NullSink).expect_err("bad kind");
        assert_eq!(err, TraceError::InvalidMarkerKind { offset: 0, kind: 3 });
    }

    #[test]
    fn overlong_varint_is_malformed() {
        let t = EventTrace {
            n_procs: 1,
            n_loops: 1,
            events: 1,
            bytes: vec![0x80; 12],
        };
        let err = replay(&t, &mut cbsp_program::NullSink).expect_err("overlong");
        assert!(matches!(err, TraceError::MalformedVarint { .. }), "{err}");
    }

    #[test]
    fn error_display_is_informative() {
        let e = TraceError::UnexpectedEof { offset: 42 };
        assert!(e.to_string().contains("42"));
        fn takes_error<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes_error(e);
    }
}
