//! Event-trace capture: record one execution's event stream into a
//! compact buffer that can be replayed into any [`TraceSink`].
//!
//! This is the record half of the paper's record-once/replay-many tool
//! chain (§4): Pin instruments the binary once, and every analysis —
//! CMP$im with different configurations, region extraction, warmup
//! studies — consumes the recorded stream without re-running the
//! program. Here [`RecordSink`] captures the executor's four event
//! kinds (block, access, marker, branch) and [`replay`](crate::replay::replay) feeds
//! them back into a sink with none of the interpreter's control-flow,
//! occurrence-counter, or address-generation overhead.
//!
//! # Encoding
//!
//! The buffer is a flat byte stream of events, each a *head* LEB128
//! varint followed by zero or more payload varints. The head's low two
//! bits select the event kind; integer operands that track a running
//! value (block ids, access addresses, branch ids) are delta-encoded
//! against the previous operand of the same kind, zigzag-mapped so
//! small forward or backward deltas stay short, and folded into the
//! head varint — the common event decodes with a single varint read:
//!
//! | kind | head | payload |
//! |---|---|---|
//! | block | `zigzag(block_id Δ) << 2 \| 0b00` | `instrs` |
//! | access | `(zigzag(addr Δ) + 1) << 3 \| write << 2 \| 0b01` | — |
//! | marker | `id << 4 \| marker_kind << 2 \| 0b10` | — |
//! | branch | `(zigzag(branch_id Δ) + 1) << 3 \| taken << 2 \| 0b11` | — |
//!
//! Access and branch deltas whose zigzag code is too large to fold
//! (≥ `FOLD_LIMIT`, i.e. the shifted head would overflow 64 bits) set
//! the folded field to 0 — an escape — and carry `zigzag(Δ)` as a
//! payload varint instead. Block deltas never need the escape: block
//! ids are 32-bit, so their shifted zigzag code always fits.
//!
//! `marker_kind` is 0 for procedure entries, 1 for loop entries, 2 for
//! loop backs. All delta state starts at zero, so a trace decodes
//! without any out-of-band context; the [`EventTrace`] header carries
//! only the marker-vector dimensions (so marker-counting sinks can be
//! sized without the original [`Binary`]) and the event count (so
//! truncation is detectable).

use cbsp_program::{run, Binary, ExecSummary, Input, Marker, TeeSink, TraceSink};

/// Event-kind tag stored in the low two bits of each head varint.
pub(crate) const TAG_BLOCK: u64 = 0b00;
pub(crate) const TAG_ACCESS: u64 = 0b01;
pub(crate) const TAG_MARKER: u64 = 0b10;
pub(crate) const TAG_BRANCH: u64 = 0b11;

/// Largest zigzag code an access or branch delta may have and still be
/// folded (as `code + 1`) into the head varint's bits above the flag.
/// Codes at or above this limit take the escape encoding (folded field
/// 0, delta in a payload varint).
pub(crate) const FOLD_LIMIT: u64 = u64::MAX >> 3;

/// Maps a signed delta onto an unsigned integer with small absolute
/// values staying small (LEB128-friendly).
#[inline]
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `v` as an LEB128 varint (7 payload bits per byte,
/// continuation in the high bit).
#[inline]
pub(crate) fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// A recorded execution: the complete event stream of one
/// `(binary, input)` run in the encoding described in the
/// [module docs](self).
///
/// Equivalence invariant: replaying a trace through any sink produces
/// exactly the callback sequence the original [`run`] produced, so
/// simulation results computed from a replay are byte-identical to
/// direct interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventTrace {
    /// Number of procedures in the recorded binary (sizes marker-count
    /// vectors at replay time).
    pub n_procs: u32,
    /// Number of loops in the recorded binary.
    pub n_loops: u32,
    /// Number of events encoded in `bytes`.
    pub events: u64,
    /// The encoded event stream.
    pub bytes: Vec<u8>,
}

impl EventTrace {
    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        self.bytes.len()
    }
}

/// A [`TraceSink`] that captures every event into an [`EventTrace`].
///
/// Use directly to record alongside arbitrary instrumentation, or via
/// [`record_trace`] / [`record_trace_with`] for the common cases.
#[derive(Debug)]
pub struct RecordSink {
    buf: Vec<u8>,
    events: u64,
    prev_block: u64,
    prev_addr: u64,
    prev_branch: u64,
    n_procs: u32,
    n_loops: u32,
}

impl RecordSink {
    /// Creates a recorder sized for `binary`.
    pub fn for_binary(binary: &Binary) -> Self {
        Self::with_dims(binary.procs.len() as u32, binary.loops.len() as u32)
    }

    /// Creates a recorder with explicit marker-vector dimensions, for
    /// callers that re-encode a recorded stream (e.g. trace slicing)
    /// and so have no [`Binary`] at hand. Delta state starts at zero,
    /// exactly as replay's decode state does, so a stream recorded here
    /// decodes without out-of-band context.
    pub fn with_dims(n_procs: u32, n_loops: u32) -> Self {
        RecordSink {
            buf: Vec::with_capacity(64 * 1024),
            events: 0,
            prev_block: 0,
            prev_addr: 0,
            prev_branch: 0,
            n_procs,
            n_loops,
        }
    }

    /// Number of events recorded so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Consumes the recorder, returning the captured trace.
    pub fn finish(self) -> EventTrace {
        cbsp_trace::add("sim/record_bytes", self.buf.len() as u64);
        EventTrace {
            n_procs: self.n_procs,
            n_loops: self.n_loops,
            events: self.events,
            bytes: self.buf,
        }
    }

    /// Records a delta-coded operand event (block / access / branch).
    #[inline]
    fn delta(prev: &mut u64, cur: u64) -> u64 {
        let d = cur.wrapping_sub(*prev) as i64;
        *prev = cur;
        zigzag(d)
    }

    /// Encodes an access/branch head with the delta folded in, or the
    /// escape form when the zigzag code is too large to fold.
    #[inline]
    fn push_folded(buf: &mut Vec<u8>, zz: u64, flags: u64) {
        if zz < FOLD_LIMIT {
            push_varint(buf, ((zz + 1) << 3) | flags);
        } else {
            buf.push(flags as u8);
            push_varint(buf, zz);
        }
    }
}

impl TraceSink for RecordSink {
    #[inline]
    fn on_block(&mut self, block: cbsp_program::BlockId, instrs: u64) {
        let zz = Self::delta(&mut self.prev_block, u64::from(u32::from(block)));
        push_varint(&mut self.buf, (zz << 2) | TAG_BLOCK);
        push_varint(&mut self.buf, instrs);
        self.events += 1;
    }

    #[inline]
    fn on_access(&mut self, addr: u64, is_write: bool) {
        let zz = Self::delta(&mut self.prev_addr, addr);
        Self::push_folded(&mut self.buf, zz, (u64::from(is_write) << 2) | TAG_ACCESS);
        self.events += 1;
    }

    #[inline]
    fn on_marker(&mut self, marker: Marker) {
        let (kind, id) = match marker {
            Marker::ProcEntry(p) => (0u64, u64::from(u32::from(p))),
            Marker::LoopEntry(l) => (1, u64::from(u32::from(l))),
            Marker::LoopBack(l) => (2, u64::from(u32::from(l))),
        };
        push_varint(&mut self.buf, (id << 4) | (kind << 2) | TAG_MARKER);
        self.events += 1;
    }

    #[inline]
    fn on_branch(&mut self, branch: u64, taken: bool) {
        let zz = Self::delta(&mut self.prev_branch, branch);
        Self::push_folded(&mut self.buf, zz, (u64::from(taken) << 2) | TAG_BRANCH);
        self.events += 1;
    }
}

/// Interprets `binary` on `input` once, recording the full event
/// stream.
pub fn record_trace(binary: &Binary, input: &Input) -> EventTrace {
    let _span = cbsp_trace::span_labeled("sim/record", || binary.label());
    let mut sink = RecordSink::for_binary(binary);
    run(binary, input, &mut sink);
    sink.finish()
}

/// Interprets `binary` on `input` once, recording the event stream
/// *and* teeing every event into `primary` — one interpretation serves
/// both the live analysis and all future replays.
pub fn record_trace_with<S: TraceSink>(
    binary: &Binary,
    input: &Input,
    primary: &mut S,
) -> (EventTrace, ExecSummary) {
    let _span = cbsp_trace::span_labeled("sim/record", || binary.label());
    let mut rec = RecordSink::for_binary(binary);
    let summary = run(
        binary,
        input,
        &mut TeeSink {
            a: &mut rec,
            b: primary,
        },
    );
    (rec.finish(), summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_round_trips() {
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            i64::MAX,
            i64::MIN,
            1 << 40,
            -(1 << 40),
        ] {
            assert_eq!(unzigzag(zigzag(v)), v, "{v}");
        }
        // Small magnitudes map to small codes.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }

    #[test]
    fn varint_is_compact_for_small_values() {
        let mut buf = Vec::new();
        push_varint(&mut buf, 0x7F);
        assert_eq!(buf.len(), 1);
        push_varint(&mut buf, 0x80);
        assert_eq!(buf.len(), 3, "128 needs two bytes");
        push_varint(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 13, "u64::MAX needs ten bytes");
    }

    #[test]
    fn recording_counts_every_event() {
        use cbsp_program::{compile, CompileTarget, ProgramBuilder};
        let mut b = ProgramBuilder::new("t");
        let a = b.array_i32("a", 64);
        b.proc("main", |p| {
            p.loop_fixed(7, |body| {
                body.compute(10, |k| {
                    k.seq(a, 4);
                });
            });
        });
        let bin = compile(&b.finish(), CompileTarget::W32_O2);
        let mut sink = RecordSink::for_binary(&bin);
        let summary = run(&bin, &Input::test(), &mut sink);
        let trace = sink.finish();
        let markers: u64 = summary.proc_entries.iter().sum::<u64>()
            + summary.loop_entries.iter().sum::<u64>()
            + summary.loop_backs.iter().sum::<u64>();
        // block + access + marker events, plus one branch per loop back.
        let expected =
            summary.block_executions + summary.accesses + markers + summary.loop_backs[0];
        assert_eq!(trace.events, expected);
        assert!(trace.encoded_len() > 0);
        assert_eq!(trace.n_procs, bin.procs.len() as u32);
        assert_eq!(trace.n_loops, bin.loops.len() as u32);
    }
}
