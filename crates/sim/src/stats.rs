//! Simulation statistics.

use serde::{Deserialize, Serialize};

/// Hit/miss counts of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LevelStats {
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
}

impl LevelStats {
    /// Miss rate in `[0, 1]`; 0 when the level saw no accesses.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Aggregate statistics of a (full or partial) simulation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// Committed instructions.
    pub instructions: u64,
    /// Total cycles (instructions + memory stalls).
    pub cycles: u64,
    /// Data accesses issued.
    pub accesses: u64,
    /// Per-level cache statistics (L1, L2, L3).
    pub levels: [LevelStats; 3],
    /// Accesses serviced by DRAM.
    pub dram_accesses: u64,
    /// Dirty lines written back to DRAM.
    pub dram_writebacks: u64,
    /// Conditional branches resolved (0 when no predictor is modelled).
    pub branches: u64,
    /// Branch mispredictions (0 when no predictor is modelled).
    pub branch_mispredicts: u64,
}

impl SimStats {
    /// Cycles per instruction.
    ///
    /// Returns 0 for an empty run rather than dividing by zero.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// L1 misses per 1000 instructions (0 for an empty run).
    pub fn l1_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            1000.0 * self.levels[0].misses as f64 / self.instructions as f64
        }
    }

    /// DRAM accesses per 1000 instructions (0 for an empty run).
    pub fn dram_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            1000.0 * self.dram_accesses as f64 / self.instructions as f64
        }
    }
}

impl std::fmt::Display for SimStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} instructions, {} cycles (CPI {:.3})",
            self.instructions,
            self.cycles,
            self.cpi()
        )?;
        for (name, l) in [
            ("L1", &self.levels[0]),
            ("L2", &self.levels[1]),
            ("L3", &self.levels[2]),
        ] {
            writeln!(
                f,
                "  {name}: {} hits, {} misses ({:.2}% miss rate)",
                l.hits,
                l.misses,
                100.0 * l.miss_rate()
            )?;
        }
        write!(
            f,
            "  DRAM: {} accesses ({:.3} MPKI), {} writebacks",
            self.dram_accesses,
            self.dram_mpki(),
            self.dram_writebacks
        )?;
        if self.branches > 0 {
            write!(
                f,
                "\n  branches: {} ({} mispredicted, {:.2}%)",
                self.branches,
                self.branch_mispredicts,
                100.0 * self.branch_mispredicts as f64 / self.branches as f64
            )?;
        }
        Ok(())
    }
}

/// Per-interval slice of a sliced simulation: enough to compute the
/// interval's true CPI in context (warm caches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IntervalSim {
    /// Instructions committed in the interval.
    pub instructions: u64,
    /// Cycles spent in the interval.
    pub cycles: u64,
    /// Accesses issued in the interval.
    pub accesses: u64,
    /// Accesses that missed the L1 in the interval.
    pub l1_misses: u64,
    /// Accesses serviced by DRAM in the interval.
    pub dram_accesses: u64,
}

impl IntervalSim {
    /// Cycles per instruction of this interval (0 if empty).
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// L1 misses per 1000 instructions (0 if empty).
    pub fn l1_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            1000.0 * self.l1_misses as f64 / self.instructions as f64
        }
    }

    /// DRAM accesses per 1000 instructions (0 if empty).
    pub fn dram_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            1000.0 * self.dram_accesses as f64 / self.instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_handles_empty_runs() {
        assert_eq!(SimStats::default().cpi(), 0.0);
        assert_eq!(IntervalSim::default().cpi(), 0.0);
    }

    #[test]
    fn cpi_is_cycles_over_instructions() {
        let s = SimStats {
            instructions: 100,
            cycles: 250,
            ..SimStats::default()
        };
        assert_eq!(s.cpi(), 2.5);
    }

    #[test]
    fn display_is_informative() {
        let s = SimStats {
            instructions: 1000,
            cycles: 2500,
            accesses: 300,
            levels: [
                LevelStats {
                    hits: 200,
                    misses: 100,
                },
                LevelStats {
                    hits: 60,
                    misses: 40,
                },
                LevelStats {
                    hits: 30,
                    misses: 10,
                },
            ],
            dram_accesses: 10,
            dram_writebacks: 2,
            branches: 50,
            branch_mispredicts: 5,
        };
        let text = s.to_string();
        for needle in [
            "CPI 2.500",
            "L1",
            "33.33% miss rate",
            "MPKI",
            "mispredicted",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }

    #[test]
    fn miss_rate() {
        let l = LevelStats {
            hits: 75,
            misses: 25,
        };
        assert_eq!(l.miss_rate(), 0.25);
        assert_eq!(LevelStats::default().miss_rate(), 0.0);
    }
}
