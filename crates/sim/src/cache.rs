//! A set-associative cache with pluggable replacement.

use crate::config::{CacheLevelConfig, Replacement};
use crate::record::push_varint;
use crate::replay::{read_varint, TraceError};

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent; `evicted` is the dirty line address pushed
    /// out to make room, if any (clean evictions are dropped silently).
    Miss {
        /// Line-aligned address of a dirty victim, if one was evicted.
        evicted_dirty: Option<u64>,
    },
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU timestamp or FIFO insertion stamp.
    stamp: u64,
}

/// A single set-associative, write-back, write-allocate cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    ways: Vec<Way>, // sets × assoc, row-major by set
    assoc: usize,
    set_mask: u64,
    line_shift: u32,
    policy: Replacement,
    tick: u64,
    rng: u64,
    hits: u64,
    misses: u64,
    /// Line number of the most recently fetched line. Guaranteed
    /// resident at `last_idx`: every mutation of `ways` goes through
    /// `fetch`, and `fetch` always leaves the fetched line in place and
    /// the memo pointing at it.
    last_line: u64,
    /// Flat index into `ways` of `last_line`; `usize::MAX` until the
    /// first fetch (the line-number space is the full `u64` range, so
    /// the index carries the validity sentinel).
    last_idx: usize,
}

impl Cache {
    /// Builds an empty cache from a level configuration.
    pub fn new(config: &CacheLevelConfig, policy: Replacement) -> Self {
        let sets = config.sets();
        let assoc = config.associativity as usize;
        Cache {
            ways: vec![Way::default(); sets as usize * assoc],
            assoc,
            set_mask: sets - 1,
            line_shift: config.line_bytes.trailing_zeros(),
            policy,
            tick: 0,
            rng: 0x9E37_79B9_7F4A_7C15,
            hits: 0,
            misses: 0,
            last_line: 0,
            last_idx: usize::MAX,
        }
    }

    /// Hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    #[inline]
    fn set_range(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        (set * self.assoc, line)
    }

    /// Accesses `addr`; on a miss the line is allocated (write-allocate
    /// for both reads and writes, as in CMP$im's write-back caches).
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        self.fetch(addr, is_write, true)
    }

    /// Core lookup/allocate machinery. `demand` controls whether the
    /// hit/miss counters see this fetch (prefetches and write-back
    /// fills are not demand traffic).
    fn fetch(&mut self, addr: u64, is_write: bool, demand: bool) -> AccessOutcome {
        self.tick += 1;
        let line = addr >> self.line_shift;

        // Same-line fast path: sequential walks touch the same cache
        // line for `line_bytes / element` consecutive accesses, so a
        // one-entry memo of the last fetched line short-circuits the
        // set scan for the bulk of the replay inner loop. The updates
        // below mirror the slow hit path exactly (LRU stamp, dirty
        // bit, demand counter), so results are bit-identical.
        if line == self.last_line && self.last_idx != usize::MAX {
            let w = &mut self.ways[self.last_idx];
            if self.policy == Replacement::Lru {
                w.stamp = self.tick;
            }
            w.dirty |= is_write;
            if demand {
                self.hits += 1;
            }
            return AccessOutcome::Hit;
        }

        let (base, _) = self.set_range(addr);
        let set = &mut self.ways[base..base + self.assoc];

        // Lookup.
        for (i, w) in set.iter_mut().enumerate() {
            if w.valid && w.tag == line {
                if self.policy == Replacement::Lru {
                    w.stamp = self.tick;
                }
                w.dirty |= is_write;
                if demand {
                    self.hits += 1;
                }
                self.last_line = line;
                self.last_idx = base + i;
                return AccessOutcome::Hit;
            }
        }
        if demand {
            self.misses += 1;
        }

        // Victim selection: first invalid way, else policy choice.
        let victim_idx = if let Some(i) = set.iter().position(|w| !w.valid) {
            i
        } else {
            match self.policy {
                Replacement::Lru | Replacement::Fifo => set
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.stamp)
                    .map(|(i, _)| i)
                    .expect("associativity >= 1"),
                Replacement::Random => {
                    self.rng = crate::xorshift(self.rng);
                    (self.rng % self.assoc as u64) as usize
                }
            }
        };

        let victim = set[victim_idx];
        let evicted_dirty = if victim.valid && victim.dirty {
            Some(victim.tag << self.line_shift)
        } else {
            None
        };
        set[victim_idx] = Way {
            tag: line,
            valid: true,
            dirty: is_write,
            stamp: self.tick,
        };
        self.last_line = line;
        self.last_idx = base + victim_idx;
        AccessOutcome::Miss { evicted_dirty }
    }

    /// Installs a line written back from an upper level (dirty fill
    /// without a demand access). Returns a dirty victim if one was
    /// displaced.
    pub fn fill_dirty(&mut self, addr: u64) -> Option<u64> {
        match self.fetch(addr, true, false) {
            AccessOutcome::Hit => None,
            AccessOutcome::Miss { evicted_dirty } => evicted_dirty,
        }
    }

    /// Installs a clean line without demand accounting (prefetch fill).
    /// Returns a dirty victim if one was displaced.
    pub fn fill_clean(&mut self, addr: u64) -> Option<u64> {
        match self.fetch(addr, false, false) {
            AccessOutcome::Hit => None,
            AccessOutcome::Miss { evicted_dirty } => evicted_dirty,
        }
    }

    /// Appends a compact encoding of the replacement-relevant state —
    /// resident lines, their recency/insertion order, dirty bits, and
    /// the replacement RNG — to `out`.
    ///
    /// Stamps are compressed to per-set *ranks*: within a set, stamps
    /// are distinct (every assignment uses a fresh tick), and only
    /// their relative order ever matters — both `min_by_key` victim
    /// selection and LRU stamp refresh compare stamps within one set.
    /// Hit/miss counters and the same-line memo are deliberately not
    /// captured: a restored cache replays future accesses
    /// bit-identically but reports counters from zero.
    ///
    /// Layout: `rng (8 B LE) · varint resident-count · per resident way
    /// in flat-index order: varint idx-delta, varint line, byte
    /// (rank << 1 | dirty)`.
    pub(crate) fn pack_state(&self, out: &mut Vec<u8>) {
        debug_assert!(self.assoc <= 128, "rank must fit in 7 bits");
        out.extend_from_slice(&self.rng.to_le_bytes());
        let resident = self.ways.iter().filter(|w| w.valid).count();
        push_varint(out, resident as u64);
        let mut prev = 0u64;
        for base in (0..self.ways.len()).step_by(self.assoc) {
            let set = &self.ways[base..base + self.assoc];
            for (i, w) in set.iter().enumerate() {
                if !w.valid {
                    continue;
                }
                let rank = set.iter().filter(|o| o.valid && o.stamp < w.stamp).count();
                let idx = (base + i) as u64;
                push_varint(out, idx - prev);
                prev = idx;
                push_varint(out, w.tag);
                out.push(((rank as u8) << 1) | u8::from(w.dirty));
            }
        }
    }

    /// Restores [`Cache::pack_state`] output into a freshly built cache
    /// of the same geometry, returning the position after the encoding.
    /// Restored stamps are the packed ranks and `tick` restarts at
    /// `assoc` (above every rank), so stamp order — and therefore every
    /// future hit, victim choice, and RNG draw — matches the packing
    /// cache exactly.
    ///
    /// # Errors
    ///
    /// [`TraceError::CorruptState`] when the encoding is structurally
    /// invalid for this geometry (slot out of range, duplicate slot,
    /// rank ≥ associativity, or a line that does not map to its slot's
    /// set); truncation and varint defects surface as the underlying
    /// [`TraceError`] variants.
    pub(crate) fn unpack_state(&mut self, bytes: &[u8], pos: usize) -> Result<usize, TraceError> {
        let rng = bytes
            .get(pos..pos + 8)
            .ok_or(TraceError::UnexpectedEof { offset: pos })?;
        self.rng = u64::from_le_bytes(rng.try_into().expect("8-byte slice"));
        let (resident, mut pos) = read_varint(bytes, pos + 8)?;
        if resident > self.ways.len() as u64 {
            return Err(TraceError::CorruptState);
        }
        let mut prev = 0u64;
        for entry in 0..resident {
            let (delta, p) = read_varint(bytes, pos)?;
            let (line, p) = read_varint(bytes, p)?;
            let &flags = bytes
                .get(p)
                .ok_or(TraceError::UnexpectedEof { offset: p })?;
            pos = p + 1;
            let flat = if entry == 0 {
                delta
            } else if delta == 0 {
                return Err(TraceError::CorruptState); // duplicate slot
            } else {
                prev.checked_add(delta).ok_or(TraceError::CorruptState)?
            };
            prev = flat;
            let idx = usize::try_from(flat)
                .ok()
                .filter(|&i| i < self.ways.len())
                .ok_or(TraceError::CorruptState)?;
            let rank = u64::from(flags >> 1);
            if rank >= self.assoc as u64 || (line & self.set_mask) as usize != idx / self.assoc {
                return Err(TraceError::CorruptState);
            }
            self.ways[idx] = Way {
                tag: line,
                valid: true,
                dirty: flags & 1 == 1,
                stamp: rank,
            };
        }
        self.tick = self.assoc as u64;
        self.hits = 0;
        self.misses = 0;
        self.last_line = 0;
        self.last_idx = usize::MAX;
        Ok(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(assoc: u32) -> Cache {
        // 4 sets × assoc ways × 64B lines.
        let cfg = CacheLevelConfig {
            capacity_bytes: u64::from(assoc) * 4 * 64,
            associativity: assoc,
            line_bytes: 64,
            hit_latency: 1,
        };
        Cache::new(&cfg, Replacement::Lru)
    }

    #[test]
    fn second_access_hits() {
        let mut c = tiny(2);
        assert!(matches!(
            c.access(0x1000, false),
            AccessOutcome::Miss { .. }
        ));
        assert_eq!(c.access(0x1000, false), AccessOutcome::Hit);
        assert_eq!(c.access(0x103F, false), AccessOutcome::Hit, "same line");
        assert!(matches!(
            c.access(0x1040, false),
            AccessOutcome::Miss { .. }
        ));
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2);
        // Three lines mapping to set 0 (stride = sets × line = 256).
        let (a, b, d) = (0x0u64, 0x100u64, 0x200u64);
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a now MRU
        c.access(d, false); // evicts b
        assert_eq!(c.access(a, false), AccessOutcome::Hit);
        assert!(matches!(c.access(b, false), AccessOutcome::Miss { .. }));
    }

    #[test]
    fn dirty_eviction_reports_victim_address() {
        let mut c = tiny(1);
        c.access(0x0, true); // dirty
        let out = c.access(0x100, false); // same set, evicts dirty 0x0
        assert_eq!(
            out,
            AccessOutcome::Miss {
                evicted_dirty: Some(0x0)
            }
        );
        // Clean eviction reports nothing.
        let out = c.access(0x200, false);
        assert_eq!(
            out,
            AccessOutcome::Miss {
                evicted_dirty: None
            }
        );
    }

    #[test]
    fn fifo_ignores_recency() {
        let cfg = CacheLevelConfig {
            capacity_bytes: 2 * 4 * 64,
            associativity: 2,
            line_bytes: 64,
            hit_latency: 1,
        };
        let mut c = Cache::new(&cfg, Replacement::Fifo);
        let (a, b, d) = (0x0u64, 0x100u64, 0x200u64);
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // touch a — irrelevant under FIFO
        c.access(d, false); // evicts a (oldest insertion)
        assert!(matches!(c.access(a, false), AccessOutcome::Miss { .. }));
    }

    /// Scan-only reference model: the pre-memoization `fetch`, kept as
    /// the oracle that the same-line fast path must match bit-for-bit
    /// (outcome, counters, stamps, dirty bits, RNG draws).
    struct RefCache {
        ways: Vec<Way>,
        assoc: usize,
        set_mask: u64,
        line_shift: u32,
        policy: Replacement,
        tick: u64,
        rng: u64,
        hits: u64,
        misses: u64,
    }

    impl RefCache {
        fn new(config: &CacheLevelConfig, policy: Replacement) -> Self {
            let sets = config.sets();
            let assoc = config.associativity as usize;
            RefCache {
                ways: vec![Way::default(); sets as usize * assoc],
                assoc,
                set_mask: sets - 1,
                line_shift: config.line_bytes.trailing_zeros(),
                policy,
                tick: 0,
                rng: 0x9E37_79B9_7F4A_7C15,
                hits: 0,
                misses: 0,
            }
        }

        fn fetch(&mut self, addr: u64, is_write: bool, demand: bool) -> AccessOutcome {
            self.tick += 1;
            let line = addr >> self.line_shift;
            let base = (line & self.set_mask) as usize * self.assoc;
            let set = &mut self.ways[base..base + self.assoc];
            for w in set.iter_mut() {
                if w.valid && w.tag == line {
                    if self.policy == Replacement::Lru {
                        w.stamp = self.tick;
                    }
                    w.dirty |= is_write;
                    if demand {
                        self.hits += 1;
                    }
                    return AccessOutcome::Hit;
                }
            }
            if demand {
                self.misses += 1;
            }
            let victim_idx = if let Some(i) = set.iter().position(|w| !w.valid) {
                i
            } else {
                match self.policy {
                    Replacement::Lru | Replacement::Fifo => set
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, w)| w.stamp)
                        .map(|(i, _)| i)
                        .expect("associativity >= 1"),
                    Replacement::Random => {
                        self.rng = crate::xorshift(self.rng);
                        (self.rng % self.assoc as u64) as usize
                    }
                }
            };
            let victim = set[victim_idx];
            let evicted_dirty = if victim.valid && victim.dirty {
                Some(victim.tag << self.line_shift)
            } else {
                None
            };
            set[victim_idx] = Way {
                tag: line,
                valid: true,
                dirty: is_write,
                stamp: self.tick,
            };
            AccessOutcome::Miss { evicted_dirty }
        }
    }

    #[test]
    fn memoized_fetch_is_bit_identical_to_scan_only_reference() {
        let cfg = CacheLevelConfig {
            capacity_bytes: 4 * 4 * 64, // 4 sets × 4 ways × 64 B
            associativity: 4,
            line_bytes: 64,
            hit_latency: 1,
        };
        for policy in [Replacement::Lru, Replacement::Fifo, Replacement::Random] {
            let mut fast = Cache::new(&cfg, policy);
            let mut slow = RefCache::new(&cfg, policy);
            // Deterministic mix of sequential runs (exercising the
            // same-line path), strided conflicts, and fills.
            let mut x = 0x1234_5678_9ABC_DEFFu64;
            for step in 0..20_000u64 {
                x = crate::xorshift(x);
                let (addr, is_write) = match step % 16 {
                    // Sequential walk: 8-byte elements through one line.
                    0..=7 => ((step / 16) * 64 + (step % 8) * 8, step % 3 == 0),
                    // Conflict misses across sets.
                    8..=11 => (x % (1 << 14), x & 1 == 0),
                    // Revisit a recent line.
                    _ => ((step / 32) * 64, false),
                };
                let demand = step % 7 != 0;
                assert_eq!(
                    fast.fetch(addr, is_write, demand),
                    slow.fetch(addr, is_write, demand),
                    "{policy:?} step {step} addr {addr:#x}"
                );
            }
            assert_eq!(fast.hits, slow.hits, "{policy:?} hits");
            assert_eq!(fast.misses, slow.misses, "{policy:?} misses");
            assert_eq!(fast.tick, slow.tick);
            assert_eq!(fast.rng, slow.rng, "{policy:?} identical RNG draws");
            for (a, b) in fast.ways.iter().zip(slow.ways.iter()) {
                assert_eq!(
                    (a.tag, a.valid, a.dirty, a.stamp),
                    (b.tag, b.valid, b.dirty, b.stamp)
                );
            }
            assert!(fast.hits > 1_000, "pattern must exercise hits");
            assert!(fast.misses > 100, "pattern must exercise misses");
        }
    }

    #[test]
    fn packed_state_restores_and_replays_identically() {
        let cfg = CacheLevelConfig {
            capacity_bytes: 8 * 4 * 64, // 8 sets × 4 ways × 64 B
            associativity: 4,
            line_bytes: 64,
            hit_latency: 1,
        };
        for policy in [Replacement::Lru, Replacement::Fifo, Replacement::Random] {
            let mut original = Cache::new(&cfg, policy);
            let mut x = 0xDEAD_BEEF_0BAD_F00Du64;
            for step in 0..5_000u64 {
                x = crate::xorshift(x);
                original.fetch(x % (1 << 13), x & 2 == 0, step % 5 != 0);
            }
            let mut packed = Vec::new();
            original.pack_state(&mut packed);
            let mut restored = Cache::new(&cfg, policy);
            let end = restored
                .unpack_state(&packed, 0)
                .expect("own encoding decodes");
            assert_eq!(end, packed.len(), "encoding is self-delimiting");
            assert_eq!(restored.hits(), 0, "counters restart");
            assert_eq!(restored.misses(), 0);
            // Every future access — outcome, victim, RNG draw — must
            // match the cache that packed the state.
            for step in 0..5_000u64 {
                x = crate::xorshift(x);
                let addr = x % (1 << 13);
                assert_eq!(
                    original.fetch(addr, x & 2 == 0, true),
                    restored.fetch(addr, x & 2 == 0, true),
                    "{policy:?} step {step} addr {addr:#x}"
                );
            }
            assert_eq!(original.rng, restored.rng, "{policy:?} RNG tracks");
        }
    }

    #[test]
    fn corrupt_packed_state_is_rejected() {
        let mut c = tiny(2);
        for i in 0..64u64 {
            c.access(i * 64, i % 2 == 0);
        }
        let mut packed = Vec::new();
        c.pack_state(&mut packed);
        let mut fresh = tiny(2);
        // Truncations at every length must error, never panic.
        for cut in 0..packed.len() {
            assert!(
                fresh.unpack_state(&packed[..cut], 0).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
        // A line that does not map to its slot's set is structural
        // corruption: rewrite the first entry's line varint (the bytes
        // after rng + count + idx-delta) to point at the wrong set.
        let mut bad = packed.clone();
        bad[10] ^= 0b11; // flip low set bits of the first entry's line
        assert_eq!(
            tiny(2).unpack_state(&bad, 0).expect_err("wrong set"),
            TraceError::CorruptState
        );
    }

    #[test]
    fn working_set_larger_than_cache_misses_mostly() {
        let mut c = tiny(2); // 512 B total
        let mut misses = 0;
        for round in 0..10 {
            for i in 0..64u64 {
                if matches!(c.access(i * 64, false), AccessOutcome::Miss { .. }) {
                    misses += 1;
                }
            }
            let _ = round;
        }
        assert_eq!(misses, 640, "4 KB streamed through 512 B: all misses");
    }
}
