//! A set-associative cache with pluggable replacement.

use crate::config::{CacheLevelConfig, Replacement};

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent; `evicted` is the dirty line address pushed
    /// out to make room, if any (clean evictions are dropped silently).
    Miss {
        /// Line-aligned address of a dirty victim, if one was evicted.
        evicted_dirty: Option<u64>,
    },
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU timestamp or FIFO insertion stamp.
    stamp: u64,
}

/// A single set-associative, write-back, write-allocate cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    ways: Vec<Way>, // sets × assoc, row-major by set
    assoc: usize,
    set_mask: u64,
    line_shift: u32,
    policy: Replacement,
    tick: u64,
    rng: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds an empty cache from a level configuration.
    pub fn new(config: &CacheLevelConfig, policy: Replacement) -> Self {
        let sets = config.sets();
        let assoc = config.associativity as usize;
        Cache {
            ways: vec![Way::default(); sets as usize * assoc],
            assoc,
            set_mask: sets - 1,
            line_shift: config.line_bytes.trailing_zeros(),
            policy,
            tick: 0,
            rng: 0x9E37_79B9_7F4A_7C15,
            hits: 0,
            misses: 0,
        }
    }

    /// Hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    #[inline]
    fn set_range(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        (set * self.assoc, line)
    }

    /// Accesses `addr`; on a miss the line is allocated (write-allocate
    /// for both reads and writes, as in CMP$im's write-back caches).
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        self.fetch(addr, is_write, true)
    }

    /// Core lookup/allocate machinery. `demand` controls whether the
    /// hit/miss counters see this fetch (prefetches and write-back
    /// fills are not demand traffic).
    fn fetch(&mut self, addr: u64, is_write: bool, demand: bool) -> AccessOutcome {
        self.tick += 1;
        let (base, line) = self.set_range(addr);
        let set = &mut self.ways[base..base + self.assoc];

        // Lookup.
        for w in set.iter_mut() {
            if w.valid && w.tag == line {
                if self.policy == Replacement::Lru {
                    w.stamp = self.tick;
                }
                w.dirty |= is_write;
                if demand {
                    self.hits += 1;
                }
                return AccessOutcome::Hit;
            }
        }
        if demand {
            self.misses += 1;
        }

        // Victim selection: first invalid way, else policy choice.
        let victim_idx = if let Some(i) = set.iter().position(|w| !w.valid) {
            i
        } else {
            match self.policy {
                Replacement::Lru | Replacement::Fifo => set
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.stamp)
                    .map(|(i, _)| i)
                    .expect("associativity >= 1"),
                Replacement::Random => {
                    self.rng = crate::xorshift(self.rng);
                    (self.rng % self.assoc as u64) as usize
                }
            }
        };

        let victim = set[victim_idx];
        let evicted_dirty = if victim.valid && victim.dirty {
            Some(victim.tag << self.line_shift)
        } else {
            None
        };
        set[victim_idx] = Way {
            tag: line,
            valid: true,
            dirty: is_write,
            stamp: self.tick,
        };
        AccessOutcome::Miss { evicted_dirty }
    }

    /// Installs a line written back from an upper level (dirty fill
    /// without a demand access). Returns a dirty victim if one was
    /// displaced.
    pub fn fill_dirty(&mut self, addr: u64) -> Option<u64> {
        match self.fetch(addr, true, false) {
            AccessOutcome::Hit => None,
            AccessOutcome::Miss { evicted_dirty } => evicted_dirty,
        }
    }

    /// Installs a clean line without demand accounting (prefetch fill).
    /// Returns a dirty victim if one was displaced.
    pub fn fill_clean(&mut self, addr: u64) -> Option<u64> {
        match self.fetch(addr, false, false) {
            AccessOutcome::Hit => None,
            AccessOutcome::Miss { evicted_dirty } => evicted_dirty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(assoc: u32) -> Cache {
        // 4 sets × assoc ways × 64B lines.
        let cfg = CacheLevelConfig {
            capacity_bytes: u64::from(assoc) * 4 * 64,
            associativity: assoc,
            line_bytes: 64,
            hit_latency: 1,
        };
        Cache::new(&cfg, Replacement::Lru)
    }

    #[test]
    fn second_access_hits() {
        let mut c = tiny(2);
        assert!(matches!(
            c.access(0x1000, false),
            AccessOutcome::Miss { .. }
        ));
        assert_eq!(c.access(0x1000, false), AccessOutcome::Hit);
        assert_eq!(c.access(0x103F, false), AccessOutcome::Hit, "same line");
        assert!(matches!(
            c.access(0x1040, false),
            AccessOutcome::Miss { .. }
        ));
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2);
        // Three lines mapping to set 0 (stride = sets × line = 256).
        let (a, b, d) = (0x0u64, 0x100u64, 0x200u64);
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a now MRU
        c.access(d, false); // evicts b
        assert_eq!(c.access(a, false), AccessOutcome::Hit);
        assert!(matches!(c.access(b, false), AccessOutcome::Miss { .. }));
    }

    #[test]
    fn dirty_eviction_reports_victim_address() {
        let mut c = tiny(1);
        c.access(0x0, true); // dirty
        let out = c.access(0x100, false); // same set, evicts dirty 0x0
        assert_eq!(
            out,
            AccessOutcome::Miss {
                evicted_dirty: Some(0x0)
            }
        );
        // Clean eviction reports nothing.
        let out = c.access(0x200, false);
        assert_eq!(
            out,
            AccessOutcome::Miss {
                evicted_dirty: None
            }
        );
    }

    #[test]
    fn fifo_ignores_recency() {
        let cfg = CacheLevelConfig {
            capacity_bytes: 2 * 4 * 64,
            associativity: 2,
            line_bytes: 64,
            hit_latency: 1,
        };
        let mut c = Cache::new(&cfg, Replacement::Fifo);
        let (a, b, d) = (0x0u64, 0x100u64, 0x200u64);
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // touch a — irrelevant under FIFO
        c.access(d, false); // evicts a (oldest insertion)
        assert!(matches!(c.access(a, false), AccessOutcome::Miss { .. }));
    }

    #[test]
    fn working_set_larger_than_cache_misses_mostly() {
        let mut c = tiny(2); // 512 B total
        let mut misses = 0;
        for round in 0..10 {
            for i in 0..64u64 {
                if matches!(c.access(i * 64, false), AccessOutcome::Miss { .. }) {
                    misses += 1;
                }
            }
            let _ = round;
        }
        assert_eq!(misses, 640, "4 KB streamed through 512 B: all misses");
    }
}
