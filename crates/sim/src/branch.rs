//! A gshare branch predictor.
//!
//! The paper's CMP$im configuration models only the memory system; this
//! optional predictor adds a control-flow dimension to the simulated
//! design space (used by the architecture-sweep experiments). Classic
//! gshare (McFarling, 1993): a table of 2-bit saturating counters
//! indexed by `pc ⊕ global-history`.

use serde::{Deserialize, Serialize};

/// Configuration of the branch predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchConfig {
    /// log2 of the counter-table size.
    pub table_bits: u32,
    /// Global-history length in bits (≤ `table_bits`).
    pub history_bits: u32,
    /// Cycles charged per mispredicted branch.
    pub mispredict_penalty: u64,
}

impl Default for BranchConfig {
    fn default() -> Self {
        BranchConfig {
            table_bits: 12,
            history_bits: 10,
            mispredict_penalty: 12,
        }
    }
}

/// A gshare predictor instance.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<u8>,
    history: u64,
    history_mask: u64,
    index_mask: u64,
    penalty: u64,
    branches: u64,
    mispredicts: u64,
}

impl Gshare {
    /// Builds a predictor from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if `table_bits` is 0 or greater than 28.
    pub fn new(config: &BranchConfig) -> Self {
        assert!(
            (1..=28).contains(&config.table_bits),
            "table_bits must be in 1..=28"
        );
        let size = 1usize << config.table_bits;
        Gshare {
            table: vec![1; size], // weakly not-taken
            history: 0,
            history_mask: (1u64 << config.history_bits.min(config.table_bits)) - 1,
            index_mask: (size - 1) as u64,
            penalty: config.mispredict_penalty,
            branches: 0,
            mispredicts: 0,
        }
    }

    /// Predicts and trains on one branch; returns the cycle penalty
    /// (0 on a correct prediction).
    #[inline]
    pub fn resolve(&mut self, branch: u64, taken: bool) -> u64 {
        let index = ((branch ^ (branch >> 17) ^ (self.history & self.history_mask))
            & self.index_mask) as usize;
        let counter = &mut self.table[index];
        let predicted_taken = *counter >= 2;
        if taken && *counter < 3 {
            *counter += 1;
        } else if !taken && *counter > 0 {
            *counter -= 1;
        }
        self.history = (self.history << 1) | u64::from(taken);
        self.branches += 1;
        if predicted_taken != taken {
            self.mispredicts += 1;
            self.penalty
        } else {
            0
        }
    }

    /// Branches resolved so far.
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Mispredictions so far.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Misprediction rate in `[0, 1]` (0 before any branch).
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_an_always_taken_branch() {
        let mut g = Gshare::new(&BranchConfig::default());
        let mut penalties = 0u64;
        for _ in 0..1000 {
            penalties += g.resolve(0x400100, true);
        }
        // Warmup: while the global history register fills, each new
        // index starts at weakly-not-taken; afterwards, perfect.
        assert!(g.mispredict_rate() < 0.02, "rate {}", g.mispredict_rate());
        assert!(penalties <= 13 * 12, "only warmup penalties: {penalties}");
    }

    #[test]
    fn learns_loop_exit_patterns_via_history() {
        // taken^7, not-taken, repeated: with history the exit becomes
        // predictable; accuracy must be far above the 7/8 baseline of a
        // history-less counter.
        let mut g = Gshare::new(&BranchConfig::default());
        for _ in 0..2000 {
            for i in 0..8 {
                g.resolve(0x400200, i < 7);
            }
        }
        assert!(
            g.mispredict_rate() < 0.02,
            "history should capture the pattern: rate {}",
            g.mispredict_rate()
        );
    }

    #[test]
    fn random_branches_stay_hard() {
        let mut g = Gshare::new(&BranchConfig::default());
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            g.resolve(0x400300, x & 1 == 0);
        }
        assert!(
            g.mispredict_rate() > 0.35,
            "a coin flip cannot be predicted: rate {}",
            g.mispredict_rate()
        );
    }

    #[test]
    fn distinct_branches_do_not_interfere_much() {
        let mut g = Gshare::new(&BranchConfig::default());
        for _ in 0..4000 {
            g.resolve(0x1000, true);
            g.resolve(0x2000, false);
        }
        assert!(g.mispredict_rate() < 0.02, "rate {}", g.mispredict_rate());
        assert_eq!(g.branches(), 8000);
    }

    #[test]
    #[should_panic(expected = "table_bits")]
    fn rejects_zero_table() {
        let _ = Gshare::new(&BranchConfig {
            table_bits: 0,
            history_bits: 0,
            mispredict_penalty: 10,
        });
    }
}
