//! A gshare branch predictor.
//!
//! The paper's CMP$im configuration models only the memory system; this
//! optional predictor adds a control-flow dimension to the simulated
//! design space (used by the architecture-sweep experiments). Classic
//! gshare (McFarling, 1993): a table of 2-bit saturating counters
//! indexed by `pc ⊕ global-history`.

use serde::{Deserialize, Serialize};

/// Configuration of the branch predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchConfig {
    /// log2 of the counter-table size.
    pub table_bits: u32,
    /// Global-history length in bits (≤ `table_bits`).
    pub history_bits: u32,
    /// Cycles charged per mispredicted branch.
    pub mispredict_penalty: u64,
}

impl Default for BranchConfig {
    fn default() -> Self {
        BranchConfig {
            table_bits: 12,
            history_bits: 10,
            mispredict_penalty: 12,
        }
    }
}

/// A gshare predictor instance.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<u8>,
    history: u64,
    history_mask: u64,
    index_mask: u64,
    penalty: u64,
    branches: u64,
    mispredicts: u64,
}

impl Gshare {
    /// Builds a predictor from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if `table_bits` is 0 or greater than 28.
    pub fn new(config: &BranchConfig) -> Self {
        assert!(
            (1..=28).contains(&config.table_bits),
            "table_bits must be in 1..=28"
        );
        let size = 1usize << config.table_bits;
        Gshare {
            table: vec![1; size], // weakly not-taken
            history: 0,
            history_mask: (1u64 << config.history_bits.min(config.table_bits)) - 1,
            index_mask: (size - 1) as u64,
            penalty: config.mispredict_penalty,
            branches: 0,
            mispredicts: 0,
        }
    }

    /// Predicts and trains on one branch; returns the cycle penalty
    /// (0 on a correct prediction).
    #[inline]
    pub fn resolve(&mut self, branch: u64, taken: bool) -> u64 {
        let index = ((branch ^ (branch >> 17) ^ (self.history & self.history_mask))
            & self.index_mask) as usize;
        let counter = &mut self.table[index];
        let predicted_taken = *counter >= 2;
        if taken && *counter < 3 {
            *counter += 1;
        } else if !taken && *counter > 0 {
            *counter -= 1;
        }
        self.history = (self.history << 1) | u64::from(taken);
        self.branches += 1;
        if predicted_taken != taken {
            self.mispredicts += 1;
            self.penalty
        } else {
            0
        }
    }

    /// Branches resolved so far.
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Mispredictions so far.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Misprediction rate in `[0, 1]` (0 before any branch).
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Appends the predictor state — the full (unmasked) history
    /// register and the counter table at 2 bits per entry — to `out`.
    /// Branch/mispredict counters are not captured; a restored
    /// predictor resolves future branches identically but counts from
    /// zero.
    pub(crate) fn pack_state(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.history.to_le_bytes());
        for chunk in self.table.chunks(4) {
            let mut b = 0u8;
            for (i, &c) in chunk.iter().enumerate() {
                b |= c << (2 * i);
            }
            out.push(b);
        }
    }

    /// Restores [`Gshare::pack_state`] output into a predictor of the
    /// same configuration, returning the position after the encoding.
    ///
    /// # Errors
    ///
    /// [`crate::replay::TraceError::UnexpectedEof`] if the buffer is
    /// too short for this table size.
    pub(crate) fn unpack_state(
        &mut self,
        bytes: &[u8],
        pos: usize,
    ) -> Result<usize, crate::replay::TraceError> {
        use crate::replay::TraceError;
        let hist = bytes
            .get(pos..pos + 8)
            .ok_or(TraceError::UnexpectedEof { offset: pos })?;
        self.history = u64::from_le_bytes(hist.try_into().expect("8-byte slice"));
        let packed = self.table.len().div_ceil(4);
        let body = bytes
            .get(pos + 8..pos + 8 + packed)
            .ok_or(TraceError::UnexpectedEof { offset: pos + 8 })?;
        for (i, slot) in self.table.iter_mut().enumerate() {
            *slot = (body[i / 4] >> (2 * (i % 4))) & 0b11;
        }
        self.branches = 0;
        self.mispredicts = 0;
        Ok(pos + 8 + packed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_an_always_taken_branch() {
        let mut g = Gshare::new(&BranchConfig::default());
        let mut penalties = 0u64;
        for _ in 0..1000 {
            penalties += g.resolve(0x400100, true);
        }
        // Warmup: while the global history register fills, each new
        // index starts at weakly-not-taken; afterwards, perfect.
        assert!(g.mispredict_rate() < 0.02, "rate {}", g.mispredict_rate());
        assert!(penalties <= 13 * 12, "only warmup penalties: {penalties}");
    }

    #[test]
    fn learns_loop_exit_patterns_via_history() {
        // taken^7, not-taken, repeated: with history the exit becomes
        // predictable; accuracy must be far above the 7/8 baseline of a
        // history-less counter.
        let mut g = Gshare::new(&BranchConfig::default());
        for _ in 0..2000 {
            for i in 0..8 {
                g.resolve(0x400200, i < 7);
            }
        }
        assert!(
            g.mispredict_rate() < 0.02,
            "history should capture the pattern: rate {}",
            g.mispredict_rate()
        );
    }

    #[test]
    fn random_branches_stay_hard() {
        let mut g = Gshare::new(&BranchConfig::default());
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            g.resolve(0x400300, x & 1 == 0);
        }
        assert!(
            g.mispredict_rate() > 0.35,
            "a coin flip cannot be predicted: rate {}",
            g.mispredict_rate()
        );
    }

    #[test]
    fn distinct_branches_do_not_interfere_much() {
        let mut g = Gshare::new(&BranchConfig::default());
        for _ in 0..4000 {
            g.resolve(0x1000, true);
            g.resolve(0x2000, false);
        }
        assert!(g.mispredict_rate() < 0.02, "rate {}", g.mispredict_rate());
        assert_eq!(g.branches(), 8000);
    }

    #[test]
    fn packed_state_restores_and_predicts_identically() {
        let mut original = Gshare::new(&BranchConfig::default());
        let mut x = 0x0123_4567_89AB_CDEFu64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            original.resolve(x & 0xFFFF, x & 4 == 0);
        }
        let mut packed = Vec::new();
        original.pack_state(&mut packed);
        let mut restored = Gshare::new(&BranchConfig::default());
        let end = restored
            .unpack_state(&packed, 0)
            .expect("own encoding decodes");
        assert_eq!(end, packed.len(), "encoding is self-delimiting");
        assert_eq!(restored.branches(), 0, "counters restart");
        // Every future resolution must return the same penalty.
        for step in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            assert_eq!(
                original.resolve(x & 0xFFFF, x & 4 == 0),
                restored.resolve(x & 0xFFFF, x & 4 == 0),
                "divergence at step {step}"
            );
        }
        // Truncations error, never panic.
        for cut in [0, 7, 8, packed.len() - 1] {
            assert!(Gshare::new(&BranchConfig::default())
                .unpack_state(&packed[..cut], 0)
                .is_err());
        }
    }

    #[test]
    #[should_panic(expected = "table_bits")]
    fn rejects_zero_table() {
        let _ = Gshare::new(&BranchConfig {
            table_bits: 0,
            history_bits: 0,
            mispredict_penalty: 10,
        });
    }
}
