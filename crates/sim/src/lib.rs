//! # cbsp-sim — a CMP$im-like performance simulator
//!
//! The simulator the paper evaluates with (§4): an in-order core
//! attached to a three-level non-inclusive write-back data-cache
//! hierarchy (Table 1: 32 KB 2-way L1, 512 KB 8-way L2, 1 MB 16-way L3,
//! 64 B lines, LRU, 3/14/35-cycle hit latencies, 250-cycle DRAM).
//!
//! Cycles = instructions + Σ per-access latency of the servicing level.
//!
//! Three drivers:
//! * [`simulate_full`] — whole-program ground truth;
//! * [`simulate_fli_sliced`] — the same run, reported per fixed-length
//!   interval (for per-binary SimPoint evaluation);
//! * [`simulate_marker_sliced`] — the same run, reported per mapped
//!   marker-bounded interval (for cross-binary SimPoint evaluation).
//!
//! ## Example
//!
//! ```
//! use cbsp_program::{workloads, compile, CompileTarget, Input, Scale};
//! use cbsp_sim::{simulate_full, MemoryConfig};
//!
//! let prog = workloads::by_name("mcf").expect("in suite").build(Scale::Test);
//! let bin = compile(&prog, CompileTarget::W64_O2);
//! let stats = simulate_full(&bin, &Input::test(), &MemoryConfig::table1());
//! assert!(stats.cpi() > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod record;
pub mod regions;
pub mod replay;
pub mod runner;
pub mod slice;
pub mod stats;

pub use branch::{BranchConfig, Gshare};
pub use cache::{AccessOutcome, Cache};
pub use config::{CacheLevelConfig, MemoryConfig, Replacement};
pub use hierarchy::{Hierarchy, ServicedBy};
pub use record::{record_trace, record_trace_with, EventTrace, RecordSink};
pub use regions::{
    estimate_cpi_from_regions, simulate_regions, simulate_regions_all, simulate_regions_with,
    RegionStats, Warmup,
};
pub use replay::{
    replay, replay_bytes, replay_fli_sliced, replay_full, replay_marker_sliced, replay_regions,
    replay_regions_with, TraceError,
};
pub use runner::{
    simulate_fli_sliced, simulate_fli_sliced_all, simulate_full, simulate_full_all,
    simulate_marker_sliced, simulate_marker_sliced_all, FliSlicedSim, FullSim, MarkerSlicedSim,
};
pub use slice::{replay_slice, slice_trace, SlicedTrace, TraceSlice};
pub use stats::{IntervalSim, LevelStats, SimStats};

/// Small xorshift step used by the random replacement policy.
#[inline]
pub(crate) fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}
