//! Memory-system configuration (the paper's Table 1).

use crate::branch::BranchConfig;
use serde::{Deserialize, Serialize};

/// Configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheLevelConfig {
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

impl CacheLevelConfig {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible
    /// by `associativity × line_bytes`) or not a power of two.
    pub fn sets(&self) -> u64 {
        let way_bytes = u64::from(self.associativity) * u64::from(self.line_bytes);
        assert!(way_bytes > 0, "cache has zero way size");
        assert_eq!(
            self.capacity_bytes % way_bytes,
            0,
            "cache capacity not divisible by ways × line"
        );
        let sets = self.capacity_bytes / way_bytes;
        assert!(
            sets.is_power_of_two(),
            "cache set count must be a power of two"
        );
        sets
    }
}

/// Replacement policy of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Replacement {
    /// Least-recently-used (the paper's configuration).
    #[default]
    Lru,
    /// First-in-first-out (for ablations and tests).
    Fifo,
    /// Pseudo-random (for ablations and tests).
    Random,
}

/// Full memory-system configuration: three cache levels plus DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// First-level data cache.
    pub l1: CacheLevelConfig,
    /// Mid-level cache.
    pub l2: CacheLevelConfig,
    /// Last-level cache.
    pub l3: CacheLevelConfig,
    /// DRAM access latency in cycles.
    pub dram_latency: u64,
    /// Replacement policy used by all levels.
    pub replacement: Replacement,
    /// Next-line prefetching into the mid-level cache on L1 demand
    /// misses (off in the paper's Table 1 configuration; used by the
    /// architecture-sweep experiments).
    pub next_line_prefetch: bool,
    /// Optional gshare branch predictor with mispredict penalties
    /// (absent in the paper's memory-only CMP$im model).
    pub branch: Option<BranchConfig>,
}

impl MemoryConfig {
    /// The paper's Table 1: 32 KB 2-way L1, 512 KB 8-way L2, 1024 KB
    /// 16-way L3, all 64-byte lines and write-back with LRU; hit
    /// latencies 3 / 14 / 35 cycles and 250-cycle DRAM.
    pub fn table1() -> Self {
        MemoryConfig {
            l1: CacheLevelConfig {
                capacity_bytes: 32 * 1024,
                associativity: 2,
                line_bytes: 64,
                hit_latency: 3,
            },
            l2: CacheLevelConfig {
                capacity_bytes: 512 * 1024,
                associativity: 8,
                line_bytes: 64,
                hit_latency: 14,
            },
            l3: CacheLevelConfig {
                capacity_bytes: 1024 * 1024,
                associativity: 16,
                line_bytes: 64,
                hit_latency: 35,
            },
            dram_latency: 250,
            replacement: Replacement::Lru,
            next_line_prefetch: false,
            branch: None,
        }
    }
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_geometry() {
        let c = MemoryConfig::table1();
        assert_eq!(c.l1.sets(), 256); // 32K / (2 * 64)
        assert_eq!(c.l2.sets(), 1024); // 512K / (8 * 64)
        assert_eq!(c.l3.sets(), 1024); // 1M / (16 * 64)
        assert_eq!(c.replacement, Replacement::Lru);
        assert_eq!(c.dram_latency, 250);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let c = CacheLevelConfig {
            capacity_bytes: 3 * 64 * 2,
            associativity: 2,
            line_bytes: 64,
            hit_latency: 1,
        };
        let _ = c.sets();
    }
}
