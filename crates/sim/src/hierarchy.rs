//! The three-level non-inclusive write-back hierarchy of Table 1.

use crate::cache::{AccessOutcome, Cache};
use crate::config::MemoryConfig;
use crate::stats::LevelStats;

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServicedBy {
    /// First-level cache hit.
    L1,
    /// Mid-level cache hit.
    L2,
    /// Last-level cache hit.
    L3,
    /// Missed everywhere; serviced by DRAM.
    Dram,
}

/// A three-level data-cache hierarchy with write-back, write-allocate
/// caches. Misses allocate in every level on the fill path (no
/// inclusion is enforced, no back-invalidation — non-inclusive, as
/// CMP$im models). Dirty victims are written back into the next level
/// down, cascading to DRAM.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
    l3: Cache,
    latencies: [u64; 4],
    writebacks_to_dram: u64,
    next_line_prefetch: bool,
    line_bytes: u64,
    prefetches: u64,
}

impl Hierarchy {
    /// Builds an empty hierarchy from a configuration.
    pub fn new(config: &MemoryConfig) -> Self {
        Hierarchy {
            l1: Cache::new(&config.l1, config.replacement),
            l2: Cache::new(&config.l2, config.replacement),
            l3: Cache::new(&config.l3, config.replacement),
            latencies: [
                config.l1.hit_latency,
                config.l2.hit_latency,
                config.l3.hit_latency,
                config.dram_latency,
            ],
            writebacks_to_dram: 0,
            next_line_prefetch: config.next_line_prefetch,
            line_bytes: u64::from(config.l1.line_bytes),
            prefetches: 0,
        }
    }

    /// Performs one access; returns the servicing level and its latency
    /// in cycles.
    #[inline]
    pub fn access(&mut self, addr: u64, is_write: bool) -> (ServicedBy, u64) {
        let l1_victim = match self.l1.access(addr, is_write) {
            AccessOutcome::Hit => return (ServicedBy::L1, self.latencies[0]),
            AccessOutcome::Miss { evicted_dirty } => evicted_dirty,
        };
        // L1 dirty victim sinks into L2 (cascading).
        if let Some(v) = l1_victim {
            self.writeback_into_l2(v);
        }
        // Next-line prefetch: on an L1 demand miss, pull the following
        // line into L2 (no latency charged to the demand access).
        if self.next_line_prefetch {
            self.prefetches += 1;
            let next = (addr & !(self.line_bytes - 1)) + self.line_bytes;
            if let Some(v) = self.l2.fill_clean(next) {
                self.writeback_into_l3(v);
            }
        }

        let l2_victim = match self.l2.access(addr, is_write) {
            AccessOutcome::Hit => return (ServicedBy::L2, self.latencies[1]),
            AccessOutcome::Miss { evicted_dirty } => evicted_dirty,
        };
        if let Some(v) = l2_victim {
            self.writeback_into_l3(v);
        }

        let l3_victim = match self.l3.access(addr, is_write) {
            AccessOutcome::Hit => return (ServicedBy::L3, self.latencies[2]),
            AccessOutcome::Miss { evicted_dirty } => evicted_dirty,
        };
        if l3_victim.is_some() {
            self.writebacks_to_dram += 1;
        }
        (ServicedBy::Dram, self.latencies[3])
    }

    fn writeback_into_l2(&mut self, addr: u64) {
        if let Some(v) = self.l2.fill_dirty(addr) {
            self.writeback_into_l3(v);
        }
    }

    fn writeback_into_l3(&mut self, addr: u64) {
        if self.l3.fill_dirty(addr).is_some() {
            self.writebacks_to_dram += 1;
        }
    }

    /// Per-level hit/miss statistics.
    pub fn level_stats(&self) -> [LevelStats; 3] {
        [
            LevelStats {
                hits: self.l1.hits(),
                misses: self.l1.misses(),
            },
            LevelStats {
                hits: self.l2.hits(),
                misses: self.l2.misses(),
            },
            LevelStats {
                hits: self.l3.hits(),
                misses: self.l3.misses(),
            },
        ]
    }

    /// Dirty lines written all the way back to memory.
    pub fn writebacks_to_dram(&self) -> u64 {
        self.writebacks_to_dram
    }

    /// Prefetches issued (0 unless next-line prefetch is enabled).
    pub fn prefetches(&self) -> u64 {
        self.prefetches
    }

    /// Appends the three levels' packed state (see
    /// [`Cache::pack_state`]) to `out`. Each level's encoding is
    /// self-delimiting, so no framing is needed. Writeback/prefetch
    /// counters are not captured.
    pub(crate) fn pack_state(&self, out: &mut Vec<u8>) {
        self.l1.pack_state(out);
        self.l2.pack_state(out);
        self.l3.pack_state(out);
    }

    /// Restores [`Hierarchy::pack_state`] output into a freshly built
    /// hierarchy of the same configuration, returning the position
    /// after the encoding.
    ///
    /// # Errors
    ///
    /// Propagates the first level's [`crate::replay::TraceError`].
    pub(crate) fn unpack_state(
        &mut self,
        bytes: &[u8],
        pos: usize,
    ) -> Result<usize, crate::replay::TraceError> {
        let pos = self.l1.unpack_state(bytes, pos)?;
        let pos = self.l2.unpack_state(bytes, pos)?;
        let pos = self.l3.unpack_state(bytes, pos)?;
        self.writebacks_to_dram = 0;
        self.prefetches = 0;
        Ok(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_follow_servicing_level() {
        let mut h = Hierarchy::new(&MemoryConfig::table1());
        let (lvl, lat) = h.access(0x1000, false);
        assert_eq!(lvl, ServicedBy::Dram);
        assert_eq!(lat, 250);
        let (lvl, lat) = h.access(0x1000, false);
        assert_eq!(lvl, ServicedBy::L1);
        assert_eq!(lat, 3);
    }

    #[test]
    fn l1_evictions_land_in_l2() {
        let mut h = Hierarchy::new(&MemoryConfig::table1());
        // Touch 3 lines in the same L1 set (L1: 256 sets × 64 B = 16 KB
        // stride). With 2-way L1 the first line is evicted...
        let stride = 256 * 64;
        h.access(0, false);
        h.access(stride, false);
        h.access(2 * stride, false);
        // ...but it is still in L2 (filled on the original miss).
        let (lvl, _) = h.access(0, false);
        assert_eq!(lvl, ServicedBy::L2);
    }

    #[test]
    fn small_working_set_converges_to_l1_hits() {
        let mut h = Hierarchy::new(&MemoryConfig::table1());
        // 8 KB working set streamed repeatedly.
        for _ in 0..5 {
            for i in 0..128u64 {
                h.access(0x4_0000 + i * 64, false);
            }
        }
        let [l1, _, _] = h.level_stats();
        assert_eq!(l1.misses, 128, "only compulsory misses");
        assert_eq!(l1.hits, 4 * 128);
    }

    #[test]
    fn dirty_data_eventually_reaches_dram() {
        let mut h = Hierarchy::new(&MemoryConfig::table1());
        // Write a footprint much larger than L3 (1 MB): dirty lines must
        // cascade out to DRAM.
        let lines: u32 = 3 * 1024 * 1024 / 64;
        for round in 0..2 {
            for i in 0..lines {
                h.access(u64::from(i) * 64, true);
            }
            let _ = round;
        }
        assert!(h.writebacks_to_dram() > 0);
    }

    #[test]
    fn next_line_prefetch_turns_streaming_misses_into_l2_hits() {
        let mut base_cfg = MemoryConfig::table1();
        let mut pf_cfg = MemoryConfig::table1();
        pf_cfg.next_line_prefetch = true;
        let mut base = Hierarchy::new(&base_cfg);
        let mut pf = Hierarchy::new(&pf_cfg);
        base_cfg.next_line_prefetch = false; // silence unused-mut lint path
        let _ = base_cfg;
        // Stream 4 MB line by line: without prefetch every line goes to
        // DRAM; with next-line prefetch most lines are L2 hits.
        let mut base_lat = 0u64;
        let mut pf_lat = 0u64;
        for i in 0..65_536u64 {
            base_lat += base.access(i * 64, false).1;
            pf_lat += pf.access(i * 64, false).1;
        }
        assert!(pf.prefetches() > 0);
        assert_eq!(base.prefetches(), 0);
        assert!(
            pf_lat * 2 < base_lat,
            "prefetching should at least halve streaming latency: {pf_lat} vs {base_lat}"
        );
    }

    #[test]
    fn prefetch_does_not_pollute_demand_counters() {
        let mut cfg = MemoryConfig::table1();
        cfg.next_line_prefetch = true;
        let mut h = Hierarchy::new(&cfg);
        for i in 0..1000u64 {
            h.access(i * 64, false);
        }
        let [l1, l2, _] = h.level_stats();
        assert_eq!(l1.hits + l1.misses, 1000, "L1 sees only demand accesses");
        // L2 demand lookups equal L1 misses; prefetch fills are not
        // counted as demand.
        assert_eq!(l2.hits + l2.misses, l1.misses);
    }

    #[test]
    fn l2_sized_set_hits_in_l2() {
        let mut h = Hierarchy::new(&MemoryConfig::table1());
        // 256 KB working set: fits L2, not L1.
        let lines: u32 = 256 * 1024 / 64;
        for _ in 0..4 {
            for i in 0..lines {
                h.access(u64::from(i) * 64, false);
            }
        }
        let [l1, l2, _] = h.level_stats();
        assert!(l1.misses > lines as u64, "L1 thrashes");
        // After the first cold round, L2 services the misses.
        assert!(l2.hits > 2 * lines as u64, "L2 hits: {}", l2.hits);
    }
}
