//! Interpret-vs-replay equivalence: the record-once replay engine must
//! reproduce direct interpretation byte-for-byte for every sink type at
//! any thread count, and damaged trace buffers must come back as typed
//! errors — never panics.

use cbsp_par::Pool;
use cbsp_profile::{ExecPoint, MarkerRef, PinPointsFile, RegionBound, SimRegion};
use cbsp_program::{
    compile, run, workloads, Binary, CompileTarget, Input, Marker, Scale, TraceSink,
};
use cbsp_sim::{
    record_trace, replay, replay_fli_sliced, replay_full, replay_marker_sliced,
    replay_regions_with, replay_slice, simulate_fli_sliced, simulate_full, simulate_marker_sliced,
    simulate_regions_with, slice_trace, EventTrace, MemoryConfig, TraceError, Warmup,
};
use proptest::prelude::*;

const FLI_TARGET: u64 = 5_000;

fn test_binaries(name: &str) -> (Vec<Binary>, Input) {
    let prog = workloads::by_name(name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"))
        .build(Scale::Test);
    let binaries = CompileTarget::ALL_FOUR
        .iter()
        .map(|&t| compile(&prog, t))
        .collect();
    (binaries, Input::test())
}

/// Counts marker executions to derive in-order [`ExecPoint`]
/// boundaries without involving the profiling pipeline.
#[derive(Default)]
struct MarkerTally {
    counts: std::collections::BTreeMap<MarkerRef, u64>,
}

impl TraceSink for MarkerTally {
    fn on_block(&mut self, _block: cbsp_program::BlockId, _instrs: u64) {}

    fn on_marker(&mut self, marker: Marker) {
        let r = match marker {
            Marker::ProcEntry(p) => MarkerRef::Proc(u32::from(p)),
            Marker::LoopEntry(l) => MarkerRef::LoopEntry(u32::from(l)),
            Marker::LoopBack(l) => MarkerRef::LoopBack(u32::from(l)),
        };
        *self.counts.entry(r).or_insert(0) += 1;
    }
}

/// Four boundaries at evenly spaced executions of the binary's most
/// frequent marker (in execution order, as the sliced sinks require).
fn marker_boundaries(bin: &Binary, input: &Input) -> Vec<ExecPoint> {
    let mut tally = MarkerTally::default();
    run(bin, input, &mut tally);
    let (&marker, &execs) = tally
        .counts
        .iter()
        .max_by_key(|(_, &n)| n)
        .expect("binary executes at least one marker");
    let cuts = 4.min(execs);
    (1..=cuts)
        .map(|i| ExecPoint {
            marker,
            count: i * execs / cuts,
        })
        .collect()
}

/// A small region file mixing instruction and marker bounds.
fn region_file(bin: &Binary, input: &Input, total_instrs: u64) -> PinPointsFile {
    let boundaries = marker_boundaries(bin, input);
    PinPointsFile {
        program: "equivalence".to_string(),
        binary: "test".to_string(),
        input: "test".to_string(),
        interval_target: FLI_TARGET,
        regions: vec![
            SimRegion {
                phase: 0,
                weight: 0.5,
                start: RegionBound::Instr(0),
                end: RegionBound::Instr(total_instrs / 3),
            },
            SimRegion {
                phase: 1,
                weight: 0.3,
                start: RegionBound::Instr(total_instrs / 2),
                end: RegionBound::Point(boundaries[boundaries.len() - 1]),
            },
            SimRegion {
                phase: 2,
                weight: 0.2,
                start: RegionBound::Point(boundaries[0]),
                end: RegionBound::Instr(2 * total_instrs / 3),
            },
        ],
    }
}

/// Every sink type, interpret vs replay, across all four binaries of
/// two benchmarks: results must be byte-identical.
#[test]
fn replay_matches_interpretation_for_every_sink() {
    for name in ["gzip", "swim"] {
        let (binaries, input) = test_binaries(name);
        for bin in &binaries {
            let trace = record_trace(bin, &input);
            let mem = MemoryConfig::table1();

            let full = simulate_full(bin, &input, &mem);
            assert_eq!(full, replay_full(&trace, &mem).expect("decodes"));

            let fli = simulate_fli_sliced(bin, &input, &mem, FLI_TARGET);
            assert_eq!(
                fli,
                replay_fli_sliced(&trace, &mem, FLI_TARGET).expect("decodes")
            );

            let boundaries = marker_boundaries(bin, &input);
            let marker = simulate_marker_sliced(bin, &input, &mem, &boundaries);
            assert_eq!(
                marker,
                replay_marker_sliced(&trace, &mem, &boundaries).expect("decodes")
            );

            let file = region_file(bin, &input, full.instructions);
            for warmup in [Warmup::Functional, Warmup::Cold] {
                let direct = simulate_regions_with(bin, &input, &mem, &file, warmup);
                assert_eq!(
                    direct,
                    replay_regions_with(&trace, &mem, &file, warmup).expect("decodes")
                );
            }
        }
    }
}

/// A branch-predictor-equipped configuration consumes the recorded
/// branch stream identically to live interpretation.
#[test]
fn replay_matches_interpretation_with_branch_predictor() {
    let (binaries, input) = test_binaries("gzip");
    let mut mem = MemoryConfig::table1();
    mem.branch = Some(cbsp_sim::BranchConfig::default());
    for bin in &binaries {
        let trace = record_trace(bin, &input);
        let full = simulate_full(bin, &input, &mem);
        assert!(full.branches > 0, "predictor must see branches");
        assert_eq!(full, replay_full(&trace, &mem).expect("decodes"));
    }
}

/// Replaying the same trace from many pool workers at once — at 1 and
/// at 8 threads — yields the same results as direct interpretation:
/// replay shares nothing mutable, so thread count cannot matter.
#[test]
fn replay_is_deterministic_across_thread_counts() {
    let (binaries, input) = test_binaries("gzip");
    let bin = &binaries[1];
    let trace = record_trace(bin, &input);
    let mem = MemoryConfig::table1();
    let boundaries = marker_boundaries(bin, &input);

    let full = simulate_full(bin, &input, &mem);
    let fli = simulate_fli_sliced(bin, &input, &mem, FLI_TARGET);
    let marker = simulate_marker_sliced(bin, &input, &mem, &boundaries);
    let file = region_file(bin, &input, full.instructions);
    let regions = simulate_regions_with(bin, &input, &mem, &file, Warmup::Functional);

    for threads in [1usize, 8] {
        let pool = Pool::new(threads);
        let outcomes = pool.run_indexed(2 * threads.max(2), |_| {
            (
                replay_full(&trace, &mem).expect("decodes"),
                replay_fli_sliced(&trace, &mem, FLI_TARGET).expect("decodes"),
                replay_marker_sliced(&trace, &mem, &boundaries).expect("decodes"),
                replay_regions_with(&trace, &mem, &file, Warmup::Functional).expect("decodes"),
            )
        });
        for (got_full, got_fli, got_marker, got_regions) in outcomes {
            assert_eq!(full, got_full, "{threads} threads");
            assert_eq!(fli, got_fli, "{threads} threads");
            assert_eq!(marker, got_marker, "{threads} threads");
            assert_eq!(regions, got_regions, "{threads} threads");
        }
    }
}

/// Per-simpoint trace slices are byte-identical to a full-trace replay
/// restricted to their interval: every slice carries an exact state
/// checkpoint, so its replay reproduces the in-context interval
/// statistics bit-for-bit — all fields, every interval — and slice
/// replay is deterministic across pool thread counts.
#[test]
fn slice_replay_matches_full_replay_restricted_to_the_interval() {
    let (binaries, input) = test_binaries("gzip");
    let bin = &binaries[1];
    let trace = record_trace(bin, &input);
    let mem = MemoryConfig::table1();
    let boundaries = marker_boundaries(bin, &input);
    let selected: Vec<usize> = (0..=boundaries.len()).collect();

    let (_, in_context) = replay_marker_sliced(&trace, &mem, &boundaries).expect("decodes");
    let sliced = slice_trace(&trace, &mem, &boundaries, &selected).expect("slices");
    assert_eq!(sliced.slices.len(), selected.len());

    let baseline: Vec<_> = sliced
        .slices
        .iter()
        .map(|s| replay_slice(s, &mem).expect("decodes"))
        .collect();
    for (slice, replayed) in sliced.slices.iter().zip(&baseline) {
        let i = slice.interval;
        assert_eq!(*replayed, in_context[i], "interval {i}");
    }

    // Thread count is invisible: slices share nothing mutable.
    for threads in [1usize, 8] {
        let pool = Pool::new(threads);
        let outcomes = pool.run_indexed(2 * threads.max(2), |_| {
            sliced
                .slices
                .iter()
                .map(|s| replay_slice(s, &mem).expect("decodes"))
                .collect::<Vec<_>>()
        });
        for got in outcomes {
            assert_eq!(baseline, got, "{threads} threads");
        }
    }
}

fn recorded_trace() -> EventTrace {
    let prog = workloads::by_name("gzip")
        .expect("in suite")
        .build(Scale::Test);
    let bin = compile(&prog, CompileTarget::W32_O2);
    record_trace(&bin, &Input::test())
}

/// Decode sink that exercises every event path but keeps nothing.
struct Discard;

impl TraceSink for Discard {
    fn on_block(&mut self, _block: cbsp_program::BlockId, _instrs: u64) {}
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Any truncation of a recorded buffer is a typed decode error —
    /// the event count promises more data than the buffer holds.
    #[test]
    fn truncated_traces_return_typed_errors(frac in 0.0f64..1.0) {
        let mut trace = recorded_trace();
        let cut = ((trace.bytes.len() - 1) as f64 * frac) as usize;
        trace.bytes.truncate(cut);
        let err = replay(&trace, &mut Discard).expect_err("truncated trace must not decode");
        prop_assert!(matches!(
            err,
            TraceError::UnexpectedEof { .. }
                | TraceError::MalformedVarint { .. }
                | TraceError::InvalidMarkerKind { .. }
        ));
    }

    /// Flipping an arbitrary byte never panics: the decoder either
    /// produces a (different) valid event stream or a typed error.
    #[test]
    fn corrupted_traces_never_panic(offset_frac in 0.0f64..1.0, flip in 1u8..=255) {
        let mut trace = recorded_trace();
        let len = trace.bytes.len();
        let offset = ((len - 1) as f64 * offset_frac) as usize;
        trace.bytes[offset] ^= flip;
        let _ = replay(&trace, &mut Discard);
    }

    /// A truncated slice is a typed decode error and a flipped slice
    /// byte never panics — slices reuse the trace decoder, so they
    /// inherit its corruption contract.
    #[test]
    fn damaged_slices_return_typed_errors(frac in 0.0f64..1.0, flip in 1u8..=255) {
        let trace = recorded_trace();
        let mem = MemoryConfig::table1();
        let prog = workloads::by_name("gzip").expect("in suite").build(Scale::Test);
        let bin = compile(&prog, CompileTarget::W32_O2);
        let boundaries = marker_boundaries(&bin, &Input::test());
        let sliced = slice_trace(&trace, &mem, &boundaries, &[1]).expect("slices");
        let base = &sliced.slices[0];

        let mut truncated = base.clone();
        let cut = ((truncated.trace.bytes.len() - 1) as f64 * frac) as usize;
        truncated.trace.bytes.truncate(cut);
        let err = replay_slice(&truncated, &mem).expect_err("truncated slice must not decode");
        prop_assert!(matches!(
            err,
            TraceError::UnexpectedEof { .. }
                | TraceError::MalformedVarint { .. }
                | TraceError::InvalidMarkerKind { .. }
        ));

        let mut corrupt = base.clone();
        let offset = ((corrupt.trace.bytes.len() - 1) as f64 * frac) as usize;
        corrupt.trace.bytes[offset] ^= flip;
        let _ = replay_slice(&corrupt, &mem);

        // The state checkpoint inherits the same contract: truncation
        // is a typed error, a flipped byte never panics.
        let mut short_state = base.clone();
        let cut = ((short_state.state.len() - 1) as f64 * frac) as usize;
        short_state.state.truncate(cut);
        let err = replay_slice(&short_state, &mem).expect_err("truncated state must not decode");
        prop_assert!(matches!(
            err,
            TraceError::UnexpectedEof { .. }
                | TraceError::MalformedVarint { .. }
                | TraceError::CorruptState
        ));

        let mut flipped_state = base.clone();
        let offset = ((flipped_state.state.len() - 1) as f64 * frac) as usize;
        flipped_state.state[offset] ^= flip;
        let _ = replay_slice(&flipped_state, &mem);
    }

    /// Growing or shrinking the event count against a fixed buffer is
    /// always caught (missing bytes or trailing bytes).
    #[test]
    fn wrong_event_counts_are_caught(delta in 1u64..1000) {
        let base = recorded_trace();

        let mut grown = base.clone();
        grown.events += delta;
        prop_assert!(replay(&grown, &mut Discard).is_err());

        let mut shrunk = base;
        shrunk.events -= delta.min(shrunk.events);
        let err = replay(&shrunk, &mut Discard).expect_err("unconsumed bytes must be flagged");
        prop_assert!(matches!(err, TraceError::TrailingBytes { .. }));
    }
}
