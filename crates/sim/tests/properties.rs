//! Property-based tests of the cache and hierarchy invariants.

use cbsp_sim::{AccessOutcome, Cache, CacheLevelConfig, Hierarchy, MemoryConfig, Replacement};
use proptest::prelude::*;

fn small_cache_config() -> CacheLevelConfig {
    CacheLevelConfig {
        capacity_bytes: 4 * 1024, // 8 sets x 8 ways x 64 B
        associativity: 8,
        line_bytes: 64,
        hit_latency: 1,
    }
}

fn addr_strategy() -> impl Strategy<Value = Vec<(u64, bool)>> {
    prop::collection::vec((0u64..1_000_000, any::<bool>()), 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// An access immediately after a miss to the same line always hits,
    /// under every replacement policy.
    #[test]
    fn repeat_access_hits(accesses in addr_strategy(),
                          policy in prop_oneof![Just(Replacement::Lru),
                                                Just(Replacement::Fifo),
                                                Just(Replacement::Random)]) {
        let mut cache = Cache::new(&small_cache_config(), policy);
        for (addr, w) in accesses {
            let _ = cache.access(addr, w);
            prop_assert_eq!(cache.access(addr, false), AccessOutcome::Hit);
        }
    }

    /// hits + misses always equals the number of demand accesses.
    #[test]
    fn hit_miss_accounting(accesses in addr_strategy()) {
        let mut cache = Cache::new(&small_cache_config(), Replacement::Lru);
        for &(addr, w) in &accesses {
            let _ = cache.access(addr, w);
        }
        prop_assert_eq!(cache.hits() + cache.misses(), accesses.len() as u64);
    }

    /// A working set no larger than one set's associativity never
    /// conflicts under LRU: after the first (compulsory) misses,
    /// everything hits forever.
    #[test]
    fn small_working_sets_never_thrash(lines in prop::collection::btree_set(0u64..8, 1..8),
                                       rounds in 2usize..6) {
        let mut cache = Cache::new(&small_cache_config(), Replacement::Lru);
        // All chosen lines map to set 0 (stride = sets * line = 512 B).
        let addrs: Vec<u64> = lines.iter().map(|l| l * 512).collect();
        for a in &addrs {
            let _ = cache.access(*a, false);
        }
        for _ in 0..rounds {
            for a in &addrs {
                prop_assert_eq!(cache.access(*a, false), AccessOutcome::Hit);
            }
        }
        prop_assert_eq!(cache.misses(), addrs.len() as u64);
    }

    /// Dirty evictions only report lines that were actually written.
    #[test]
    fn only_written_lines_write_back(accesses in addr_strategy()) {
        let mut cache = Cache::new(&small_cache_config(), Replacement::Lru);
        let mut written = std::collections::BTreeSet::new();
        for (addr, w) in accesses {
            let line = addr & !63;
            if let AccessOutcome::Miss { evicted_dirty: Some(v) } = cache.access(addr, w) {
                prop_assert!(written.remove(&v), "evicted {v:#x} was never written");
            }
            if w {
                written.insert(line);
            }
        }
    }

    /// Hierarchy latencies come only from the configured set, L1
    /// accounting matches the access count, and the returned latency is
    /// consistent with the servicing level.
    #[test]
    fn hierarchy_latency_accounting(accesses in addr_strategy()) {
        let config = MemoryConfig::table1();
        let mut h = Hierarchy::new(&config);
        let mut total_latency = 0u64;
        for &(addr, w) in &accesses {
            let (lvl, lat) = h.access(addr, w);
            let expect = match lvl {
                cbsp_sim::ServicedBy::L1 => config.l1.hit_latency,
                cbsp_sim::ServicedBy::L2 => config.l2.hit_latency,
                cbsp_sim::ServicedBy::L3 => config.l3.hit_latency,
                cbsp_sim::ServicedBy::Dram => config.dram_latency,
            };
            prop_assert_eq!(lat, expect);
            total_latency += lat;
        }
        let [l1, _, _] = h.level_stats();
        prop_assert_eq!(l1.hits + l1.misses, accesses.len() as u64);
        prop_assert!(total_latency >= 3 * accesses.len() as u64);
    }

    /// The hierarchy is deterministic: same access stream, same stats.
    #[test]
    fn hierarchy_is_deterministic(accesses in addr_strategy()) {
        let run = || {
            let mut h = Hierarchy::new(&MemoryConfig::table1());
            let mut sum = 0u64;
            for &(addr, w) in &accesses {
                sum += h.access(addr, w).1;
            }
            (sum, h.level_stats(), h.writebacks_to_dram())
        };
        prop_assert_eq!(run(), run());
    }

    /// Inclusive-of-L1 reads: a line that hits in L1 was not counted as
    /// an access by L2/L3 (demand filtering).
    #[test]
    fn lower_levels_see_only_misses(accesses in addr_strategy()) {
        let mut h = Hierarchy::new(&MemoryConfig::table1());
        for &(addr, w) in &accesses {
            let _ = h.access(addr, w);
        }
        let [l1, l2, _] = h.level_stats();
        // L2 demand accesses = L1 misses (plus write-back fills, which
        // are counted too; they can only add, never subtract).
        prop_assert!(l2.hits + l2.misses >= l1.misses);
    }
}
