//! The compiler model: lowers a [`SourceProgram`] to a [`Binary`] for a
//! [`CompileTarget`].
//!
//! The paper's scenario is four binaries per program — {32-bit, 64-bit}
//! × {unoptimized, optimized} — compiled with `-g` (paper §4). The
//! transformations modelled here are exactly the ones that make
//! cross-binary mapping hard:
//!
//! * **instruction scaling** — `-O0` code executes ~3× the instructions
//!   and adds stack spill traffic; 64-bit code has per-kernel jitter and
//!   pointer-dependent footprints;
//! * **inlining** (`-O2`, hint-driven) — removes procedure symbols and
//!   entry points, and degrades line info of the inlined body;
//! * **loop unrolling** (`-O2`, hint-driven) — divides the dynamic
//!   execution count of the loop-back branch;
//! * **loop splitting + code motion** (`-O2`, hint-driven) — clones a
//!   loop per body statement under fresh, unmatchable lines (the `applu`
//!   failure mode of paper §5.1);
//! * **dead-code elimination** (`-O2`) — folds constant branches and
//!   deletes removable kernels.
//!
//! Compilation is a pure function: the same `(source, target)` always
//! yields an identical binary.

mod layout;
mod lower;
pub mod scale;

use crate::binary::Binary;
use crate::source::SourceProgram;
use serde::{Deserialize, Serialize};

/// Pointer width of a compilation target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Width {
    /// 32-bit (IA32-like): 4-byte pointers.
    W32,
    /// 64-bit (Intel64-like): 8-byte pointers.
    W64,
}

impl Width {
    /// Pointer size in bytes.
    pub fn pointer_bytes(self) -> u32 {
        match self {
            Width::W32 => 4,
            Width::W64 => 8,
        }
    }
}

/// Optimization level of a compilation target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OptLevel {
    /// Unoptimized: no structural transformations, heavy spill traffic,
    /// ~3× instruction expansion.
    O0,
    /// Optimized: inlining, unrolling, splitting, DCE per hints.
    O2,
}

/// A compilation target: width × optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CompileTarget {
    /// Pointer width.
    pub width: Width,
    /// Optimization level.
    pub opt: OptLevel,
}

impl CompileTarget {
    /// 32-bit unoptimized (the paper's `32U`).
    pub const W32_O0: CompileTarget = CompileTarget {
        width: Width::W32,
        opt: OptLevel::O0,
    };
    /// 32-bit optimized (`32O`).
    pub const W32_O2: CompileTarget = CompileTarget {
        width: Width::W32,
        opt: OptLevel::O2,
    };
    /// 64-bit unoptimized (`64U`).
    pub const W64_O0: CompileTarget = CompileTarget {
        width: Width::W64,
        opt: OptLevel::O0,
    };
    /// 64-bit optimized (`64O`).
    pub const W64_O2: CompileTarget = CompileTarget {
        width: Width::W64,
        opt: OptLevel::O2,
    };

    /// The paper's standard set of four binaries, in the order
    /// `32U, 32O, 64U, 64O`.
    pub const ALL_FOUR: [CompileTarget; 4] =
        [Self::W32_O0, Self::W32_O2, Self::W64_O0, Self::W64_O2];

    /// Short label: `"32u"`, `"32o"`, `"64u"`, or `"64o"`.
    pub fn suffix(self) -> &'static str {
        match (self.width, self.opt) {
            (Width::W32, OptLevel::O0) => "32u",
            (Width::W32, OptLevel::O2) => "32o",
            (Width::W64, OptLevel::O0) => "64u",
            (Width::W64, OptLevel::O2) => "64o",
        }
    }
}

impl std::fmt::Display for CompileTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.suffix())
    }
}

/// Compiler configuration beyond the target itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompileOptions {
    /// Whether inlined bodies keep usable line information. Real
    /// compilers of the paper's era did not preserve enough for branch
    /// matching; set `true` only for ablation studies (it makes the
    /// inline-recovery machinery of `cbsp-core` unnecessary).
    pub preserve_inline_lines: bool,
    /// Inline *every* call at `-O2`, not just hinted ones. Deletes the
    /// callee symbols and degrades their loop lines, reproducing the
    /// paper's `applu` marker-loss failure mode on any workload. Used
    /// as a test bed for fuzzy cross-binary mapping.
    pub aggressive_inline: bool,
    /// Split *every* multi-statement loop at `-O2`, not just hinted
    /// ones. Every clone carries `line: None`, so no loop marker in the
    /// result matches across binaries.
    pub split_all_loops: bool,
}

impl CompileOptions {
    /// The marker-destroying preset: aggressive inlining plus
    /// unconditional loop splitting at `-O2`. Binaries compiled with
    /// this preset share (almost) no mappable markers with their
    /// default-compiled siblings — the deliberate worst case the fuzzy
    /// mapping fallback is gated against.
    pub fn marker_destroying() -> Self {
        CompileOptions {
            preserve_inline_lines: false,
            aggressive_inline: true,
            split_all_loops: true,
        }
    }
}

/// Compiles `source` for `target` with default [`CompileOptions`].
///
/// # Panics
///
/// Panics if `source` fails [`SourceProgram::validate`] (programs built
/// through [`ProgramBuilder`](crate::ProgramBuilder) are always valid).
pub fn compile(source: &SourceProgram, target: CompileTarget) -> Binary {
    compile_with(source, target, CompileOptions::default())
}

/// Rough serial cost, in nanoseconds, of one [`compile`] of `source`.
///
/// Lowering is a linear pass over the statement tree (validation,
/// layout, inlining, splitting are all O(statements)), measured at
/// roughly 100–300 ns per statement; 500 ns/statement is a safe upper
/// bound that still keeps whole-suite compile fan-outs (hundreds of
/// statements, a handful of targets) classified as too small to
/// parallelize. Feed `estimate × targets` to `Pool::for_work` in
/// `cbsp-par` — which is exactly what the CLI and bench drivers do.
pub fn compile_cost_estimate_ns(source: &SourceProgram) -> u64 {
    source.stmt_count() as u64 * 500
}

/// Compiles `source` for `target` with explicit options.
///
/// # Panics
///
/// See [`compile`].
pub fn compile_with(source: &SourceProgram, target: CompileTarget, opts: CompileOptions) -> Binary {
    if let Err(e) = source.validate() {
        panic!("cannot compile invalid program {}: {e}", source.name);
    }
    let bin = lower::lower(source, target, opts);
    debug_assert_eq!(bin.validate(), Ok(()));
    bin
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffixes_match_paper_notation() {
        assert_eq!(CompileTarget::W32_O0.suffix(), "32u");
        assert_eq!(CompileTarget::W64_O2.suffix(), "64o");
        assert_eq!(CompileTarget::ALL_FOUR.len(), 4);
    }

    #[test]
    fn pointer_bytes() {
        assert_eq!(Width::W32.pointer_bytes(), 4);
        assert_eq!(Width::W64.pointer_bytes(), 8);
    }
}
