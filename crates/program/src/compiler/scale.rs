//! Instruction cost model.
//!
//! Maps abstract source work units to per-target instruction counts.
//! The constants are calibrated to the regimes the paper's binaries
//! exhibit: `-O0` executes roughly 2.5–3.6× the instructions of `-O2`
//! (compiler-dependent, kernel-dependent) plus significant stack spill
//! traffic; 64-bit code differs from 32-bit code by ±10% per kernel.
//! Per-kernel variation is deterministic (keyed on the kernel's source
//! line), so compilation is a pure function.

use super::{CompileTarget, OptLevel, Width};
use crate::ids::Line;
use crate::rng;

/// Instruction count of a compute kernel with `work_units` abstract
/// cost at `line`, for `target`.
pub fn kernel_instrs(work_units: u32, line: Line, target: CompileTarget) -> u64 {
    let base = u64::from(work_units.max(1));
    // -O0 expansion: 2.6x..3.4x, varying per kernel.
    let opt_milli: u64 = match target.opt {
        OptLevel::O0 => {
            let jitter = rng::keyed(0x0BAD_C0DE, u64::from(line.0), 0) % 801; // 0..=800
            2600 + jitter
        }
        OptLevel::O2 => 1000,
    };
    // 64-bit jitter: 0.92x..1.12x per kernel (independent key).
    let width_milli: u64 = match target.width {
        Width::W32 => 1000,
        Width::W64 => 920 + rng::keyed(0x64B1_7000, u64::from(line.0), 1) % 201,
    };
    (base * opt_milli * width_milli / 1_000_000).max(1)
}

/// Stack (spill) accesses per kernel execution: heavy at `-O0`, nearly
/// absent at `-O2`.
pub fn kernel_stack_accesses(instrs: u64, opt: OptLevel) -> u32 {
    let divisor = match opt {
        OptLevel::O0 => 5,
        OptLevel::O2 => 48,
    };
    (instrs / divisor).min(u64::from(u32::MAX)) as u32
}

/// Instruction cost of control-flow overhead blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadCosts {
    /// Loop-entry block.
    pub loop_entry: u64,
    /// Loop back-branch block (per back-branch execution).
    pub loop_back: u64,
    /// Call-site block.
    pub call: u64,
    /// Procedure-entry (prologue) block.
    pub proc_entry: u64,
    /// Inline glue block.
    pub glue: u64,
    /// Condition-evaluation block.
    pub cond: u64,
}

/// Overhead costs for a target.
pub fn overhead(target: CompileTarget) -> OverheadCosts {
    match target.opt {
        OptLevel::O0 => OverheadCosts {
            loop_entry: 5,
            loop_back: 4,
            call: 8,
            proc_entry: 7,
            glue: 1,
            cond: 4,
        },
        OptLevel::O2 => OverheadCosts {
            loop_entry: 2,
            loop_back: 2,
            call: 3,
            proc_entry: 2,
            glue: 1,
            cond: 2,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn o0_expands_instructions_substantially() {
        for line in 1..50u32 {
            let o0 = kernel_instrs(100, Line(line), CompileTarget::W32_O0);
            let o2 = kernel_instrs(100, Line(line), CompileTarget::W32_O2);
            let ratio = o0 as f64 / o2 as f64;
            assert!(
                (2.2..=3.8).contains(&ratio),
                "line {line}: O0/O2 ratio {ratio} out of expected band"
            );
        }
    }

    #[test]
    fn w64_jitter_stays_within_band() {
        for line in 1..50u32 {
            let w32 = kernel_instrs(1000, Line(line), CompileTarget::W32_O2);
            let w64 = kernel_instrs(1000, Line(line), CompileTarget::W64_O2);
            let ratio = w64 as f64 / w32 as f64;
            assert!(
                (0.90..=1.14).contains(&ratio),
                "line {line}: W64/W32 ratio {ratio} out of band"
            );
        }
    }

    #[test]
    fn scaling_is_deterministic() {
        assert_eq!(
            kernel_instrs(77, Line(9), CompileTarget::W64_O0),
            kernel_instrs(77, Line(9), CompileTarget::W64_O0)
        );
    }

    #[test]
    fn kernel_instrs_never_zero() {
        assert!(kernel_instrs(0, Line(1), CompileTarget::W32_O2) >= 1);
        assert!(kernel_instrs(1, Line(1), CompileTarget::W32_O2) >= 1);
    }

    #[test]
    fn spills_much_heavier_at_o0() {
        let o0 = kernel_stack_accesses(1000, OptLevel::O0);
        let o2 = kernel_stack_accesses(1000, OptLevel::O2);
        assert!(o0 >= 8 * o2, "O0 spills {o0} not >> O2 spills {o2}");
    }
}
