//! Lowering from source IR to executable binary form.
//!
//! One pass over the source per target. Out-of-line procedures keep
//! their symbols; `-O2` inlining embeds callee bodies at call sites
//! (destroying the callee's symbol and, unless
//! [`CompileOptions::preserve_inline_lines`] is set, the line info of
//! loops inside the inlined body). Loop splitting clones a loop per body
//! statement under fresh unmatchable lines. Dead-code elimination folds
//! constant branches and deletes removable kernels.

use super::{layout, scale, CompileOptions, CompileTarget, OptLevel};
use crate::binary::{BinLoop, BinProc, Binary, CloneRole, LStmt, LoweredLoop, StaticBlock};
use crate::ids::{BinLoopId, BinProcId, BlockId, ProcId};
use crate::memory::ArrayOp;
use crate::source::{Cond, LoopStmt, SourceProgram, Stmt};

pub(super) fn lower(source: &SourceProgram, target: CompileTarget, opts: CompileOptions) -> Binary {
    let mut lw = Lowerer {
        source,
        target,
        opts,
        oh: scale::overhead(target),
        blocks: Vec::new(),
        procs: Vec::new(),
        loops: Vec::new(),
        proc_map: vec![None; source.procedures.len()],
    };

    // Pass 1: decide which procedures stay out of line and assign ids.
    // Source order is kept, so `main` remains first. Under
    // `aggressive_inline` every call target is inlined at -O2, not just
    // hinted ones; `main` always survives (nothing calls it).
    for p in &source.procedures {
        let inlined = target.opt == OptLevel::O2
            && (p.inline_always || (opts.aggressive_inline && p.id.index() != 0));
        if !inlined {
            let id = BinProcId(lw.procs.len() as u32);
            lw.proc_map[p.id.index()] = Some(id);
            lw.procs.push(BinProc {
                name: p.name.clone(),
                line: p.line,
                ground_truth_source: p.id,
            });
        }
    }

    // Pass 2: lower each out-of-line procedure body, prologue first.
    let mut code = vec![Vec::new(); lw.procs.len()];
    for p in &source.procedures {
        let Some(bid) = lw.proc_map[p.id.index()] else {
            continue;
        };
        let mut body = Vec::new();
        let prologue = lw.block(bid, lw.oh.proc_entry, Vec::new(), 0);
        body.push(LStmt::Block(prologue));
        lw.lower_stmts(&p.body, bid, false, &mut body);
        code[bid.index()] = body;
    }

    let main_proc = lw.proc_map[0].expect("main is never inlined away (nothing calls it)");
    Binary {
        program: source.name.clone(),
        target,
        blocks: lw.blocks,
        procs: lw.procs,
        loops: lw.loops,
        code,
        main_proc,
        layout: layout::assign(&source.arrays, target),
    }
}

struct Lowerer<'a> {
    source: &'a SourceProgram,
    target: CompileTarget,
    opts: CompileOptions,
    oh: scale::OverheadCosts,
    blocks: Vec<StaticBlock>,
    procs: Vec<BinProc>,
    loops: Vec<BinLoop>,
    /// Source procedure → binary procedure (None when inlined away).
    proc_map: Vec<Option<BinProcId>>,
}

impl Lowerer<'_> {
    fn block(
        &mut self,
        proc: BinProcId,
        instrs: u64,
        ops: Vec<ArrayOp>,
        stack_accesses: u32,
    ) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(StaticBlock {
            instrs,
            ops,
            stack_accesses,
            proc,
        });
        id
    }

    fn opt(&self) -> OptLevel {
        self.target.opt
    }

    /// Lowers `stmts` into `out`. `in_inline` is true inside an inlined
    /// body (degrades loop line info).
    fn lower_stmts(
        &mut self,
        stmts: &[Stmt],
        proc: BinProcId,
        in_inline: bool,
        out: &mut Vec<LStmt>,
    ) {
        for s in stmts {
            self.lower_stmt(s, proc, in_inline, out);
        }
    }

    fn lower_stmt(&mut self, s: &Stmt, proc: BinProcId, in_inline: bool, out: &mut Vec<LStmt>) {
        match s {
            Stmt::Compute(c) => {
                if c.removable && self.opt() == OptLevel::O2 {
                    return; // dead-code elimination
                }
                let instrs = scale::kernel_instrs(c.work_units, c.line, self.target);
                let spills = scale::kernel_stack_accesses(instrs, self.opt());
                let b = self.block(proc, instrs, c.ops.clone(), spills);
                out.push(LStmt::Block(b));
            }
            Stmt::Call(c) => self.lower_call(c.line, c.callee, proc, out),
            Stmt::If(i) => {
                if self.opt() == OptLevel::O2 {
                    // Constant-branch folding.
                    match i.cond {
                        Cond::Always => {
                            self.lower_stmts(&i.then_body, proc, in_inline, out);
                            return;
                        }
                        Cond::Never => {
                            self.lower_stmts(&i.else_body, proc, in_inline, out);
                            return;
                        }
                        _ => {}
                    }
                }
                let cond_block = self.block(proc, self.oh.cond, Vec::new(), 0);
                let mut then_body = Vec::new();
                self.lower_stmts(&i.then_body, proc, in_inline, &mut then_body);
                let mut else_body = Vec::new();
                self.lower_stmts(&i.else_body, proc, in_inline, &mut else_body);
                out.push(LStmt::If {
                    site: i.line,
                    cond: i.cond,
                    cond_block,
                    then_body,
                    else_body,
                });
            }
            Stmt::Loop(l) => self.lower_loop(l, proc, in_inline, out),
        }
    }

    /// Whether `-O2` dead-code elimination removes this statement
    /// entirely (no lowered code at all). Used to decide loop deletion
    /// and split-clone skipping *before* allocating loop ids, so the
    /// loop table stays in source order.
    fn stmt_is_dead(&self, s: &Stmt) -> bool {
        match s {
            Stmt::Compute(c) => c.removable,
            Stmt::Call(_) => false,
            Stmt::If(i) => match i.cond {
                Cond::Always => i.then_body.iter().all(|s| self.stmt_is_dead(s)),
                Cond::Never => i.else_body.iter().all(|s| self.stmt_is_dead(s)),
                _ => false,
            },
            Stmt::Loop(l) => l.body.iter().all(|s| self.stmt_is_dead(s)),
        }
    }

    fn lower_call(
        &mut self,
        site: crate::ids::Line,
        callee: ProcId,
        proc: BinProcId,
        out: &mut Vec<LStmt>,
    ) {
        match self.proc_map[callee.index()] {
            Some(target_proc) => {
                let call_block = self.block(proc, self.oh.call, Vec::new(), 0);
                out.push(LStmt::Call {
                    site,
                    callee: target_proc,
                    call_block,
                });
            }
            None => {
                // Inline the callee body at this site. The glue block
                // replaces call/prologue overhead; the body is lowered
                // fresh (code duplication, new loop ids) inside the
                // *current* out-of-line procedure.
                let glue_block = self.block(proc, self.oh.glue, Vec::new(), 0);
                let callee_src = &self.source.procedures[callee.index()];
                let mut body = Vec::new();
                self.lower_stmts(&callee_src.body, proc, true, &mut body);
                out.push(LStmt::Inlined {
                    site,
                    glue_block,
                    body,
                });
            }
        }
    }

    fn lower_loop(&mut self, l: &LoopStmt, proc: BinProcId, in_inline: bool, out: &mut Vec<LStmt>) {
        let o2 = self.opt() == OptLevel::O2;
        let unroll = if o2 { l.hints.unroll_factor() } else { 1 };
        let split = o2 && (l.hints.split || self.opts.split_all_loops) && l.body.len() > 1;

        // Line info: degraded inside inlined bodies (unless preserved)
        // and always degraded for split clones (code motion).
        let base_line = if in_inline && !self.opts.preserve_inline_lines {
            None
        } else {
            Some(l.line)
        };

        if !split {
            if o2 && l.body.iter().all(|s| self.stmt_is_dead(s)) {
                return; // loop deleted by DCE
            }
            let id = BinLoopId(self.loops.len() as u32);
            self.loops.push(BinLoop {
                line: base_line,
                proc,
                unroll,
                ground_truth_source: l.id,
            });
            let entry_block = self.block(proc, self.oh.loop_entry, Vec::new(), 0);
            let back_block = self.block(proc, self.oh.loop_back, Vec::new(), 0);
            let mut body = Vec::new();
            self.lower_stmts(&l.body, proc, in_inline, &mut body);
            out.push(LStmt::Loop(LoweredLoop {
                id,
                source: l.id,
                trip: l.trip,
                entry_block,
                back_block,
                body,
                unroll,
                clone: CloneRole::Original,
            }));
            return;
        }

        // Loop splitting: one clone per (surviving) body statement, all
        // under fresh unmatchable lines. The first surviving clone gets
        // the `Original` role (it evaluates and caches the semantic trip
        // count; later clones replay it).
        let mut clone_index = 0u32;
        for stmt in &l.body {
            if self.stmt_is_dead(stmt) {
                continue; // statement removed by DCE: clone vanishes too
            }
            let id = BinLoopId(self.loops.len() as u32);
            self.loops.push(BinLoop {
                line: None, // moved code: no usable line info
                proc,
                unroll,
                ground_truth_source: l.id,
            });
            let entry_block = self.block(proc, self.oh.loop_entry, Vec::new(), 0);
            let back_block = self.block(proc, self.oh.loop_back, Vec::new(), 0);
            let mut body = Vec::new();
            self.lower_stmt(stmt, proc, in_inline, &mut body);
            let clone = if clone_index == 0 {
                CloneRole::Original
            } else {
                CloneRole::SplitClone { index: clone_index }
            };
            out.push(LStmt::Loop(LoweredLoop {
                id,
                source: l.id,
                trip: l.trip,
                entry_block,
                back_block,
                body,
                unroll,
                clone,
            }));
            clone_index += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::source::{LoopHints, TripCount};

    fn simple_program() -> SourceProgram {
        let mut b = ProgramBuilder::new("t");
        let a = b.array_f64("a", 128);
        b.proc("main", |p| {
            p.loop_fixed(10, |body| {
                body.compute(100, |k| {
                    k.seq(a, 8);
                });
                body.call("helper");
            });
        });
        b.proc("helper", |p| p.work(20));
        b.finish()
    }

    #[test]
    fn all_four_targets_compile_and_validate() {
        let prog = simple_program();
        for t in CompileTarget::ALL_FOUR {
            let bin = super::super::compile(&prog, t);
            assert_eq!(bin.validate(), Ok(()));
            assert_eq!(bin.procs.len(), 2, "no inlining without hints");
            assert_eq!(bin.loops.len(), 1);
        }
    }

    #[test]
    fn o0_binaries_have_more_expensive_blocks() {
        let prog = simple_program();
        let o0 = super::super::compile(&prog, CompileTarget::W32_O0);
        let o2 = super::super::compile(&prog, CompileTarget::W32_O2);
        let sum = |b: &Binary| b.blocks.iter().map(|bb| bb.instrs).sum::<u64>();
        assert!(sum(&o0) > 2 * sum(&o2));
    }

    #[test]
    fn inline_always_removes_symbol_at_o2_only() {
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| p.call("hot"));
        b.inline_proc("hot", |p| {
            p.loop_fixed(5, |body| body.work(10));
        });
        let prog = b.finish();

        let o0 = super::super::compile(&prog, CompileTarget::W32_O0);
        assert!(o0.proc_by_name("hot").is_some());
        assert!(o0.loops[0].line.is_some());

        let o2 = super::super::compile(&prog, CompileTarget::W32_O2);
        assert!(
            o2.proc_by_name("hot").is_none(),
            "symbol gone after inlining"
        );
        assert_eq!(o2.loops.len(), 1);
        assert!(o2.loops[0].line.is_none(), "inlined loop line degraded");
    }

    #[test]
    fn preserve_inline_lines_option_keeps_lines() {
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| p.call("hot"));
        b.inline_proc("hot", |p| {
            p.loop_fixed(5, |body| body.work(10));
        });
        let prog = b.finish();
        let bin = super::super::compile_with(
            &prog,
            CompileTarget::W32_O2,
            CompileOptions {
                preserve_inline_lines: true,
                ..CompileOptions::default()
            },
        );
        assert!(bin.loops[0].line.is_some());
    }

    #[test]
    fn split_loops_clone_per_statement_with_degraded_lines() {
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.loop_with(
                TripCount::Fixed(4),
                LoopHints {
                    unroll: 0,
                    split: true,
                },
                |body| {
                    body.work(10);
                    body.work(20);
                    body.work(30);
                },
            );
        });
        let prog = b.finish();

        let o0 = super::super::compile(&prog, CompileTarget::W32_O0);
        assert_eq!(o0.loops.len(), 1);
        assert!(o0.loops[0].line.is_some());

        let o2 = super::super::compile(&prog, CompileTarget::W32_O2);
        assert_eq!(o2.loops.len(), 3, "one clone per body statement");
        assert!(o2.loops.iter().all(|l| l.line.is_none()));
        // First clone is Original, later are SplitClone.
        let roles: Vec<CloneRole> = o2.code[0]
            .iter()
            .filter_map(|s| match s {
                LStmt::Loop(l) => Some(l.clone),
                _ => None,
            })
            .collect();
        assert_eq!(roles[0], CloneRole::Original);
        assert_eq!(roles[1], CloneRole::SplitClone { index: 1 });
        assert_eq!(roles[2], CloneRole::SplitClone { index: 2 });
    }

    #[test]
    fn removable_kernels_and_constant_branches_are_dce_d() {
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.compute(50, |k| {
                k.removable();
            });
            p.if_else(Cond::Never, |t| t.call("dead"), |e| e.work(5));
            p.loop_fixed(3, |body| {
                body.compute(10, |k| {
                    k.removable();
                });
            });
        });
        b.proc("dead", |p| p.work(1));
        let prog = b.finish();

        let o2 = super::super::compile(&prog, CompileTarget::W64_O2);
        // Dead call never lowered as a call stmt in main's body.
        fn count_calls(stmts: &[LStmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    LStmt::Call { .. } => 1,
                    LStmt::Loop(l) => count_calls(&l.body),
                    LStmt::If {
                        then_body,
                        else_body,
                        ..
                    } => count_calls(then_body) + count_calls(else_body),
                    LStmt::Inlined { body, .. } => count_calls(body),
                    LStmt::Block(_) => 0,
                })
                .sum()
        }
        assert_eq!(count_calls(&o2.code[o2.main_proc.index()]), 0);
        // The loop whose body was fully removed is deleted.
        assert_eq!(o2.loops.len(), 0);

        let o0 = super::super::compile(&prog, CompileTarget::W32_O0);
        assert_eq!(o0.loops.len(), 1, "no DCE at -O0");
    }

    #[test]
    fn marker_destroying_preset_erases_symbols_and_lines() {
        let prog = simple_program();
        let plain = super::super::compile(&prog, CompileTarget::W32_O2);
        let destroyed = super::super::compile_with(
            &prog,
            CompileTarget::W32_O2,
            CompileOptions::marker_destroying(),
        );
        // Only `main` keeps a symbol; the helper is inlined away.
        assert_eq!(destroyed.procs.len(), 1);
        assert_eq!(destroyed.procs[0].name, "main");
        assert!(plain.procs.len() > destroyed.procs.len());
        // Every multi-statement loop was split; all clones carry no
        // usable line info, so no loop marker can match across binaries.
        assert!(destroyed.loops.iter().all(|l| l.line.is_none()));
        assert!(
            destroyed.loops.len() > plain.loops.len(),
            "splitting clones loops: {} vs {}",
            destroyed.loops.len(),
            plain.loops.len()
        );
        // The preset only acts at -O2: an -O0 compile is unchanged.
        let o0_plain = super::super::compile(&prog, CompileTarget::W32_O0);
        let o0_destroyed = super::super::compile_with(
            &prog,
            CompileTarget::W32_O0,
            CompileOptions::marker_destroying(),
        );
        assert_eq!(o0_plain, o0_destroyed);
    }

    #[test]
    fn unroll_hint_applies_only_at_o2() {
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.loop_with(
                TripCount::Fixed(16),
                LoopHints {
                    unroll: 4,
                    split: false,
                },
                |body| body.work(10),
            );
        });
        let prog = b.finish();
        let o0 = super::super::compile(&prog, CompileTarget::W32_O0);
        let o2 = super::super::compile(&prog, CompileTarget::W32_O2);
        assert_eq!(o0.loops[0].unroll, 1);
        assert_eq!(o2.loops[0].unroll, 4);
        assert_eq!(
            o2.loops[0].line, o0.loops[0].line,
            "unrolling keeps the line"
        );
    }
}
