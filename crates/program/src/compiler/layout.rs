//! Data layout assignment.
//!
//! Places each array in the binary's address space. Element sizes follow
//! the target's pointer width (see [`ElemKind`](crate::memory::ElemKind)),
//! so pointer-heavy programs have a genuinely larger footprint in 64-bit
//! binaries. Bases are page-aligned with a small deterministic skew per
//! array to avoid pathological cache-set aliasing between arrays.

use super::CompileTarget;
use crate::binary::{ArrayLayout, DataLayout};
use crate::memory::ArrayDecl;

/// Start of the data segment.
const DATA_BASE: u64 = 0x1000_0000;
/// Base of the stack region (grows upward in this model).
const STACK_BASE: u64 = 0x7000_0000;
/// Page size used for alignment.
const PAGE: u64 = 4096;
/// Per-array skew in bytes (13 cache lines) to de-correlate set indices.
const SKEW: u64 = 13 * 64;

/// Computes the layout of `arrays` for `target`.
pub fn assign(arrays: &[ArrayDecl], target: CompileTarget) -> DataLayout {
    let ptr = target.width.pointer_bytes();
    let mut cursor = DATA_BASE;
    let mut placed = Vec::with_capacity(arrays.len());
    for (i, a) in arrays.iter().enumerate() {
        let elem_bytes = a.elem.size_bytes(ptr);
        let base = cursor + (i as u64 * SKEW) % PAGE;
        placed.push(ArrayLayout {
            base,
            elem_bytes,
            len: a.len.max(1),
        });
        let footprint = a.len.max(1) * u64::from(elem_bytes);
        cursor = (base + footprint).div_ceil(PAGE) * PAGE + PAGE;
    }
    DataLayout {
        arrays: placed,
        stack_base: STACK_BASE,
        frame_bytes: match target.width {
            super::Width::W32 => 384,
            super::Width::W64 => 512,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ArrayId;
    use crate::memory::ElemKind;

    fn arr(id: u32, elem: ElemKind, len: u64) -> ArrayDecl {
        ArrayDecl {
            id: ArrayId(id),
            name: format!("a{id}"),
            elem,
            len,
        }
    }

    #[test]
    fn arrays_do_not_overlap() {
        let arrays = vec![
            arr(0, ElemKind::F64, 10_000),
            arr(1, ElemKind::Ptr, 50_000),
            arr(2, ElemKind::I32, 123),
        ];
        let l = assign(&arrays, CompileTarget::W64_O2);
        for w in l.arrays.windows(2) {
            let end = w[0].base + w[0].len * u64::from(w[0].elem_bytes);
            assert!(end <= w[1].base, "arrays overlap: {w:?}");
        }
    }

    #[test]
    fn pointer_arrays_grow_on_64_bit() {
        let arrays = vec![arr(0, ElemKind::Ptr, 1000)];
        let l32 = assign(&arrays, CompileTarget::W32_O2);
        let l64 = assign(&arrays, CompileTarget::W64_O2);
        assert_eq!(l32.arrays[0].elem_bytes, 4);
        assert_eq!(l64.arrays[0].elem_bytes, 8);
    }

    #[test]
    fn layout_is_deterministic() {
        let arrays = vec![arr(0, ElemKind::F64, 777), arr(1, ElemKind::I32, 333)];
        assert_eq!(
            assign(&arrays, CompileTarget::W32_O0),
            assign(&arrays, CompileTarget::W32_O0)
        );
    }

    #[test]
    fn zero_length_arrays_get_one_element() {
        let arrays = vec![arr(0, ElemKind::F64, 0)];
        let l = assign(&arrays, CompileTarget::W32_O2);
        assert_eq!(l.arrays[0].len, 1);
    }
}
