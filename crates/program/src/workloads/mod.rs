//! The benchmark suite.
//!
//! Twenty-one synthetic programs named after the SPEC CPU2000 subset the
//! paper evaluates (§4): ammp, applu, apsi, art, bzip2, crafty, eon,
//! equake, fma3d, gcc, gzip, lucas, mcf, mesa, perlbmk, sixtrack, swim,
//! twolf, vortex, vpr, wupwise. Each generator produces a
//! [`SourceProgram`] with its own phase topology, call/loop structure,
//! memory behaviour, and optimization hazards:
//!
//! * **applu** reproduces the paper's hardest case (§5.1): five
//!   near-identical PDE solver procedures, all inlined at `-O2`, whose
//!   loops are additionally split — optimized binaries retain almost no
//!   mappable structure in those regions, so mapped intervals balloon.
//! * **gcc** has a wide, flat call tree and phases whose instruction
//!   shares shift strongly between binaries (the Table 2 bias study).
//! * **apsi** shifts phase proportions between 32- and 64-bit binaries
//!   through pointer-heavy data (the Table 3 bias study).
//! * **mcf** chases pointers through a DRAM-sized working set whose
//!   footprint doubles on 64-bit targets.
//!
//! These programs are *not* the SPEC sources; they are scaled stand-ins
//! that exercise the same analysis code paths (see DESIGN.md,
//! "Substitutions").

mod cfp;
mod cint;
pub(crate) mod helpers;

use crate::input::Scale;
use crate::source::SourceProgram;

/// A named benchmark generator.
#[derive(Clone, Copy)]
pub struct Workload {
    /// Benchmark name (matches the paper's figures).
    pub name: &'static str,
    /// One-line description of the modelled behaviour.
    pub description: &'static str,
    build: fn(Scale) -> SourceProgram,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .finish()
    }
}

impl Workload {
    /// Builds the source program at the given scale.
    pub fn build(&self, scale: Scale) -> SourceProgram {
        let prog = (self.build)(scale);
        debug_assert_eq!(prog.validate(), Ok(()), "workload {} invalid", self.name);
        prog
    }
}

/// The full 21-benchmark suite, in the paper's (alphabetical) order.
pub fn suite() -> &'static [Workload] {
    const SUITE: &[Workload] = &[
        Workload {
            name: "ammp",
            description: "molecular dynamics: neighbour-list gather + periodic rebuild",
            build: cfp::ammp,
        },
        Workload {
            name: "applu",
            description: "PDE solver; inlined+split loops defeat mapping (paper's hard case)",
            build: cfp::applu,
        },
        Workload {
            name: "apsi",
            description: "pollutant transport; pointer footprint shifts phases per width",
            build: cfp::apsi,
        },
        Workload {
            name: "art",
            description: "neural-net recognition; scan phases give way to training",
            build: cfp::art,
        },
        Workload {
            name: "bzip2",
            description: "block compression with periodic decompress verification",
            build: cint::bzip2,
        },
        Workload {
            name: "crafty",
            description: "chess search; branchy, L1-resident, inlined evaluator",
            build: cint::crafty,
        },
        Workload {
            name: "eon",
            description: "probabilistic ray tracing with random reflection branches",
            build: cint::eon,
        },
        Workload {
            name: "equake",
            description: "earthquake simulation; gather-heavy sparse matvec",
            build: cfp::equake,
        },
        Workload {
            name: "fma3d",
            description: "crash simulation; inlined element kernels (recovery succeeds)",
            build: cfp::fma3d,
        },
        Workload {
            name: "gcc",
            description: "13-pass compiler pipeline; more behaviours than cluster budget",
            build: cint::gcc,
        },
        Workload {
            name: "gzip",
            description: "LZ77 compression; sliding-window gather, unrolled CRC",
            build: cint::gzip,
        },
        Workload {
            name: "lucas",
            description: "primality testing via FFT; strided butterflies",
            build: cfp::lucas,
        },
        Workload {
            name: "mcf",
            description: "network simplex; DRAM pointer chasing, width-dependent footprint",
            build: cint::mcf,
        },
        Workload {
            name: "mesa",
            description: "software rendering; vertex/raster/texture stages",
            build: cfp::mesa,
        },
        Workload {
            name: "perlbmk",
            description: "interpreter; regex/eval dispatch with GC sweeps",
            build: cint::perlbmk,
        },
        Workload {
            name: "sixtrack",
            description: "particle tracking; tiny working set, lowest CPI",
            build: cfp::sixtrack,
        },
        Workload {
            name: "swim",
            description: "shallow-water stencils; the textbook regular-phase program",
            build: cfp::swim,
        },
        Workload {
            name: "twolf",
            description: "placement annealing; trip counts ramp down with temperature",
            build: cint::twolf,
        },
        Workload {
            name: "vortex",
            description: "OO database; build/query/delete mega-phases",
            build: cint::vortex,
        },
        Workload {
            name: "vpr",
            description: "FPGA place (anneal) then route (strided graph walks)",
            build: cint::vpr,
        },
        Workload {
            name: "wupwise",
            description: "lattice QCD; inlined SU(3) kernel, periodic reductions",
            build: cfp::wupwise,
        },
    ];
    SUITE
}

/// Looks up a benchmark by name.
pub fn by_name(name: &str) -> Option<Workload> {
    suite().iter().copied().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile, CompileTarget};
    use crate::exec::{run, NullSink};
    use crate::input::Input;

    /// Calibration report: run with
    /// `cargo test -p cbsp-program --release -- --ignored --nocapture`.
    #[test]
    #[ignore = "calibration report, run explicitly in release mode"]
    fn print_reference_scale_instruction_counts() {
        for w in suite() {
            let prog = w.build(Scale::Reference);
            print!("{:10}", w.name);
            for t in CompileTarget::ALL_FOUR {
                let bin = compile(&prog, t);
                let s = run(&bin, &Input::reference(), &mut NullSink);
                print!(
                    " {}={:>6.2}M/{:>5.2}Ma",
                    t,
                    s.instructions as f64 / 1e6,
                    s.accesses as f64 / 1e6
                );
            }
            println!();
        }
    }

    #[test]
    fn suite_has_21_unique_benchmarks() {
        let names: Vec<_> = suite().iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 21);
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 21, "duplicate names");
        assert!(by_name("gcc").is_some());
        assert!(by_name("nosuch").is_none());
    }

    #[test]
    fn every_workload_builds_and_validates_at_test_scale() {
        for w in suite() {
            let prog = w.build(Scale::Test);
            assert_eq!(prog.validate(), Ok(()), "{} invalid", w.name);
            assert_eq!(prog.name, w.name);
        }
    }

    #[test]
    fn every_workload_compiles_and_runs_on_all_four_targets() {
        for w in suite() {
            let prog = w.build(Scale::Test);
            for t in CompileTarget::ALL_FOUR {
                let bin = compile(&prog, t);
                let s = run(&bin, &Input::test(), &mut NullSink);
                assert!(
                    s.instructions > 10_000,
                    "{} {} too small: {} instrs",
                    w.name,
                    t,
                    s.instructions
                );
            }
        }
    }

    #[test]
    fn marker_counts_agree_across_binaries_for_every_workload() {
        // The foundational invariant of the whole paper: semantic counts
        // (total loop iterations, procedure entries by name) agree across
        // every compilation.
        for w in suite() {
            let prog = w.build(Scale::Test);
            let summaries: Vec<_> = CompileTarget::ALL_FOUR
                .iter()
                .map(|&t| {
                    let bin = compile(&prog, t);
                    let s = run(&bin, &Input::test(), &mut NullSink);
                    (bin, s)
                })
                .collect();
            let (ref bin0, ref s0) = summaries[0];
            for (bin, s) in &summaries[1..] {
                // Procedure entries by symbol name must agree where the
                // symbol exists in both.
                for (i, p) in bin.procs.iter().enumerate() {
                    if let Some(j) = bin0.proc_by_name(&p.name) {
                        assert_eq!(
                            s.proc_entries[i],
                            s0.proc_entries[j.index()],
                            "{}: proc {} count mismatch",
                            w.name,
                            p.name
                        );
                    }
                }
                // Total loop iterations (sum over back branches,
                // re-expanded by unroll grouping) are conserved only
                // when no unrolling hints exist; totals per source loop
                // of *entries* are always conserved.
                let mut entries0 = std::collections::BTreeMap::new();
                for (i, l) in bin0.loops.iter().enumerate() {
                    *entries0.entry(l.ground_truth_source).or_insert(0u64) += s0.loop_entries[i];
                }
                let mut entries1 = std::collections::BTreeMap::new();
                for (i, l) in bin.loops.iter().enumerate() {
                    *entries1.entry(l.ground_truth_source).or_insert(0u64) += s.loop_entries[i];
                }
                for (src, n1) in &entries1 {
                    if let Some(n0) = entries0.get(src) {
                        // Split clones multiply entries; normalize by
                        // clone count is complex — require equality only
                        // when both binaries have one lowering.
                        let c0 = bin0
                            .loops
                            .iter()
                            .filter(|l| l.ground_truth_source == *src)
                            .count();
                        let c1 = bin
                            .loops
                            .iter()
                            .filter(|l| l.ground_truth_source == *src)
                            .count();
                        if c0 == 1 && c1 == 1 {
                            assert_eq!(n1, n0, "{}: loop {src:?} entry count mismatch", w.name);
                        }
                    }
                }
            }
        }
    }
}
