//! Shared scaling helpers for workload generators.

use crate::input::Scale;

/// Scale dimensions: `w` multiplies outer trip counts (work), `d`
/// multiplies data footprints.
#[derive(Debug, Clone, Copy)]
pub(crate) struct D {
    /// Work factor (1 for `Test`, 24 for `Reference`).
    pub w: u64,
    /// Data factor (1 for `Test`, 4 for `Reference`).
    pub d: u64,
}

/// Returns the scale dimensions for `scale`.
pub(crate) fn dims(scale: Scale) -> D {
    D {
        w: scale.work_factor(),
        d: scale.data_factor(),
    }
}

/// Array length (in `f64` elements) for an L1-resident working set
/// (~16 KB at reference scale; always below the 32 KB L1).
pub(crate) fn l1_elems(_d: &D) -> u64 {
    2_000
}

/// Array length for an L2-resident working set (~64–256 KB).
pub(crate) fn l2_elems(d: &D) -> u64 {
    8_000 * d.d
}

/// Array length for an L3-resident working set (~0.25–1 MB... at
/// reference scale ~768 KB, between the 512 KB L2 and 1 MB L3).
pub(crate) fn l3_elems(d: &D) -> u64 {
    24_000 * d.d
}

/// Array length for a DRAM-heavy working set (~1–4 MB, well past the
/// 1 MB L3 at reference scale).
pub(crate) fn dram_elems(d: &D) -> u64 {
    128_000 * d.d
}

/// Defines an `init_data` procedure that writes through every line of
/// the given arrays once (stride ≈ one access per 64-byte line).
///
/// Real programs initialize their data before computing on it; without
/// this, compulsory misses smear a cold-start transient across the
/// first intervals of the *compute* phases, which — at this scaled-down
/// interval size — would distort phase representatives in a way the
/// paper's 100M-instruction intervals never see. With it, the
/// compulsory misses form their own (correctly weighted) init phase.
pub(crate) fn define_init(
    b: &mut crate::builder::ProgramBuilder,
    arrays: &[(crate::ids::ArrayId, u64)],
) {
    use crate::memory::{ArrayOp, OpKind};
    b.proc("init_data", |p| {
        for &(a, len) in arrays {
            let trips = (len / 256).max(4);
            p.loop_fixed(trips, |body| {
                body.compute(110, |k| {
                    k.op(ArrayOp::new(a, OpKind::Strided { stride: 8 }, 32).with_write_pct(90));
                });
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_are_strictly_increasing() {
        let d = dims(Scale::Reference);
        assert!(l1_elems(&d) < l2_elems(&d));
        assert!(l2_elems(&d) < l3_elems(&d));
        assert!(l3_elems(&d) < dram_elems(&d));
    }

    #[test]
    fn reference_tiers_straddle_the_cache_capacities() {
        let d = dims(Scale::Reference);
        // f64 = 8 bytes.
        assert!(l1_elems(&d) * 8 <= 32 * 1024, "L1 tier fits in 32 KB L1");
        assert!(l2_elems(&d) * 8 > 32 * 1024, "L2 tier exceeds L1");
        assert!(l2_elems(&d) * 8 <= 512 * 1024, "L2 tier fits in 512 KB L2");
        assert!(l3_elems(&d) * 8 > 512 * 1024, "L3 tier exceeds L2");
        assert!(
            dram_elems(&d) * 8 > 1024 * 1024,
            "DRAM tier exceeds 1 MB L3"
        );
    }
}
