//! Floating-point benchmarks (SPEC CFP2000-like stand-ins).
//!
//! Every generator documents which real program behaviours it models
//! and which cross-binary hazards (inlining, unrolling, splitting) it
//! carries. See the [module docs](super) for the suite overview.

use super::helpers::{dims, dram_elems, l1_elems, l2_elems, l3_elems};
use crate::builder::ProgramBuilder;
use crate::input::Scale;
use crate::source::{Cond, LoopHints, SourceProgram, TripCount};

/// `ammp`: molecular dynamics. Gather over a neighbour list, streaming
/// force accumulation, and a periodic neighbour-list rebuild that
/// touches a DRAM-sized array randomly (a rare, expensive phase).
pub(super) fn ammp(scale: Scale) -> SourceProgram {
    let d = dims(scale);
    let mut b = ProgramBuilder::new("ammp");
    let neigh = b.array_i32("neighbors", l3_elems(&d));
    let forces = b.array_f64("forces", l2_elems(&d));
    let coords = b.array_f64("coords", dram_elems(&d));

    b.proc("main", |p| {
        p.call("init_data");
        p.call("mm_init");
        p.loop_fixed(28 * d.w, |step| {
            step.call("u_f_nonbon");
            step.call("f_bond");
            // Neighbour-list rebuild every 8 steps: random sweep over
            // the coordinate array (DRAM tier).
            step.if_then(Cond::IterMod { m: 8, r: 3 }, |t| {
                t.call("rebuild_list");
            });
        });
    });
    b.proc("mm_init", |p| {
        p.loop_fixed(40, |body| {
            body.compute(50, |k| {
                k.seq(coords, 24);
            });
        });
    });
    b.proc("u_f_nonbon", |p| {
        p.loop_random(26, 34, |body| {
            body.compute(70, |k| {
                k.gather(neigh, 4096, 16).seq(forces, 6);
            });
        });
    });
    b.proc("f_bond", |p| {
        p.loop_random(37, 43, |body| {
            body.compute(88, |k| {
                k.seq(forces, 10);
            });
            body.compute(14, |k| {
                k.removable();
            });
        });
    });
    b.proc("rebuild_list", |p| {
        p.loop_random(185, 215, |body| {
            body.compute(40, |k| {
                k.random(coords, 8).seq(neigh, 4);
            });
        });
    });
    super::helpers::define_init(
        &mut b,
        &[
            (neigh, l3_elems(&d)),
            (forces, l2_elems(&d)),
            (coords, dram_elems(&d)),
        ],
    );
    b.finish()
}

/// `applu`: the paper's hardest case (§5.1). A driver loop calls five
/// near-identical PDE solver procedures; at `-O2` all five are inlined
/// *and* their loops are split with code motion. The five solvers use
/// identical trip counts, so inline recovery by trip-count signature is
/// ambiguous — optimized binaries retain no mappable markers inside a
/// driver iteration, and mapped intervals balloon (Figure 2's outlier).
pub(super) fn applu(scale: Scale) -> SourceProgram {
    let d = dims(scale);
    let mut b = ProgramBuilder::new("applu");
    let rsd = b.array_f64("rsd", l2_elems(&d));
    let u = b.array_f64("u", dram_elems(&d));
    let flux = b.array_f64("flux", l2_elems(&d));

    // One driver iteration is ~0.5M instructions of unmappable solver
    // code, so VLIs grow to several times the target size.
    let solver_trips = 150 * d.d;
    let solvers = ["jacld", "blts", "jacu", "buts", "rhs"];

    b.proc("main", |p| {
        p.call("init_data");
        p.call("setbv");
        p.loop_fixed((d.w / 2).max(2), |step| {
            for s in solvers {
                step.call(s);
            }
            // Small data-dependent correction step: varies the driver
            // iterations' code signatures slightly, as real timesteps do.
            step.if_then(Cond::Random { num: 1, den: 3 }, |t| t.work(400));
        });
        p.call("l2norm");
    });
    b.proc("setbv", |p| {
        p.loop_random(55, 65, |body| {
            body.compute(45, |k| {
                k.seq(u, 16);
            });
        });
    });
    for (i, s) in solvers.iter().enumerate() {
        // All five solvers share the same looping structure and trip
        // counts ("each of the five procedures has a similar looping
        // structure since they are doing a similar operation").
        let arr = match i % 3 {
            0 => rsd,
            1 => u,
            _ => flux,
        };
        b.inline_proc(s, |p| {
            p.loop_with(
                TripCount::Fixed(solver_trips),
                LoopHints {
                    unroll: 0,
                    split: true,
                },
                |body| {
                    body.compute(62, |k| {
                        k.stencil(arr, 9, 10);
                    });
                    body.compute(64, |k| {
                        k.seq(rsd, 8);
                    });
                },
            );
        });
    }
    b.proc("l2norm", |p| {
        p.loop_random(74, 86, |body| {
            body.compute(35, |k| {
                k.seq(rsd, 12);
            });
        });
    });
    super::helpers::define_init(
        &mut b,
        &[
            (rsd, l2_elems(&d)),
            (u, dram_elems(&d)),
            (flux, l2_elems(&d)),
        ],
    );
    b.finish()
}

/// `apsi`: pollutant-transport solver; the Table 3 bias study. Its
/// dominant phase is dense f64 compute, but a pointer-indexed scatter
/// phase doubles its footprint on 64-bit targets, shifting phase CPI
/// and weights between the 32- and 64-bit optimized binaries.
pub(super) fn apsi(scale: Scale) -> SourceProgram {
    let d = dims(scale);
    let mut b = ProgramBuilder::new("apsi");
    let field = b.array_f64("field", l2_elems(&d));
    let index = b.array_ptr("cell_index", dram_elems(&d));
    let work = b.array_f64("work", l1_elems(&d));

    b.proc("main", |p| {
        p.call("init_data");
        p.loop_fixed(30 * d.w, |step| {
            // Phase A (dominant): dense advection kernel.
            step.call("dcdtz");
            // Phase B: pointer-indexed scatter; footprint is
            // width-dependent (Ptr elements).
            step.call("wcont");
            // Phase C: small filter, every 3rd step.
            step.if_then(Cond::IterMod { m: 3, r: 1 }, |t| t.call("smth"));
        });
    });
    b.proc("dcdtz", |p| {
        p.loop_random(40, 50, |body| {
            body.compute(96, |k| {
                k.stencil(field, 12, 12);
            });
            // Redundant bookkeeping removed by -O2 (shifts the O0/O2
            // per-phase instruction ratio).
            body.compute(22, |k| {
                k.seq(work, 2).removable();
            });
        });
    });
    b.proc("wcont", |p| {
        p.loop_random(16, 20, |body| {
            body.compute(58, |k| {
                k.gather(index, 8192, 14).seq(field, 4);
            });
        });
    });
    b.proc("smth", |p| {
        p.loop_random(11, 13, |body| {
            body.compute(46, |k| {
                k.seq(work, 10);
            });
        });
    });
    super::helpers::define_init(
        &mut b,
        &[
            (field, l2_elems(&d)),
            (index, dram_elems(&d)),
            (work, l1_elems(&d)),
        ],
    );
    b.finish()
}

/// `art`: neural-network image recognition. A long scan phase over the
/// feature arrays alternates with a match phase; the final quarter of
/// the run switches to a training phase with heavier compute (time-
/// varying behaviour that per-binary FLI slicing cuts differently).
pub(super) fn art(scale: Scale) -> SourceProgram {
    let d = dims(scale);
    let mut b = ProgramBuilder::new("art");
    let f1 = b.array_f64("f1_layer", l3_elems(&d));
    let weights = b.array_f64("weights", l2_elems(&d));
    let train_cutoff = 30 * d.w; // first 3/4 of 40w iterations scan

    b.proc("main", |p| {
        p.call("init_data");
        p.loop_fixed(40 * d.w, |step| {
            step.if_else(
                Cond::IterLt(train_cutoff),
                |scan| {
                    scan.call("compute_values_match");
                },
                |train| {
                    train.call("weightadj");
                },
            );
            step.call("match_check");
        });
    });
    b.proc("compute_values_match", |p| {
        p.loop_random(32, 38, |body| {
            body.compute(60, |k| {
                k.seq(f1, 20);
            });
        });
    });
    b.proc("weightadj", |p| {
        p.loop_random(46, 54, |body| {
            body.compute(82, |k| {
                k.seq(weights, 8).stencil(f1, 6, 6);
            });
        });
    });
    b.proc("match_check", |p| {
        p.loop_random(23, 27, |body| {
            body.compute(48, |k| {
                k.random(weights, 10);
            });
        });
    });
    super::helpers::define_init(&mut b, &[(f1, l3_elems(&d)), (weights, l2_elems(&d))]);
    b.finish()
}

/// `equake`: earthquake simulation. A sparse matrix-vector product
/// (gather-heavy) dominates, with an unrolled time-integration kernel
/// whose loop-body branch is therefore unmappable across optimization
/// levels (entries stay mappable).
pub(super) fn equake(scale: Scale) -> SourceProgram {
    let d = dims(scale);
    let mut b = ProgramBuilder::new("equake");
    let k_matrix = b.array_f64("K", dram_elems(&d));
    let disp = b.array_f64("disp", l2_elems(&d));
    let vel = b.array_f64("vel", l1_elems(&d));

    b.proc("main", |p| {
        p.call("init_data");
        p.call("mem_init");
        p.loop_fixed(30 * d.w, |step| {
            step.call("smvp");
            step.call("time_integration");
        });
    });
    b.proc("mem_init", |p| {
        p.loop_random(92, 108, |body| {
            body.compute(30, |k| {
                k.seq(k_matrix, 20);
            });
        });
    });
    b.proc("smvp", |p| {
        p.loop_random(46, 54, |body| {
            body.compute(72, |k| {
                k.gather(k_matrix, 16384, 14).seq(disp, 4);
            });
        });
    });
    b.proc("time_integration", |p| {
        p.loop_with(
            TripCount::Random { lo: 28, hi: 33 },
            LoopHints {
                unroll: 4,
                split: false,
            },
            |body| {
                body.compute(56, |k| {
                    k.seq(vel, 8).seq(disp, 4);
                });
            },
        );
    });
    super::helpers::define_init(
        &mut b,
        &[
            (k_matrix, dram_elems(&d)),
            (disp, l2_elems(&d)),
            (vel, l1_elems(&d)),
        ],
    );
    b.finish()
}

/// `fma3d`: crash simulation with many element kinds. Call-heavy; the
/// per-element routines are inlined at `-O2` but their inner loops have
/// *distinct* trip counts, so the inline-recovery pass of `cbsp-core`
/// can re-map them unambiguously (the success case of paper §3.3).
pub(super) fn fma3d(scale: Scale) -> SourceProgram {
    let d = dims(scale);
    let mut b = ProgramBuilder::new("fma3d");
    let nodes = b.array_f64("nodes", l3_elems(&d));
    let elems = b.array_f64("elems", l2_elems(&d));
    let contact = b.array_f64("contact", dram_elems(&d));

    b.proc("main", |p| {
        p.call("init_data");
        p.loop_fixed(24 * d.w, |step| {
            step.call("solid_pass");
            step.call("shell_pass");
            step.if_then(Cond::IterMod { m: 4, r: 0 }, |t| t.call("contact_pass"));
        });
    });
    b.proc("solid_pass", |p| {
        p.loop_random(28, 32, |body| {
            body.call("elem_solid");
        });
    });
    b.proc("shell_pass", |p| {
        p.loop_random(20, 24, |body| {
            body.call("elem_shell");
        });
    });
    // Distinct inner trip counts (6 vs 4): recoverable after inlining.
    b.inline_proc("elem_solid", |p| {
        p.loop_fixed(6, |body| {
            body.compute(20, |k| {
                k.seq(elems, 3);
            });
        });
        p.compute(18, |k| {
            k.seq(nodes, 4);
        });
    });
    b.inline_proc("elem_shell", |p| {
        p.loop_fixed(4, |body| {
            body.compute(24, |k| {
                k.seq(elems, 3);
            });
        });
        p.compute(16, |k| {
            k.stencil(nodes, 5, 4);
        });
    });
    b.proc("contact_pass", |p| {
        p.loop_random(37, 43, |body| {
            body.compute(52, |k| {
                k.random(contact, 10);
            });
        });
    });
    super::helpers::define_init(
        &mut b,
        &[
            (nodes, l3_elems(&d)),
            (elems, l2_elems(&d)),
            (contact, dram_elems(&d)),
        ],
    );
    b.finish()
}

/// `lucas`: Lucas-Lehmer primality testing via FFT squaring. Few, very
/// hot loops with strided (butterfly) access; the carry-propagation
/// loop is unrolled at `-O2`.
pub(super) fn lucas(scale: Scale) -> SourceProgram {
    let d = dims(scale);
    let mut b = ProgramBuilder::new("lucas");
    let x = b.array_f64("x", dram_elems(&d) / 2);
    let y = b.array_f64("y", l3_elems(&d));

    b.proc("main", |p| {
        p.call("init_data");
        p.loop_fixed(26 * d.w, |step| {
            step.call("fft_square");
            step.call("carry_norm");
        });
    });
    b.proc("fft_square", |p| {
        // Three butterfly stages with different strides.
        p.loop_random(11, 13, |body| {
            body.compute(66, |k| {
                k.strided(x, 64, 8);
            });
        });
        p.loop_random(11, 13, |body| {
            body.compute(66, |k| {
                k.strided(x, 8, 8);
            });
        });
        p.loop_random(11, 13, |body| {
            body.compute(60, |k| {
                k.seq(x, 8);
            });
        });
    });
    b.proc("carry_norm", |p| {
        p.loop_with(
            TripCount::Random { lo: 74, hi: 86 },
            LoopHints {
                unroll: 8,
                split: false,
            },
            |body| {
                body.compute(26, |k| {
                    k.seq(y, 4);
                });
            },
        );
    });
    super::helpers::define_init(&mut b, &[(x, dram_elems(&d) / 2), (y, l3_elems(&d))]);
    b.finish()
}

/// `mesa`: software rendering pipeline. Per-frame vertex, raster, and
/// texture stages; texturing samples a mid-sized array randomly every
/// other frame.
pub(super) fn mesa(scale: Scale) -> SourceProgram {
    let d = dims(scale);
    let mut b = ProgramBuilder::new("mesa");
    let verts = b.array_f64("vertices", l2_elems(&d));
    let fb = b.array_i32("framebuffer", l3_elems(&d));
    let tex = b.array_i32("texture", l2_elems(&d));

    b.proc("main", |p| {
        p.call("init_data");
        p.loop_fixed(30 * d.w, |frame| {
            frame.call("transform_points");
            frame.call("rasterize");
            frame.if_then(Cond::IterMod { m: 2, r: 0 }, |t| t.call("texture_pass"));
        });
    });
    b.proc("transform_points", |p| {
        p.loop_random(23, 27, |body| {
            body.compute(68, |k| {
                k.seq(verts, 10);
            });
            body.compute(12, |k| {
                k.removable();
            });
        });
    });
    b.proc("rasterize", |p| {
        p.loop_random(42, 48, |body| {
            body.compute(58, |k| {
                k.gather(fb, 2048, 12);
            });
        });
    });
    b.proc("texture_pass", |p| {
        p.loop_random(27, 33, |body| {
            body.compute(40, |k| {
                k.random(tex, 10);
            });
        });
    });
    super::helpers::define_init(
        &mut b,
        &[
            (verts, l2_elems(&d)),
            (fb, l3_elems(&d)),
            (tex, l2_elems(&d)),
        ],
    );
    b.finish()
}

/// `sixtrack`: particle tracking with a tiny working set — the lowest
/// CPI in the suite. An aperture-check phase runs rarely.
pub(super) fn sixtrack(scale: Scale) -> SourceProgram {
    let d = dims(scale);
    let mut b = ProgramBuilder::new("sixtrack");
    let particles = b.array_f64("particles", l1_elems(&d));
    let lattice = b.array_f64("lattice", l1_elems(&d));
    let dump = b.array_f64("dump", l3_elems(&d));

    b.proc("main", |p| {
        p.call("init_data");
        p.loop_fixed(45 * d.w, |turn| {
            turn.call("thin6d");
            turn.if_then(Cond::IterMod { m: 16, r: 7 }, |t| t.call("aperture_check"));
        });
    });
    b.proc("thin6d", |p| {
        p.loop_with(
            TripCount::Random { lo: 56, hi: 64 },
            LoopHints {
                unroll: 4,
                split: false,
            },
            |body| {
                body.compute(52, |k| {
                    k.seq(particles, 4).seq(lattice, 2);
                });
            },
        );
    });
    b.proc("aperture_check", |p| {
        p.loop_random(92, 108, |body| {
            body.compute(38, |k| {
                k.seq(dump, 8);
            });
        });
    });
    super::helpers::define_init(
        &mut b,
        &[
            (particles, l1_elems(&d)),
            (lattice, l1_elems(&d)),
            (dump, l3_elems(&d)),
        ],
    );
    b.finish()
}

/// `swim`: shallow-water stencil code. Three big streaming/stencil
/// kernels per timestep (one unrolled), the textbook regular-phase
/// program where both SimPoint variants should do well.
pub(super) fn swim(scale: Scale) -> SourceProgram {
    let d = dims(scale);
    let mut b = ProgramBuilder::new("swim");
    let u = b.array_f64("u", dram_elems(&d) / 2);
    let v = b.array_f64("v", dram_elems(&d) / 2);
    let pnew = b.array_f64("pnew", l3_elems(&d));

    b.proc("main", |p| {
        p.call("init_data");
        p.loop_fixed(35 * d.w, |step| {
            step.call("calc1");
            step.call("calc2");
            step.if_then(Cond::IterMod { m: 2, r: 1 }, |t| t.call("calc3"));
        });
    });
    b.proc("calc1", |p| {
        p.loop_with(
            TripCount::Random { lo: 24, hi: 28 },
            LoopHints {
                unroll: 4,
                split: false,
            },
            |body| {
                body.compute(78, |k| {
                    k.stencil(u, 16, 12);
                });
            },
        );
    });
    b.proc("calc2", |p| {
        p.loop_random(24, 28, |body| {
            body.compute(80, |k| {
                k.stencil(v, 16, 12);
            });
        });
    });
    b.proc("calc3", |p| {
        p.loop_random(28, 33, |body| {
            body.compute(62, |k| {
                k.seq(pnew, 10);
            });
        });
    });
    super::helpers::define_init(
        &mut b,
        &[
            (u, dram_elems(&d) / 2),
            (v, dram_elems(&d) / 2),
            (pnew, l3_elems(&d)),
        ],
    );
    b.finish()
}

/// `wupwise`: lattice QCD. A dominant inlined SU(3) matrix kernel
/// (distinct trips — recoverable) plus a periodic norm reduction.
pub(super) fn wupwise(scale: Scale) -> SourceProgram {
    let d = dims(scale);
    let mut b = ProgramBuilder::new("wupwise");
    let gauge = b.array_f64("gauge", dram_elems(&d) / 2);
    let spinor = b.array_f64("spinor", l3_elems(&d));

    b.proc("main", |p| {
        p.call("init_data");
        p.loop_fixed(26 * d.w, |iter| {
            iter.call("dslash");
            iter.if_then(Cond::IterMod { m: 4, r: 2 }, |t| t.call("norm"));
        });
    });
    b.proc("dslash", |p| {
        p.loop_random(34, 42, |site| {
            site.call("su3_mul");
            site.compute(24, |k| {
                k.seq(gauge, 6);
            });
        });
    });
    b.inline_proc("su3_mul", |p| {
        p.loop_fixed(3, |body| {
            body.compute(34, |k| {
                k.seq(spinor, 4);
            });
        });
    });
    b.proc("norm", |p| {
        p.loop_random(55, 65, |body| {
            body.compute(44, |k| {
                k.seq(spinor, 8);
            });
        });
    });
    super::helpers::define_init(
        &mut b,
        &[(gauge, dram_elems(&d) / 2), (spinor, l3_elems(&d))],
    );
    b.finish()
}
