//! Integer benchmarks (SPEC CINT2000-like stand-ins).
//!
//! See the [module docs](super) for the suite overview.

use super::helpers::{dims, dram_elems, l1_elems, l2_elems, l3_elems};
use crate::builder::ProgramBuilder;
use crate::input::Scale;
use crate::source::{Cond, LoopHints, SourceProgram, TripCount};

/// `bzip2`: block compression. Per-block read/sort/MTF/Huffman stages
/// with a verification (decompress) pass every third block — the
/// alternating-phase structure typical of compress benchmarks.
pub(super) fn bzip2(scale: Scale) -> SourceProgram {
    let d = dims(scale);
    let mut b = ProgramBuilder::new("bzip2");
    let block = b.array_i32("block", l2_elems(&d));
    let sorted = b.array_i32("sorted", l3_elems(&d));
    let huff = b.array_i32("huff_tables", l1_elems(&d));

    b.proc("main", |p| {
        p.call("init_data");
        p.loop_fixed(14 * d.w, |blk| {
            blk.call("read_block");
            blk.call("block_sort");
            blk.call("mtf_encode");
            blk.call("huffman");
            blk.if_then(Cond::IterMod { m: 3, r: 2 }, |t| t.call("verify_block"));
        });
    });
    b.proc("read_block", |p| {
        p.loop_random(18, 22, |body| {
            body.compute(56, |k| {
                k.seq(block, 12);
            });
        });
    });
    b.proc("block_sort", |p| {
        p.loop_random(40, 50, |body| {
            body.compute(48, |k| {
                k.random(sorted, 12);
            });
        });
    });
    b.proc("mtf_encode", |p| {
        p.loop_random(28, 33, |body| {
            body.compute(40, |k| {
                k.seq(block, 8);
            });
        });
    });
    b.proc("huffman", |p| {
        p.loop_random(23, 27, |body| {
            body.compute(52, |k| {
                k.gather(huff, 256, 6);
            });
        });
    });
    b.proc("verify_block", |p| {
        p.loop_random(32, 38, |body| {
            body.compute(42, |k| {
                k.seq(sorted, 8);
            });
        });
    });
    super::helpers::define_init(
        &mut b,
        &[
            (block, l2_elems(&d)),
            (sorted, l3_elems(&d)),
            (huff, l1_elems(&d)),
        ],
    );
    b.finish()
}

/// `crafty`: chess. Deep search loop with a branchy inlined evaluator
/// (distinct trips — recoverable after inlining) over an L1-resident
/// working set: the highest-IPC integer code in the suite.
pub(super) fn crafty(scale: Scale) -> SourceProgram {
    let d = dims(scale);
    let mut b = ProgramBuilder::new("crafty");
    let board = b.array_i32("board", l1_elems(&d));
    let hash = b.array_ptr("hash_table", l3_elems(&d));

    b.proc("main", |p| {
        p.call("init_data");
        p.loop_fixed(18 * d.w, |mv| {
            mv.call("search");
            mv.if_then(Cond::IterMod { m: 8, r: 1 }, |t| t.call("book_probe"));
        });
    });
    b.proc("search", |p| {
        p.loop_random(36, 44, |node| {
            node.call("evaluate");
            node.compute(28, |k| {
                k.gather(hash, 1024, 3);
            });
            node.if_then(Cond::Random { num: 1, den: 5 }, |t| {
                t.compute(36, |k| {
                    k.seq(board, 4);
                });
            });
        });
    });
    b.inline_proc("evaluate", |p| {
        p.loop_fixed(5, |body| {
            body.compute(26, |k| {
                k.seq(board, 3);
            });
        });
    });
    b.proc("book_probe", |p| {
        p.loop_random(13, 17, |body| {
            body.compute(30, |k| {
                k.random(hash, 4);
            });
        });
    });
    super::helpers::define_init(&mut b, &[(board, l1_elems(&d)), (hash, l3_elems(&d))]);
    b.finish()
}

/// `eon`: probabilistic ray tracing. Per-pixel shading call tree with
/// random reflection branches.
pub(super) fn eon(scale: Scale) -> SourceProgram {
    let d = dims(scale);
    let mut b = ProgramBuilder::new("eon");
    let scene = b.array_f64("scene", l2_elems(&d));
    let image = b.array_f64("image", l1_elems(&d));

    b.proc("main", |p| {
        p.call("init_data");
        p.loop_fixed(20 * d.w, |pixel| {
            pixel.call("trace_rays");
            pixel.if_then(Cond::IterMod { m: 4, r: 3 }, |t| t.call("antialias"));
        });
    });
    b.proc("trace_rays", |p| {
        p.loop_random(55, 65, |ray| {
            ray.call("shade");
            ray.if_then(Cond::Random { num: 1, den: 4 }, |t| {
                t.compute(58, |k| {
                    k.gather(scene, 512, 4);
                });
            });
        });
    });
    b.proc("shade", |p| {
        p.compute(78, |k| {
            k.seq(scene, 6).seq(image, 2);
        });
    });
    b.proc("antialias", |p| {
        p.loop_random(28, 33, |body| {
            body.compute(46, |k| {
                k.seq(image, 8);
            });
        });
    });
    super::helpers::define_init(&mut b, &[(scene, l2_elems(&d)), (image, l1_elems(&d))]);
    b.finish()
}

/// `gcc`: the Table 2 bias study. A long pipeline of 13 distinct
/// optimization passes per input function — more unique behaviours than
/// SimPoint's 10-cluster budget, so per-binary clusterings are forced to
/// group behaviours, and they group them *differently* in different
/// binaries. A sprinkle of removable bookkeeping shifts per-pass
/// instruction shares between `-O0` and `-O2`.
pub(super) fn gcc(scale: Scale) -> SourceProgram {
    let d = dims(scale);
    let mut b = ProgramBuilder::new("gcc");
    let rtl = b.array_ptr("rtl", l3_elems(&d));
    let symtab = b.array_ptr("symtab", l2_elems(&d));
    let regs = b.array_i32("regs", l1_elems(&d));
    let text = b.array_i32("text", l2_elems(&d));
    let df = b.array_i32("dataflow", dram_elems(&d));

    // Thirteen passes with genuinely different kernels, footprints and
    // patterns.
    let passes: &[(&str, u32, u64)] = &[
        ("parse", 54, 0),
        ("expand", 66, 1),
        ("jump_opt", 44, 2),
        ("cse_pass", 72, 3),
        ("gcse_pass", 80, 4),
        ("loop_opt", 62, 5),
        ("cprop", 48, 6),
        ("flow_analysis", 70, 7),
        ("combine_pass", 58, 8),
        ("sched1", 76, 9),
        ("regalloc", 84, 10),
        ("sched2", 64, 11),
        ("final_pass", 40, 12),
    ];

    b.proc("main", |p| {
        p.call("init_data");
        p.loop_fixed(4 * d.w, |func| {
            for (name, _, _) in passes {
                func.call(name);
            }
        });
    });
    for &(name, work, variant) in passes {
        b.proc(name, |p| {
            p.loop_random(30, 40, |body| {
                match variant % 5 {
                    0 => body.compute(work, |k| {
                        k.seq(text, 10);
                    }),
                    1 => body.compute(work, |k| {
                        k.gather(rtl, 2048, 8);
                    }),
                    2 => body.compute(work, |k| {
                        k.random(symtab, 6);
                    }),
                    3 => body.compute(work, |k| {
                        k.random(df, 8);
                    }),
                    _ => body.compute(work, |k| {
                        k.seq(regs, 6).gather(symtab, 512, 3);
                    }),
                }
                if variant % 3 == 0 {
                    body.compute(16, |k| {
                        k.removable();
                    });
                }
                if variant % 4 == 1 {
                    body.if_then(Cond::Random { num: 1, den: 3 }, |t| {
                        t.compute(30, |k| {
                            k.seq(text, 4);
                        });
                    });
                }
            });
        });
    }
    super::helpers::define_init(
        &mut b,
        &[
            (rtl, l3_elems(&d)),
            (symtab, l2_elems(&d)),
            (regs, l1_elems(&d)),
            (text, l2_elems(&d)),
            (df, dram_elems(&d)),
        ],
    );
    b.finish()
}

/// `gzip`: LZ77 compression. Deflate with a sliding-window gather,
/// alternating with inflate verification, plus an unrolled CRC loop.
pub(super) fn gzip(scale: Scale) -> SourceProgram {
    let d = dims(scale);
    let mut b = ProgramBuilder::new("gzip");
    let window = b.array_i32("window", l2_elems(&d));
    let outbuf = b.array_i32("outbuf", l1_elems(&d));

    b.proc("main", |p| {
        p.call("init_data");
        p.loop_fixed(20 * d.w, |chunk| {
            chunk.call("deflate");
            chunk.if_then(Cond::IterMod { m: 2, r: 1 }, |t| t.call("inflate_verify"));
            chunk.call("updcrc");
        });
    });
    b.proc("deflate", |p| {
        p.loop_random(46, 54, |body| {
            body.compute(54, |k| {
                k.gather(window, 4096, 10);
            });
        });
    });
    b.proc("inflate_verify", |p| {
        p.loop_random(37, 43, |body| {
            body.compute(44, |k| {
                k.seq(outbuf, 8);
            });
        });
    });
    b.proc("updcrc", |p| {
        p.loop_with(
            TripCount::Random { lo: 18, hi: 22 },
            LoopHints {
                unroll: 8,
                split: false,
            },
            |body| {
                body.compute(24, |k| {
                    k.seq(outbuf, 2);
                });
            },
        );
    });
    super::helpers::define_init(&mut b, &[(window, l2_elems(&d)), (outbuf, l1_elems(&d))]);
    b.finish()
}

/// `mcf`: network simplex. Pointer chasing over a DRAM-sized arc array
/// whose footprint doubles on 64-bit targets — the strongest
/// width-dependent CPI in the suite.
pub(super) fn mcf(scale: Scale) -> SourceProgram {
    let d = dims(scale);
    let mut b = ProgramBuilder::new("mcf");
    let arcs = b.array_ptr("arcs", dram_elems(&d));
    let nodes = b.array_ptr("nodes", l3_elems(&d));
    let basket = b.array_i32("basket", l1_elems(&d));

    b.proc("main", |p| {
        p.call("init_data");
        p.loop_fixed(22 * d.w, |iter| {
            iter.call("pbeampp");
            iter.call("refresh_prices");
            iter.if_then(Cond::IterMod { m: 5, r: 4 }, |t| t.call("flow_update"));
        });
    });
    b.proc("pbeampp", |p| {
        p.loop_random(40, 50, |body| {
            body.compute(38, |k| {
                k.gather(arcs, 32768, 14).seq(basket, 2);
            });
        });
    });
    b.proc("refresh_prices", |p| {
        p.loop_random(55, 65, |body| {
            body.compute(34, |k| {
                k.seq(nodes, 10);
            });
        });
    });
    b.proc("flow_update", |p| {
        p.loop_random(74, 86, |body| {
            body.compute(30, |k| {
                k.random(arcs, 6);
            });
        });
    });
    super::helpers::define_init(
        &mut b,
        &[
            (arcs, dram_elems(&d)),
            (nodes, l3_elems(&d)),
            (basket, l1_elems(&d)),
        ],
    );
    b.finish()
}

/// `perlbmk`: interpreter. An opcode-dispatch loop that alternates
/// between regex-matching and expression-evaluation behaviour, plus a
/// periodic garbage-collection sweep.
pub(super) fn perlbmk(scale: Scale) -> SourceProgram {
    let d = dims(scale);
    let mut b = ProgramBuilder::new("perlbmk");
    let heap = b.array_ptr("heap", l3_elems(&d));
    let stack = b.array_i32("op_stack", l1_elems(&d));
    let strings = b.array_i32("strings", l2_elems(&d));

    b.proc("main", |p| {
        p.call("init_data");
        p.loop_fixed(26 * d.w, |op| {
            op.call("runops");
            op.if_then(Cond::IterMod { m: 6, r: 5 }, |t| t.call("gc_sweep"));
        });
    });
    b.proc("runops", |p| {
        p.loop_random(50, 60, |body| {
            body.compute(34, |k| {
                k.seq(stack, 3);
            });
            body.if_else(
                Cond::IterMod { m: 7, r: 2 },
                |regex| {
                    regex.compute(50, |k| {
                        k.gather(strings, 1024, 8);
                    });
                },
                |eval| {
                    eval.compute(40, |k| {
                        k.random(heap, 4);
                    });
                },
            );
        });
    });
    b.proc("gc_sweep", |p| {
        p.loop_random(46, 54, |body| {
            body.compute(38, |k| {
                k.seq(heap, 10);
            });
        });
    });
    super::helpers::define_init(
        &mut b,
        &[
            (heap, l3_elems(&d)),
            (stack, l1_elems(&d)),
            (strings, l2_elems(&d)),
        ],
    );
    b.finish()
}

/// `twolf`: placement annealing. Propose/accept moves with random
/// acceptance; the proposal loop's trip count *ramps down* as the
/// temperature drops — slow within-run drift that a single simulation
/// point per phase cannot fully represent (visible per-phase bias).
pub(super) fn twolf(scale: Scale) -> SourceProgram {
    let d = dims(scale);
    let mut b = ProgramBuilder::new("twolf");
    let cells = b.array_i32("cells", l3_elems(&d));
    let nets = b.array_i32("nets", l2_elems(&d));
    let total = 30 * d.w;

    b.proc("main", |p| {
        p.call("init_data");
        p.loop_fixed(total, |temp| {
            temp.call("propose_moves");
            temp.if_then(Cond::Random { num: 2, den: 5 }, |t| t.call("accept_update"));
            temp.call("cost_eval");
        });
    });
    let slope_den = total.max(1);
    b.proc("propose_moves", |p| {
        // Entry index of this loop advances once per temperature step;
        // the trip count decays from 60 to ~20 over the run.
        p.loop_with(
            TripCount::Ramp {
                base: 60,
                slope_num: -(40i64),
                slope_den,
            },
            LoopHints::default(),
            |body| {
                body.compute(46, |k| {
                    k.gather(cells, 2048, 8);
                });
            },
        );
    });
    b.proc("accept_update", |p| {
        p.loop_random(32, 38, |body| {
            body.compute(56, |k| {
                k.seq(nets, 8);
            });
        });
    });
    b.proc("cost_eval", |p| {
        p.loop_random(13, 17, |body| {
            body.compute(42, |k| {
                k.seq(cells, 6);
            });
        });
    });
    super::helpers::define_init(&mut b, &[(cells, l3_elems(&d)), (nets, l2_elems(&d))]);
    b.finish()
}

/// `vortex`: object-oriented database. A wide call tree over three
/// mega-phases (build, query, delete) selected by the outer iteration
/// index.
pub(super) fn vortex(scale: Scale) -> SourceProgram {
    let d = dims(scale);
    let mut b = ProgramBuilder::new("vortex");
    let objects = b.array_ptr("objects", l3_elems(&d));
    let index = b.array_ptr("index", l2_elems(&d));
    let total = 36 * d.w;

    b.proc("main", |p| {
        p.call("init_data");
        p.loop_fixed(total, |txn| {
            txn.if_else(
                Cond::IterLt(total / 3),
                |build| build.call("obj_insert"),
                |rest| {
                    rest.if_else(
                        Cond::IterLt(2 * total / 3),
                        |query| query.call("obj_lookup"),
                        |del| del.call("obj_delete"),
                    );
                },
            );
            txn.if_then(Cond::IterMod { m: 10, r: 9 }, |t| t.call("mem_compact"));
        });
    });
    b.proc("obj_insert", |p| {
        p.loop_random(34, 42, |body| {
            body.compute(74, |k| {
                k.seq(objects, 8).gather(index, 1024, 4);
            });
        });
    });
    b.proc("obj_lookup", |p| {
        p.loop_random(40, 50, |body| {
            body.compute(60, |k| {
                k.gather(index, 4096, 8);
            });
        });
    });
    b.proc("obj_delete", |p| {
        p.loop_random(28, 36, |body| {
            body.compute(66, |k| {
                k.random(objects, 8);
            });
        });
    });
    b.proc("mem_compact", |p| {
        p.loop_random(55, 65, |body| {
            body.compute(40, |k| {
                k.seq(objects, 12);
            });
        });
    });
    super::helpers::define_init(&mut b, &[(objects, l3_elems(&d)), (index, l2_elems(&d))]);
    b.finish()
}

/// `vpr`: FPGA place-and-route. Two sequential mega-phases — annealing
/// placement (gather + random acceptance) followed by routing (strided
/// walks over the routing graph).
pub(super) fn vpr(scale: Scale) -> SourceProgram {
    let d = dims(scale);
    let mut b = ProgramBuilder::new("vpr");
    let grid = b.array_i32("grid", l2_elems(&d));
    let rr_graph = b.array_ptr("rr_graph", dram_elems(&d));

    b.proc("main", |p| {
        p.call("init_data");
        // Phase 1: placement.
        p.loop_fixed(40 * d.w, |mv| {
            mv.call("try_swap");
            mv.if_then(Cond::Random { num: 1, den: 3 }, |t| t.call("commit_swap"));
        });
        // Phase 2: routing.
        p.loop_fixed(20 * d.w, |net| {
            net.call("route_net");
        });
    });
    b.proc("try_swap", |p| {
        p.loop_random(32, 38, |body| {
            body.compute(52, |k| {
                k.gather(grid, 1024, 8);
            });
        });
    });
    b.proc("commit_swap", |p| {
        p.loop_random(13, 17, |body| {
            body.compute(34, |k| {
                k.seq(grid, 6);
            });
        });
    });
    b.proc("route_net", |p| {
        p.loop_random(36, 44, |body| {
            body.compute(50, |k| {
                k.strided(rr_graph, 16, 10);
            });
        });
    });
    super::helpers::define_init(&mut b, &[(grid, l2_elems(&d)), (rr_graph, dram_elems(&d))]);
    b.finish()
}
