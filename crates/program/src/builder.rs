//! Fluent construction of [`SourceProgram`]s.
//!
//! The builder assigns unique line numbers and loop/array/procedure ids
//! automatically, so workload generators can focus on structure:
//!
//! ```
//! use cbsp_program::ProgramBuilder;
//!
//! let mut b = ProgramBuilder::new("demo");
//! let data = b.array_f64("data", 4096);
//! b.proc("main", |p| {
//!     p.loop_fixed(100, |body| {
//!         body.compute(50, |k| {
//!             k.seq(data, 16);
//!         });
//!     });
//! });
//! let program = b.finish();
//! assert!(program.validate().is_ok());
//! ```

use crate::ids::{ArrayId, Line, LoopId, ProcId};
use crate::memory::{ArrayDecl, ArrayOp, ElemKind, OpKind};
use crate::source::{
    CallStmt, ComputeStmt, Cond, IfStmt, LoopHints, LoopStmt, Procedure, SourceProgram, Stmt,
    TripCount,
};
use std::collections::BTreeMap;

/// Builder for a [`SourceProgram`]. See the crate-level example.
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    procedures: Vec<Procedure>,
    proc_ids: BTreeMap<String, ProcId>,
    arrays: Vec<ArrayDecl>,
    next_line: u32,
    next_loop: u32,
}

impl ProgramBuilder {
    /// Starts a program with the given benchmark name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            procedures: Vec::new(),
            proc_ids: BTreeMap::new(),
            arrays: Vec::new(),
            next_line: 1,
            next_loop: 0,
        }
    }

    fn fresh_line(&mut self) -> Line {
        let l = Line(self.next_line);
        self.next_line += 1;
        l
    }

    /// Declares an array of `f64` elements.
    pub fn array_f64(&mut self, name: &str, len: u64) -> ArrayId {
        self.declare(name, ElemKind::F64, len)
    }

    /// Declares an array of `i32` elements.
    pub fn array_i32(&mut self, name: &str, len: u64) -> ArrayId {
        self.declare(name, ElemKind::I32, len)
    }

    /// Declares an array of pointer-sized elements (footprint depends on
    /// the compilation target's pointer width).
    pub fn array_ptr(&mut self, name: &str, len: u64) -> ArrayId {
        self.declare(name, ElemKind::Ptr, len)
    }

    /// Declares an array with an explicit element kind.
    pub fn declare(&mut self, name: &str, elem: ElemKind, len: u64) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(ArrayDecl {
            id,
            name: name.to_string(),
            elem,
            len,
        });
        id
    }

    /// Pre-registers a procedure name so it can be called before it is
    /// defined (mutual recursion, call-before-define ordering).
    pub fn declare_proc(&mut self, name: &str) -> ProcId {
        if let Some(&id) = self.proc_ids.get(name) {
            return id;
        }
        let id = ProcId(self.procedures.len() as u32);
        self.proc_ids.insert(name.to_string(), id);
        self.procedures.push(Procedure {
            id,
            name: name.to_string(),
            line: Line(0), // patched in `define`
            body: Vec::new(),
            inline_always: false,
        });
        id
    }

    /// Defines a procedure. The first procedure defined is the entry
    /// point and should be `main`.
    pub fn proc(&mut self, name: &str, build: impl FnOnce(&mut BodyBuilder<'_>)) -> ProcId {
        self.proc_with(name, false, build)
    }

    /// Defines a procedure that the optimizing compiler will always
    /// inline (`-O2`), destroying its symbol in optimized binaries.
    pub fn inline_proc(&mut self, name: &str, build: impl FnOnce(&mut BodyBuilder<'_>)) -> ProcId {
        self.proc_with(name, true, build)
    }

    fn proc_with(
        &mut self,
        name: &str,
        inline_always: bool,
        build: impl FnOnce(&mut BodyBuilder<'_>),
    ) -> ProcId {
        let id = self.declare_proc(name);
        let line = self.fresh_line();
        let mut body = Vec::new();
        {
            let mut bb = BodyBuilder {
                program: self,
                stmts: &mut body,
            };
            build(&mut bb);
        }
        let p = &mut self.procedures[id.index()];
        assert!(
            p.body.is_empty() && p.line == Line(0),
            "procedure {name} defined twice"
        );
        p.line = line;
        p.body = body;
        p.inline_always = inline_always;
        id
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics if a declared procedure was never defined, or if the
    /// program fails [`SourceProgram::validate`].
    pub fn finish(self) -> SourceProgram {
        for p in &self.procedures {
            assert!(
                p.line != Line(0),
                "procedure {} declared but never defined",
                p.name
            );
        }
        let prog = SourceProgram {
            name: self.name,
            procedures: self.procedures,
            arrays: self.arrays,
        };
        if let Err(e) = prog.validate() {
            panic!("builder produced an invalid program: {e}");
        }
        prog
    }
}

/// Builds a statement list (a procedure body, loop body, or branch arm).
#[derive(Debug)]
pub struct BodyBuilder<'a> {
    program: &'a mut ProgramBuilder,
    stmts: &'a mut Vec<Stmt>,
}

impl BodyBuilder<'_> {
    /// Appends a compute kernel of `work_units` abstract cost; memory
    /// operations are described through the [`KernelBuilder`].
    pub fn compute(&mut self, work_units: u32, ops: impl FnOnce(&mut KernelBuilder)) {
        let line = self.program.fresh_line();
        let mut kb = KernelBuilder {
            ops: Vec::new(),
            removable: false,
        };
        ops(&mut kb);
        self.stmts.push(Stmt::Compute(ComputeStmt {
            line,
            work_units,
            ops: kb.ops,
            removable: kb.removable,
        }));
    }

    /// Appends a pure-compute kernel with no memory traffic.
    pub fn work(&mut self, work_units: u32) {
        self.compute(work_units, |_| {});
    }

    /// Appends a call to the named procedure (declared on demand).
    pub fn call(&mut self, name: &str) {
        let callee = self.program.declare_proc(name);
        let line = self.program.fresh_line();
        self.stmts.push(Stmt::Call(CallStmt { line, callee }));
    }

    /// Appends a fixed-trip loop.
    pub fn loop_fixed(&mut self, trips: u64, body: impl FnOnce(&mut BodyBuilder<'_>)) {
        self.loop_with(TripCount::Fixed(trips), LoopHints::default(), body);
    }

    /// Appends a random-trip loop (uniform in `[lo, hi]`).
    pub fn loop_random(&mut self, lo: u64, hi: u64, body: impl FnOnce(&mut BodyBuilder<'_>)) {
        self.loop_with(TripCount::Random { lo, hi }, LoopHints::default(), body);
    }

    /// Appends a loop with explicit trip count and hints.
    pub fn loop_with(
        &mut self,
        trip: TripCount,
        hints: LoopHints,
        body: impl FnOnce(&mut BodyBuilder<'_>),
    ) {
        let line = self.program.fresh_line();
        let id = LoopId(self.program.next_loop);
        self.program.next_loop += 1;
        let mut stmts = Vec::new();
        {
            let mut bb = BodyBuilder {
                program: self.program,
                stmts: &mut stmts,
            };
            body(&mut bb);
        }
        self.stmts.push(Stmt::Loop(LoopStmt {
            id,
            line,
            trip,
            body: stmts,
            hints,
        }));
    }

    /// Appends an if-then (empty else).
    pub fn if_then(&mut self, cond: Cond, then_body: impl FnOnce(&mut BodyBuilder<'_>)) {
        self.if_else(cond, then_body, |_| {});
    }

    /// Appends an if-then-else.
    pub fn if_else(
        &mut self,
        cond: Cond,
        then_body: impl FnOnce(&mut BodyBuilder<'_>),
        else_body: impl FnOnce(&mut BodyBuilder<'_>),
    ) {
        let line = self.program.fresh_line();
        let mut tb = Vec::new();
        {
            let mut bb = BodyBuilder {
                program: self.program,
                stmts: &mut tb,
            };
            then_body(&mut bb);
        }
        let mut eb = Vec::new();
        {
            let mut bb = BodyBuilder {
                program: self.program,
                stmts: &mut eb,
            };
            else_body(&mut bb);
        }
        self.stmts.push(Stmt::If(IfStmt {
            line,
            cond,
            then_body: tb,
            else_body: eb,
        }));
    }
}

/// Describes the memory operations of one compute kernel.
#[derive(Debug)]
pub struct KernelBuilder {
    ops: Vec<ArrayOp>,
    removable: bool,
}

impl KernelBuilder {
    /// Adds a raw operation.
    pub fn op(&mut self, op: ArrayOp) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Adds `count` sequential (streaming) accesses to `array`.
    pub fn seq(&mut self, array: ArrayId, count: u32) -> &mut Self {
        self.op(ArrayOp::new(array, OpKind::Sequential, count))
    }

    /// Adds `count` strided accesses to `array`.
    pub fn strided(&mut self, array: ArrayId, stride: u32, count: u32) -> &mut Self {
        self.op(ArrayOp::new(array, OpKind::Strided { stride }, count))
    }

    /// Adds `count` uniformly random accesses to `array`.
    pub fn random(&mut self, array: ArrayId, count: u32) -> &mut Self {
        self.op(ArrayOp::new(array, OpKind::RandomUniform, count))
    }

    /// Adds `count` windowed-random (gather) accesses to `array`.
    pub fn gather(&mut self, array: ArrayId, window: u32, count: u32) -> &mut Self {
        self.op(ArrayOp::new(array, OpKind::Gather { window }, count))
    }

    /// Adds `count` stencil accesses to `array`.
    pub fn stencil(&mut self, array: ArrayId, radius: u32, count: u32) -> &mut Self {
        self.op(ArrayOp::new(array, OpKind::Stencil { radius }, count))
    }

    /// Marks this kernel as removable by the optimizing compiler.
    pub fn removable(&mut self) -> &mut Self {
        self.removable = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Stmt;

    #[test]
    fn builder_assigns_unique_lines_and_loops() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array_f64("a", 64);
        b.proc("main", |p| {
            p.loop_fixed(3, |body| {
                body.compute(10, |k| {
                    k.seq(a, 4);
                });
                body.loop_fixed(2, |inner| inner.work(5));
            });
            p.call("helper");
        });
        b.proc("helper", |p| p.work(1));
        let prog = b.finish();
        assert!(prog.validate().is_ok());
        assert_eq!(prog.loop_count(), 2);
        assert_eq!(prog.procedures.len(), 2);
    }

    #[test]
    fn call_before_define_resolves() {
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| p.call("late"));
        b.proc("late", |p| p.work(1));
        let prog = b.finish();
        let main = prog.main();
        match &main.body[0] {
            Stmt::Call(c) => {
                assert_eq!(prog.procedures[c.callee.index()].name, "late");
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_definition_panics() {
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| p.work(1));
        b.proc("main", |p| p.work(1));
    }

    #[test]
    #[should_panic(expected = "never defined")]
    fn undefined_callee_panics_on_finish() {
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| p.call("ghost"));
        let _ = b.finish();
    }
}
