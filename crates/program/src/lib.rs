//! # cbsp-program — the program substrate
//!
//! Everything the Cross Binary SimPoint paper takes as given from its
//! environment — SPEC binaries, an optimizing compiler, and Pin-level
//! observability — rebuilt as a deterministic, laptop-scale model:
//!
//! * a **source IR** ([`SourceProgram`]) whose execution semantics are
//!   fixed by an [`Input`] and therefore identical across compilations;
//! * a **workload suite** ([`workloads`]) of 21 benchmarks named after
//!   the paper's SPEC CPU2000 subset, each with its own phase topology
//!   and optimization hazards;
//! * a **compiler** ([`compile`]) producing four [`Binary`] variants per
//!   program ({32, 64-bit} × {`-O0`, `-O2`}) with real structural
//!   transformations — inlining, unrolling, loop splitting, DCE — and
//!   per-target instruction scaling;
//! * an **executor** ([`run`]) that streams basic-block, memory-access,
//!   and marker events to any [`TraceSink`] (the role Pin plays in the
//!   paper).
//!
//! ## Example
//!
//! ```
//! use cbsp_program::{workloads, compile, run, CompileTarget, Input, NullSink};
//!
//! let program = workloads::by_name("gzip").expect("in suite").build(
//!     cbsp_program::Scale::Test,
//! );
//! let binary = compile(&program, CompileTarget::W32_O2);
//! let summary = run(&binary, &Input::test(), &mut NullSink);
//! assert!(summary.instructions > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
mod builder;
pub mod compiler;
mod disasm;
pub mod exec;
mod ids;
mod input;
pub mod memory;
mod pretty;
pub mod rng;
pub mod source;
pub mod workloads;

pub use binary::{
    BinLoop, BinProc, Binary, CloneRole, DataLayout, LStmt, LoweredLoop, StaticBlock,
};
pub use builder::{BodyBuilder, KernelBuilder, ProgramBuilder};
pub use compiler::{
    compile, compile_cost_estimate_ns, compile_with, CompileOptions, CompileTarget, OptLevel, Width,
};
pub use exec::{run, ExecSummary, Marker, NullSink, TeeSink, TraceSink};
pub use ids::{ArrayId, BinLoopId, BinProcId, BlockId, Line, LoopId, ProcId};
pub use input::{Input, Scale};
pub use memory::{ArrayDecl, ArrayOp, ElemKind, OpKind};
pub use source::{Cond, LoopHints, Procedure, SourceProgram, Stmt, TripCount};
