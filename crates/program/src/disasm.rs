//! Lowered-code listings.
//!
//! [`Binary::disassemble`] renders the compiled statement tree the way
//! a disassembler-with-debug-info would: blocks with instruction
//! counts, loops with their unroll factors and clone roles, inlined
//! bodies marked. Indispensable when debugging why a marker did or did
//! not match across binaries (`cbsp inspect --code 1`).

use crate::binary::{Binary, CloneRole, LStmt};
use std::fmt::Write as _;

impl Binary {
    /// Renders the lowered code of every procedure.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "; {} — {} blocks, {} loops",
            self.label(),
            self.blocks.len(),
            self.loops.len()
        );
        for (pi, body) in self.code.iter().enumerate() {
            let p = &self.procs[pi];
            let _ = writeln!(out, "\n{}:  ; source {}", p.name, p.line);
            self.walk(body, 1, &mut out);
        }
        out
    }

    fn walk(&self, stmts: &[LStmt], depth: usize, out: &mut String) {
        let pad = "    ".repeat(depth);
        for s in stmts {
            match s {
                LStmt::Block(b) => {
                    let blk = &self.blocks[b.index()];
                    let mut extras = String::new();
                    if !blk.ops.is_empty() {
                        let accesses: u32 = blk.ops.iter().map(|o| o.count).sum();
                        let _ = write!(extras, ", {accesses} mem ops");
                    }
                    if blk.stack_accesses > 0 {
                        let _ = write!(extras, ", {} spills", blk.stack_accesses);
                    }
                    let _ = writeln!(out, "{pad}{b}: {} instrs{extras}", blk.instrs);
                }
                LStmt::Loop(l) => {
                    let meta = &self.loops[l.id.index()];
                    let line = meta
                        .line
                        .map(|ln| ln.to_string())
                        .unwrap_or_else(|| "<line info lost>".to_string());
                    let clone = match l.clone {
                        CloneRole::Original => String::new(),
                        CloneRole::SplitClone { index } => format!(" split-clone#{index}"),
                    };
                    let unroll = if l.unroll > 1 {
                        format!(" unroll x{}", l.unroll)
                    } else {
                        String::new()
                    };
                    let _ = writeln!(out, "{pad}{}: loop @ {line}{unroll}{clone} {{", l.id);
                    self.walk(&l.body, depth + 1, out);
                    let _ = writeln!(out, "{pad}}}");
                }
                LStmt::Call { callee, .. } => {
                    let _ = writeln!(out, "{pad}call {}", self.procs[callee.index()].name);
                }
                LStmt::Inlined { site, body, .. } => {
                    let _ = writeln!(out, "{pad}inlined@{site} {{");
                    self.walk(body, depth + 1, out);
                    let _ = writeln!(out, "{pad}}}");
                }
                LStmt::If {
                    then_body,
                    else_body,
                    site,
                    ..
                } => {
                    let _ = writeln!(out, "{pad}branch@{site} {{");
                    self.walk(then_body, depth + 1, out);
                    if !else_body.is_empty() {
                        let _ = writeln!(out, "{pad}}} else {{");
                        self.walk(else_body, depth + 1, out);
                    }
                    let _ = writeln!(out, "{pad}}}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use crate::compiler::{compile, CompileTarget};
    use crate::source::{LoopHints, TripCount};

    fn program() -> crate::source::SourceProgram {
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.loop_with(
                TripCount::Fixed(8),
                LoopHints {
                    unroll: 0,
                    split: true,
                },
                |body| {
                    body.work(10);
                    body.work(20);
                },
            );
            p.call("leaf");
        });
        b.inline_proc("leaf", |p| {
            p.loop_with(
                TripCount::Fixed(4),
                LoopHints {
                    unroll: 2,
                    split: false,
                },
                |body| body.work(5),
            );
        });
        b.finish()
    }

    #[test]
    fn o2_listing_shows_the_transformations() {
        let o2 = compile(&program(), CompileTarget::W64_O2);
        let listing = o2.disassemble();
        assert!(listing.contains("split-clone#1"), "{listing}");
        assert!(listing.contains("<line info lost>"));
        assert!(listing.contains("inlined@"));
        assert!(listing.contains("unroll x2"));
    }

    #[test]
    fn o0_listing_shows_plain_structure() {
        let o0 = compile(&program(), CompileTarget::W32_O0);
        let listing = o0.disassemble();
        assert!(listing.contains("call leaf"));
        assert!(!listing.contains("split-clone"));
        assert!(!listing.contains("inlined@"));
        assert!(listing.contains("spills"), "O0 kernels spill");
    }
}
