//! Deterministic, coordinate-keyed pseudo-randomness.
//!
//! The execution model requires that every *semantic* random decision —
//! a loop trip count, a branch outcome, a random array index — be a pure
//! function of `(input seed, source coordinate, occurrence index)`.
//! That way every binary compiled from the same source replays exactly
//! the same decisions, which is the invariant the whole cross-binary
//! mapping technique rests on (paper §3.1: mappable markers must execute
//! the same number of times in every binary).
//!
//! [`SplitMix64`] is also used as a cheap stateful stream generator for
//! purely microarchitectural noise (e.g. address jitter) where
//! cross-binary agreement is *not* required.

/// Finalizing mix function of SplitMix64 (Steele et al., "Fast splittable
/// pseudorandom number generators").
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines two 64-bit values into one well-mixed value.
#[inline]
pub fn combine(a: u64, b: u64) -> u64 {
    mix64(a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A deterministic value for a `(seed, coordinate, occurrence)` triple.
///
/// This is the single source of semantic randomness in the executor.
#[inline]
pub fn keyed(seed: u64, coord: u64, occurrence: u64) -> u64 {
    mix64(seed ^ mix64(coord) ^ occurrence.wrapping_mul(0xD605_1353_29AE_0666))
}

/// Maps a raw 64-bit value into `[lo, hi]` (inclusive), without bias that
/// matters at our scales.
#[inline]
pub fn in_range(raw: u64, lo: u64, hi: u64) -> u64 {
    debug_assert!(lo <= hi);
    let span = hi - lo + 1;
    lo + (raw % span)
}

/// A minimal SplitMix64 stream generator.
///
/// Used for microarchitectural noise that does not need to agree across
/// binaries. For semantic decisions use [`keyed`] instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value of the stream.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Returns a value uniform in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Returns a value uniform in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A build-hasher for `HashMap<u64, _>` keys that are already well mixed.
///
/// The executor keys its occurrence counters by pre-mixed 64-bit
/// coordinates, so hashing again would be wasted work.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassThroughBuild;

impl std::hash::BuildHasher for PassThroughBuild {
    type Hasher = PassThroughHasher;

    fn build_hasher(&self) -> PassThroughHasher {
        PassThroughHasher(0)
    }
}

/// Hasher that passes 64-bit keys straight through. See [`PassThroughBuild`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PassThroughHasher(u64);

impl std::hash::Hasher for PassThroughHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path, only hit for non-u64 keys: fold bytes in.
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
        self.0 = mix64(self.0);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyed_is_deterministic() {
        assert_eq!(keyed(1, 2, 3), keyed(1, 2, 3));
        assert_ne!(keyed(1, 2, 3), keyed(1, 2, 4));
        assert_ne!(keyed(1, 2, 3), keyed(2, 2, 3));
    }

    #[test]
    fn in_range_stays_in_bounds() {
        for raw in [0u64, 1, u64::MAX, 12345] {
            let v = in_range(raw, 10, 20);
            assert!((10..=20).contains(&v));
        }
        assert_eq!(in_range(999, 7, 7), 7);
    }

    #[test]
    fn splitmix_streams_are_reproducible() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_f64_in_unit_interval() {
        let mut g = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = g.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn mix_spreads_small_inputs() {
        // Consecutive inputs must land far apart (avalanche sanity check).
        let a = mix64(1);
        let b = mix64(2);
        assert!((a ^ b).count_ones() > 16);
    }
}
