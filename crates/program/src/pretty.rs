//! Human-readable rendering of source programs.
//!
//! `SourceProgram` implements [`std::fmt::Display`] through this
//! module, producing a pseudo-C listing with line numbers, loop
//! hints, and memory-operation summaries — what `cbsp source <bench>`
//! prints.

use crate::memory::OpKind;
use crate::source::{Cond, SourceProgram, Stmt, TripCount};
use std::fmt;

impl fmt::Display for SourceProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {} {{", self.name)?;
        for a in &self.arrays {
            writeln!(f, "    {:?} {}[{}];", a.elem, a.name, a.len)?;
        }
        for p in &self.procedures {
            let inline = if p.inline_always { "inline " } else { "" };
            writeln!(f)?;
            writeln!(f, "    {}fn {}() {{  // line {}", inline, p.name, p.line.0)?;
            write_stmts(f, self, &p.body, 2)?;
            writeln!(f, "    }}")?;
        }
        writeln!(f, "}}")
    }
}

fn indent(f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    for _ in 0..depth {
        write!(f, "    ")?;
    }
    Ok(())
}

fn write_stmts(
    f: &mut fmt::Formatter<'_>,
    prog: &SourceProgram,
    stmts: &[Stmt],
    depth: usize,
) -> fmt::Result {
    for s in stmts {
        match s {
            Stmt::Compute(c) => {
                indent(f, depth)?;
                write!(f, "compute({} units", c.work_units)?;
                for op in &c.ops {
                    let name = &prog.arrays[op.array.index()].name;
                    let pattern = match op.kind {
                        OpKind::Sequential => "seq".to_string(),
                        OpKind::Strided { stride } => format!("stride{stride}"),
                        OpKind::RandomUniform => "rand".to_string(),
                        OpKind::Gather { window } => format!("gather{window}"),
                        OpKind::Stencil { radius } => format!("stencil{radius}"),
                    };
                    write!(f, ", {name}:{pattern}x{}", op.count)?;
                }
                if c.removable {
                    write!(f, ", removable")?;
                }
                writeln!(f, ");  // line {}", c.line.0)?;
            }
            Stmt::Call(c) => {
                indent(f, depth)?;
                writeln!(
                    f,
                    "{}();  // line {}",
                    prog.procedures[c.callee.index()].name,
                    c.line.0
                )?;
            }
            Stmt::Loop(l) => {
                indent(f, depth)?;
                let trip = match l.trip {
                    TripCount::Fixed(n) => format!("{n}"),
                    TripCount::Random { lo, hi } => format!("{lo}..={hi}"),
                    TripCount::Ramp {
                        base,
                        slope_num,
                        slope_den,
                    } => format!("{base}{slope_num:+}/{slope_den}·e"),
                };
                let mut hints = String::new();
                if l.hints.unroll_factor() > 1 {
                    hints.push_str(&format!(" #[unroll({})]", l.hints.unroll_factor()));
                }
                if l.hints.split {
                    hints.push_str(" #[split]");
                }
                writeln!(
                    f,
                    "for {trip} times{hints} {{  // {} line {}",
                    l.id, l.line.0
                )?;
                write_stmts(f, prog, &l.body, depth + 1)?;
                indent(f, depth)?;
                writeln!(f, "}}")?;
            }
            Stmt::If(i) => {
                indent(f, depth)?;
                let cond = match i.cond {
                    Cond::Always => "true".to_string(),
                    Cond::Never => "false".to_string(),
                    Cond::IterLt(n) => format!("iter < {n}"),
                    Cond::IterMod { m, r } => format!("iter % {m} == {r}"),
                    Cond::EntryLt(n) => format!("entry < {n}"),
                    Cond::Random { num, den } => format!("rand() < {num}/{den}"),
                };
                writeln!(f, "if {cond} {{  // line {}", i.line.0)?;
                write_stmts(f, prog, &i.then_body, depth + 1)?;
                if !i.else_body.is_empty() {
                    indent(f, depth)?;
                    writeln!(f, "}} else {{")?;
                    write_stmts(f, prog, &i.else_body, depth + 1)?;
                }
                indent(f, depth)?;
                writeln!(f, "}}")?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use crate::source::{Cond, LoopHints, TripCount};

    #[test]
    fn listing_mentions_every_construct() {
        let mut b = ProgramBuilder::new("demo");
        let a = b.array_f64("data", 64);
        b.proc("main", |p| {
            p.loop_with(
                TripCount::Random { lo: 2, hi: 9 },
                LoopHints {
                    unroll: 4,
                    split: false,
                },
                |body| {
                    body.compute(10, |k| {
                        k.gather(a, 16, 4);
                    });
                    body.if_else(
                        Cond::IterMod { m: 3, r: 0 },
                        |t| t.call("helper"),
                        |e| e.work(5),
                    );
                },
            );
        });
        b.inline_proc("helper", |p| p.work(1));
        let listing = b.finish().to_string();
        for needle in [
            "program demo",
            "F64 data[64]",
            "fn main()",
            "inline fn helper()",
            "for 2..=9 times #[unroll(4)]",
            "gather16x4",
            "if iter % 3 == 0",
            "} else {",
            "helper();",
        ] {
            assert!(
                listing.contains(needle),
                "missing {needle:?} in:\n{listing}"
            );
        }
    }

    #[test]
    fn every_workload_renders() {
        for w in crate::workloads::suite() {
            let listing = w.build(crate::Scale::Test).to_string();
            assert!(listing.contains(&format!("program {}", w.name)));
            assert!(listing.len() > 200, "{} listing too short", w.name);
        }
    }
}
