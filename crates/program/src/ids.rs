//! Strongly-typed identifiers used throughout the program model.
//!
//! Each identifier is a thin `u32` newtype ([C-NEWTYPE]) so that a
//! source-level procedure id can never be confused with a binary-level
//! one, a basic block with a loop, and so on.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            serde::Serialize, serde::Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index backing this identifier.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                $name(raw)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

id_type! {
    /// A procedure in the *source* program.
    ProcId, "proc"
}

id_type! {
    /// A loop in the *source* program.
    ///
    /// Source loop identity is the semantic anchor: trip counts are a pure
    /// function of `(input seed, LoopId, semantic entry index)` so that
    /// every compilation of the same source executes the same iteration
    /// counts, no matter how the loop was inlined, cloned, or unrolled.
    LoopId, "loop"
}

id_type! {
    /// An array (statically-allocated data region) in the source program.
    ArrayId, "arr"
}

id_type! {
    /// A static basic block in a compiled [`Binary`](crate::Binary).
    ///
    /// Block ids are *per binary*: block 7 of the 32-bit binary has no
    /// relationship to block 7 of the 64-bit binary.
    BlockId, "bb"
}

id_type! {
    /// A procedure in a compiled [`Binary`](crate::Binary).
    BinProcId, "fn"
}

id_type! {
    /// A natural loop recovered in a compiled [`Binary`](crate::Binary).
    BinLoopId, "L"
}

/// A source line number.
///
/// Lines are the debug coordinate used to match loop branches across
/// binaries (paper §3.2.2). Every source statement is assigned a unique
/// line; optimizations may *degrade* the line information they attach to
/// transformed code, which is exactly what makes cross-binary matching
/// hard.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct Line(pub u32);

impl Line {
    /// Returns the raw line number.
    #[inline]
    pub fn number(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Line {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_prefix() {
        assert_eq!(ProcId(3).to_string(), "proc3");
        assert_eq!(BlockId(0).to_string(), "bb0");
        assert_eq!(Line(42).to_string(), "line 42");
    }

    #[test]
    fn round_trips_through_u32() {
        let id = LoopId::from(9u32);
        assert_eq!(u32::from(id), 9);
        assert_eq!(id.index(), 9);
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(BinLoopId(1) < BinLoopId(2));
        assert!(Line(10) < Line(11));
    }
}
