//! The source-level intermediate representation.
//!
//! A [`SourceProgram`] is the single artifact all binaries of a
//! benchmark are compiled from. Its execution semantics — which loops
//! iterate how often, which branches are taken, which procedure calls
//! happen, how many semantic memory accesses each kernel performs — are
//! fully determined by the program plus an [`Input`](crate::Input), and
//! are therefore *identical across every compilation*. Only the binary
//! realization (basic blocks, instruction counts, inlining, unrolling,
//! data layout) differs per target.

use crate::ids::{Line, LoopId, ProcId};
use crate::memory::{ArrayDecl, ArrayOp};
use serde::{Deserialize, Serialize};

/// How many times a loop iterates per entry.
///
/// All variants are pure functions of the input seed and the loop's
/// semantic entry index (see [`crate::rng::keyed`]), so every binary
/// observes the same trip counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TripCount {
    /// Always exactly `n` iterations.
    Fixed(u64),
    /// Uniformly random in `[lo, hi]`, keyed by `(seed, loop, entry)`.
    Random {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// Linear ramp over entries: entry `e` iterates
    /// `base + (e * slope_num) / slope_den` times. Models workloads whose
    /// inner work grows or shrinks as the outer computation proceeds
    /// (drifting phase behaviour).
    Ramp {
        /// Iterations at entry 0.
        base: u64,
        /// Numerator of per-entry growth.
        slope_num: i64,
        /// Denominator of per-entry growth (must be nonzero).
        slope_den: u64,
    },
}

impl TripCount {
    /// Evaluates the trip count for semantic entry `entry` of loop
    /// `loop_id` under `seed`.
    pub fn eval(self, seed: u64, loop_id: LoopId, entry: u64) -> u64 {
        match self {
            TripCount::Fixed(n) => n,
            TripCount::Random { lo, hi } => {
                let raw = crate::rng::keyed(seed, 0x4C50 ^ u64::from(loop_id.0) << 16, entry);
                crate::rng::in_range(raw, lo, hi)
            }
            TripCount::Ramp {
                base,
                slope_num,
                slope_den,
            } => {
                let delta = (entry as i64).saturating_mul(slope_num) / slope_den.max(1) as i64;
                let v = base as i64 + delta;
                v.max(0) as u64
            }
        }
    }
}

/// A branch condition.
///
/// Outcomes are semantic: they evaluate identically in every binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cond {
    /// Always true. (The else branch is dead code — optimizing compilers
    /// remove it.)
    Always,
    /// Always false. (The then branch is dead code.)
    Never,
    /// True while the innermost enclosing loop's current iteration index
    /// is below `n`.
    IterLt(u64),
    /// True when the innermost enclosing loop's current iteration index,
    /// modulo `m`, equals `r`.
    IterMod {
        /// Modulus (must be nonzero).
        m: u64,
        /// Residue selecting the true case.
        r: u64,
    },
    /// True when the *entry index* of the innermost enclosing loop is
    /// below `n` — switches behaviour between early and late entries of
    /// an outer computation (coarse phase changes).
    EntryLt(u64),
    /// True with probability `num/den`, keyed by
    /// `(seed, site, occurrence)`.
    Random {
        /// Numerator of the probability.
        num: u32,
        /// Denominator of the probability (must be nonzero).
        den: u32,
    },
}

/// A straight-line compute kernel.
///
/// `work_units` is an abstract cost; the compiler scales it into a
/// per-target instruction count ([`crate::compiler::scale`]). The memory
/// operations are semantic and identical across binaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeStmt {
    /// Source coordinate.
    pub line: Line,
    /// Abstract work units; roughly "instructions in the optimized
    /// 32-bit binary".
    pub work_units: u32,
    /// Memory operations performed per execution.
    pub ops: Vec<ArrayOp>,
    /// Marked removable: an optimizing compiler deletes this statement
    /// entirely (redundant computation / dead stores). Models part of
    /// the instruction-count gap between -O0 and -O2.
    pub removable: bool,
}

/// A counted loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopStmt {
    /// Loop identity (semantic anchor for trip counts).
    pub id: LoopId,
    /// Source coordinate of the loop branch.
    pub line: Line,
    /// Iterations per entry.
    pub trip: TripCount,
    /// Loop body.
    pub body: Vec<Stmt>,
    /// Optimization hints honoured by the compiler at `-O2`.
    pub hints: LoopHints,
}

/// Compiler hints attached to a loop by the workload author.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LoopHints {
    /// Unroll by this factor at `-O2` (1 = no unrolling). Unrolling
    /// divides the dynamic count of the loop-back branch, which makes
    /// the loop *body* branch unmappable across optimization levels
    /// (entry points stay mappable) — paper §3.2.1.
    pub unroll: u32,
    /// Split this loop into one clone per body statement at `-O2`,
    /// assigning the clones fresh (unmatchable) line numbers. Models the
    /// `applu` failure case of paper §5.1: loop distribution plus code
    /// motion leaves no mappable structure.
    pub split: bool,
}

impl LoopHints {
    /// Effective unroll factor (at least 1).
    pub fn unroll_factor(self) -> u32 {
        self.unroll.max(1)
    }
}

/// A direct call to another procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallStmt {
    /// Source coordinate of the call site.
    pub line: Line,
    /// Callee.
    pub callee: ProcId,
}

/// A two-way branch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IfStmt {
    /// Source coordinate of the condition.
    pub line: Line,
    /// Condition, evaluated semantically.
    pub cond: Cond,
    /// Statements executed when the condition holds.
    pub then_body: Vec<Stmt>,
    /// Statements executed otherwise.
    pub else_body: Vec<Stmt>,
}

/// A source statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// Straight-line work.
    Compute(ComputeStmt),
    /// A counted loop.
    Loop(LoopStmt),
    /// A procedure call.
    Call(CallStmt),
    /// A conditional.
    If(IfStmt),
}

/// A source procedure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Procedure {
    /// Identifier (index into [`SourceProgram::procedures`]).
    pub id: ProcId,
    /// Symbol name; survives into unstripped binaries and is the primary
    /// cross-binary matching key for procedure entry points.
    pub name: String,
    /// Source coordinate of the procedure entry.
    pub line: Line,
    /// Procedure body.
    pub body: Vec<Stmt>,
    /// Force inlining at `-O2`. Inlined procedures lose their symbol
    /// and entry point in optimized binaries (paper §3.3).
    pub inline_always: bool,
}

/// A complete source program: procedures (index 0 is `main`) plus its
/// data arrays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceProgram {
    /// Benchmark name, e.g. `"gcc"`.
    pub name: String,
    /// All procedures; `procedures[0]` is the entry point.
    pub procedures: Vec<Procedure>,
    /// All data arrays.
    pub arrays: Vec<ArrayDecl>,
}

impl SourceProgram {
    /// Looks up a procedure by name.
    pub fn procedure_by_name(&self, name: &str) -> Option<&Procedure> {
        self.procedures.iter().find(|p| p.name == name)
    }

    /// Returns the entry procedure (`main`).
    ///
    /// # Panics
    ///
    /// Panics if the program has no procedures (programs built through
    /// [`ProgramBuilder`](crate::ProgramBuilder) always have `main`).
    pub fn main(&self) -> &Procedure {
        &self.procedures[0]
    }

    /// Total number of loops in the program (static count).
    pub fn loop_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Loop(l) => 1 + count(&l.body),
                    Stmt::If(i) => count(&i.then_body) + count(&i.else_body),
                    _ => 0,
                })
                .sum()
        }
        self.procedures.iter().map(|p| count(&p.body)).sum()
    }

    /// Total number of statements in the program (static count,
    /// including nested loop and branch bodies). This is the input
    /// size the compiler lowers, so it doubles as a compile-cost
    /// predictor for work-size gating of parallel compile fan-outs.
    pub fn stmt_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Loop(l) => 1 + count(&l.body),
                    Stmt::If(i) => 1 + count(&i.then_body) + count(&i.else_body),
                    _ => 1,
                })
                .sum()
        }
        self.procedures.iter().map(|p| count(&p.body)).sum()
    }

    /// Verifies internal consistency: callee ids in range, loop/array
    /// ids unique and in range, lines unique. Returns a description of
    /// the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        use std::collections::BTreeSet;
        if self.procedures.is_empty() {
            return Err("program has no procedures".into());
        }
        let nprocs = self.procedures.len();
        let narrays = self.arrays.len();
        let mut lines = BTreeSet::new();
        let mut loops = BTreeSet::new();

        fn walk(
            stmts: &[Stmt],
            nprocs: usize,
            narrays: usize,
            lines: &mut BTreeSet<Line>,
            loops: &mut BTreeSet<LoopId>,
        ) -> Result<(), String> {
            for s in stmts {
                match s {
                    Stmt::Compute(c) => {
                        if !lines.insert(c.line) {
                            return Err(format!("duplicate {}", c.line));
                        }
                        for op in &c.ops {
                            if op.array.index() >= narrays {
                                return Err(format!("array {} out of range", op.array));
                            }
                            if op.write_pct > 100 {
                                return Err(format!("write_pct {} > 100", op.write_pct));
                            }
                        }
                    }
                    Stmt::Loop(l) => {
                        if !lines.insert(l.line) {
                            return Err(format!("duplicate {}", l.line));
                        }
                        if !loops.insert(l.id) {
                            return Err(format!("duplicate {}", l.id));
                        }
                        walk(&l.body, nprocs, narrays, lines, loops)?;
                    }
                    Stmt::Call(c) => {
                        if !lines.insert(c.line) {
                            return Err(format!("duplicate {}", c.line));
                        }
                        if c.callee.index() >= nprocs {
                            return Err(format!("callee {} out of range", c.callee));
                        }
                    }
                    Stmt::If(i) => {
                        if !lines.insert(i.line) {
                            return Err(format!("duplicate {}", i.line));
                        }
                        walk(&i.then_body, nprocs, narrays, lines, loops)?;
                        walk(&i.else_body, nprocs, narrays, lines, loops)?;
                    }
                }
            }
            Ok(())
        }

        for p in &self.procedures {
            if !lines.insert(p.line) {
                return Err(format!("duplicate {} (procedure {})", p.line, p.name));
            }
            walk(&p.body, nprocs, narrays, &mut lines, &mut loops)?;
        }

        // Call cycles would make execution non-terminating (there is no
        // data-dependent recursion bound in the model): reject them.
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); nprocs];
        fn collect(stmts: &[Stmt], out: &mut Vec<usize>) {
            for s in stmts {
                match s {
                    Stmt::Call(c) => out.push(c.callee.index()),
                    Stmt::Loop(l) => collect(&l.body, out),
                    Stmt::If(i) => {
                        collect(&i.then_body, out);
                        collect(&i.else_body, out);
                    }
                    Stmt::Compute(_) => {}
                }
            }
        }
        for (i, p) in self.procedures.iter().enumerate() {
            collect(&p.body, &mut callees[i]);
        }
        // 0 = unvisited, 1 = on stack, 2 = done.
        let mut state = vec![0u8; nprocs];
        fn dfs(
            v: usize,
            callees: &[Vec<usize>],
            state: &mut [u8],
            names: &[Procedure],
        ) -> Result<(), String> {
            state[v] = 1;
            for &w in &callees[v] {
                match state[w] {
                    1 => {
                        return Err(format!(
                            "recursive call cycle through procedure {}",
                            names[w].name
                        ))
                    }
                    0 => dfs(w, callees, state, names)?,
                    _ => {}
                }
            }
            state[v] = 2;
            Ok(())
        }
        for v in 0..nprocs {
            if state[v] == 0 {
                dfs(v, &callees, &mut state, &self.procedures)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_trip_counts_ignore_entry() {
        let t = TripCount::Fixed(7);
        assert_eq!(t.eval(1, LoopId(0), 0), 7);
        assert_eq!(t.eval(99, LoopId(3), 12), 7);
    }

    #[test]
    fn random_trip_counts_are_seed_stable_and_in_range() {
        let t = TripCount::Random { lo: 5, hi: 10 };
        for e in 0..100 {
            let a = t.eval(42, LoopId(1), e);
            let b = t.eval(42, LoopId(1), e);
            assert_eq!(a, b);
            assert!((5..=10).contains(&a));
        }
        // Different loops draw different sequences.
        let spread: Vec<u64> = (0..20).map(|e| t.eval(42, LoopId(2), e)).collect();
        let other: Vec<u64> = (0..20).map(|e| t.eval(42, LoopId(1), e)).collect();
        assert_ne!(spread, other);
    }

    #[test]
    fn ramp_trip_counts_grow_and_saturate_at_zero() {
        let t = TripCount::Ramp {
            base: 10,
            slope_num: 2,
            slope_den: 1,
        };
        assert_eq!(t.eval(0, LoopId(0), 0), 10);
        assert_eq!(t.eval(0, LoopId(0), 5), 20);
        let down = TripCount::Ramp {
            base: 4,
            slope_num: -3,
            slope_den: 1,
        };
        assert_eq!(down.eval(0, LoopId(0), 10), 0, "never negative");
    }

    #[test]
    fn call_cycles_are_rejected() {
        use crate::builder::ProgramBuilder;
        // Direct recursion.
        let prog = {
            let mut b = ProgramBuilder::new("t");
            b.proc("main", |p| p.call("f"));
            b.proc("f", |p| p.call("f"));
            // finish() would panic; build through the raw structs by
            // catching the panic instead.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.finish()))
        };
        assert!(prog.is_err(), "builder must reject direct recursion");

        // Mutual recursion.
        let prog = {
            let mut b = ProgramBuilder::new("t");
            b.proc("main", |p| p.call("a"));
            b.proc("a", |p| p.call("b"));
            b.proc("b", |p| p.call("a"));
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.finish()))
        };
        assert!(prog.is_err(), "builder must reject mutual recursion");
    }

    #[test]
    fn unroll_factor_is_at_least_one() {
        assert_eq!(LoopHints::default().unroll_factor(), 1);
        assert_eq!(
            LoopHints {
                unroll: 4,
                split: false
            }
            .unroll_factor(),
            4
        );
    }
}
