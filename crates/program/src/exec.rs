//! Deterministic execution of a [`Binary`] on an [`Input`].
//!
//! The executor walks the lowered statement tree and emits a stream of
//! trace events to a [`TraceSink`] — basic-block entries, memory
//! accesses, and marker (procedure-entry / loop-entry / loop-back)
//! executions. This plays the role Pin plays in the paper: any analysis
//! (BBV profiling, call/loop profiling, region extraction, cache
//! simulation) is a sink over this stream.
//!
//! # The cross-binary invariant
//!
//! All *semantic* decisions — trip counts, branch outcomes — are pure
//! functions of `(input seed, semantic coordinate, occurrence index)`,
//! where occurrence indices are tracked per `(call-path, source site)`.
//! Consequently every binary compiled from the same source replays the
//! same decisions, and the execution counts of corresponding markers
//! agree across binaries — the property the paper's mappable points
//! rely on (§3.2.2: "the execution count across all binary versions
//! must match").
//!
//! Split-loop clones share the source loop's trip sequence: the clone
//! with [`CloneRole::Original`] evaluates and caches the trip for each
//! semantic entry; later clones replay the cached value.

use crate::binary::{Binary, CloneRole, LStmt, LoweredLoop};
use crate::ids::{BinLoopId, BinProcId, BlockId, Line};
use crate::input::Input;
use crate::memory::OpKind;
use crate::rng::{self, PassThroughBuild, SplitMix64};
use crate::source::Cond;
use std::collections::HashMap;

/// A marker execution: the events cross-binary mapping is built on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Marker {
    /// A procedure entry point was executed.
    ProcEntry(BinProcId),
    /// A loop was entered (once per entry, regardless of iterations).
    LoopEntry(BinLoopId),
    /// The loop-back branch executed (once per iteration, or per
    /// unrolled group in unrolled loops).
    LoopBack(BinLoopId),
}

/// Consumer of the execution event stream.
///
/// All methods have no-op defaults except [`TraceSink::on_block`], so a
/// sink implements only what it needs; unused callbacks compile away.
pub trait TraceSink {
    /// A basic block executed, committing `instrs` instructions.
    fn on_block(&mut self, block: BlockId, instrs: u64);

    /// A data memory access.
    #[inline]
    fn on_access(&mut self, addr: u64, is_write: bool) {
        let _ = (addr, is_write);
    }

    /// A marker executed. Fires *before* the marker's associated block.
    #[inline]
    fn on_marker(&mut self, marker: Marker) {
        let _ = marker;
    }

    /// A conditional branch resolved. `branch` identifies the static
    /// branch instruction (stable within one binary); `taken` is its
    /// outcome. Loop back-branches report taken while iterating and
    /// not-taken on exit; `If` branches report the condition outcome.
    #[inline]
    fn on_branch(&mut self, branch: u64, taken: bool) {
        let _ = (branch, taken);
    }
}

/// A sink that ignores every event (counts-only runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn on_block(&mut self, _: BlockId, _: u64) {}
}

/// Fans events out to two sinks.
#[derive(Debug)]
pub struct TeeSink<'a, A, B> {
    /// First sink.
    pub a: &'a mut A,
    /// Second sink.
    pub b: &'a mut B,
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<'_, A, B> {
    #[inline]
    fn on_block(&mut self, block: BlockId, instrs: u64) {
        self.a.on_block(block, instrs);
        self.b.on_block(block, instrs);
    }

    #[inline]
    fn on_branch(&mut self, branch: u64, taken: bool) {
        self.a.on_branch(branch, taken);
        self.b.on_branch(branch, taken);
    }

    #[inline]
    fn on_access(&mut self, addr: u64, is_write: bool) {
        self.a.on_access(addr, is_write);
        self.b.on_access(addr, is_write);
    }

    #[inline]
    fn on_marker(&mut self, marker: Marker) {
        self.a.on_marker(marker);
        self.b.on_marker(marker);
    }
}

/// Aggregate counts of one execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecSummary {
    /// Total committed instructions.
    pub instructions: u64,
    /// Total data memory accesses (semantic + spill).
    pub accesses: u64,
    /// Total basic-block executions.
    pub block_executions: u64,
    /// Executions per procedure entry, indexed by [`BinProcId`].
    pub proc_entries: Vec<u64>,
    /// Entries per loop, indexed by [`BinLoopId`].
    pub loop_entries: Vec<u64>,
    /// Back-branch executions per loop, indexed by [`BinLoopId`].
    pub loop_backs: Vec<u64>,
}

impl ExecSummary {
    /// Count of the given marker.
    pub fn marker_count(&self, m: Marker) -> u64 {
        match m {
            Marker::ProcEntry(p) => self.proc_entries[p.index()],
            Marker::LoopEntry(l) => self.loop_entries[l.index()],
            Marker::LoopBack(l) => self.loop_backs[l.index()],
        }
    }
}

/// Runs `binary` on `input`, streaming events into `sink`.
///
/// Returns aggregate counts. The run is fully deterministic: the same
/// `(binary, input)` yields an identical event stream.
pub fn run<S: TraceSink>(binary: &Binary, input: &Input, sink: &mut S) -> ExecSummary {
    let mut exec = Executor {
        bin: binary,
        seed: input.seed,
        sink,
        cursors: vec![0u64; binary.layout.arrays.len()],
        counters: HashMap::with_capacity_and_hasher(1024, PassThroughBuild),
        path: 0,
        depth: 0,
        loop_ctx: Vec::with_capacity(16),
        noise: SplitMix64::new(rng::combine(input.seed, 0x5EED_0F00)),
        summary: ExecSummary {
            proc_entries: vec![0; binary.procs.len()],
            loop_entries: vec![0; binary.loops.len()],
            loop_backs: vec![0; binary.loops.len()],
            ..ExecSummary::default()
        },
    };
    exec.enter_proc(binary.main_proc);
    exec.summary
}

/// Occurrence-counter slot: next occurrence index plus the cached
/// `(trip, entry)` of the most recent loop-entry evaluation (used by
/// split clones).
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    next: u64,
    cached_trip: u64,
    cached_entry: u64,
}

#[derive(Debug, Clone, Copy)]
struct LoopCtx {
    /// Current semantic iteration index of the loop.
    iter: u64,
    /// Semantic entry index of the current entry.
    entry: u64,
}

struct Executor<'b, 's, S> {
    bin: &'b Binary,
    seed: u64,
    sink: &'s mut S,
    cursors: Vec<u64>,
    counters: HashMap<u64, Slot, PassThroughBuild>,
    /// Hash of the current call path (sequence of call-site lines).
    path: u64,
    /// Current call depth (stack frame index for spill addresses).
    depth: u64,
    loop_ctx: Vec<LoopCtx>,
    /// Microarchitectural (non-semantic) randomness: random array
    /// indices. Does not need to agree across binaries.
    noise: SplitMix64,
    summary: ExecSummary,
}

impl<'b, S: TraceSink> Executor<'b, '_, S> {
    fn enter_proc(&mut self, proc: BinProcId) {
        self.sink.on_marker(Marker::ProcEntry(proc));
        self.summary.proc_entries[proc.index()] += 1;
        let body: &'b [LStmt] = &self.bin.code[proc.index()];
        self.run_stmts(body);
    }

    fn run_stmts(&mut self, stmts: &'b [LStmt]) {
        for s in stmts {
            match s {
                LStmt::Block(b) => self.exec_block(*b),
                LStmt::Loop(l) => self.run_loop(l),
                LStmt::Call {
                    site,
                    callee,
                    call_block,
                } => {
                    self.exec_block(*call_block);
                    let saved = self.path;
                    self.path = rng::combine(saved, u64::from(site.0));
                    self.depth += 1;
                    self.enter_proc(*callee);
                    self.depth -= 1;
                    self.path = saved;
                }
                LStmt::Inlined {
                    site,
                    glue_block,
                    body,
                } => {
                    self.exec_block(*glue_block);
                    // Identical path update to the out-of-line call so
                    // semantic occurrence keys agree across binaries.
                    let saved = self.path;
                    self.path = rng::combine(saved, u64::from(site.0));
                    self.depth += 1;
                    self.run_stmts(body);
                    self.depth -= 1;
                    self.path = saved;
                }
                LStmt::If {
                    site,
                    cond,
                    cond_block,
                    then_body,
                    else_body,
                } => {
                    self.exec_block(*cond_block);
                    let taken = self.eval_cond(*cond, *site);
                    self.sink
                        .on_branch(0x1F00_0000_0000_0000 | u64::from(site.0), taken);
                    if taken {
                        self.run_stmts(then_body);
                    } else {
                        self.run_stmts(else_body);
                    }
                }
            }
        }
    }

    fn run_loop(&mut self, l: &'b LoweredLoop) {
        self.sink.on_marker(Marker::LoopEntry(l.id));
        self.summary.loop_entries[l.id.index()] += 1;
        self.exec_block(l.entry_block);

        // Semantic trip count for this entry.
        let key = rng::combine(self.path, 0x4C4F_4F50 ^ (u64::from(l.source.0) << 8));
        let (trip, entry) = match l.clone {
            CloneRole::Original => {
                let slot = self.counters.entry(key).or_default();
                let entry = slot.next;
                slot.next += 1;
                let trip = l.trip.eval(self.seed, l.source, entry);
                slot.cached_trip = trip;
                slot.cached_entry = entry;
                (trip, entry)
            }
            CloneRole::SplitClone { .. } => {
                let slot = self
                    .counters
                    .get(&key)
                    .copied()
                    .expect("split clone executed before its Original clone");
                (slot.cached_trip, slot.cached_entry)
            }
        };

        self.loop_ctx.push(LoopCtx { iter: 0, entry });
        let unroll = u64::from(l.unroll.max(1));
        let mut iter = 0u64;
        let mut remaining = trip;
        // Full unrolled groups: one back-branch per `unroll` iterations.
        while remaining >= unroll {
            for _ in 0..unroll {
                self.loop_ctx.last_mut().expect("ctx pushed above").iter = iter;
                self.run_stmts(&l.body);
                iter += 1;
            }
            remaining -= unroll;
            self.loop_back(l, remaining > 0);
        }
        // Leftover iterations: one back-branch each.
        while remaining > 0 {
            self.loop_ctx.last_mut().expect("ctx pushed above").iter = iter;
            self.run_stmts(&l.body);
            iter += 1;
            remaining -= 1;
            self.loop_back(l, remaining > 0);
        }
        self.loop_ctx.pop();
    }

    #[inline]
    fn loop_back(&mut self, l: &LoweredLoop, taken: bool) {
        self.sink.on_marker(Marker::LoopBack(l.id));
        self.summary.loop_backs[l.id.index()] += 1;
        self.exec_block(l.back_block);
        // Static branch identity: loop back-branches are tagged apart
        // from If branches.
        self.sink
            .on_branch(0x4C00_0000_0000_0000 | u64::from(l.id.0), taken);
    }

    fn eval_cond(&mut self, cond: Cond, site: Line) -> bool {
        let ctx = self
            .loop_ctx
            .last()
            .copied()
            .unwrap_or(LoopCtx { iter: 0, entry: 0 });
        match cond {
            Cond::Always => true,
            Cond::Never => false,
            Cond::IterLt(n) => ctx.iter < n,
            Cond::IterMod { m, r } => ctx.iter % m.max(1) == r,
            Cond::EntryLt(n) => ctx.entry < n,
            Cond::Random { num, den } => {
                let key = rng::combine(self.path, 0xC0ED ^ (u64::from(site.0) << 8));
                let slot = self.counters.entry(key).or_default();
                let occurrence = slot.next;
                slot.next += 1;
                let raw = rng::keyed(self.seed, key, occurrence);
                (raw % u64::from(den.max(1))) < u64::from(num)
            }
        }
    }

    fn exec_block(&mut self, bid: BlockId) {
        let block = &self.bin.blocks[bid.index()];
        self.summary.instructions += block.instrs;
        self.summary.block_executions += 1;
        self.sink.on_block(bid, block.instrs);

        // Semantic memory operations.
        for op in &block.ops {
            let layout = &self.bin.layout;
            let a = &layout.arrays[op.array.index()];
            let cursor = &mut self.cursors[op.array.index()];
            for i in 0..op.count {
                let idx = match op.kind {
                    OpKind::Sequential => {
                        let v = *cursor;
                        *cursor += 1;
                        v
                    }
                    OpKind::Strided { stride } => {
                        let v = *cursor;
                        *cursor += u64::from(stride);
                        v
                    }
                    OpKind::RandomUniform => self.noise.next_below(a.len),
                    OpKind::Gather { window } => {
                        let v = *cursor + self.noise.next_below(u64::from(window.max(1)));
                        *cursor += 1;
                        v
                    }
                    OpKind::Stencil { radius } => {
                        let v = if i % 2 == 1 {
                            *cursor + u64::from(radius)
                        } else {
                            *cursor
                        };
                        if i % 2 == 1 {
                            *cursor += 1;
                        }
                        v
                    }
                };
                let addr = a.base + (idx % a.len) * u64::from(a.elem_bytes);
                let is_write = (u64::from(i).wrapping_mul(37) % 100) < u64::from(op.write_pct);
                self.sink.on_access(addr, is_write);
            }
            self.summary.accesses += u64::from(op.count);
        }

        // Spill (stack) traffic: cycles within the current frame.
        if block.stack_accesses > 0 {
            let frame = self.bin.layout.stack_base + self.depth * self.bin.layout.frame_bytes;
            let span = self.bin.layout.frame_bytes.max(8);
            for i in 0..block.stack_accesses {
                let addr = frame + (u64::from(i) * 8) % span;
                self.sink.on_access(addr, i % 3 == 0);
            }
            self.summary.accesses += u64::from(block.stack_accesses);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::compiler::{compile, CompileTarget};
    use crate::source::{Cond, LoopHints, TripCount};

    fn run_counts(prog: &crate::source::SourceProgram, t: CompileTarget) -> ExecSummary {
        let bin = compile(prog, t);
        run(&bin, &Input::test(), &mut NullSink)
    }

    #[test]
    fn execution_is_deterministic() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array_f64("a", 256);
        b.proc("main", |p| {
            p.loop_random(5, 15, |body| {
                body.compute(20, |k| {
                    k.random(a, 8);
                });
            });
        });
        let prog = b.finish();
        let s1 = run_counts(&prog, CompileTarget::W32_O2);
        let s2 = run_counts(&prog, CompileTarget::W32_O2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn loop_counts_agree_across_all_four_binaries() {
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.loop_fixed(7, |outer| {
                outer.loop_random(3, 9, |inner| inner.work(10));
                outer.call("f");
            });
        });
        b.proc("f", |p| {
            p.loop_random(1, 4, |body| body.work(5));
        });
        let prog = b.finish();

        let summaries: Vec<ExecSummary> = CompileTarget::ALL_FOUR
            .iter()
            .map(|&t| run_counts(&prog, t))
            .collect();
        for s in &summaries[1..] {
            assert_eq!(s.proc_entries, summaries[0].proc_entries);
            assert_eq!(s.loop_entries, summaries[0].loop_entries);
            assert_eq!(s.loop_backs, summaries[0].loop_backs);
        }
        assert_eq!(summaries[0].proc_entries, vec![1, 7]);
        assert_eq!(summaries[0].loop_entries[0], 1);
        assert_eq!(summaries[0].loop_entries[1], 7);
    }

    #[test]
    fn unrolling_divides_back_branch_count_but_not_entries() {
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.loop_with(
                TripCount::Fixed(10),
                LoopHints {
                    unroll: 4,
                    split: false,
                },
                |body| body.work(10),
            );
        });
        let prog = b.finish();
        let o0 = run_counts(&prog, CompileTarget::W32_O0);
        let o2 = run_counts(&prog, CompileTarget::W32_O2);
        assert_eq!(o0.loop_entries[0], 1);
        assert_eq!(o2.loop_entries[0], 1);
        assert_eq!(o0.loop_backs[0], 10, "-O0: one back-branch per iteration");
        // 10 = 2 groups of 4 + 2 leftover iterations = 2 + 2 = 4 backs.
        assert_eq!(o2.loop_backs[0], 4, "-O2: unrolled back-branch count");
    }

    #[test]
    fn split_clones_replay_the_same_trip_counts() {
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.loop_fixed(6, |outer| {
                outer.loop_with(
                    TripCount::Random { lo: 2, hi: 20 },
                    LoopHints {
                        unroll: 0,
                        split: true,
                    },
                    |body| {
                        body.work(10);
                        body.work(20);
                    },
                );
            });
        });
        let prog = b.finish();
        let o0 = run_counts(&prog, CompileTarget::W32_O0);
        let o2 = run_counts(&prog, CompileTarget::W32_O2);
        // -O0: one inner loop. -O2: two clones. Each clone's back count
        // must equal the original's (same semantic trips).
        let total_o0_inner_backs = o0.loop_backs[1];
        assert_eq!(o2.loop_backs[1], total_o0_inner_backs);
        assert_eq!(o2.loop_backs[2], total_o0_inner_backs);
        // Entries: clone entered once per semantic entry.
        assert_eq!(o2.loop_entries[1], 6);
        assert_eq!(o2.loop_entries[2], 6);
    }

    #[test]
    fn inlining_preserves_semantic_counts() {
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.loop_fixed(5, |outer| {
                outer.call("hot");
                outer.call("hot2");
            });
        });
        b.inline_proc("hot", |p| {
            p.loop_random(2, 8, |body| body.work(10));
        });
        b.inline_proc("hot2", |p| {
            p.loop_random(2, 8, |body| body.work(10));
        });
        let prog = b.finish();
        let o0 = run_counts(&prog, CompileTarget::W64_O0);
        let o2 = run_counts(&prog, CompileTarget::W64_O2);
        // Loop back totals must agree even though O2 has no `hot` procs
        // and its loops are duplicated per inline site.
        let o0_total: u64 = o0.loop_backs.iter().sum();
        let o2_total: u64 = o2.loop_backs.iter().sum();
        assert_eq!(o0_total, o2_total);
        assert_eq!(o2.proc_entries.len(), 1, "only main survives at -O2");
    }

    #[test]
    fn conds_take_the_same_arms_across_binaries() {
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.loop_fixed(50, |body| {
                body.if_else(
                    Cond::Random { num: 1, den: 3 },
                    |t| t.call("taken"),
                    |e| e.call("fallthrough"),
                );
            });
        });
        b.proc("taken", |p| p.work(1));
        b.proc("fallthrough", |p| p.work(1));
        let prog = b.finish();
        let counts: Vec<Vec<u64>> = CompileTarget::ALL_FOUR
            .iter()
            .map(|&t| run_counts(&prog, t).proc_entries)
            .collect();
        for c in &counts[1..] {
            assert_eq!(*c, counts[0]);
        }
        let taken = counts[0][1];
        let fall = counts[0][2];
        assert_eq!(taken + fall, 50);
        assert!(taken > 0 && fall > 0, "both arms exercised: {taken}/{fall}");
    }

    #[test]
    fn o0_executes_far_more_instructions_than_o2() {
        let mut b = ProgramBuilder::new("t");
        let a = b.array_f64("a", 512);
        b.proc("main", |p| {
            p.loop_fixed(100, |body| {
                body.compute(100, |k| {
                    k.seq(a, 8);
                });
            });
        });
        let prog = b.finish();
        let o0 = run_counts(&prog, CompileTarget::W32_O0);
        let o2 = run_counts(&prog, CompileTarget::W32_O2);
        let ratio = o0.instructions as f64 / o2.instructions as f64;
        assert!(ratio > 2.0, "O0/O2 instruction ratio {ratio}");
        assert!(o0.accesses > o2.accesses, "spill traffic adds accesses");
    }

    #[test]
    fn tee_sink_duplicates_every_event() {
        #[derive(Default, PartialEq, Debug)]
        struct Counter {
            blocks: u64,
            accesses: u64,
            markers: u64,
        }
        impl TraceSink for Counter {
            fn on_block(&mut self, _: BlockId, _: u64) {
                self.blocks += 1;
            }
            fn on_access(&mut self, _: u64, _: bool) {
                self.accesses += 1;
            }
            fn on_marker(&mut self, _: Marker) {
                self.markers += 1;
            }
        }
        let mut b = ProgramBuilder::new("t");
        let arr = b.array_i32("a", 64);
        b.proc("main", |p| {
            p.loop_fixed(5, |body| {
                body.compute(10, |k| {
                    k.seq(arr, 3);
                });
            });
        });
        let bin = compile(&b.finish(), CompileTarget::W32_O0);
        let (mut x, mut y) = (Counter::default(), Counter::default());
        run(
            &bin,
            &Input::test(),
            &mut TeeSink {
                a: &mut x,
                b: &mut y,
            },
        );
        assert_eq!(x, y);
        assert!(x.blocks > 0 && x.accesses > 0 && x.markers > 0);
    }

    #[test]
    fn entry_lt_cond_switches_between_entries() {
        use crate::source::Cond;
        // The inner loop is entered once per outer iteration; EntryLt
        // flips behaviour after the 3rd entry.
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.loop_fixed(10, |outer| {
                outer.loop_fixed(4, |inner| {
                    inner.if_else(Cond::EntryLt(3), |t| t.call("early"), |e| e.call("late"));
                });
            });
        });
        b.proc("early", |p| p.work(1));
        b.proc("late", |p| p.work(1));
        let prog = b.finish();
        for t in CompileTarget::ALL_FOUR {
            let s = run_counts(&prog, t);
            assert_eq!(s.proc_entries[1], 3 * 4, "{t}: early entries");
            assert_eq!(s.proc_entries[2], 7 * 4, "{t}: late entries");
        }
    }

    #[test]
    fn ramp_trip_counts_execute_and_agree() {
        use crate::source::{LoopHints, TripCount};
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.loop_fixed(10, |outer| {
                outer.loop_with(
                    TripCount::Ramp {
                        base: 20,
                        slope_num: -2,
                        slope_den: 1,
                    },
                    LoopHints::default(),
                    |body| body.work(5),
                );
            });
        });
        let prog = b.finish();
        let expected: u64 = (0..10).map(|e| 20 - 2 * e).sum();
        for t in CompileTarget::ALL_FOUR {
            let s = run_counts(&prog, t);
            assert_eq!(s.loop_backs[1], expected, "{t}");
        }
    }

    #[test]
    fn stencil_and_strided_addresses_stay_in_bounds() {
        struct BoundsCheck {
            lo: u64,
            hi: u64,
            seen: u64,
        }
        impl TraceSink for BoundsCheck {
            fn on_block(&mut self, _: BlockId, _: u64) {}
            fn on_access(&mut self, addr: u64, _: bool) {
                // Stack accesses live at 0x7000_0000+; array data below.
                if addr < 0x7000_0000 {
                    assert!(
                        addr >= self.lo && addr < self.hi,
                        "addr {addr:#x} outside [{:#x}, {:#x})",
                        self.lo,
                        self.hi
                    );
                }
                self.seen += 1;
            }
        }
        let mut b = ProgramBuilder::new("t");
        let arr = b.array_f64("a", 100);
        b.proc("main", |p| {
            p.loop_fixed(50, |body| {
                body.compute(10, |k| {
                    k.stencil(arr, 7, 5).strided(arr, 13, 3);
                });
            });
        });
        let bin = compile(&b.finish(), CompileTarget::W64_O2);
        let a = &bin.layout.arrays[0];
        let mut sink = BoundsCheck {
            lo: a.base,
            hi: a.base + a.len * u64::from(a.elem_bytes),
            seen: 0,
        };
        run(&bin, &Input::test(), &mut sink);
        assert!(sink.seen > 300);
    }

    #[test]
    fn marker_stream_matches_summary() {
        #[derive(Default)]
        struct CountSink {
            blocks: u64,
            instrs: u64,
            markers: u64,
            accesses: u64,
        }
        impl TraceSink for CountSink {
            fn on_block(&mut self, _: BlockId, instrs: u64) {
                self.blocks += 1;
                self.instrs += instrs;
            }
            fn on_access(&mut self, _: u64, _: bool) {
                self.accesses += 1;
            }
            fn on_marker(&mut self, _: Marker) {
                self.markers += 1;
            }
        }
        let mut b = ProgramBuilder::new("t");
        let a = b.array_i32("a", 64);
        b.proc("main", |p| {
            p.loop_fixed(9, |body| {
                body.compute(10, |k| {
                    k.seq(a, 4);
                });
            });
        });
        let prog = b.finish();
        let bin = compile(&prog, CompileTarget::W32_O2);
        let mut sink = CountSink::default();
        let summary = run(&bin, &Input::test(), &mut sink);
        assert_eq!(sink.blocks, summary.block_executions);
        assert_eq!(sink.instrs, summary.instructions);
        assert_eq!(sink.accesses, summary.accesses);
        let marker_total: u64 = summary.proc_entries.iter().sum::<u64>()
            + summary.loop_entries.iter().sum::<u64>()
            + summary.loop_backs.iter().sum::<u64>();
        assert_eq!(sink.markers, marker_total);
    }
}
