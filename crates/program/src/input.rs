//! Program inputs.
//!
//! An [`Input`] plays the role of a SPEC reference input: it fixes every
//! semantic decision of a program's execution (trip counts, branch
//! outcomes, random indices) through its seed, and scales the amount of
//! work through its scale class.

use serde::{Deserialize, Serialize};

/// Work-scale class of an input, analogous to SPEC's `test` / `train` /
/// `ref` input sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// Tiny runs for unit tests (tens of thousands of instructions).
    Test,
    /// Medium runs for integration tests (hundreds of thousands).
    Train,
    /// Full experiment runs (millions to tens of millions).
    Reference,
}

impl Scale {
    /// Multiplier applied by workload generators to outer trip counts.
    pub fn work_factor(self) -> u64 {
        match self {
            Scale::Test => 1,
            Scale::Train => 6,
            Scale::Reference => 48,
        }
    }

    /// Multiplier applied by workload generators to data footprints.
    ///
    /// Kept smaller than [`Self::work_factor`] so test inputs still
    /// exercise multi-level cache behaviour.
    pub fn data_factor(self) -> u64 {
        match self {
            Scale::Test => 1,
            Scale::Train => 2,
            Scale::Reference => 4,
        }
    }
}

/// A concrete input to a program: a name, a semantic seed, and a scale.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Input {
    /// Input name, e.g. `"ref"`.
    pub name: String,
    /// Seed for all semantic randomness.
    pub seed: u64,
    /// Work-scale class.
    pub scale: Scale,
}

impl Input {
    /// Creates an input with the given name, seed and scale.
    pub fn new(name: impl Into<String>, seed: u64, scale: Scale) -> Self {
        Input {
            name: name.into(),
            seed,
            scale,
        }
    }

    /// The standard reference input used by the experiments.
    pub fn reference() -> Self {
        Input::new("ref", 0xC0FF_EE00_2007, Scale::Reference)
    }

    /// A medium input for integration tests.
    pub fn train() -> Self {
        Input::new("train", 0xC0FF_EE00_2007, Scale::Train)
    }

    /// A small input for unit tests.
    pub fn test() -> Self {
        Input::new("test", 0xC0FF_EE00_2007, Scale::Test)
    }
}

impl Default for Input {
    fn default() -> Self {
        Input::test()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Test < Scale::Reference);
        assert!(Scale::Test.work_factor() < Scale::Train.work_factor());
        assert!(Scale::Train.work_factor() < Scale::Reference.work_factor());
    }

    #[test]
    fn standard_inputs_share_a_seed() {
        // Same seed across scales: a scaled-down run is a shorter replay
        // of the same semantic decision stream, not a different program.
        assert_eq!(Input::reference().seed, Input::test().seed);
        assert_ne!(Input::reference().scale, Input::test().scale);
    }
}
