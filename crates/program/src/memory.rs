//! Data arrays and memory access patterns.
//!
//! Compute kernels describe their memory behaviour abstractly as a list
//! of [`ArrayOp`]s over declared [`ArrayDecl`]s. The compiler assigns a
//! concrete [data layout](crate::binary::DataLayout) per target (pointer
//! width changes element sizes and therefore footprints), and the
//! executor turns patterns into concrete addresses.
//!
//! The distinction that matters for the paper: the *count* of semantic
//! accesses per kernel execution is identical across binaries (it is part
//! of the program's meaning), while the *addresses* may differ (layout,
//! pointer width, reordering by loop transformations) — which is what
//! makes the per-binary cache behaviour and CPI genuinely different.

use crate::ids::ArrayId;
use serde::{Deserialize, Serialize};

/// The element type of an array, which determines its size in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElemKind {
    /// 8-byte floating point element.
    F64,
    /// 4-byte floating point element.
    F32,
    /// 4-byte integer element.
    I32,
    /// Pointer-sized element: 4 bytes on 32-bit targets, 8 bytes on
    /// 64-bit targets. Pointer-heavy data structures therefore have a
    /// *larger footprint* in 64-bit binaries — one of the real
    /// performance differences the paper's Intel64-vs-IA32 scenario
    /// measures.
    Ptr,
}

impl ElemKind {
    /// Element size in bytes for a given pointer width.
    pub fn size_bytes(self, pointer_bytes: u32) -> u32 {
        match self {
            ElemKind::F64 => 8,
            ElemKind::F32 => 4,
            ElemKind::I32 => 4,
            ElemKind::Ptr => pointer_bytes,
        }
    }
}

/// A statically allocated data region of the source program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayDecl {
    /// Identifier, assigned by the program builder.
    pub id: ArrayId,
    /// Human-readable name (used in diagnostics only).
    pub name: String,
    /// Element type.
    pub elem: ElemKind,
    /// Number of elements.
    pub len: u64,
}

impl ArrayDecl {
    /// Footprint in bytes for a given pointer width.
    pub fn footprint_bytes(&self, pointer_bytes: u32) -> u64 {
        self.len * u64::from(self.elem.size_bytes(pointer_bytes))
    }
}

/// How a kernel walks an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Continue the array's persistent cursor one element at a time
    /// (streaming access; high spatial locality).
    Sequential,
    /// Continue the array's persistent cursor `stride` elements at a
    /// time (strided access; locality depends on stride vs line size).
    Strided {
        /// Cursor advance in elements per access.
        stride: u32,
    },
    /// Uniformly random element each access (no locality; footprint
    /// decides the miss level).
    RandomUniform,
    /// Random element within a window of `window` elements around a
    /// slowly advancing cursor (tunable temporal locality, models
    /// pointer chasing over a working set).
    Gather {
        /// Window size in elements.
        window: u32,
    },
    /// Stencil access: the cursor advances sequentially but each access
    /// also touches a neighbour `radius` elements away (models PDE
    /// solvers; mixes streaming with re-use).
    Stencil {
        /// Neighbour distance in elements.
        radius: u32,
    },
}

/// One memory operation group of a compute kernel: `count` accesses to
/// `array` following `kind`, of which roughly `write_pct`% are writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArrayOp {
    /// Target array.
    pub array: ArrayId,
    /// Access pattern.
    pub kind: OpKind,
    /// Number of accesses per kernel execution.
    pub count: u32,
    /// Percentage of accesses that are writes, `0..=100`.
    pub write_pct: u8,
}

impl ArrayOp {
    /// Convenience constructor for a read-mostly op (20% writes).
    pub fn new(array: ArrayId, kind: OpKind, count: u32) -> Self {
        ArrayOp {
            array,
            kind,
            count,
            write_pct: 20,
        }
    }

    /// Sets the write percentage, returning `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if `pct > 100`.
    pub fn with_write_pct(mut self, pct: u8) -> Self {
        assert!(pct <= 100, "write_pct must be at most 100, got {pct}");
        self.write_pct = pct;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_sizes_follow_pointer_width() {
        assert_eq!(ElemKind::F64.size_bytes(4), 8);
        assert_eq!(ElemKind::F64.size_bytes(8), 8);
        assert_eq!(ElemKind::Ptr.size_bytes(4), 4);
        assert_eq!(ElemKind::Ptr.size_bytes(8), 8);
        assert_eq!(ElemKind::I32.size_bytes(8), 4);
    }

    #[test]
    fn pointer_array_footprint_doubles_on_64_bit() {
        let a = ArrayDecl {
            id: ArrayId(0),
            name: "nodes".into(),
            elem: ElemKind::Ptr,
            len: 1000,
        };
        assert_eq!(a.footprint_bytes(4), 4000);
        assert_eq!(a.footprint_bytes(8), 8000);
    }

    #[test]
    #[should_panic(expected = "write_pct")]
    fn write_pct_validated() {
        let _ = ArrayOp::new(ArrayId(0), OpKind::Sequential, 1).with_write_pct(101);
    }
}
