//! Compiled binaries.
//!
//! A [`Binary`] is what the compiler produces from a
//! [`SourceProgram`](crate::SourceProgram) for one
//! [`CompileTarget`]: static basic blocks with
//! per-target instruction counts, a symbol table, loop metadata with
//! (possibly degraded) debug line information, a concrete data layout,
//! and an executable lowered statement tree.
//!
//! Cross-binary analyses may use only the *observable* surface — symbol
//! names, line numbers, and profiled execution counts. Ground-truth
//! links back to source constructs are carried for validation and tests,
//! clearly marked as such.

use crate::compiler::CompileTarget;
use crate::ids::{ArrayId, BinLoopId, BinProcId, BlockId, Line, LoopId, ProcId};
use crate::memory::ArrayOp;
use crate::source::{Cond, TripCount};
use serde::{Deserialize, Serialize};

/// A static basic block: straight-line instructions plus the memory
/// operations performed each time the block executes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticBlock {
    /// Instructions executed per entry of this block.
    pub instrs: u64,
    /// Semantic memory operations per entry.
    pub ops: Vec<ArrayOp>,
    /// Additional stack (spill) accesses per entry; an artifact of the
    /// optimization level, not of program semantics.
    pub stack_accesses: u32,
    /// Containing procedure.
    pub proc: BinProcId,
}

/// A procedure in the binary's symbol table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinProc {
    /// Symbol name. Present for every out-of-line procedure (binaries
    /// are compiled with `-g`).
    pub name: String,
    /// Line of the procedure entry in the source.
    pub line: Line,
    /// Ground truth: which source procedure this lowers. **Not** to be
    /// used by cross-binary matching — tests only.
    pub ground_truth_source: ProcId,
}

/// A natural loop in the binary, as a loop-analysis + debug-info pass
/// would describe it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinLoop {
    /// Debug line of the loop branch. `None` when the optimizer moved
    /// or rewrote the code badly enough that the line table no longer
    /// identifies it (inlined bodies, split loops).
    pub line: Option<Line>,
    /// The out-of-line procedure whose code contains this loop (after
    /// inlining, the procedure the loop was inlined *into*).
    pub proc: BinProcId,
    /// Unroll factor applied by the compiler (1 = none).
    pub unroll: u32,
    /// Ground truth: the source loop. **Not** to be used by
    /// cross-binary matching — tests only.
    pub ground_truth_source: LoopId,
}

/// Role of a lowered loop with respect to loop splitting.
///
/// Split clones of one source loop must observe the *same* semantic trip
/// count per semantic entry; the executor evaluates the trip once per
/// entry (at the `Original`/index-0 clone) and replays the cached value
/// for the later clones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CloneRole {
    /// The only (or first) lowering of the source loop.
    Original,
    /// Clone `index` (> 0) produced by loop splitting.
    SplitClone {
        /// Position of this clone in the split sequence.
        index: u32,
    },
}

/// Executable lowered statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LStmt {
    /// Execute a straight-line block.
    Block(BlockId),
    /// A lowered loop.
    Loop(LoweredLoop),
    /// A call to an out-of-line procedure.
    Call {
        /// Source line of the call site (semantic path key).
        site: Line,
        /// Callee.
        callee: BinProcId,
        /// Call-overhead block, executed at the call site.
        call_block: BlockId,
    },
    /// An inlined callee body. Executes like a call semantically (the
    /// path key advances identically) but emits no procedure-entry
    /// marker and no callee symbol exists.
    Inlined {
        /// Source line of the (former) call site.
        site: Line,
        /// Small glue block replacing the call overhead.
        glue_block: BlockId,
        /// The inlined body.
        body: Vec<LStmt>,
    },
    /// A conditional branch.
    If {
        /// Source line of the branch (semantic occurrence key).
        site: Line,
        /// Condition.
        cond: Cond,
        /// Condition-evaluation block.
        cond_block: BlockId,
        /// Taken arm.
        then_body: Vec<LStmt>,
        /// Fall-through arm.
        else_body: Vec<LStmt>,
    },
}

/// The loop variant of [`LStmt`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoweredLoop {
    /// Loop identity within this binary.
    pub id: BinLoopId,
    /// Source loop (semantic anchor for trip evaluation).
    pub source: LoopId,
    /// Trip count specification (copied from source).
    pub trip: TripCount,
    /// Block executed once per loop entry.
    pub entry_block: BlockId,
    /// Block executed once per back-branch.
    pub back_block: BlockId,
    /// Loop body.
    pub body: Vec<LStmt>,
    /// Unroll factor (≥ 1). The back branch executes once per group of
    /// `unroll` iterations, then once per leftover iteration.
    pub unroll: u32,
    /// Split-clone role (see [`CloneRole`]).
    pub clone: CloneRole,
}

/// Concrete placement of one array in the binary's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayLayout {
    /// Base address.
    pub base: u64,
    /// Element size in bytes for this target.
    pub elem_bytes: u32,
    /// Number of elements.
    pub len: u64,
}

/// Data layout of a binary: array placements plus the stack region used
/// for spill traffic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataLayout {
    /// Per-array placement, indexed by [`ArrayId`].
    pub arrays: Vec<ArrayLayout>,
    /// Base of the stack region.
    pub stack_base: u64,
    /// Bytes per stack frame (per call depth).
    pub frame_bytes: u64,
}

impl DataLayout {
    /// Address of element `index` of `array` (wrapping within the array).
    #[inline]
    pub fn element_addr(&self, array: ArrayId, index: u64) -> u64 {
        let a = &self.arrays[array.index()];
        a.base + (index % a.len) * u64::from(a.elem_bytes)
    }
}

/// A compiled binary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Binary {
    /// Program name this binary was compiled from.
    pub program: String,
    /// Compilation target.
    pub target: CompileTarget,
    /// Static basic blocks, indexed by [`BlockId`].
    pub blocks: Vec<StaticBlock>,
    /// Symbol table, indexed by [`BinProcId`]. Entry `main_proc` is the
    /// program entry.
    pub procs: Vec<BinProc>,
    /// Loop table, indexed by [`BinLoopId`].
    pub loops: Vec<BinLoop>,
    /// Lowered body per out-of-line procedure, indexed by [`BinProcId`].
    pub code: Vec<Vec<LStmt>>,
    /// Entry procedure.
    pub main_proc: BinProcId,
    /// Data layout.
    pub layout: DataLayout,
}

impl Binary {
    /// A short human-readable label like `"gcc-32o"`.
    pub fn label(&self) -> String {
        format!("{}-{}", self.program, self.target.suffix())
    }

    /// Number of static basic blocks (the BBV dimensionality for this
    /// binary).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Looks up a procedure id by symbol name.
    pub fn proc_by_name(&self, name: &str) -> Option<BinProcId> {
        self.procs
            .iter()
            .position(|p| p.name == name)
            .map(|i| BinProcId(i as u32))
    }

    /// Checks structural invariants (block/proc/loop indices in range).
    /// Used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        if self.code.len() != self.procs.len() {
            return Err(format!(
                "code bodies ({}) != procs ({})",
                self.code.len(),
                self.procs.len()
            ));
        }
        if self.main_proc.index() >= self.procs.len() {
            return Err("main_proc out of range".into());
        }
        let nb = self.blocks.len();
        let nl = self.loops.len();
        let np = self.procs.len();
        fn walk(stmts: &[LStmt], nb: usize, nl: usize, np: usize) -> Result<(), String> {
            for s in stmts {
                match s {
                    LStmt::Block(b) => {
                        if b.index() >= nb {
                            return Err(format!("block {b} out of range"));
                        }
                    }
                    LStmt::Loop(l) => {
                        if l.id.index() >= nl {
                            return Err(format!("loop {} out of range", l.id));
                        }
                        if l.entry_block.index() >= nb || l.back_block.index() >= nb {
                            return Err(format!("loop {} block out of range", l.id));
                        }
                        if l.unroll == 0 {
                            return Err(format!("loop {} has unroll 0", l.id));
                        }
                        walk(&l.body, nb, nl, np)?;
                    }
                    LStmt::Call {
                        callee, call_block, ..
                    } => {
                        if callee.index() >= np {
                            return Err(format!("callee {callee} out of range"));
                        }
                        if call_block.index() >= nb {
                            return Err(format!("call block {call_block} out of range"));
                        }
                    }
                    LStmt::Inlined {
                        glue_block, body, ..
                    } => {
                        if glue_block.index() >= nb {
                            return Err(format!("glue block {glue_block} out of range"));
                        }
                        walk(body, nb, nl, np)?;
                    }
                    LStmt::If {
                        cond_block,
                        then_body,
                        else_body,
                        ..
                    } => {
                        if cond_block.index() >= nb {
                            return Err(format!("cond block {cond_block} out of range"));
                        }
                        walk(then_body, nb, nl, np)?;
                        walk(else_body, nb, nl, np)?;
                    }
                }
            }
            Ok(())
        }
        for body in &self.code {
            walk(body, nb, nl, np)?;
        }
        for (i, a) in self.layout.arrays.iter().enumerate() {
            if a.len == 0 {
                return Err(format!("array {i} has zero length"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_addr_wraps_within_array() {
        let layout = DataLayout {
            arrays: vec![ArrayLayout {
                base: 0x1000,
                elem_bytes: 8,
                len: 4,
            }],
            stack_base: 0x7000_0000,
            frame_bytes: 512,
        };
        assert_eq!(layout.element_addr(ArrayId(0), 0), 0x1000);
        assert_eq!(layout.element_addr(ArrayId(0), 3), 0x1018);
        assert_eq!(layout.element_addr(ArrayId(0), 4), 0x1000, "wraps");
        assert_eq!(layout.element_addr(ArrayId(0), 5), 0x1008);
    }
}
