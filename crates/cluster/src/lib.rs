//! # cbsp-cluster — sharded multi-worker serving
//!
//! One `cbsp-serve` daemon is bounded by one process's caches: its
//! result cache, trace cache, and admission queue are all
//! per-process. This crate scales the daemon *horizontally* without
//! changing a byte of the protocol: a lightweight **router** owns a
//! fleet of ordinary `cbsp-serve` workers — each with its own
//! artifact-store shard and caches — and proxies NDJSON frames to
//! them unmodified.
//!
//! ## Routing
//!
//! Every digest-keyed request resolves (via [`cbsp_serve::route`]) to
//! its map-stage content digest — the same digest the daemon's own
//! single-flight deduplication and result cache key on. The router
//! places that digest with rendezvous hashing over the
//! [`ShardMap`](shard_map::ShardMap), so all requests about one
//! `(benchmark, scale, interval)` triple land on the same shard and
//! each shard's request stream is indistinguishable from a
//! single-process run. Responses are relayed byte-for-byte; the
//! integration tests assert a 1-, 2-, and 4-worker cluster answer
//! identically to one daemon.
//!
//! ## Resilience
//!
//! A health loop probes every worker's `GET /healthz`; after a
//! configurable run of consecutive failures the worker is marked
//! unhealthy and — when the router spawned it — restarted with
//! bounded exponential backoff, reusing its warm store directory. An
//! in-flight request that hits a dead or draining worker fails over
//! down the digest's rendezvous preference order; an `overloaded`
//! worker is retried once after honoring its `retry_after_ms` hint.
//! The shard map is versioned and persisted in the router's store, so
//! topology survives restarts and external tools can audit it.
//!
//! ## Example
//!
//! ```no_run
//! use cbsp_cluster::{Cluster, ClusterConfig};
//!
//! let cluster = Cluster::start(ClusterConfig {
//!     addr: "127.0.0.1:0".to_string(),
//!     workers: 2,
//!     ..ClusterConfig::default()
//! })
//! .expect("cluster starts");
//! println!("routing on {}", cluster.addr());
//! cluster.shutdown();
//! cluster.wait().expect("clean drain");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod router;
pub mod shard_map;
mod worker;

pub use router::{Cluster, ClusterConfig};
pub use shard_map::{ShardEntry, ShardMap, ShardMapError, SHARD_MAP_SCHEMA};
