//! The shard map: which workers exist, where they listen, and how
//! digests choose among them.
//!
//! The map is a small versioned document the router persists in its
//! own artifact store under a fixed stage key, so a restarted router
//! (or an operator's `--shard-map` file) can recover the fleet's
//! topology without guessing. `version` increases monotonically: every
//! time the router rewrites the map (initial spawn, a worker restart
//! landing on a new port), the version bumps, and a reader holding an
//! older version knows its addresses may be stale.
//!
//! Placement is rendezvous (highest-random-weight) hashing over the
//! request's map-stage content digest: [`ShardMap::preference`]
//! returns *all* shards ordered by score, so the first entry is the
//! home shard and the remainder is the failover order. Rendezvous
//! hashing gives the property the failover path relies on: removing
//! one shard from consideration never reorders the others, so requests
//! that fail over land exactly where they would have hashed had the
//! dead shard never existed.

use cbsp_store::{hex_digest, stage_key, ArtifactStore, StageKey};
use serde::Value;
use std::net::SocketAddr;
use std::path::Path;

/// Schema version of the persisted shard-map document. Bumped only on
/// incompatible layout changes; [`ShardMap::from_json`] rejects other
/// versions with [`ShardMapError::SchemaMismatch`].
pub const SHARD_MAP_SCHEMA: u32 = 1;

/// Stage name the shard map is persisted under in the router's store.
pub const SHARD_MAP_STAGE: &str = "cluster";

/// One worker in the map.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ShardEntry {
    /// Dense shard id, `0..shards.len()`.
    pub shard: u64,
    /// Listen address (`host:port`). Empty only transiently, while a
    /// spawned worker has not bound its listener yet.
    pub addr: String,
    /// `true` when the router owns this worker's process lifecycle
    /// (spawned, restartable); `false` for an adopted external worker.
    pub spawned: bool,
    /// The worker's artifact-store directory (informational for
    /// adopted workers; authoritative for spawned ones, so a restart
    /// reuses the same warm store).
    pub cache_dir: String,
}

/// The versioned worker topology of one cluster.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ShardMap {
    /// Document schema, always [`SHARD_MAP_SCHEMA`] for this build.
    pub schema: u32,
    /// Monotonic topology version; bumped on every rewrite.
    pub version: u64,
    /// The workers, indexed by their dense shard id.
    pub shards: Vec<ShardEntry>,
}

/// Typed failures of shard-map decoding, validation, and persistence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardMapError {
    /// The document was not parseable as a shard map at all
    /// (truncated file, not JSON, wrong field types).
    Corrupt {
        /// What the decoder found wrong.
        detail: String,
    },
    /// The document parsed but was written under a different schema.
    SchemaMismatch {
        /// Schema version found in the document.
        found: u32,
        /// Schema version this build understands.
        supported: u32,
    },
    /// The document parsed but violates a structural invariant
    /// (no shards, sparse ids, adopted worker without an address).
    Invalid {
        /// The violated invariant.
        detail: String,
    },
    /// The artifact store failed while persisting or loading the map.
    Store {
        /// The underlying store error.
        detail: String,
    },
}

impl std::fmt::Display for ShardMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardMapError::Corrupt { detail } => write!(f, "corrupt shard map: {detail}"),
            ShardMapError::SchemaMismatch { found, supported } => write!(
                f,
                "shard map schema {found} is not supported (this build reads schema {supported})"
            ),
            ShardMapError::Invalid { detail } => write!(f, "invalid shard map: {detail}"),
            ShardMapError::Store { detail } => write!(f, "shard map store failure: {detail}"),
        }
    }
}

impl std::error::Error for ShardMapError {}

impl ShardMap {
    /// A fresh map for `count` router-spawned workers rooted under
    /// `root` (shard `i` stores at `root/shard-i`). Addresses start
    /// empty and are filled in as the workers bind.
    pub fn spawned(count: usize, root: &Path) -> ShardMap {
        ShardMap {
            schema: SHARD_MAP_SCHEMA,
            version: 0,
            shards: (0..count.max(1) as u64)
                .map(|shard| ShardEntry {
                    shard,
                    addr: String::new(),
                    spawned: true,
                    cache_dir: root.join(format!("shard-{shard}")).display().to_string(),
                })
                .collect(),
        }
    }

    /// A fresh map adopting externally managed workers at `addrs`.
    pub fn adopted(addrs: &[String]) -> ShardMap {
        ShardMap {
            schema: SHARD_MAP_SCHEMA,
            version: 0,
            shards: addrs
                .iter()
                .enumerate()
                .map(|(i, addr)| ShardEntry {
                    shard: i as u64,
                    addr: addr.clone(),
                    spawned: false,
                    cache_dir: String::new(),
                })
                .collect(),
        }
    }

    /// Checks the structural invariants every consumer relies on.
    ///
    /// # Errors
    ///
    /// [`ShardMapError::SchemaMismatch`] for foreign schemas,
    /// [`ShardMapError::Invalid`] for an empty map, non-dense shard
    /// ids, unparseable addresses, or adopted workers without one.
    pub fn validate(&self) -> Result<(), ShardMapError> {
        if self.schema != SHARD_MAP_SCHEMA {
            return Err(ShardMapError::SchemaMismatch {
                found: self.schema,
                supported: SHARD_MAP_SCHEMA,
            });
        }
        if self.shards.is_empty() {
            return Err(ShardMapError::Invalid {
                detail: "shard map has no shards".to_string(),
            });
        }
        for (i, entry) in self.shards.iter().enumerate() {
            if entry.shard != i as u64 {
                return Err(ShardMapError::Invalid {
                    detail: format!(
                        "shard ids must be dense 0..{}: position {i} holds id {}",
                        self.shards.len(),
                        entry.shard
                    ),
                });
            }
            if entry.addr.is_empty() {
                if !entry.spawned {
                    return Err(ShardMapError::Invalid {
                        detail: format!("adopted shard {i} has no address"),
                    });
                }
            } else if entry.addr.parse::<SocketAddr>().is_err() {
                return Err(ShardMapError::Invalid {
                    detail: format!("shard {i} address `{}` is not a socket address", entry.addr),
                });
            }
        }
        Ok(())
    }

    /// Serializes the map (the exact bytes [`ShardMap::from_json`]
    /// accepts back).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("shard map serializes")
    }

    /// Decodes and validates a shard-map document.
    ///
    /// # Errors
    ///
    /// [`ShardMapError::Corrupt`] when the text does not decode, plus
    /// everything [`ShardMap::validate`] reports.
    pub fn from_json(text: &str) -> Result<ShardMap, ShardMapError> {
        let map: ShardMap = serde_json::from_str(text).map_err(|e| ShardMapError::Corrupt {
            detail: format!("{e}"),
        })?;
        map.validate()?;
        Ok(map)
    }

    /// All shard indexes ordered by rendezvous score for `digest`
    /// (highest first): `[0]` is the home shard, the rest is the
    /// failover order. Deterministic for a given digest and shard set,
    /// and stable under shard removal — dropping any entry leaves the
    /// relative order of the others unchanged.
    pub fn preference(&self, digest: &str) -> Vec<usize> {
        let mut scored: Vec<(u64, usize)> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, entry)| (rendezvous_score(digest, entry.shard), i))
            .collect();
        // Ties (never observed with a 64-bit score, but cheap to pin
        // down) break toward the lower shard id for determinism.
        scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.into_iter().map(|(_, i)| i).collect()
    }

    /// The fixed store key the router persists the map under.
    pub fn store_key() -> StageKey {
        stage_key(SHARD_MAP_STAGE, &[Value::Str("shard-map".to_string())])
    }

    /// Writes this map into `store` (overwriting any previous version).
    ///
    /// # Errors
    ///
    /// [`ShardMapError::Store`] on store failure.
    pub fn persist(&self, store: &ArtifactStore) -> Result<(), ShardMapError> {
        store
            .put_overwrite(SHARD_MAP_STAGE, &ShardMap::store_key(), self)
            .map_err(|e| ShardMapError::Store {
                detail: format!("{e}"),
            })
    }

    /// Reads the persisted map back, if any, and validates it.
    ///
    /// # Errors
    ///
    /// [`ShardMapError::Corrupt`] when the stored artifact exists but
    /// does not decode, [`ShardMapError::Store`] on store failure,
    /// plus everything [`ShardMap::validate`] reports.
    pub fn load(store: &ArtifactStore) -> Result<Option<ShardMap>, ShardMapError> {
        let loaded: Option<ShardMap> =
            store
                .get(SHARD_MAP_STAGE, &ShardMap::store_key())
                .map_err(|e| match e {
                    cbsp_core::CbspError::StoreIo { .. } => ShardMapError::Store {
                        detail: format!("{e}"),
                    },
                    other => ShardMapError::Corrupt {
                        detail: format!("{other}"),
                    },
                })?;
        match loaded {
            None => Ok(None),
            Some(map) => {
                map.validate()?;
                Ok(Some(map))
            }
        }
    }
}

/// The HRW score of one (digest, shard) pair: the first 16 hex digits
/// of `sha256("digest/shard")` as a `u64`. Any uniform hash works;
/// reusing the store's SHA-256 keeps the routing function free of new
/// primitives.
fn rendezvous_score(digest: &str, shard: u64) -> u64 {
    let h = hex_digest(format!("{digest}/{shard}").as_bytes());
    u64::from_str_radix(&h[..16], 16).expect("sha-256 hex prefix parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn digests(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| hex_digest(format!("digest-{i}").as_bytes()))
            .collect()
    }

    #[test]
    fn json_round_trips_exactly() {
        let map = ShardMap::adopted(&["127.0.0.1:4651".to_string(), "127.0.0.1:4652".to_string()]);
        let back = ShardMap::from_json(&map.to_json()).expect("round-trips");
        assert_eq!(map, back);
    }

    #[test]
    fn corrupt_and_truncated_documents_are_typed_errors() {
        assert!(matches!(
            ShardMap::from_json("{{nope").expect_err("garbage"),
            ShardMapError::Corrupt { .. }
        ));
        let full = ShardMap::adopted(&["127.0.0.1:4651".to_string()]).to_json();
        let truncated = &full[..full.len() / 2];
        assert!(matches!(
            ShardMap::from_json(truncated).expect_err("truncated"),
            ShardMapError::Corrupt { .. }
        ));
    }

    #[test]
    fn foreign_schema_and_structural_violations_are_rejected() {
        let mut map = ShardMap::adopted(&["127.0.0.1:4651".to_string()]);
        map.schema = 99;
        assert_eq!(
            ShardMap::from_json(&map.to_json()).expect_err("schema"),
            ShardMapError::SchemaMismatch {
                found: 99,
                supported: SHARD_MAP_SCHEMA
            }
        );
        let empty = ShardMap {
            schema: SHARD_MAP_SCHEMA,
            version: 1,
            shards: vec![],
        };
        assert!(matches!(
            empty.validate().expect_err("empty"),
            ShardMapError::Invalid { .. }
        ));
        let mut sparse = ShardMap::adopted(&["127.0.0.1:1".to_string(), "127.0.0.1:2".to_string()]);
        sparse.shards[1].shard = 5;
        assert!(matches!(
            sparse.validate().expect_err("sparse"),
            ShardMapError::Invalid { .. }
        ));
        let mut bad_addr = ShardMap::adopted(&["not-an-addr".to_string()]);
        bad_addr.shards[0].addr = "not-an-addr".to_string();
        assert!(matches!(
            bad_addr.validate().expect_err("addr"),
            ShardMapError::Invalid { .. }
        ));
    }

    #[test]
    fn preference_is_a_permutation_and_deterministic() {
        let map = ShardMap::spawned(4, &PathBuf::from("/tmp/x"));
        for digest in digests(32) {
            let mut order = map.preference(&digest);
            assert_eq!(order, map.preference(&digest), "deterministic");
            order.sort_unstable();
            assert_eq!(order, vec![0, 1, 2, 3], "a permutation of all shards");
        }
    }

    #[test]
    fn every_shard_is_someone_s_home() {
        let map = ShardMap::spawned(4, &PathBuf::from("/tmp/x"));
        let mut homes = [0usize; 4];
        for digest in digests(256) {
            homes[map.preference(&digest)[0]] += 1;
        }
        for (shard, count) in homes.iter().enumerate() {
            assert!(
                *count > 0,
                "shard {shard} never chosen as home across 256 digests"
            );
        }
    }

    #[test]
    fn removing_a_shard_never_reorders_the_survivors() {
        // The rendezvous property failover relies on: dropping the
        // home shard promotes the runner-up and leaves every other
        // relative position unchanged.
        let four = ShardMap::spawned(4, &PathBuf::from("/tmp/x"));
        for digest in digests(64) {
            let order = four.preference(&digest);
            for &dead in &order {
                let survivors: Vec<usize> = order.iter().copied().filter(|&i| i != dead).collect();
                let mut three = four.clone();
                three.shards.remove(dead);
                // Re-densify ids the way a rebuilt map would, keeping
                // the original identities for comparison.
                let kept: Vec<u64> = four
                    .shards
                    .iter()
                    .map(|e| e.shard)
                    .filter(|&s| s != dead as u64)
                    .collect();
                for (i, entry) in three.shards.iter_mut().enumerate() {
                    entry.shard = kept[i];
                }
                // preference() scores by the entry's *id*, so the
                // surviving ids must appear in their original order.
                let reduced: Vec<u64> = three
                    .preference(&digest)
                    .into_iter()
                    .map(|i| three.shards[i].shard)
                    .collect();
                let expected: Vec<u64> = survivors.into_iter().map(|i| i as u64).collect();
                assert_eq!(reduced, expected, "digest {digest} after removing {dead}");
            }
        }
    }

    #[test]
    fn persists_and_reloads_through_the_store() {
        let dir = std::env::temp_dir().join(format!(
            "cbsp-shard-map-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let store = ArtifactStore::open(&dir).expect("store opens");
        assert_eq!(ShardMap::load(&store).expect("clean miss"), None);
        let mut map = ShardMap::adopted(&["127.0.0.1:4651".to_string()]);
        map.version = 7;
        map.persist(&store).expect("persists");
        assert_eq!(ShardMap::load(&store).expect("loads"), Some(map));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
