//! The cluster router: accept loop, frame forwarding with
//! retry/failover, the health-check loop, and the HTTP adapter.
//!
//! The router speaks the exact wire protocol of a single daemon —
//! clients cannot tell the difference. Every NDJSON frame is
//! classified by [`cbsp_serve::route::route`]; digest-keyed work is
//! forwarded verbatim to the shard that rendezvous hashing picks, and
//! the worker's response line is relayed back unchanged, byte for
//! byte. Requests the router must answer itself (`ping`, routing
//! errors, drain refusals) reproduce the daemon's frames exactly.
//!
//! ## Failover
//!
//! [`ShardMap::preference`] orders *all* shards per digest; the head
//! is the home shard and the tail is the failover order. A connect or
//! IO failure moves the request to the next candidate. An `overloaded`
//! rejection is retried once on the same worker after honoring its
//! `retry_after_ms` hint (bounded by the router's cap) — shedding to
//! another shard would forfeit the home shard's warm caches for a
//! momentary queue spike — and only then fails over. When every
//! candidate fails, the client receives the last real backpressure
//! frame if one was seen, else `unavailable`.

use crate::metrics::RouterMetrics;
use crate::shard_map::{ShardEntry, ShardMap};
use crate::worker::{http_get, Worker};
use cbsp_serve::protocol::{
    err_frame, get, obj, ok_frame, parse_request, ErrorCode, Request, PROTOCOL_VERSION,
};
use cbsp_serve::route::{route, Route};
use cbsp_serve::ServeConfig;
use cbsp_store::ArtifactStore;
use serde::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Configuration of one [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Router listen address (`:0` picks a free port).
    pub addr: String,
    /// Spawned workers when `adopt` is empty (minimum 1).
    pub workers: usize,
    /// Externally managed worker addresses to adopt instead of
    /// spawning. Adopted workers are health-checked and routed to but
    /// never restarted.
    pub adopt: Vec<String>,
    /// Root directory: the router persists its shard map under
    /// `<cache_dir>/router`, spawned shard `i` stores under
    /// `<cache_dir>/shard-i`.
    pub cache_dir: PathBuf,
    /// Thread budget per spawned worker (0 = one per core).
    pub worker_threads: usize,
    /// Admission bound per spawned worker.
    pub worker_max_inflight: usize,
    /// Deadline for requests that don't send `timeout_ms` (also the
    /// router's read timeout margin when waiting on a worker).
    pub default_timeout_ms: u64,
    /// Health probe period.
    pub health_interval_ms: u64,
    /// Consecutive failed probes before a worker is marked unhealthy.
    pub health_failures: u32,
    /// Upper bound the router honors from a worker's `retry_after_ms`
    /// hint before retrying (a worker under load may suggest more; the
    /// router prefers failing over to stalling the client).
    pub retry_after_cap_ms: u64,
    /// Initial restart backoff for a dead spawned worker.
    pub restart_backoff_ms: u64,
    /// Restart backoff ceiling (doubles per failed attempt up to this).
    pub restart_backoff_max_ms: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            addr: "127.0.0.1:4660".to_string(),
            workers: 2,
            adopt: Vec::new(),
            cache_dir: PathBuf::from(".cbsp-cache"),
            worker_threads: 0,
            worker_max_inflight: 64,
            default_timeout_ms: 30_000,
            health_interval_ms: 250,
            health_failures: 3,
            retry_after_cap_ms: 250,
            restart_backoff_ms: 200,
            restart_backoff_max_ms: 3_000,
        }
    }
}

/// Shared router state.
pub(crate) struct RouterCore {
    cfg: ClusterConfig,
    workers: Vec<Worker>,
    map: Mutex<ShardMap>,
    store: ArtifactStore,
    metrics: RouterMetrics,
    draining: AtomicBool,
    addr: Mutex<Option<SocketAddr>>,
    started: Instant,
}

impl RouterCore {
    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Flips the cluster into drain mode (idempotent): the router
    /// refuses new work, every spawned worker starts its own drain,
    /// and the accept loop is woken so it can exit.
    fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        for worker in &self.workers {
            worker.begin_drain();
        }
        if let Some(addr) = *self.addr.lock().expect("addr lock") {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
        }
    }

    /// The serve configuration template spawned workers start from.
    fn worker_template(&self) -> ServeConfig {
        ServeConfig {
            threads: self.cfg.worker_threads,
            max_inflight: self.cfg.worker_max_inflight,
            default_timeout_ms: self.cfg.default_timeout_ms,
            ..ServeConfig::default()
        }
    }

    /// Rewrites one shard's address in the map, bumps the topology
    /// version, and re-persists it.
    fn update_shard_addr(&self, shard: usize, addr: SocketAddr) {
        let mut map = self.map.lock().expect("map lock");
        if let Some(entry) = map.shards.get_mut(shard) {
            entry.addr = addr.to_string();
        }
        map.version += 1;
        let snapshot = map.clone();
        drop(map);
        // Persistence is advisory (the live map is authoritative);
        // a store failure must not take down the health loop.
        let _ = snapshot.persist(&self.store);
    }
}

/// A running cluster: router listener plus its worker fleet.
///
/// Dropping the handle does not stop anything; call
/// [`Cluster::shutdown`] then [`Cluster::wait`] (or send the
/// `server.shutdown` method over the wire).
pub struct Cluster {
    core: Arc<RouterCore>,
    addr: SocketAddr,
    accept: thread::JoinHandle<()>,
    health: thread::JoinHandle<()>,
}

impl Cluster {
    /// Opens the router store, spawns or adopts the workers, persists
    /// the shard map (bumping any previously stored version), binds
    /// the router listener, and starts the accept and health loops.
    ///
    /// # Errors
    ///
    /// Returns a message when the store cannot be opened, a worker
    /// fails to start, an adopted address does not parse, or the
    /// router address cannot be bound.
    pub fn start(cfg: ClusterConfig) -> Result<Cluster, String> {
        let store = ArtifactStore::open(cfg.cache_dir.join("router"))
            .map_err(|e| format!("opening router store: {e}"))?;
        // Version continuity across router restarts: a reader that
        // cached version N must see our rewrite as > N.
        let prior_version = ShardMap::load(&store)
            .ok()
            .flatten()
            .map_or(0, |m| m.version);

        let (workers, mut map) = if cfg.adopt.is_empty() {
            let map = ShardMap::spawned(cfg.workers, &cfg.cache_dir);
            let workers: Vec<Worker> = map
                .shards
                .iter()
                .map(|e| Worker::spawned(e.shard, PathBuf::from(&e.cache_dir)))
                .collect();
            (workers, map)
        } else {
            let map = ShardMap::adopted(&cfg.adopt);
            map.validate().map_err(|e| format!("{e}"))?;
            let workers = map
                .shards
                .iter()
                .map(|e| {
                    e.addr
                        .parse()
                        .map(|addr| Worker::adopted(e.shard, addr))
                        .map_err(|err| format!("adopted address `{}`: {err}", e.addr))
                })
                .collect::<Result<Vec<Worker>, String>>()?;
            (workers, map)
        };

        let template = ServeConfig {
            threads: cfg.worker_threads,
            max_inflight: cfg.worker_max_inflight,
            default_timeout_ms: cfg.default_timeout_ms,
            ..ServeConfig::default()
        };
        for (worker, entry) in workers.iter().zip(map.shards.iter_mut()) {
            if worker.spawned {
                let addr = worker
                    .start(&template)
                    .map_err(|e| format!("starting shard {}: {e}", worker.shard))?;
                entry.addr = addr.to_string();
            }
        }
        map.version = prior_version + 1;
        map.persist(&store).map_err(|e| format!("{e}"))?;

        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local addr: {e}"))?;

        let core = Arc::new(RouterCore {
            cfg,
            workers,
            map: Mutex::new(map),
            store,
            metrics: RouterMetrics::default(),
            draining: AtomicBool::new(false),
            addr: Mutex::new(Some(addr)),
            started: Instant::now(),
        });

        let accept_core = Arc::clone(&core);
        let accept = thread::Builder::new()
            .name("cbsp-cluster-accept".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_core.is_draining() {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let conn_core = Arc::clone(&accept_core);
                    let _ = thread::Builder::new()
                        .name("cbsp-cluster-conn".to_string())
                        .spawn(move || handle(conn_core, stream));
                }
            })
            .map_err(|e| format!("spawning accept loop: {e}"))?;

        let health_core = Arc::clone(&core);
        let health = thread::Builder::new()
            .name("cbsp-cluster-health".to_string())
            .spawn(move || health_loop(&health_core))
            .map_err(|e| format!("spawning health loop: {e}"))?;

        Ok(Cluster {
            core,
            addr,
            accept,
            health,
        })
    }

    /// The router's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the current shard map.
    pub fn shard_map(&self) -> ShardMap {
        self.core.map.lock().expect("map lock").clone()
    }

    /// Stops one spawned worker the hard-but-clean way (the workspace
    /// forbids unsafe code, so there is no `kill(2)`): the worker
    /// drains its admitted requests, its listener closes, and from the
    /// router's perspective it is dead — connects are refused, the
    /// health loop marks it unhealthy and eventually restarts it. The
    /// test suite and the lifecycle CI job use this to exercise
    /// failover under load.
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown shard, an adopted worker, or
    /// a worker that is already stopped.
    pub fn kill_worker(&self, shard: usize) -> Result<(), String> {
        let worker = self
            .core
            .workers
            .get(shard)
            .ok_or_else(|| format!("no shard {shard}"))?;
        if !worker.spawned {
            return Err(format!(
                "shard {shard} is adopted; the router does not own it"
            ));
        }
        if !worker.stop() {
            return Err(format!("shard {shard} is not running"));
        }
        Ok(())
    }

    /// Starts a graceful drain of the router and every spawned worker
    /// (idempotent, non-blocking).
    pub fn shutdown(&self) {
        self.core.begin_drain();
    }

    /// Blocks until the cluster has drained: the router's accept loop
    /// has exited, every spawned worker has finished its admitted
    /// requests and closed, and the health loop has stopped. Only
    /// returns after a drain was started.
    ///
    /// # Errors
    ///
    /// Returns a message if a router thread panicked.
    pub fn wait(self) -> Result<(), String> {
        self.accept
            .join()
            .map_err(|_| "accept loop panicked".to_string())?;
        for worker in &self.core.workers {
            worker.stop();
        }
        self.health
            .join()
            .map_err(|_| "health loop panicked".to_string())?;
        Ok(())
    }
}

/// Serves one accepted router connection: the same NDJSON dialect
/// with an HTTP/1.1 sniffer the daemon itself speaks.
fn handle(core: Arc<RouterCore>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        if is_http_request_line(&line) {
            serve_http(&core, line.clone(), &mut reader, &mut writer);
            return;
        }
        let frame = handle_frame(&core, line.trim());
        if writer
            .write_all(frame.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
    }
}

/// Classifies and answers one frame. Frames answered locally (ping,
/// shutdown, errors) reproduce the daemon's bytes exactly; everything
/// else is forwarded and the worker's response relayed unchanged.
fn handle_frame(core: &Arc<RouterCore>, line: &str) -> String {
    core.metrics.count_request();
    let request = match parse_request(line) {
        Ok(r) => r,
        Err((code, message)) => {
            let parsed = serde_json::parse(line).ok();
            let id = parsed
                .as_ref()
                .and_then(Value::as_object)
                .and_then(|p| get(p, "id"))
                .cloned()
                .unwrap_or(Value::Null);
            core.metrics.count_error();
            return err_frame(&id, code, &message);
        }
    };
    let decision = match route(&request) {
        Ok(d) => d,
        Err((code, message)) => {
            core.metrics.count_error();
            return err_frame(&request.id, code, &message);
        }
    };
    match decision {
        Route::Local => ok_frame(&request.id, obj(vec![("pong", Value::Bool(true))])),
        Route::Shutdown => {
            core.begin_drain();
            ok_frame(&request.id, obj(vec![("draining", Value::Bool(true))]))
        }
        Route::AnyShard | Route::Digest(_) if core.is_draining() => {
            core.metrics.count_error();
            err_frame(&request.id, ErrorCode::ShuttingDown, "server is draining")
        }
        Route::AnyShard => {
            let preference: Vec<usize> = (0..core.workers.len()).collect();
            forward(core, &request, &preference, line)
        }
        Route::Digest(digest) => {
            let preference = core.map.lock().expect("map lock").preference(&digest);
            forward(core, &request, &preference, line)
        }
    }
}

/// Forwards the raw frame down the preference order with
/// retry-on-overloaded and failover-on-failure, as documented on the
/// module. Returns the frame to relay to the client.
fn forward(core: &Arc<RouterCore>, request: &Request, preference: &[usize], line: &str) -> String {
    let timeout = Duration::from_millis(
        request
            .timeout_ms
            .unwrap_or(core.cfg.default_timeout_ms)
            .min(3_600_000)
            .saturating_add(2_000),
    );
    let payload = format!("{}\n", line.trim());
    // Healthy shards first, in preference order; unhealthy ones still
    // get a last-resort pass (a worker may have just come back and the
    // health loop not noticed yet).
    let candidates: Vec<usize> = preference
        .iter()
        .filter(|&&i| core.workers[i].healthy.load(Ordering::SeqCst))
        .chain(
            preference
                .iter()
                .filter(|&&i| !core.workers[i].healthy.load(Ordering::SeqCst)),
        )
        .copied()
        .collect();
    let mut last_rejection: Option<String> = None;
    let mut abandoned_one = false;
    for index in candidates {
        let worker = &core.workers[index];
        if abandoned_one {
            core.metrics.count_failover();
        }
        match worker.exchange(&payload, timeout) {
            Ok(response) => {
                match rejection_of(&response) {
                    Some(Rejection::Overloaded { retry_after_ms }) => {
                        // Honor the worker's own backoff hint (capped),
                        // then retry the same worker once: its queue
                        // holds this digest's warm state.
                        core.metrics.count_retry();
                        worker.retries.fetch_add(1, Ordering::Relaxed);
                        thread::sleep(Duration::from_millis(
                            retry_after_ms.min(core.cfg.retry_after_cap_ms),
                        ));
                        if let Ok(retried) = worker.exchange(&payload, timeout) {
                            if rejection_of(&retried).is_none() {
                                worker.routed.fetch_add(1, Ordering::Relaxed);
                                core.metrics.count_routed();
                                return retried;
                            }
                            last_rejection = Some(retried);
                        }
                    }
                    Some(Rejection::ShuttingDown) => {
                        last_rejection = Some(response);
                    }
                    None => {
                        worker.routed.fetch_add(1, Ordering::Relaxed);
                        core.metrics.count_routed();
                        return response;
                    }
                }
            }
            Err(_) => {
                // Unreachable: skip it for subsequent requests until
                // the health loop certifies it again.
                worker.healthy.store(false, Ordering::SeqCst);
            }
        }
        worker.failovers.fetch_add(1, Ordering::Relaxed);
        abandoned_one = true;
    }
    // Truthful backpressure beats a synthetic error: if some worker
    // answered with overloaded/shutting_down, relay that frame.
    if let Some(frame) = last_rejection {
        return frame;
    }
    core.metrics.count_unavailable();
    core.metrics.count_error();
    err_frame(
        &request.id,
        ErrorCode::Unavailable,
        "no shard available for this request; retry later",
    )
}

/// A worker response that must not be relayed as the final answer
/// while other candidates remain.
enum Rejection {
    Overloaded { retry_after_ms: u64 },
    ShuttingDown,
}

/// Classifies a worker's response frame: `None` means a real answer
/// (success or a request-level error that every worker would repeat).
fn rejection_of(response: &str) -> Option<Rejection> {
    let value = serde_json::parse(response).ok()?;
    let pairs = value.as_object()?;
    if matches!(get(pairs, "ok"), Some(Value::Bool(true))) {
        return None;
    }
    let error = get(pairs, "error")?.as_object()?;
    match get(error, "code") {
        Some(Value::Str(code)) if code == "overloaded" => {
            let retry_after_ms = match get(error, "retry_after_ms") {
                Some(Value::UInt(n)) => *n,
                _ => 50,
            };
            Some(Rejection::Overloaded { retry_after_ms })
        }
        Some(Value::Str(code)) if code == "shutting_down" => Some(Rejection::ShuttingDown),
        _ => None,
    }
}

/// The health loop: probe every worker each interval, demote after
/// `health_failures` consecutive misses, restart dead spawned workers
/// with bounded exponential backoff, re-persist the map on address
/// changes.
fn health_loop(core: &Arc<RouterCore>) {
    let interval = Duration::from_millis(core.cfg.health_interval_ms.max(10));
    while !core.is_draining() {
        for (index, worker) in core.workers.iter().enumerate() {
            if core.is_draining() {
                return;
            }
            core.metrics.count_health_check();
            let body = worker
                .addr()
                .and_then(|a| http_get(a, "/healthz", Duration::from_millis(500)).ok());
            match body {
                Some(body) => worker.probe_ok(healthz_version(&body)),
                None => {
                    worker.probe_failed(core.cfg.health_failures);
                    if worker.restart_due() {
                        match worker.start(&core.worker_template()) {
                            Ok(addr) => {
                                worker.restarts.fetch_add(1, Ordering::Relaxed);
                                core.metrics.count_restart();
                                core.update_shard_addr(index, addr);
                            }
                            Err(_) => worker.backoff_restart(
                                core.cfg.restart_backoff_ms,
                                core.cfg.restart_backoff_max_ms,
                            ),
                        }
                    }
                }
            }
        }
        // Sleep in small slices so a drain is observed promptly.
        let deadline = Instant::now() + interval;
        while Instant::now() < deadline && !core.is_draining() {
            thread::sleep(Duration::from_millis(20));
        }
    }
}

/// Extracts `version` from a worker's `/healthz` body.
fn healthz_version(body: &str) -> Option<String> {
    let value = serde_json::parse(body).ok()?;
    let pairs = value.as_object()?;
    match get(pairs, "version") {
        Some(Value::Str(v)) => Some(v.clone()),
        _ => None,
    }
}

/// `true` when the line looks like an HTTP/1.x request line.
fn is_http_request_line(line: &str) -> bool {
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let _path = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("");
    matches!(
        method,
        "GET" | "HEAD" | "POST" | "PUT" | "DELETE" | "OPTIONS"
    ) && version.starts_with("HTTP/1.")
}

/// One-shot HTTP adapter: `GET /healthz` and `GET /metrics` on the
/// router port.
fn serve_http<R: Read>(
    core: &Arc<RouterCore>,
    request_line: String,
    reader: &mut BufReader<R>,
    writer: &mut TcpStream,
) {
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) | Err(_) => break,
            Ok(_) if header.trim().is_empty() => break,
            Ok(_) => {}
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = match (method, path) {
        ("GET", "/healthz") => ("200 OK", healthz_body(core)),
        ("GET", "/metrics") => ("200 OK", metrics_body(core)),
        _ => (
            "404 Not Found",
            r#"{"error":"not found (try /healthz or /metrics)"}"#.to_string(),
        ),
    };
    let _ = write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = writer.flush();
}

/// The router's `/healthz`: fleet-level health at a glance. `role`
/// distinguishes it from a worker's probe on the same port scheme.
fn healthz_body(core: &Arc<RouterCore>) -> String {
    let healthy = core
        .workers
        .iter()
        .filter(|w| w.healthy.load(Ordering::SeqCst))
        .count() as u64;
    serde_json::to_string(&obj(vec![
        ("status", Value::Str("ok".to_string())),
        ("role", Value::Str("router".to_string())),
        ("version", Value::Str(env!("CARGO_PKG_VERSION").to_string())),
        ("uptime_s", Value::UInt(core.started.elapsed().as_secs())),
        ("shards", Value::UInt(core.workers.len() as u64)),
        ("healthy", Value::UInt(healthy)),
        ("draining", Value::Bool(core.is_draining())),
    ]))
    .expect("healthz serializes")
}

/// The router's `/metrics`: aggregate counters, one section per
/// worker (with its queue depth fetched on demand), and the global
/// trace snapshot with the mirrored `cluster/*` counters.
fn metrics_body(core: &Arc<RouterCore>) -> String {
    let m = &core.metrics;
    let map = core.map.lock().expect("map lock").clone();
    let cluster = obj(vec![
        ("protocol", Value::UInt(PROTOCOL_VERSION)),
        ("version", Value::Str(env!("CARGO_PKG_VERSION").to_string())),
        ("uptime_s", Value::UInt(core.started.elapsed().as_secs())),
        ("shard_map_version", Value::UInt(map.version)),
        ("requests", Value::UInt(m.requests.load(Ordering::Relaxed))),
        ("routed", Value::UInt(m.routed.load(Ordering::Relaxed))),
        ("retries", Value::UInt(m.retries.load(Ordering::Relaxed))),
        (
            "failovers",
            Value::UInt(m.failovers.load(Ordering::Relaxed)),
        ),
        ("restarts", Value::UInt(m.restarts.load(Ordering::Relaxed))),
        (
            "unavailable",
            Value::UInt(m.unavailable.load(Ordering::Relaxed)),
        ),
        (
            "health_checks",
            Value::UInt(m.health_checks.load(Ordering::Relaxed)),
        ),
        ("errors", Value::UInt(m.errors.load(Ordering::Relaxed))),
        ("draining", Value::Bool(core.is_draining())),
    ]);
    let shards = Value::Array(
        core.workers
            .iter()
            .zip(map.shards.iter())
            .map(|(worker, entry)| shard_section(worker, entry))
            .collect(),
    );
    let trace = serde_json::parse(&cbsp_trace::metrics_json()).unwrap_or(Value::Null);
    serde_json::to_string(&obj(vec![
        ("cluster", cluster),
        ("shards", shards),
        ("trace", trace),
    ]))
    .expect("metrics serialize")
}

/// One worker's `/metrics` section, including its live queue depth
/// (fetched on demand; `null` when the worker is unreachable).
fn shard_section(worker: &Worker, entry: &ShardEntry) -> Value {
    let depths = worker.addr().and_then(|a| {
        let body = http_get(a, "/metrics", Duration::from_millis(500)).ok()?;
        let value = serde_json::parse(&body).ok()?;
        let serve = get(value.as_object()?, "serve")?.as_object()?;
        let depth = match get(serve, "queue_depth") {
            Some(Value::UInt(n)) => *n,
            _ => return None,
        };
        let executing = match get(serve, "executing") {
            Some(Value::UInt(n)) => *n,
            _ => 0,
        };
        Some((depth, executing))
    });
    obj(vec![
        ("shard", Value::UInt(worker.shard)),
        ("addr", Value::Str(entry.addr.clone())),
        ("spawned", Value::Bool(worker.spawned)),
        (
            "healthy",
            Value::Bool(worker.healthy.load(Ordering::SeqCst)),
        ),
        ("version", worker.version().map_or(Value::Null, Value::Str)),
        ("routed", Value::UInt(worker.routed.load(Ordering::Relaxed))),
        (
            "retries",
            Value::UInt(worker.retries.load(Ordering::Relaxed)),
        ),
        (
            "failovers",
            Value::UInt(worker.failovers.load(Ordering::Relaxed)),
        ),
        (
            "restarts",
            Value::UInt(worker.restarts.load(Ordering::Relaxed)),
        ),
        (
            "queue_depth",
            depths.map_or(Value::Null, |(d, _)| Value::UInt(d)),
        ),
        (
            "executing",
            depths.map_or(Value::Null, |(_, e)| Value::UInt(e)),
        ),
    ])
}
