//! One worker as the router sees it: an address, a connection pool,
//! health state, and (for spawned workers) the in-process daemon
//! handle and its restart bookkeeping.
//!
//! The router runs workers in one of two modes. **Spawned** workers
//! are [`cbsp_serve::Server`] instances the router starts itself, one
//! per shard, each on an ephemeral port with its own artifact-store
//! directory; the router owns their lifecycle and restarts them when
//! they die. **Adopted** workers are externally managed daemons listed
//! in a shard map; the router proxies to them and health-checks them
//! but never restarts them. (The workspace forbids unsafe code, so
//! there is no process spawning or signal handling anywhere — a
//! "worker process" is a daemon instance with its own listener, queue,
//! and caches, which is exactly the unit the protocol sees.)

use cbsp_serve::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Idle pooled connections kept per worker. Small: each request
/// checks a connection out exclusively, and the router's concurrency
/// per worker is bounded by its own connection threads.
const POOL_CAP: usize = 8;

/// One reusable NDJSON connection to a worker.
struct PooledConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// Mutable worker state, guarded by one lock (all operations on it
/// are short; the actual request exchange happens outside the lock).
struct WorkerState {
    addr: Option<SocketAddr>,
    server: Option<Server>,
    idle: Vec<PooledConn>,
    /// Consecutive failed health probes (reset by any success).
    health_failures: u32,
    /// Next restart attempt may not happen before this instant.
    restart_at: Option<Instant>,
    /// Current restart backoff (doubles per failed attempt).
    backoff_ms: u64,
    /// Build version the last successful health probe reported.
    version: Option<String>,
}

/// A worker slot in the router.
pub(crate) struct Worker {
    /// Dense shard id.
    pub shard: u64,
    /// Whether the router owns this worker's lifecycle.
    pub spawned: bool,
    /// Artifact-store directory (spawned workers only).
    pub cache_dir: PathBuf,
    /// Routable: flipped false after `health_failures` consecutive
    /// probe failures or a connect failure, true on probe success.
    pub healthy: AtomicBool,
    /// Requests this worker answered.
    pub routed: AtomicU64,
    /// Same-worker retries after an `overloaded` backoff hint.
    pub retries: AtomicU64,
    /// Requests abandoned here and moved to the next shard.
    pub failovers: AtomicU64,
    /// Times the router restarted this worker.
    pub restarts: AtomicU64,
    state: Mutex<WorkerState>,
}

impl Worker {
    /// A slot for a router-spawned worker (not yet started).
    pub fn spawned(shard: u64, cache_dir: PathBuf) -> Worker {
        Worker::new(shard, true, cache_dir, None)
    }

    /// A slot for an adopted external worker at `addr`.
    pub fn adopted(shard: u64, addr: SocketAddr) -> Worker {
        Worker::new(shard, false, PathBuf::new(), Some(addr))
    }

    fn new(shard: u64, spawned: bool, cache_dir: PathBuf, addr: Option<SocketAddr>) -> Worker {
        Worker {
            shard,
            spawned,
            cache_dir,
            healthy: AtomicBool::new(true),
            routed: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            state: Mutex::new(WorkerState {
                addr,
                server: None,
                idle: Vec::new(),
                health_failures: 0,
                restart_at: None,
                backoff_ms: 0,
                version: None,
            }),
        }
    }

    /// Starts (or restarts) the daemon for a spawned worker on an
    /// ephemeral port, reusing its shard store directory.
    ///
    /// # Errors
    ///
    /// Propagates [`Server::start`]'s message.
    pub fn start(&self, cfg: &ServeConfig) -> Result<SocketAddr, String> {
        debug_assert!(self.spawned, "only spawned workers are started");
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            cache_dir: self.cache_dir.clone(),
            shard_id: Some(self.shard),
            ..cfg.clone()
        })?;
        let addr = server.addr();
        let mut st = self.state.lock().expect("worker lock");
        st.addr = Some(addr);
        st.server = Some(server);
        st.idle.clear();
        st.health_failures = 0;
        st.restart_at = None;
        st.backoff_ms = 0;
        drop(st);
        self.healthy.store(true, Ordering::SeqCst);
        Ok(addr)
    }

    /// The worker's current listen address, if it has one.
    pub fn addr(&self) -> Option<SocketAddr> {
        self.state.lock().expect("worker lock").addr
    }

    /// Build version from the last successful health probe.
    pub fn version(&self) -> Option<String> {
        self.state.lock().expect("worker lock").version.clone()
    }

    /// Begins a graceful drain of a spawned worker (non-blocking).
    pub fn begin_drain(&self) {
        let st = self.state.lock().expect("worker lock");
        if let Some(server) = &st.server {
            server.shutdown();
        }
    }

    /// Stops a spawned worker: drains it (admitted requests finish),
    /// waits for the drain, closes its listener, and forgets its
    /// address and pooled connections. Returns `false` if there was no
    /// running server to stop.
    pub fn stop(&self) -> bool {
        let server = {
            let mut st = self.state.lock().expect("worker lock");
            st.addr = None;
            st.idle.clear();
            st.server.take()
        };
        self.healthy.store(false, Ordering::SeqCst);
        match server {
            Some(server) => {
                server.shutdown();
                let _ = server.wait();
                true
            }
            None => false,
        }
    }

    /// Sends one NDJSON frame and reads one response line. `payload`
    /// must end with `\n`. Reuses a pooled connection when one is
    /// idle; a failure on a *reused* connection is retried once on a
    /// fresh connection before being reported (pool staleness is
    /// normal, not a worker fault).
    ///
    /// # Errors
    ///
    /// A message when the worker is unreachable or the exchange
    /// failed on a fresh connection.
    pub fn exchange(&self, payload: &str, timeout: Duration) -> Result<String, String> {
        let addr = self
            .addr()
            .ok_or_else(|| format!("shard {} has no address", self.shard))?;
        if let Some(conn) = self.checkout() {
            if let Ok(response) = exchange_on(conn, payload, timeout, |c| self.check_in(c)) {
                return Ok(response);
            }
        }
        let conn = connect(addr, timeout)?;
        exchange_on(conn, payload, timeout, |c| self.check_in(c))
    }

    fn checkout(&self) -> Option<PooledConn> {
        self.state.lock().expect("worker lock").idle.pop()
    }

    fn check_in(&self, conn: PooledConn) {
        let mut st = self.state.lock().expect("worker lock");
        // A connection opened against a previous incarnation must not
        // outlive a restart; `start` clears the pool and `addr` is the
        // only handle new connections are minted from, so pooling here
        // is safe only while an address exists.
        if st.addr.is_some() && st.idle.len() < POOL_CAP {
            st.idle.push(conn);
        }
    }

    /// Records a successful health probe (with the reported `version`).
    pub fn probe_ok(&self, version: Option<String>) {
        let mut st = self.state.lock().expect("worker lock");
        st.health_failures = 0;
        st.backoff_ms = 0;
        st.restart_at = None;
        if version.is_some() {
            st.version = version;
        }
        drop(st);
        self.healthy.store(true, Ordering::SeqCst);
    }

    /// Records a failed health probe; after `threshold` consecutive
    /// failures the worker is marked unhealthy and (if spawned) a
    /// restart is scheduled. Returns the consecutive failure count.
    pub fn probe_failed(&self, threshold: u32) -> u32 {
        let mut st = self.state.lock().expect("worker lock");
        st.health_failures = st.health_failures.saturating_add(1);
        let failures = st.health_failures;
        if failures >= threshold {
            if st.restart_at.is_none() {
                st.restart_at = Some(Instant::now());
            }
            drop(st);
            self.healthy.store(false, Ordering::SeqCst);
        }
        failures
    }

    /// `true` when a scheduled restart attempt is due.
    pub fn restart_due(&self) -> bool {
        let st = self.state.lock().expect("worker lock");
        self.spawned && st.restart_at.is_some_and(|at| Instant::now() >= at)
    }

    /// Pushes the next restart attempt out by the current backoff,
    /// then doubles it (bounded by `max_ms`).
    pub fn backoff_restart(&self, base_ms: u64, max_ms: u64) {
        let mut st = self.state.lock().expect("worker lock");
        let wait = st.backoff_ms.max(base_ms).min(max_ms);
        st.restart_at = Some(Instant::now() + Duration::from_millis(wait));
        st.backoff_ms = (wait * 2).min(max_ms);
    }
}

fn connect(addr: SocketAddr, timeout: Duration) -> Result<PooledConn, String> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(timeout));
    let reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("clone stream to {addr}: {e}"))?,
    );
    Ok(PooledConn {
        reader,
        writer: stream,
    })
}

/// Writes `payload`, reads one line, and returns the connection to
/// `check_in` on success (a failed connection is simply dropped).
fn exchange_on(
    mut conn: PooledConn,
    payload: &str,
    timeout: Duration,
    check_in: impl FnOnce(PooledConn),
) -> Result<String, String> {
    let _ = conn.writer.set_read_timeout(Some(timeout));
    conn.writer
        .write_all(payload.as_bytes())
        .and_then(|()| conn.writer.flush())
        .map_err(|e| format!("send: {e}"))?;
    let mut line = String::new();
    match conn.reader.read_line(&mut line) {
        Ok(0) => Err("connection closed before a response".to_string()),
        Ok(_) => {
            let response = line.trim_end_matches('\n').to_string();
            check_in(conn);
            Ok(response)
        }
        Err(e) => Err(format!("receive: {e}")),
    }
}

/// A minimal one-shot HTTP GET against a worker's adapter endpoint
/// (`/healthz`, `/metrics`). Returns the response body.
///
/// # Errors
///
/// A message on connect/IO failure or a non-200 status line.
pub(crate) fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> Result<String, String> {
    let mut stream =
        TcpStream::connect_timeout(&addr, timeout).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: cluster\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("receive: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| "malformed HTTP response".to_string())?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(format!("{path}: {status}"));
    }
    Ok(body.to_string())
}
