//! Router-level counters.
//!
//! Mirrors the daemon's own metrics discipline: an always-on set of
//! process-local atomics (so `/metrics` works with tracing disabled),
//! each increment mirrored into the global `cbsp-trace` registry under
//! `cluster/*` names so a trace snapshot correlates router activity
//! with store and simulation counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Always-on router counters, one instance per router.
#[derive(Debug, Default)]
pub struct RouterMetrics {
    /// Frames received (including invalid ones).
    pub requests: AtomicU64,
    /// Frames answered by forwarding to a worker.
    pub routed: AtomicU64,
    /// Same-worker retries after an `overloaded` hint.
    pub retries: AtomicU64,
    /// Requests moved to the next shard in the preference order.
    pub failovers: AtomicU64,
    /// Worker restarts performed by the health loop.
    pub restarts: AtomicU64,
    /// Requests that exhausted every candidate shard.
    pub unavailable: AtomicU64,
    /// Health probes sent.
    pub health_checks: AtomicU64,
    /// Frames answered locally with an error (parse/validation).
    pub errors: AtomicU64,
}

impl RouterMetrics {
    /// One frame arrived.
    pub fn count_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// One frame was answered by a worker.
    pub fn count_routed(&self) {
        self.routed.fetch_add(1, Ordering::Relaxed);
        cbsp_trace::add("cluster/requests_routed", 1);
    }

    /// One same-worker retry after backoff.
    pub fn count_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        cbsp_trace::add("cluster/retries", 1);
    }

    /// One request failed over to another shard.
    pub fn count_failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
        cbsp_trace::add("cluster/failovers", 1);
    }

    /// One worker restart.
    pub fn count_restart(&self) {
        self.restarts.fetch_add(1, Ordering::Relaxed);
        cbsp_trace::add("cluster/restarts", 1);
    }

    /// One request ran out of candidate shards.
    pub fn count_unavailable(&self) {
        self.unavailable.fetch_add(1, Ordering::Relaxed);
        cbsp_trace::add("cluster/unavailable", 1);
    }

    /// One health probe.
    pub fn count_health_check(&self) {
        self.health_checks.fetch_add(1, Ordering::Relaxed);
    }

    /// One locally answered error frame.
    pub fn count_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }
}
