//! End-to-end tests of the cluster router: protocol transparency,
//! fleet health reporting, worker death under load (failover with
//! zero failed requests, then a supervised restart), adoption of
//! external workers, and graceful drain.

use cbsp_cluster::{Cluster, ClusterConfig};
use cbsp_serve::{ServeConfig, Server};
use serde::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cbsp-cluster-test-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(tag: &str, configure: impl FnOnce(&mut ClusterConfig)) -> (Cluster, SocketAddr, PathBuf) {
    let dir = temp_dir(tag);
    let mut cfg = ClusterConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        cache_dir: dir.clone(),
        worker_threads: 2,
        default_timeout_ms: 120_000,
        health_interval_ms: 50,
        health_failures: 2,
        restart_backoff_ms: 100,
        ..ClusterConfig::default()
    };
    configure(&mut cfg);
    let cluster = Cluster::start(cfg).expect("cluster starts");
    let addr = cluster.addr();
    (cluster, addr, dir)
}

fn one_shot(addr: SocketAddr, frame: &str) -> String {
    let stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(300)))
        .expect("timeout set");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writer
        .write_all(frame.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .expect("request written");
    let mut line = String::new();
    reader.read_line(&mut line).expect("response read");
    line.trim_end().to_string()
}

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout set");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("request written");
    let mut text = String::new();
    BufReader::new(stream)
        .read_to_string(&mut text)
        .expect("response read");
    let (_headers, body) = text.split_once("\r\n\r\n").expect("has body");
    body.to_string()
}

fn field<'a>(value: &'a Value, path: &str) -> &'a Value {
    let mut cur = value;
    for part in path.split('.') {
        cur = cur
            .as_object()
            .and_then(|p| p.iter().find(|(k, _)| k == part))
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing field {part} of {path}"));
    }
    cur
}

fn parse(frame: &str) -> Value {
    serde_json::parse(frame).unwrap_or_else(|e| panic!("bad frame {frame}: {e}"))
}

fn run_frame(interval: u64) -> String {
    format!(
        r#"{{"id":{interval},"method":"pipeline.run","params":{{"benchmark":"gzip","scale":"test","interval":{interval}}}}}"#
    )
}

#[test]
fn router_speaks_the_daemon_protocol_and_reports_fleet_health() {
    let (cluster, addr, dir) = start("protocol", |_| {});

    // Locally answered frames are byte-identical to a worker's.
    assert_eq!(
        one_shot(addr, r#"{"id": 1, "method": "ping"}"#),
        r#"{"id":1,"ok":true,"v":1,"result":{"pong":true}}"#
    );
    // Routing errors reproduce worker dispatch exactly.
    assert_eq!(
        one_shot(addr, r#"{"id": 2, "method": "no.such"}"#),
        r#"{"id":2,"ok":false,"v":1,"error":{"code":"bad_request","message":"unknown method `no.such`"}}"#
    );
    // Digest-keyed work is forwarded and answered.
    let run = parse(&one_shot(addr, &run_frame(20_000)));
    assert_eq!(field(&run, "ok"), &Value::Bool(true));

    let health = parse(&http_get(addr, "/healthz"));
    assert_eq!(field(&health, "role"), &Value::Str("router".to_string()));
    assert_eq!(field(&health, "shards"), &Value::UInt(2));
    assert_eq!(field(&health, "draining"), &Value::Bool(false));

    let metrics = parse(&http_get(addr, "/metrics"));
    assert_eq!(
        field(&metrics, "cluster.shard_map_version"),
        &Value::UInt(1)
    );
    assert!(matches!(field(&metrics, "cluster.routed"), Value::UInt(n) if *n >= 1));
    let shards = field(&metrics, "shards").as_array().expect("shards array");
    assert_eq!(shards.len(), 2);
    for shard in shards {
        assert_eq!(field(shard, "healthy"), &Value::Bool(true));
    }

    // Wire-initiated drain: same response as a single daemon. The
    // listener closes for new connections; a frame on an existing
    // connection is refused with the daemon's own drain error.
    let stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout set");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut exchange = |frame: &str| {
        writer
            .write_all(frame.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .expect("request written");
        let mut line = String::new();
        reader.read_line(&mut line).expect("response read");
        line.trim_end().to_string()
    };
    assert_eq!(
        exchange(r#"{"id": 9, "method": "server.shutdown"}"#),
        r#"{"id":9,"ok":true,"v":1,"result":{"draining":true}}"#
    );
    assert_eq!(
        exchange(&run_frame(20_000)),
        r#"{"id":20000,"ok":false,"v":1,"error":{"code":"shutting_down","message":"server is draining"}}"#
    );
    cluster.wait().expect("clean drain");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killing_a_worker_under_load_loses_no_requests_and_it_restarts() {
    let (cluster, addr, dir) = start("failover", |_| {});
    let intervals: Vec<u64> = (0..8).map(|i| 20_000 + i * 7).collect();

    // Warm round: exercises every digest once and tells us which
    // shard is the home of real traffic, so the kill below provably
    // severs live routes instead of an idle worker.
    for &interval in &intervals {
        let resp = parse(&one_shot(addr, &run_frame(interval)));
        assert_eq!(field(&resp, "ok"), &Value::Bool(true), "warm round");
    }
    let metrics = parse(&http_get(addr, "/metrics"));
    let shards = field(&metrics, "shards").as_array().expect("shards array");
    let busiest = shards
        .iter()
        .enumerate()
        .max_by_key(|(_, s)| match field(s, "routed") {
            Value::UInt(n) => *n,
            _ => 0,
        })
        .map(|(i, _)| i)
        .expect("two shards");

    // Load from four concurrent clients while the busiest worker dies
    // mid-stream. Every request must still succeed: admitted work
    // drains, unreachable-worker requests fail over down the digest's
    // preference order to the surviving shard.
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..4)
            .map(|client| {
                let intervals = intervals.clone();
                scope.spawn(move || {
                    for round in 0..3 {
                        for &interval in &intervals {
                            let resp = parse(&one_shot(addr, &run_frame(interval)));
                            assert_eq!(
                                field(&resp, "ok"),
                                &Value::Bool(true),
                                "client {client} round {round} interval {interval}"
                            );
                        }
                    }
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(30));
        cluster.kill_worker(busiest).expect("kill succeeds");
        for handle in workers {
            handle.join().expect("client thread");
        }
    });

    // The health loop notices the death and restarts the worker on a
    // fresh port; the shard map version bumps past its initial 1.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let metrics = parse(&http_get(addr, "/metrics"));
        let restarts = match field(&metrics, "cluster.restarts") {
            Value::UInt(n) => *n,
            _ => 0,
        };
        if restarts >= 1 {
            assert!(
                matches!(field(&metrics, "cluster.shard_map_version"), Value::UInt(v) if *v >= 2),
                "restart re-persists a bumped shard map"
            );
            break;
        }
        assert!(Instant::now() < deadline, "no restart within 10s");
        std::thread::sleep(Duration::from_millis(50));
    }
    // And the restarted worker serves again through the router.
    let resp = parse(&one_shot(addr, &run_frame(intervals[0])));
    assert_eq!(field(&resp, "ok"), &Value::Bool(true));

    cluster.shutdown();
    cluster.wait().expect("clean drain");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn adopts_external_workers_and_refuses_to_kill_them() {
    let dir = temp_dir("adopt");
    let mut workers = Vec::new();
    let mut addrs = Vec::new();
    for shard in 0..2u64 {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            cache_dir: dir.join(format!("external-{shard}")),
            shard_id: Some(shard),
            workers: 1,
            ..ServeConfig::default()
        })
        .expect("worker starts");
        addrs.push(server.addr().to_string());
        workers.push(server);
    }
    let (cluster, addr, _) = start("adopt-router", |cfg| {
        cfg.adopt = addrs.clone();
    });

    let direct = one_shot(workers[0].addr(), &run_frame(20_000));
    let routed = one_shot(addr, &run_frame(20_000));
    assert_eq!(direct, routed, "routed responses are byte-identical");

    assert!(
        cluster.kill_worker(0).is_err(),
        "adopted workers are not the router's to kill"
    );

    cluster.shutdown();
    cluster.wait().expect("router drains");
    for server in workers {
        server.shutdown();
        server.wait().expect("worker drains");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
