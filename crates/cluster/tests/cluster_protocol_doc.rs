//! Replays the cluster-routing examples in `docs/PROTOCOL.md` against
//! a fresh 2-worker cluster, byte for byte, in document order.
//!
//! The cluster section's examples are marked with
//! `<!-- verify-cluster: request -->` / `<!-- verify-cluster: response -->`
//! comments, each followed by a fenced ```json block holding exactly
//! one frame. This test extracts the pairs and asserts the router's
//! responses match the documented bytes — including the examples that
//! deliberately repeat single-daemon responses, which is how the
//! document proves routing is invisible to clients.

use cbsp_cluster::{Cluster, ClusterConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One documented request/response pair, with the line the request
/// marker sits on (for failure messages).
struct Example {
    line: usize,
    request: String,
    response: String,
}

/// Pulls the single frame out of the ```json fence that must follow a
/// verify-cluster marker.
fn fenced_frame<'a>(
    lines: &mut impl Iterator<Item = (usize, &'a str)>,
    marker_line: usize,
) -> String {
    let Some((_, fence)) = lines.next() else {
        panic!("verify-cluster marker at line {marker_line} is not followed by a fence");
    };
    assert_eq!(
        fence.trim(),
        "```json",
        "verify-cluster marker at line {marker_line} must be followed by a ```json fence"
    );
    let mut frame = None;
    for (n, line) in lines.by_ref() {
        if line.trim() == "```" {
            return frame.unwrap_or_else(|| panic!("empty verify fence after line {marker_line}"));
        }
        assert!(
            frame.is_none(),
            "verify fence after line {marker_line} holds more than one line (line {n}) — \
             frames are newline-delimited, one per example"
        );
        frame = Some(line.to_string());
    }
    panic!("unterminated verify fence after line {marker_line}");
}

fn extract_examples(doc: &str) -> Vec<Example> {
    let mut lines = doc.lines().enumerate();
    let mut examples = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    while let Some((n, line)) = lines.next() {
        match line.trim() {
            "<!-- verify-cluster: request -->" => {
                assert!(
                    pending.is_none(),
                    "request marker at line {} has no response marker before line {}",
                    pending.as_ref().map_or(0, |(m, _)| m + 1),
                    n + 1
                );
                pending = Some((n + 1, fenced_frame(&mut lines, n + 1)));
            }
            "<!-- verify-cluster: response -->" => {
                let (line, request) = pending
                    .take()
                    .unwrap_or_else(|| panic!("response marker at line {} has no request", n + 1));
                examples.push(Example {
                    line,
                    request,
                    response: fenced_frame(&mut lines, n + 1),
                });
            }
            _ => {}
        }
    }
    assert!(
        pending.is_none(),
        "trailing request marker without response"
    );
    examples
}

/// Rewrites every `verify-cluster: response` fence in
/// `docs/PROTOCOL.md` with a live 2-worker cluster's bytes for the
/// preceding documented request — requests, prose, and the
/// single-daemon `verify:` examples are left untouched. Run manually
/// after a protocol (or cache-key) change:
///
/// ```text
/// cargo test -p cbsp-cluster --test cluster_protocol_doc -- --ignored
/// ```
///
/// then review the diff and re-run the non-ignored replay test.
#[test]
#[ignore = "rewrites docs/PROTOCOL.md from live responses"]
fn regenerate_documented_cluster_responses() {
    let doc_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/PROTOCOL.md");
    let doc = std::fs::read_to_string(doc_path).expect("docs/PROTOCOL.md readable");

    let dir = std::env::temp_dir().join(format!("cbsp-cluster-regen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cluster = Cluster::start(ClusterConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        worker_threads: 2,
        cache_dir: dir.clone(),
        ..ClusterConfig::default()
    })
    .expect("cluster starts");
    let stream = TcpStream::connect(cluster.addr()).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(300)))
        .expect("timeout set");
    let mut writer = stream.try_clone().expect("stream clones");
    let mut reader = BufReader::new(stream);

    let mut out = String::new();
    let mut lines = doc.lines().peekable();
    let mut pending: Option<String> = None;
    while let Some(line) = lines.next() {
        out.push_str(line);
        out.push('\n');
        let capture = match line.trim() {
            "<!-- verify-cluster: request -->" => false,
            "<!-- verify-cluster: response -->" => true,
            _ => continue,
        };
        let fence = lines.next().expect("fence after marker");
        assert_eq!(
            fence.trim(),
            "```json",
            "marker must be followed by ```json"
        );
        out.push_str(fence);
        out.push('\n');
        let mut frame = String::new();
        for body in lines.by_ref() {
            if body.trim() == "```" {
                break;
            }
            frame.push_str(body);
        }
        if capture {
            let request = pending.take().expect("response fence without a request");
            writer
                .write_all(request.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .expect("request written");
            let mut response = String::new();
            reader.read_line(&mut response).expect("response read");
            out.push_str(response.trim_end());
        } else {
            pending = Some(frame.clone());
            out.push_str(&frame);
        }
        out.push_str("\n```\n");
    }
    assert!(pending.is_none(), "trailing request without a response");

    if out != doc {
        std::fs::write(doc_path, out).expect("docs/PROTOCOL.md written");
    }
    cluster.wait().expect("clean drain");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn documented_cluster_examples_are_served_byte_for_byte() {
    let doc_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/PROTOCOL.md");
    let doc = std::fs::read_to_string(doc_path).expect("docs/PROTOCOL.md readable");
    let examples = extract_examples(&doc);
    assert!(
        examples.len() >= 5,
        "PROTOCOL.md documents at least five verified cluster examples, found {}",
        examples.len()
    );

    let dir = std::env::temp_dir().join(format!("cbsp-cluster-doc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cluster = Cluster::start(ClusterConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        worker_threads: 2,
        cache_dir: dir.clone(),
        ..ClusterConfig::default()
    })
    .expect("cluster starts");

    // One connection for the whole document: the post-shutdown example
    // must arrive on a connection that outlives the drain.
    let stream = TcpStream::connect(cluster.addr()).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(300)))
        .expect("timeout set");
    let mut writer = stream.try_clone().expect("stream clones");
    let mut reader = BufReader::new(stream);
    let mut drained = false;
    for example in &examples {
        writer
            .write_all(example.request.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .expect("request written");
        let mut line = String::new();
        reader.read_line(&mut line).expect("response read");
        assert_eq!(
            line.trim_end(),
            example.response,
            "response drifted from the example documented at PROTOCOL.md line {} \
             (request: {})",
            example.line,
            example.request
        );
        drained |= example.request.contains("server.shutdown");
    }
    assert!(
        drained,
        "the cluster section must end by verifying a fleet-wide drain"
    );
    cluster.wait().expect("clean drain");
    let _ = std::fs::remove_dir_all(&dir);
}
