//! Property tests of the artifact store's two core guarantees:
//!
//! 1. Round-trip fidelity — any value that goes in comes back
//!    byte-identical (canonical JSON compares equal).
//! 2. Corruption safety — any single-byte mutation or truncation of an
//!    artifact file is detected on read and reported as a typed
//!    [`CbspError`], never a panic and never silently wrong data.

use cbsp_core::CbspError;
use cbsp_store::{canonical_json, stage_key, ArtifactStore, StageKey};
use proptest::collection::vec;
use proptest::prelude::*;
use serde::Value;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh store rooted in a unique temp directory.
fn temp_store(tag: &str) -> (ArtifactStore, PathBuf) {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cbsp-store-prop-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ArtifactStore::open(&dir).expect("store opens");
    (store, dir)
}

fn small_string() -> impl Strategy<Value = String> {
    vec(any::<char>(), 0..8).prop_map(|chars| chars.into_iter().collect())
}

/// Arbitrary JSON trees — every payload shape the store can hold.
fn json_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<u64>().prop_map(Value::UInt),
        any::<f64>().prop_map(Value::Float),
        small_string().prop_map(Value::Str),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            vec(inner.clone(), 0..4).prop_map(Value::Array),
            vec((small_string(), inner), 0..4).prop_map(Value::Object),
        ]
        .boxed()
    })
}

fn key_of(payload: &Value, salt: u64) -> StageKey {
    stage_key("prop", &[payload.clone(), Value::UInt(salt)])
}

proptest! {
    /// Whatever goes in comes back byte-identical.
    #[test]
    fn round_trip_is_byte_identical(payload in json_value(), salt in 0u64..1000) {
        let (store, dir) = temp_store("roundtrip");
        let key = key_of(&payload, salt);
        prop_assert!(store.put("prop", &key, &payload).expect("put succeeds"));
        // A second put of the same content is deduplicated.
        prop_assert!(!store.put("prop", &key, &payload).expect("put succeeds"));
        let got: Value = store
            .get("prop", &key)
            .expect("get succeeds")
            .expect("artifact present");
        prop_assert_eq!(canonical_json(&got), canonical_json(&payload));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Any single-byte mutation of the stored file either surfaces as
    /// a typed error or decodes to the exact original value (a
    /// mutation can be semantically invisible, e.g. changing a float
    /// digit below f64 precision — the checksum covers the *decoded*
    /// payload, so such a change is harmless by construction). Never a
    /// panic, never silently different data.
    #[test]
    fn corrupted_artifact_is_a_typed_error(
        payload in json_value(),
        pos_seed in any::<u64>(),
        replacement in 0x20u8..0x7f,
    ) {
        let (store, dir) = temp_store("corrupt");
        let key = key_of(&payload, 0);
        store.put("prop", &key, &payload).expect("put succeeds");

        let path = store.object_path(&key);
        let mut bytes = std::fs::read(&path).expect("artifact file exists");
        let pos = (pos_seed % bytes.len() as u64) as usize;
        prop_assume!(bytes[pos] != replacement);
        bytes[pos] = replacement;
        std::fs::write(&path, &bytes).expect("rewrite");

        match store.get::<Value>("prop", &key) {
            Err(CbspError::ArtifactCorrupt { key: k, .. }) => {
                prop_assert_eq!(k, key.as_hex().to_string());
            }
            Err(CbspError::ArtifactVersionMismatch { .. }) => {
                // The mutation hit the schema-version digit.
            }
            Ok(Some(got)) => {
                prop_assert_eq!(canonical_json(&got), canonical_json(&payload));
            }
            other => prop_assert!(false, "corruption not detected: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A truncated artifact file is likewise a typed error.
    #[test]
    fn truncated_artifact_is_a_typed_error(payload in json_value(), keep_seed in any::<u64>()) {
        let (store, dir) = temp_store("truncate");
        let key = key_of(&payload, 0);
        store.put("prop", &key, &payload).expect("put succeeds");

        let path = store.object_path(&key);
        let bytes = std::fs::read(&path).expect("artifact file exists");
        let keep = (keep_seed % bytes.len() as u64) as usize;
        std::fs::write(&path, &bytes[..keep]).expect("truncate");

        match store.get::<Value>("prop", &key) {
            Err(CbspError::ArtifactCorrupt { .. }) => {}
            other => prop_assert!(false, "truncation not detected: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Keys are deterministic in their inputs and (modulo SHA-256
    /// collisions) distinct for distinct inputs.
    #[test]
    fn keys_are_deterministic_and_input_sensitive(payload in json_value(), salt in 0u64..1000) {
        let key = key_of(&payload, salt);
        prop_assert_eq!(key.clone(), key_of(&payload, salt));
        prop_assert!(key.as_hex().len() == 64);
        prop_assert!(key != key_of(&payload, salt + 1));
        prop_assert!(
            stage_key("prop", std::slice::from_ref(&payload))
                != stage_key("other", std::slice::from_ref(&payload))
        );
    }
}
