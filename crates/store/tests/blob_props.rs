//! Property tests of the binary blob tier's guarantees:
//!
//! 1. Framing fidelity — any (stage, meta, payload) triple round-trips
//!    byte-identical through the on-disk blob format.
//! 2. Corruption safety — any single-byte mutation or truncation of a
//!    blob file is detected on read and reported as a typed
//!    [`CbspError`] (`ArtifactCorrupt` / `ArtifactVersionMismatch`),
//!    never a panic and never silently wrong bytes.
//! 3. Migration fidelity — a legacy JSON trace envelope read through
//!    the cache yields the same trace as the blob it is rewritten to.
//! 4. Prefetch determinism — slice prefetch fan-out returns the same
//!    bytes at 1 thread and at 8.

use cbsp_core::CbspError;
use cbsp_par::Pool;
use cbsp_program::{compile, workloads, CompileTarget, Input, Scale};
use cbsp_sim::record_trace;
use cbsp_store::{put_trace_legacy, stage_key, ArtifactStore, StageKey, TraceCache};
use proptest::collection::vec;
use proptest::prelude::*;
use serde::Value;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh store rooted in a unique temp directory.
fn temp_store(tag: &str) -> (ArtifactStore, PathBuf) {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cbsp-blob-prop-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ArtifactStore::open(&dir).expect("store opens");
    (store, dir)
}

fn key_of(salt: u64) -> StageKey {
    stage_key("blob-prop", &[Value::UInt(salt)])
}

/// Stage names within the header's 15-byte budget.
fn stage_name() -> impl Strategy<Value = String> {
    (0usize..4).prop_map(|i| ["trace", "trace_slice", "t", "abcdefghijklmno"][i].to_string())
}

proptest! {
    /// Whatever (stage, meta, payload) goes in comes back
    /// byte-identical, through both the fresh write and the
    /// already-exists fast path.
    #[test]
    fn blob_round_trip_is_byte_identical(
        stage in stage_name(),
        meta in vec(any::<u8>(), 0..64),
        payload in vec(any::<u8>(), 0..512),
        salt in 0u64..1000,
    ) {
        let (store, dir) = temp_store("roundtrip");
        let key = key_of(salt);
        prop_assert!(store.put_blob(&stage, &key, &meta, &payload).expect("writes"));
        // Content-addressed: a second put of the same key is a no-op.
        prop_assert!(!store.put_blob(&stage, &key, &meta, &payload).expect("no-op"));
        let blob = store
            .get_blob(&stage, &key)
            .expect("reads")
            .expect("present");
        prop_assert_eq!(blob.meta, meta);
        prop_assert_eq!(blob.payload, payload);
        // A missing key is a clean miss, not an error.
        prop_assert!(store.get_blob(&stage, &key_of(salt + 1000)).expect("reads").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Any single flipped byte anywhere in the blob file is detected
    /// and reported as a typed error — never a panic, never wrong
    /// bytes served as good.
    #[test]
    fn any_single_byte_flip_is_detected(
        meta in vec(any::<u8>(), 0..24),
        payload in vec(any::<u8>(), 1..64),
        flip_seed in any::<usize>(),
        salt in 0u64..1000,
    ) {
        let (store, dir) = temp_store("flip");
        let key = key_of(salt);
        store.put_blob("trace", &key, &meta, &payload).expect("writes");
        let path = store.blob_path(&key);
        let mut bytes = std::fs::read(&path).expect("blob file exists");
        let at = flip_seed % bytes.len();
        bytes[at] ^= 0x01;
        std::fs::write(&path, &bytes).expect("rewrites");

        match store.get_blob("trace", &key) {
            Err(CbspError::ArtifactCorrupt { .. })
            | Err(CbspError::ArtifactVersionMismatch { .. }) => {}
            other => prop_assert!(false, "flip at {at} must be typed corruption, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Truncation at every possible length — mid-header, mid-meta,
    /// mid-payload — is detected as typed corruption, and a trailing
    /// extra byte is too.
    #[test]
    fn any_truncation_is_detected(
        meta in vec(any::<u8>(), 0..16),
        payload in vec(any::<u8>(), 1..32),
        cut_seed in any::<usize>(),
        salt in 0u64..1000,
    ) {
        let (store, dir) = temp_store("cut");
        let key = key_of(salt);
        store.put_blob("trace", &key, &meta, &payload).expect("writes");
        let path = store.blob_path(&key);
        let bytes = std::fs::read(&path).expect("blob file exists");

        let cut = cut_seed % bytes.len();
        std::fs::write(&path, &bytes[..cut]).expect("truncates");
        match store.get_blob("trace", &key) {
            Err(CbspError::ArtifactCorrupt { .. })
            | Err(CbspError::ArtifactVersionMismatch { .. }) => {}
            other => prop_assert!(false, "cut to {cut} must be typed corruption, got {other:?}"),
        }

        let mut longer = bytes.clone();
        longer.push(0);
        std::fs::write(&path, &longer).expect("extends");
        match store.get_blob("trace", &key) {
            Err(CbspError::ArtifactCorrupt { .. }) => {}
            other => prop_assert!(false, "trailing byte must be corruption, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A legacy JSON envelope read through the cache serves the identical
/// trace, and the blob it is migrated to serves identical bytes again
/// on the next cold read.
#[test]
fn legacy_envelope_migrates_to_an_identical_blob() {
    let prog = workloads::by_name("gzip")
        .expect("in suite")
        .build(Scale::Test);
    let bin = compile(&prog, CompileTarget::W32_O2);
    let input = Input::test();
    let recorded = record_trace(&bin, &input);
    let (store, dir) = temp_store("migrate");
    put_trace_legacy(&store, &bin, &input, &recorded).expect("legacy envelope writes");

    let cache = TraceCache::new(Some(&store));
    let via_legacy = cache.get_or_record(&bin, &input).expect("legacy hit");
    assert_eq!(
        *via_legacy, recorded,
        "legacy read-through serves the recording"
    );

    // The read migrated the envelope; a fresh cache now reads the blob.
    let fresh = TraceCache::new(Some(&store));
    let via_blob = fresh.get_or_record(&bin, &input).expect("blob hit");
    assert_eq!(*via_blob, recorded, "migrated blob serves identical bytes");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Slice prefetch fan-out is byte-deterministic: a cache prefetching
/// on 1 thread and one prefetching on 8 return identical slices in
/// identical order.
#[test]
fn slice_prefetch_is_byte_identical_across_thread_counts() {
    use cbsp_profile::{ExecPoint, MarkerRef};
    use cbsp_program::{run, Marker, TraceSink};
    use cbsp_sim::MemoryConfig;

    #[derive(Default)]
    struct Tally(std::collections::BTreeMap<MarkerRef, u64>);
    impl TraceSink for Tally {
        fn on_block(&mut self, _b: cbsp_program::BlockId, _i: u64) {}
        fn on_marker(&mut self, m: Marker) {
            let r = match m {
                Marker::ProcEntry(p) => MarkerRef::Proc(u32::from(p)),
                Marker::LoopEntry(l) => MarkerRef::LoopEntry(u32::from(l)),
                Marker::LoopBack(l) => MarkerRef::LoopBack(u32::from(l)),
            };
            *self.0.entry(r).or_insert(0) += 1;
        }
    }

    let prog = workloads::by_name("gzip")
        .expect("in suite")
        .build(Scale::Test);
    let bin = compile(&prog, CompileTarget::W32_O2);
    let input = Input::test();
    let mut tally = Tally::default();
    run(&bin, &input, &mut tally);
    let (&marker, &execs) = tally.0.iter().max_by_key(|(_, &n)| n).expect("markers run");
    let cuts = 8.min(execs);
    let boundaries: Vec<ExecPoint> = (1..=cuts)
        .map(|i| ExecPoint {
            marker,
            count: i * execs / cuts,
        })
        .collect();
    let selected: Vec<usize> = (0..=boundaries.len()).collect();
    let config = MemoryConfig::table1();

    let (store, dir) = temp_store("prefetch");
    // Materialize the slice blobs once.
    TraceCache::new(Some(&store))
        .get_slices(&bin, &input, &config, &boundaries, &selected)
        .expect("cold materialization");

    let serial = TraceCache::new(Some(&store))
        .with_prefetch(Pool::new(1))
        .get_slices(&bin, &input, &config, &boundaries, &selected)
        .expect("serial prefetch");
    let pooled = TraceCache::new(Some(&store))
        .with_prefetch(Pool::new(8))
        .get_slices(&bin, &input, &config, &boundaries, &selected)
        .expect("pooled prefetch");
    assert_eq!(
        *serial, *pooled,
        "slice prefetch must merge in index order at any thread count"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
