//! Content-addressed event-trace cache: record each `(binary, input)`
//! execution once per process — and once per store, across processes —
//! and serve every later detailed simulation from the recorded
//! [`EventTrace`].
//!
//! Two cache tiers:
//!
//! * an in-memory map of [`Arc<EventTrace>`], shared by every consumer
//!   holding the same [`TraceCache`] (one interpretation per
//!   experiment run);
//! * optionally, the [`ArtifactStore`], where traces persist as
//!   checksummed artifacts keyed on `(binary digest, input digest)` —
//!   the same content-addressing the pipeline stages use — so repeat
//!   experiment runs skip interpretation entirely.
//!
//! Trace bytes are stored base64-encoded inside the standard JSON
//! envelope, keeping the store's single artifact format (and its
//! corruption detection and repair semantics) for binary payloads.

use cbsp_core::{weighted_cpi, weighted_cpi_with, CbspError};
use cbsp_par::Pool;
use cbsp_profile::ExecPoint;
use cbsp_program::{Binary, Input};
use cbsp_sim::{
    record_trace, replay_marker_sliced, replay_slice, slice_trace, EventTrace, IntervalSim,
    MemoryConfig, SlicedTrace, TraceSlice,
};
use cbsp_simpoint::SimPoint;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::store::{content_hash, stage_key, ArtifactStore, StageKey};
use serde::Value;

/// Stage name traces are stored under.
pub const TRACE_STAGE: &str = "trace";

/// Stage name sliced-trace manifests are stored under. Like
/// [`TRACE_STAGE`], artifacts in this namespace are never referenced by
/// run manifests, so `gc` always evicts them.
pub const TRACE_SLICE_STAGE: &str = "trace_slice";

/// `true` when the `CBSP_NO_TRACE_SLICES` environment knob disables the
/// sliced-trace estimate path (warm estimates then replay the full
/// trace in context; see README "Trace cache knobs").
pub fn slicing_disabled() -> bool {
    std::env::var("CBSP_NO_TRACE_SLICES").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// On-store form of an [`EventTrace`]: header fields plus base64 bytes.
#[derive(Debug, Serialize, Deserialize)]
struct TraceArtifact {
    n_procs: u32,
    n_loops: u32,
    events: u64,
    data: String,
}

const BASE64_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes `bytes` as unpadded standard-alphabet base64.
pub fn base64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let v = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        let chars = [
            BASE64_ALPHABET[(v >> 18) as usize & 63],
            BASE64_ALPHABET[(v >> 12) as usize & 63],
            BASE64_ALPHABET[(v >> 6) as usize & 63],
            BASE64_ALPHABET[v as usize & 63],
        ];
        let keep = match chunk.len() {
            1 => 2,
            2 => 3,
            _ => 4,
        };
        for &c in &chars[..keep] {
            out.push(c as char);
        }
    }
    out
}

/// Decodes unpadded standard-alphabet base64 (trailing `=` tolerated).
/// Returns `None` on any character outside the alphabet or an
/// impossible length.
pub fn base64_decode(text: &str) -> Option<Vec<u8>> {
    let trimmed = text.trim_end_matches('=');
    let mut out = Vec::with_capacity(trimmed.len() / 4 * 3 + 2);
    let mut chunk = [0u8; 4];
    let mut filled = 0;
    let decode_one = |c: u8| -> Option<u8> {
        match c {
            b'A'..=b'Z' => Some(c - b'A'),
            b'a'..=b'z' => Some(c - b'a' + 26),
            b'0'..=b'9' => Some(c - b'0' + 52),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    };
    let flush = |chunk: &[u8], out: &mut Vec<u8>| -> Option<()> {
        let v = chunk.iter().fold(0u32, |acc, &c| (acc << 6) | u32::from(c));
        match chunk.len() {
            4 => out.extend_from_slice(&[(v >> 16) as u8, (v >> 8) as u8, v as u8]),
            3 => {
                let v = v << 6;
                out.extend_from_slice(&[(v >> 16) as u8, (v >> 8) as u8]);
            }
            2 => {
                let v = v << 12;
                out.push((v >> 16) as u8);
            }
            1 => return None,
            _ => {}
        }
        Some(())
    };
    for &c in trimmed.as_bytes() {
        chunk[filled] = decode_one(c)?;
        filled += 1;
        if filled == 4 {
            flush(&chunk, &mut out)?;
            filled = 0;
        }
    }
    flush(&chunk[..filled], &mut out)?;
    Some(out)
}

/// Content key of the trace for `(binary, input)`.
pub fn trace_key(binary: &Binary, input: &Input) -> StageKey {
    stage_key(
        TRACE_STAGE,
        &[
            Value::Str(content_hash(binary)),
            Value::Str(content_hash(input)),
        ],
    )
}

/// On-store form of one [`TraceSlice`]: the interval index, the packed
/// state checkpoint, and the re-based event stream (both base64).
#[derive(Debug, Serialize, Deserialize)]
struct SliceEntry {
    interval: u64,
    state: String,
    events: u64,
    data: String,
}

/// On-store form of a [`SlicedTrace`]: the slice manifest. Holds the
/// full-replay ground-truth statistics, the interval count, and one
/// base64 slice payload per selected interval.
#[derive(Debug, Serialize, Deserialize)]
struct SliceArtifact {
    n_procs: u32,
    n_loops: u32,
    full: cbsp_sim::SimStats,
    intervals: u64,
    slices: Vec<SliceEntry>,
}

/// Content key of the slice manifest for `(binary, input)` sliced at
/// `boundaries` under `config`, covering `selected` intervals.
///
/// Every input that shapes the slices is keyed: the binary and input
/// digests (which events exist), the boundary list (where intervals
/// cut), the memory configuration (immaterial to the bytes, but kept so
/// a config change can never serve a stale ground-truth `full` field),
/// and the selected interval set. `selected` must be sorted and
/// deduplicated — [`TraceCache::get_slices`] normalizes before keying —
/// so the key is order-insensitive.
pub fn trace_slice_key(
    binary: &Binary,
    input: &Input,
    config: &MemoryConfig,
    boundaries: &[ExecPoint],
    selected: &[usize],
) -> StageKey {
    stage_key(
        TRACE_SLICE_STAGE,
        &[
            Value::Str(content_hash(binary)),
            Value::Str(content_hash(input)),
            Value::Str(content_hash(config)),
            Value::Str(content_hash(boundaries)),
            Value::Str(content_hash(selected)),
        ],
    )
}

/// How a [`TraceCache`] reaches its persistent tier: not at all,
/// through a borrow scoped to one experiment, or through shared
/// ownership for long-lived holders (the `cbsp-serve` daemon).
#[derive(Debug)]
enum StoreTier<'s> {
    None,
    Borrowed(&'s ArtifactStore),
    Shared(Arc<ArtifactStore>),
}

/// A two-tier (memory + optional store) cache of recorded event traces.
///
/// Cheap to construct; scope one per experiment so its in-memory tier
/// holds only the handful of binaries that experiment touches — or
/// build one with [`TraceCache::shared`] and keep it for a process
/// lifetime, as the serving daemon does.
#[derive(Debug)]
pub struct TraceCache<'s> {
    store: StoreTier<'s>,
    mem: Mutex<HashMap<String, Arc<EventTrace>>>,
    /// In-memory tier of the sliced-trace path: per-simpoint slice
    /// manifests keyed like the `trace_slice` store namespace.
    slices: Mutex<HashMap<String, Arc<SlicedTrace>>>,
}

impl<'s> TraceCache<'s> {
    /// Creates a cache backed by `store` (pass `None` for purely
    /// in-memory record-once behaviour).
    pub fn new(store: Option<&'s ArtifactStore>) -> Self {
        TraceCache {
            store: match store {
                Some(s) => StoreTier::Borrowed(s),
                None => StoreTier::None,
            },
            mem: Mutex::new(HashMap::new()),
            slices: Mutex::new(HashMap::new()),
        }
    }

    /// Creates a cache with no persistent tier.
    pub fn in_memory() -> TraceCache<'static> {
        TraceCache::new(None)
    }

    /// Creates a cache that co-owns its backing store, freeing the
    /// holder from the borrow scope [`TraceCache::new`] imposes. A
    /// long-lived server keeps one of these so both the in-memory tier
    /// and the on-disk tier stay warm across requests.
    pub fn shared(store: Arc<ArtifactStore>) -> TraceCache<'static> {
        TraceCache {
            store: StoreTier::Shared(store),
            mem: Mutex::new(HashMap::new()),
            slices: Mutex::new(HashMap::new()),
        }
    }

    /// The persistent tier, whichever way it is held.
    fn store(&self) -> Option<&ArtifactStore> {
        match &self.store {
            StoreTier::None => None,
            StoreTier::Borrowed(s) => Some(s),
            StoreTier::Shared(s) => Some(s),
        }
    }

    /// Returns the recorded trace for `(binary, input)`, interpreting
    /// the binary only if neither cache tier has it. Safe to call from
    /// pool workers; concurrent misses on the same key settle on one
    /// entry.
    ///
    /// # Errors
    ///
    /// Returns [`CbspError::StoreIo`] on store failure. A corrupt
    /// stored trace is treated as a miss and repaired in place.
    pub fn get_or_record(
        &self,
        binary: &Binary,
        input: &Input,
    ) -> Result<Arc<EventTrace>, CbspError> {
        let key = trace_key(binary, input);
        let mem_key = key.as_hex().to_string();
        if let Some(t) = self.mem.lock().expect("trace cache lock").get(&mem_key) {
            cbsp_trace::add("sim/trace_cache_hits", 1);
            return Ok(Arc::clone(t));
        }

        let mut repair = false;
        if let Some(store) = self.store() {
            match store.get::<TraceArtifact>(TRACE_STAGE, &key) {
                Ok(Some(artifact)) => match base64_decode(&artifact.data) {
                    Some(bytes) => {
                        cbsp_trace::add("sim/trace_cache_hits", 1);
                        let trace = Arc::new(EventTrace {
                            n_procs: artifact.n_procs,
                            n_loops: artifact.n_loops,
                            events: artifact.events,
                            bytes,
                        });
                        self.insert(mem_key, &trace);
                        return Ok(trace);
                    }
                    None => {
                        // Checksummed envelope with undecodable base64:
                        // treat like any corrupt artifact.
                        repair = true;
                        cbsp_trace::add("store/repairs", 1);
                    }
                },
                Ok(None) => {}
                Err(
                    CbspError::ArtifactCorrupt { .. } | CbspError::ArtifactVersionMismatch { .. },
                ) => {
                    repair = true;
                    cbsp_trace::add("store/repairs", 1);
                }
                Err(other) => return Err(other),
            }
        }

        cbsp_trace::add("sim/trace_cache_misses", 1);
        let trace = Arc::new(record_trace(binary, input));
        if let Some(store) = self.store() {
            let artifact = TraceArtifact {
                n_procs: trace.n_procs,
                n_loops: trace.n_loops,
                events: trace.events,
                data: base64_encode(&trace.bytes),
            };
            if repair {
                store.put_overwrite(TRACE_STAGE, &key, &artifact)?;
            } else {
                store.put(TRACE_STAGE, &key, &artifact)?;
            }
        }
        self.insert(mem_key, &trace);
        Ok(trace)
    }

    /// [`TraceCache::get_or_record`] for a batch of binaries sharing
    /// one input, fanned out over `pool`. Results are in input order.
    ///
    /// # Errors
    ///
    /// Returns the first store error encountered, in input order.
    pub fn get_or_record_all(
        &self,
        binaries: &[&Binary],
        input: &Input,
        pool: &Pool,
    ) -> Result<Vec<Arc<EventTrace>>, CbspError> {
        pool.run_indexed(binaries.len(), |i| self.get_or_record(binaries[i], input))
            .into_iter()
            .collect()
    }

    fn insert(&self, mem_key: String, trace: &Arc<EventTrace>) {
        self.mem
            .lock()
            .expect("trace cache lock")
            .insert(mem_key, Arc::clone(trace));
    }

    /// Returns the per-simpoint slice manifest for `(binary, input)`
    /// cut at `boundaries` covering `selected` intervals, materializing
    /// it with one full replay only if neither cache tier has it. Warm
    /// calls touch kilobytes of slice payload instead of the full
    /// multi-megabyte trace (`sim/full_replay_avoided` counts them).
    ///
    /// # Errors
    ///
    /// Returns [`CbspError::StoreIo`] on store failure. Corrupt stored
    /// manifests — damaged envelopes, undecodable base64, or slice
    /// streams that fail to re-slice — are treated as misses and
    /// repaired in place.
    ///
    /// # Panics
    ///
    /// Panics if some boundary is never reached by the recorded
    /// execution (same contract as
    /// [`cbsp_sim::replay_marker_sliced`]).
    pub fn get_slices(
        &self,
        binary: &Binary,
        input: &Input,
        config: &MemoryConfig,
        boundaries: &[ExecPoint],
        selected: &[usize],
    ) -> Result<Arc<SlicedTrace>, CbspError> {
        let mut wanted: Vec<usize> = selected.to_vec();
        wanted.sort_unstable();
        wanted.dedup();
        let key = trace_slice_key(binary, input, config, boundaries, &wanted);
        let mem_key = key.as_hex().to_string();
        if let Some(s) = self.slices.lock().expect("slice cache lock").get(&mem_key) {
            cbsp_trace::add("sim/full_replay_avoided", 1);
            return Ok(Arc::clone(s));
        }

        let mut repair = false;
        if let Some(store) = self.store() {
            match store.get::<SliceArtifact>(TRACE_SLICE_STAGE, &key) {
                Ok(Some(artifact)) => match decode_slice_artifact(&artifact) {
                    Some(sliced) => {
                        cbsp_trace::add("sim/full_replay_avoided", 1);
                        let sliced = Arc::new(sliced);
                        self.insert_slices(mem_key, &sliced);
                        return Ok(sliced);
                    }
                    None => {
                        repair = true;
                        cbsp_trace::add("store/repairs", 1);
                    }
                },
                Ok(None) => {}
                Err(
                    CbspError::ArtifactCorrupt { .. } | CbspError::ArtifactVersionMismatch { .. },
                ) => {
                    repair = true;
                    cbsp_trace::add("store/repairs", 1);
                }
                Err(other) => return Err(other),
            }
        }

        // Materialize: one full replay cuts every requested slice. A
        // full trace that fails to decode can only be a corrupt stored
        // artifact — re-record it (repair-as-miss) and re-slice.
        let full = self.get_or_record(binary, input)?;
        let sliced = match slice_trace(&full, config, boundaries, &wanted) {
            Ok(s) => s,
            Err(_) => {
                cbsp_trace::add("store/repairs", 1);
                let fresh = self.rerecord(binary, input)?;
                slice_trace(&fresh, config, boundaries, &wanted)
                    .expect("freshly recorded trace decodes")
            }
        };
        let sliced = Arc::new(sliced);
        if let Some(store) = self.store() {
            let artifact = encode_slice_artifact(binary, &sliced);
            if repair {
                store.put_overwrite(TRACE_SLICE_STAGE, &key, &artifact)?;
            } else {
                store.put(TRACE_SLICE_STAGE, &key, &artifact)?;
            }
        }
        self.insert_slices(mem_key, &sliced);
        Ok(sliced)
    }

    /// Records `(binary, input)` afresh, replacing both cache tiers'
    /// entries (the stored artifact decoded but its event stream was
    /// corrupt).
    fn rerecord(&self, binary: &Binary, input: &Input) -> Result<Arc<EventTrace>, CbspError> {
        let key = trace_key(binary, input);
        let trace = Arc::new(record_trace(binary, input));
        if let Some(store) = self.store() {
            let artifact = TraceArtifact {
                n_procs: trace.n_procs,
                n_loops: trace.n_loops,
                events: trace.events,
                data: base64_encode(&trace.bytes),
            };
            store.put_overwrite(TRACE_STAGE, &key, &artifact)?;
        }
        self.insert(key.as_hex().to_string(), &trace);
        Ok(trace)
    }

    fn insert_slices(&self, mem_key: String, sliced: &Arc<SlicedTrace>) {
        self.slices
            .lock()
            .expect("slice cache lock")
            .insert(mem_key, Arc::clone(sliced));
    }

    /// True and SimPoint-estimated CPI for one binary, computed from
    /// per-simpoint trace slices: each selected interval's CPI comes
    /// from replaying its slice (an exact state checkpoint plus the
    /// interval's own events), and the whole-program truth comes from
    /// the slice manifest — so a warm call decodes only kilobytes.
    /// Slice replays are bit-identical to the in-context interval
    /// statistics of a full replay, so the result is byte-identical
    /// across cache temperature *and* to the full-replay path.
    ///
    /// `phase_weights` follows [`weighted_cpi_with`] (the cross-binary
    /// scheme); pass `None` to use each point's own weight. With the
    /// `CBSP_NO_TRACE_SLICES` knob set, falls back to a full in-context
    /// replay — same estimates, none of the byte savings; the knob is
    /// purely a performance fallback.
    ///
    /// # Errors
    ///
    /// Returns [`CbspError::StoreIo`] on store failure.
    ///
    /// # Panics
    ///
    /// Panics if some boundary is never reached by the recorded
    /// execution.
    #[allow(clippy::too_many_arguments)]
    pub fn estimate_cpi_sliced(
        &self,
        binary: &Binary,
        input: &Input,
        config: &MemoryConfig,
        boundaries: &[ExecPoint],
        points: &[SimPoint],
        phase_weights: Option<&[f64]>,
        interval_count: usize,
    ) -> Result<CpiEstimate, CbspError> {
        let _span = cbsp_trace::span_labeled("sim/estimate_sliced", || binary.label());
        if slicing_disabled() {
            return self.estimate_cpi_full(
                binary,
                input,
                config,
                boundaries,
                points,
                phase_weights,
                interval_count,
            );
        }
        let selected: Vec<usize> = points.iter().map(|p| p.interval).collect();
        let sliced = self.get_slices(binary, input, config, boundaries, &selected)?;
        let n = interval_count.max(sliced.intervals);
        let mut interval_cpis = vec![0.0f64; n];
        let mut replayed: Option<Vec<(usize, IntervalSim)>> = replay_all_slices(&sliced, config);
        if replayed.is_none() {
            // A slice stream that fails to decode is a corrupt cached
            // manifest: drop it from both tiers and re-materialize.
            cbsp_trace::add("store/repairs", 1);
            let mut wanted = selected.clone();
            wanted.sort_unstable();
            wanted.dedup();
            let key = trace_slice_key(binary, input, config, boundaries, &wanted);
            self.slices
                .lock()
                .expect("slice cache lock")
                .remove(key.as_hex());
            if let Some(store) = self.store() {
                let full = self.get_or_record(binary, input)?;
                let fresh = slice_trace(&full, config, boundaries, &wanted)
                    .expect("freshly sliced trace decodes");
                let fresh = Arc::new(fresh);
                store.put_overwrite(
                    TRACE_SLICE_STAGE,
                    &key,
                    &encode_slice_artifact(binary, &fresh),
                )?;
                self.insert_slices(key.as_hex().to_string(), &fresh);
                replayed = replay_all_slices(&fresh, config);
            }
        }
        let replayed = replayed.expect("re-materialized slices decode");
        for (interval, stats) in replayed {
            if interval < n {
                interval_cpis[interval] = stats.cpi();
            }
        }
        let estimated_cpi = match phase_weights {
            Some(w) => weighted_cpi_with(points, w, &interval_cpis),
            None => weighted_cpi(points, &interval_cpis),
        };
        Ok(CpiEstimate {
            true_cpi: sliced.full.cpi(),
            instructions: sliced.full.instructions,
            estimated_cpi,
            interval_cpis,
        })
    }

    /// The pre-slicing estimate path: replay the full trace in context.
    /// Kept behind `CBSP_NO_TRACE_SLICES` as a diagnostic baseline.
    #[allow(clippy::too_many_arguments)]
    fn estimate_cpi_full(
        &self,
        binary: &Binary,
        input: &Input,
        config: &MemoryConfig,
        boundaries: &[ExecPoint],
        points: &[SimPoint],
        phase_weights: Option<&[f64]>,
        interval_count: usize,
    ) -> Result<CpiEstimate, CbspError> {
        let trace = self.get_or_record(binary, input)?;
        let (full, mut intervals) = match replay_marker_sliced(&trace, config, boundaries) {
            Ok(r) => r,
            Err(_) => {
                cbsp_trace::add("store/repairs", 1);
                let fresh = self.rerecord(binary, input)?;
                replay_marker_sliced(&fresh, config, boundaries)
                    .expect("freshly recorded trace decodes")
            }
        };
        intervals.resize(interval_count.max(intervals.len()), IntervalSim::default());
        let interval_cpis: Vec<f64> = intervals.iter().map(IntervalSim::cpi).collect();
        let estimated_cpi = match phase_weights {
            Some(w) => weighted_cpi_with(points, w, &interval_cpis),
            None => weighted_cpi(points, &interval_cpis),
        };
        Ok(CpiEstimate {
            true_cpi: full.cpi(),
            instructions: full.instructions,
            estimated_cpi,
            interval_cpis,
        })
    }
}

/// Result of a sliced CPI estimate for one binary.
#[derive(Debug, Clone, PartialEq)]
pub struct CpiEstimate {
    /// Whole-program CPI (full-replay ground truth).
    pub true_cpi: f64,
    /// Whole-program instruction count.
    pub instructions: u64,
    /// The SimPoint-weighted CPI estimate.
    pub estimated_cpi: f64,
    /// Per-interval CPIs backing the estimate; selected intervals hold
    /// their slice-replayed CPI, unselected intervals are 0.
    pub interval_cpis: Vec<f64>,
}

/// Replays every slice in `sliced`, or `None` if any slice stream is
/// corrupt.
fn replay_all_slices(
    sliced: &SlicedTrace,
    config: &MemoryConfig,
) -> Option<Vec<(usize, IntervalSim)>> {
    sliced
        .slices
        .iter()
        .map(|s| replay_slice(s, config).ok().map(|r| (s.interval, r)))
        .collect()
}

fn encode_slice_artifact(binary: &Binary, sliced: &SlicedTrace) -> SliceArtifact {
    SliceArtifact {
        n_procs: binary.procs.len() as u32,
        n_loops: binary.loops.len() as u32,
        full: sliced.full,
        intervals: sliced.intervals as u64,
        slices: sliced
            .slices
            .iter()
            .map(|s| SliceEntry {
                interval: s.interval as u64,
                state: base64_encode(&s.state),
                events: s.trace.events,
                data: base64_encode(&s.trace.bytes),
            })
            .collect(),
    }
}

fn decode_slice_artifact(artifact: &SliceArtifact) -> Option<SlicedTrace> {
    let slices = artifact
        .slices
        .iter()
        .map(|e| {
            Some(TraceSlice {
                interval: e.interval as usize,
                state: base64_decode(&e.state)?,
                trace: EventTrace {
                    n_procs: artifact.n_procs,
                    n_loops: artifact.n_loops,
                    events: e.events,
                    bytes: base64_decode(&e.data)?,
                },
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(SlicedTrace {
        full: artifact.full,
        intervals: artifact.intervals as usize,
        slices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbsp_profile::MarkerRef;
    use cbsp_program::{compile, run, workloads, CompileTarget, Marker, Scale, TraceSink};
    use cbsp_sim::{replay_full, simulate_full, MemoryConfig};

    fn test_binary() -> Binary {
        let prog = workloads::by_name("gzip")
            .expect("in suite")
            .build(Scale::Test);
        compile(&prog, CompileTarget::W32_O2)
    }

    /// Counts marker executions to derive in-order [`ExecPoint`]
    /// boundaries without involving the profiling pipeline.
    #[derive(Default)]
    struct MarkerTally {
        counts: std::collections::BTreeMap<MarkerRef, u64>,
    }

    impl TraceSink for MarkerTally {
        fn on_block(&mut self, _block: cbsp_program::BlockId, _instrs: u64) {}

        fn on_marker(&mut self, marker: Marker) {
            let r = match marker {
                Marker::ProcEntry(p) => MarkerRef::Proc(u32::from(p)),
                Marker::LoopEntry(l) => MarkerRef::LoopEntry(u32::from(l)),
                Marker::LoopBack(l) => MarkerRef::LoopBack(u32::from(l)),
            };
            *self.counts.entry(r).or_insert(0) += 1;
        }
    }

    /// Sixteen boundaries at evenly spaced executions of the binary's
    /// most frequent marker, plus a few synthetic simpoints over the
    /// resulting intervals.
    fn boundaries_and_points(bin: &Binary, input: &Input) -> (Vec<ExecPoint>, Vec<SimPoint>) {
        let mut tally = MarkerTally::default();
        run(bin, input, &mut tally);
        let (&marker, &execs) = tally
            .counts
            .iter()
            .max_by_key(|(_, &n)| n)
            .expect("binary executes at least one marker");
        let cuts = 16.min(execs);
        let boundaries = (1..=cuts)
            .map(|i| ExecPoint {
                marker,
                count: i * execs / cuts,
            })
            .collect();
        let points = vec![
            SimPoint {
                phase: 0,
                interval: 0,
                weight: 0.5,
                share: 1.0,
                variance: 0.0,
            },
            SimPoint {
                phase: 1,
                interval: 2,
                weight: 0.3,
                share: 1.0,
                variance: 0.0,
            },
            SimPoint {
                phase: 2,
                interval: 3,
                weight: 0.2,
                share: 1.0,
                variance: 0.0,
            },
        ];
        (boundaries, points)
    }

    fn temp_store(tag: &str) -> (ArtifactStore, std::path::PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("cbsp-trace-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (ArtifactStore::open(&dir).expect("store opens"), dir)
    }

    #[test]
    fn base64_round_trips() {
        for len in 0..=67 {
            let bytes: Vec<u8> = (0..len as u8)
                .map(|i| i.wrapping_mul(37).wrapping_add(len as u8))
                .collect();
            let text = base64_encode(&bytes);
            assert_eq!(
                base64_decode(&text).as_deref(),
                Some(bytes.as_slice()),
                "len {len}"
            );
        }
        assert_eq!(
            base64_encode(b"any carnal pleasure"),
            "YW55IGNhcm5hbCBwbGVhc3VyZQ"
        );
        assert_eq!(
            base64_decode("YW55IGNhcm5hbCBwbGVhc3VyZQ==").as_deref(),
            Some(b"any carnal pleasure".as_slice())
        );
        assert!(base64_decode("a").is_none(), "length 1 mod 4 is impossible");
        assert!(base64_decode("ab c").is_none(), "alphabet violation");
    }

    #[test]
    fn memory_tier_records_once() {
        let bin = test_binary();
        let input = Input::test();
        let cache = TraceCache::in_memory();
        let _lock = cbsp_trace::test_lock();
        cbsp_trace::enable();
        cbsp_trace::reset();
        let t1 = cache.get_or_record(&bin, &input).expect("records");
        let t2 = cache.get_or_record(&bin, &input).expect("hits");
        assert!(Arc::ptr_eq(&t1, &t2), "second call serves the same trace");
        let counters = cbsp_trace::snapshot().counters;
        cbsp_trace::disable();
        assert_eq!(counters.get("sim/trace_cache_misses"), Some(&1));
        assert_eq!(counters.get("sim/trace_cache_hits"), Some(&1));
        assert!(counters.get("sim/record_bytes").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn store_tier_survives_process_cache_loss() {
        let bin = test_binary();
        let input = Input::test();
        let (store, dir) = temp_store("persist");

        let first = TraceCache::new(Some(&store));
        let t1 = first.get_or_record(&bin, &input).expect("records");

        // A fresh cache (fresh process, conceptually) hits the store.
        let second = TraceCache::new(Some(&store));
        let _lock = cbsp_trace::test_lock();
        cbsp_trace::enable();
        cbsp_trace::reset();
        let t2 = second.get_or_record(&bin, &input).expect("store hit");
        let counters = cbsp_trace::snapshot().counters;
        cbsp_trace::disable();
        assert_eq!(*t1, *t2, "stored trace round-trips exactly");
        assert_eq!(counters.get("sim/trace_cache_hits"), Some(&1));
        assert_eq!(counters.get("sim/trace_cache_misses"), None);

        // And the replayed simulation equals direct interpretation.
        let cfg = MemoryConfig::table1();
        assert_eq!(
            replay_full(&t2, &cfg).expect("decodes"),
            simulate_full(&bin, &input, &cfg)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_stored_trace_is_repaired() {
        let bin = test_binary();
        let input = Input::test();
        let (store, dir) = temp_store("repair");
        let cache = TraceCache::new(Some(&store));
        let t1 = cache.get_or_record(&bin, &input).expect("records");

        // Truncate the artifact on disk.
        let path = store.object_path(&trace_key(&bin, &input));
        let text = std::fs::read_to_string(&path).expect("artifact exists");
        std::fs::write(&path, &text[..text.len() / 2]).expect("truncate");

        let fresh = TraceCache::new(Some(&store));
        let t2 = fresh.get_or_record(&bin, &input).expect("repairs");
        assert_eq!(*t1, *t2);
        // Repaired in place: a third cache now hits cleanly.
        let third = TraceCache::new(Some(&store));
        let t3 = third.get_or_record(&bin, &input).expect("hits");
        assert_eq!(*t1, *t3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pool_fanout_records_each_binary_once() {
        let prog = workloads::by_name("gzip")
            .expect("in suite")
            .build(Scale::Test);
        let bins: Vec<Binary> = CompileTarget::ALL_FOUR
            .iter()
            .map(|&t| compile(&prog, t))
            .collect();
        let refs: Vec<&Binary> = bins.iter().collect();
        let input = Input::test();
        let cache = TraceCache::in_memory();
        let pool = Pool::new(8);
        let traces = cache
            .get_or_record_all(&refs, &input, &pool)
            .expect("records");
        assert_eq!(traces.len(), 4);
        // Same batch again: all four come back as the same allocations.
        let again = cache.get_or_record_all(&refs, &input, &pool).expect("hits");
        for (a, b) in traces.iter().zip(&again) {
            assert!(Arc::ptr_eq(a, b));
        }
    }

    #[test]
    fn warm_slice_manifest_avoids_the_full_replay() {
        let bin = test_binary();
        let input = Input::test();
        let (boundaries, points) = boundaries_and_points(&bin, &input);
        let selected: Vec<usize> = points.iter().map(|p| p.interval).collect();
        let config = MemoryConfig::table1();
        let cache = TraceCache::in_memory();

        let _lock = cbsp_trace::test_lock();
        cbsp_trace::enable();
        cbsp_trace::reset();
        let cold = cache
            .get_slices(&bin, &input, &config, &boundaries, &selected)
            .expect("materializes");
        let cold_counters = cbsp_trace::snapshot().counters;
        let warm = cache
            .get_slices(&bin, &input, &config, &boundaries, &selected)
            .expect("memory hit");
        let warm_counters = cbsp_trace::snapshot().counters;
        cbsp_trace::disable();

        assert!(Arc::ptr_eq(&cold, &warm), "same manifest allocation");
        assert_eq!(cold_counters.get("sim/full_replay_avoided"), None);
        assert_eq!(warm_counters.get("sim/full_replay_avoided"), Some(&1));
        // The manifest is a small fraction of the full trace.
        let full = cache.get_or_record(&bin, &input).expect("cached");
        assert!(
            cold.encoded_len() < full.bytes.len(),
            "slices {} vs full trace {}",
            cold.encoded_len(),
            full.bytes.len()
        );
        // Selection order and duplicates do not change the key.
        let shuffled = vec![selected[2], selected[0], selected[1], selected[0]];
        let again = cache
            .get_slices(&bin, &input, &config, &boundaries, &shuffled)
            .expect("normalized key hits");
        assert!(Arc::ptr_eq(&cold, &again));
    }

    #[test]
    fn slice_manifest_persists_in_the_store() {
        let bin = test_binary();
        let input = Input::test();
        let (boundaries, points) = boundaries_and_points(&bin, &input);
        let selected: Vec<usize> = points.iter().map(|p| p.interval).collect();
        let config = MemoryConfig::table1();
        let (store, dir) = temp_store("slice-persist");

        let first = TraceCache::new(Some(&store));
        let cold = first
            .get_slices(&bin, &input, &config, &boundaries, &selected)
            .expect("materializes");

        // A fresh cache (fresh process, conceptually) loads the stored
        // manifest without touching the full trace.
        let second = TraceCache::new(Some(&store));
        let _lock = cbsp_trace::test_lock();
        cbsp_trace::enable();
        cbsp_trace::reset();
        let warm = second
            .get_slices(&bin, &input, &config, &boundaries, &selected)
            .expect("store hit");
        let counters = cbsp_trace::snapshot().counters;
        cbsp_trace::disable();

        assert_eq!(*cold, *warm, "stored manifest round-trips exactly");
        assert_eq!(counters.get("sim/full_replay_avoided"), Some(&1));
        assert_eq!(counters.get("sim/trace_cache_misses"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_slice_manifest_is_repaired_as_a_miss() {
        let bin = test_binary();
        let input = Input::test();
        let (boundaries, points) = boundaries_and_points(&bin, &input);
        let selected: Vec<usize> = points.iter().map(|p| p.interval).collect();
        let config = MemoryConfig::table1();
        let (store, dir) = temp_store("slice-repair");

        let first = TraceCache::new(Some(&store));
        let cold = first
            .get_slices(&bin, &input, &config, &boundaries, &selected)
            .expect("materializes");

        // Truncate the manifest artifact on disk.
        let key = trace_slice_key(&bin, &input, &config, &boundaries, &selected);
        let path = store.object_path(&key);
        let text = std::fs::read_to_string(&path).expect("artifact exists");
        std::fs::write(&path, &text[..text.len() / 2]).expect("truncate");

        let fresh = TraceCache::new(Some(&store));
        let repaired = fresh
            .get_slices(&bin, &input, &config, &boundaries, &selected)
            .expect("repairs");
        assert_eq!(*cold, *repaired);
        // Repaired in place: a third cache now hits cleanly.
        let third = TraceCache::new(Some(&store));
        let warm = third
            .get_slices(&bin, &input, &config, &boundaries, &selected)
            .expect("hits");
        assert_eq!(*cold, *warm);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The estimate is byte-identical across cache temperature and
    /// thread count: cold materialization and warm slice replay run the
    /// same per-interval simulations.
    #[test]
    fn sliced_estimate_is_identical_cold_warm_and_across_threads() {
        let bin = test_binary();
        let input = Input::test();
        let (boundaries, points) = boundaries_and_points(&bin, &input);
        let config = MemoryConfig::table1();
        let (store, dir) = temp_store("slice-estimate");

        let n = boundaries.len() + 1;
        let cache = TraceCache::new(Some(&store));
        let cold = cache
            .estimate_cpi_sliced(&bin, &input, &config, &boundaries, &points, None, n)
            .expect("cold estimate");
        assert!(cold.true_cpi > 1.0 && cold.estimated_cpi > 0.0);
        assert_eq!(cold.interval_cpis.len(), n);

        for threads in [1usize, 8] {
            let pool = Pool::new(threads);
            let warm = pool.run_indexed(2 * threads.max(2), |_| {
                cache
                    .estimate_cpi_sliced(&bin, &input, &config, &boundaries, &points, None, n)
                    .expect("warm estimate")
            });
            for est in warm {
                assert_eq!(
                    cold.estimated_cpi.to_bits(),
                    est.estimated_cpi.to_bits(),
                    "{threads} threads"
                );
                assert_eq!(cold.true_cpi.to_bits(), est.true_cpi.to_bits());
                assert_eq!(cold.instructions, est.instructions);
                assert_eq!(cold.interval_cpis, est.interval_cpis);
            }
        }

        // A fresh cache over the same store (warm disk, cold memory)
        // also reproduces the estimate bit-for-bit.
        let fresh = TraceCache::new(Some(&store));
        let from_store = fresh
            .estimate_cpi_sliced(&bin, &input, &config, &boundaries, &points, None, n)
            .expect("store-warm estimate");
        assert_eq!(
            cold.estimated_cpi.to_bits(),
            from_store.estimated_cpi.to_bits()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
