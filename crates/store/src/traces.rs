//! Content-addressed event-trace cache: record each `(binary, input)`
//! execution once per process — and once per store, across processes —
//! and serve every later detailed simulation from the recorded
//! [`EventTrace`].
//!
//! Two cache tiers:
//!
//! * an in-memory map of [`Arc<EventTrace>`], shared by every consumer
//!   holding the same [`TraceCache`] (one interpretation per
//!   experiment run);
//! * optionally, the [`ArtifactStore`], where traces persist as
//!   checksummed artifacts keyed on `(binary digest, input digest)` —
//!   the same content-addressing the pipeline stages use — so repeat
//!   experiment runs skip interpretation entirely.
//!
//! Trace bytes are stored base64-encoded inside the standard JSON
//! envelope, keeping the store's single artifact format (and its
//! corruption detection and repair semantics) for binary payloads.

use cbsp_core::CbspError;
use cbsp_par::Pool;
use cbsp_program::{Binary, Input};
use cbsp_sim::{record_trace, EventTrace};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::store::{content_hash, stage_key, ArtifactStore, StageKey};
use serde::Value;

/// Stage name traces are stored under.
pub const TRACE_STAGE: &str = "trace";

/// On-store form of an [`EventTrace`]: header fields plus base64 bytes.
#[derive(Debug, Serialize, Deserialize)]
struct TraceArtifact {
    n_procs: u32,
    n_loops: u32,
    events: u64,
    data: String,
}

const BASE64_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes `bytes` as unpadded standard-alphabet base64.
pub fn base64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let v = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        let chars = [
            BASE64_ALPHABET[(v >> 18) as usize & 63],
            BASE64_ALPHABET[(v >> 12) as usize & 63],
            BASE64_ALPHABET[(v >> 6) as usize & 63],
            BASE64_ALPHABET[v as usize & 63],
        ];
        let keep = match chunk.len() {
            1 => 2,
            2 => 3,
            _ => 4,
        };
        for &c in &chars[..keep] {
            out.push(c as char);
        }
    }
    out
}

/// Decodes unpadded standard-alphabet base64 (trailing `=` tolerated).
/// Returns `None` on any character outside the alphabet or an
/// impossible length.
pub fn base64_decode(text: &str) -> Option<Vec<u8>> {
    let trimmed = text.trim_end_matches('=');
    let mut out = Vec::with_capacity(trimmed.len() / 4 * 3 + 2);
    let mut chunk = [0u8; 4];
    let mut filled = 0;
    let decode_one = |c: u8| -> Option<u8> {
        match c {
            b'A'..=b'Z' => Some(c - b'A'),
            b'a'..=b'z' => Some(c - b'a' + 26),
            b'0'..=b'9' => Some(c - b'0' + 52),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    };
    let flush = |chunk: &[u8], out: &mut Vec<u8>| -> Option<()> {
        let v = chunk.iter().fold(0u32, |acc, &c| (acc << 6) | u32::from(c));
        match chunk.len() {
            4 => out.extend_from_slice(&[(v >> 16) as u8, (v >> 8) as u8, v as u8]),
            3 => {
                let v = v << 6;
                out.extend_from_slice(&[(v >> 16) as u8, (v >> 8) as u8]);
            }
            2 => {
                let v = v << 12;
                out.push((v >> 16) as u8);
            }
            1 => return None,
            _ => {}
        }
        Some(())
    };
    for &c in trimmed.as_bytes() {
        chunk[filled] = decode_one(c)?;
        filled += 1;
        if filled == 4 {
            flush(&chunk, &mut out)?;
            filled = 0;
        }
    }
    flush(&chunk[..filled], &mut out)?;
    Some(out)
}

/// Content key of the trace for `(binary, input)`.
pub fn trace_key(binary: &Binary, input: &Input) -> StageKey {
    stage_key(
        TRACE_STAGE,
        &[
            Value::Str(content_hash(binary)),
            Value::Str(content_hash(input)),
        ],
    )
}

/// How a [`TraceCache`] reaches its persistent tier: not at all,
/// through a borrow scoped to one experiment, or through shared
/// ownership for long-lived holders (the `cbsp-serve` daemon).
#[derive(Debug)]
enum StoreTier<'s> {
    None,
    Borrowed(&'s ArtifactStore),
    Shared(Arc<ArtifactStore>),
}

/// A two-tier (memory + optional store) cache of recorded event traces.
///
/// Cheap to construct; scope one per experiment so its in-memory tier
/// holds only the handful of binaries that experiment touches — or
/// build one with [`TraceCache::shared`] and keep it for a process
/// lifetime, as the serving daemon does.
#[derive(Debug)]
pub struct TraceCache<'s> {
    store: StoreTier<'s>,
    mem: Mutex<HashMap<String, Arc<EventTrace>>>,
}

impl<'s> TraceCache<'s> {
    /// Creates a cache backed by `store` (pass `None` for purely
    /// in-memory record-once behaviour).
    pub fn new(store: Option<&'s ArtifactStore>) -> Self {
        TraceCache {
            store: match store {
                Some(s) => StoreTier::Borrowed(s),
                None => StoreTier::None,
            },
            mem: Mutex::new(HashMap::new()),
        }
    }

    /// Creates a cache with no persistent tier.
    pub fn in_memory() -> TraceCache<'static> {
        TraceCache::new(None)
    }

    /// Creates a cache that co-owns its backing store, freeing the
    /// holder from the borrow scope [`TraceCache::new`] imposes. A
    /// long-lived server keeps one of these so both the in-memory tier
    /// and the on-disk tier stay warm across requests.
    pub fn shared(store: Arc<ArtifactStore>) -> TraceCache<'static> {
        TraceCache {
            store: StoreTier::Shared(store),
            mem: Mutex::new(HashMap::new()),
        }
    }

    /// The persistent tier, whichever way it is held.
    fn store(&self) -> Option<&ArtifactStore> {
        match &self.store {
            StoreTier::None => None,
            StoreTier::Borrowed(s) => Some(s),
            StoreTier::Shared(s) => Some(s),
        }
    }

    /// Returns the recorded trace for `(binary, input)`, interpreting
    /// the binary only if neither cache tier has it. Safe to call from
    /// pool workers; concurrent misses on the same key settle on one
    /// entry.
    ///
    /// # Errors
    ///
    /// Returns [`CbspError::StoreIo`] on store failure. A corrupt
    /// stored trace is treated as a miss and repaired in place.
    pub fn get_or_record(
        &self,
        binary: &Binary,
        input: &Input,
    ) -> Result<Arc<EventTrace>, CbspError> {
        let key = trace_key(binary, input);
        let mem_key = key.as_hex().to_string();
        if let Some(t) = self.mem.lock().expect("trace cache lock").get(&mem_key) {
            cbsp_trace::add("sim/trace_cache_hits", 1);
            return Ok(Arc::clone(t));
        }

        let mut repair = false;
        if let Some(store) = self.store() {
            match store.get::<TraceArtifact>(TRACE_STAGE, &key) {
                Ok(Some(artifact)) => match base64_decode(&artifact.data) {
                    Some(bytes) => {
                        cbsp_trace::add("sim/trace_cache_hits", 1);
                        let trace = Arc::new(EventTrace {
                            n_procs: artifact.n_procs,
                            n_loops: artifact.n_loops,
                            events: artifact.events,
                            bytes,
                        });
                        self.insert(mem_key, &trace);
                        return Ok(trace);
                    }
                    None => {
                        // Checksummed envelope with undecodable base64:
                        // treat like any corrupt artifact.
                        repair = true;
                        cbsp_trace::add("store/repairs", 1);
                    }
                },
                Ok(None) => {}
                Err(
                    CbspError::ArtifactCorrupt { .. } | CbspError::ArtifactVersionMismatch { .. },
                ) => {
                    repair = true;
                    cbsp_trace::add("store/repairs", 1);
                }
                Err(other) => return Err(other),
            }
        }

        cbsp_trace::add("sim/trace_cache_misses", 1);
        let trace = Arc::new(record_trace(binary, input));
        if let Some(store) = self.store() {
            let artifact = TraceArtifact {
                n_procs: trace.n_procs,
                n_loops: trace.n_loops,
                events: trace.events,
                data: base64_encode(&trace.bytes),
            };
            if repair {
                store.put_overwrite(TRACE_STAGE, &key, &artifact)?;
            } else {
                store.put(TRACE_STAGE, &key, &artifact)?;
            }
        }
        self.insert(mem_key, &trace);
        Ok(trace)
    }

    /// [`TraceCache::get_or_record`] for a batch of binaries sharing
    /// one input, fanned out over `pool`. Results are in input order.
    ///
    /// # Errors
    ///
    /// Returns the first store error encountered, in input order.
    pub fn get_or_record_all(
        &self,
        binaries: &[&Binary],
        input: &Input,
        pool: &Pool,
    ) -> Result<Vec<Arc<EventTrace>>, CbspError> {
        pool.run_indexed(binaries.len(), |i| self.get_or_record(binaries[i], input))
            .into_iter()
            .collect()
    }

    fn insert(&self, mem_key: String, trace: &Arc<EventTrace>) {
        self.mem
            .lock()
            .expect("trace cache lock")
            .insert(mem_key, Arc::clone(trace));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbsp_program::{compile, workloads, CompileTarget, Scale};
    use cbsp_sim::{replay_full, simulate_full, MemoryConfig};

    fn test_binary() -> Binary {
        let prog = workloads::by_name("gzip")
            .expect("in suite")
            .build(Scale::Test);
        compile(&prog, CompileTarget::W32_O2)
    }

    fn temp_store(tag: &str) -> (ArtifactStore, std::path::PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("cbsp-trace-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (ArtifactStore::open(&dir).expect("store opens"), dir)
    }

    #[test]
    fn base64_round_trips() {
        for len in 0..=67 {
            let bytes: Vec<u8> = (0..len as u8)
                .map(|i| i.wrapping_mul(37).wrapping_add(len as u8))
                .collect();
            let text = base64_encode(&bytes);
            assert_eq!(
                base64_decode(&text).as_deref(),
                Some(bytes.as_slice()),
                "len {len}"
            );
        }
        assert_eq!(
            base64_encode(b"any carnal pleasure"),
            "YW55IGNhcm5hbCBwbGVhc3VyZQ"
        );
        assert_eq!(
            base64_decode("YW55IGNhcm5hbCBwbGVhc3VyZQ==").as_deref(),
            Some(b"any carnal pleasure".as_slice())
        );
        assert!(base64_decode("a").is_none(), "length 1 mod 4 is impossible");
        assert!(base64_decode("ab c").is_none(), "alphabet violation");
    }

    #[test]
    fn memory_tier_records_once() {
        let bin = test_binary();
        let input = Input::test();
        let cache = TraceCache::in_memory();
        let _lock = cbsp_trace::test_lock();
        cbsp_trace::enable();
        cbsp_trace::reset();
        let t1 = cache.get_or_record(&bin, &input).expect("records");
        let t2 = cache.get_or_record(&bin, &input).expect("hits");
        assert!(Arc::ptr_eq(&t1, &t2), "second call serves the same trace");
        let counters = cbsp_trace::snapshot().counters;
        cbsp_trace::disable();
        assert_eq!(counters.get("sim/trace_cache_misses"), Some(&1));
        assert_eq!(counters.get("sim/trace_cache_hits"), Some(&1));
        assert!(counters.get("sim/record_bytes").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn store_tier_survives_process_cache_loss() {
        let bin = test_binary();
        let input = Input::test();
        let (store, dir) = temp_store("persist");

        let first = TraceCache::new(Some(&store));
        let t1 = first.get_or_record(&bin, &input).expect("records");

        // A fresh cache (fresh process, conceptually) hits the store.
        let second = TraceCache::new(Some(&store));
        let _lock = cbsp_trace::test_lock();
        cbsp_trace::enable();
        cbsp_trace::reset();
        let t2 = second.get_or_record(&bin, &input).expect("store hit");
        let counters = cbsp_trace::snapshot().counters;
        cbsp_trace::disable();
        assert_eq!(*t1, *t2, "stored trace round-trips exactly");
        assert_eq!(counters.get("sim/trace_cache_hits"), Some(&1));
        assert_eq!(counters.get("sim/trace_cache_misses"), None);

        // And the replayed simulation equals direct interpretation.
        let cfg = MemoryConfig::table1();
        assert_eq!(
            replay_full(&t2, &cfg).expect("decodes"),
            simulate_full(&bin, &input, &cfg)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_stored_trace_is_repaired() {
        let bin = test_binary();
        let input = Input::test();
        let (store, dir) = temp_store("repair");
        let cache = TraceCache::new(Some(&store));
        let t1 = cache.get_or_record(&bin, &input).expect("records");

        // Truncate the artifact on disk.
        let path = store.object_path(&trace_key(&bin, &input));
        let text = std::fs::read_to_string(&path).expect("artifact exists");
        std::fs::write(&path, &text[..text.len() / 2]).expect("truncate");

        let fresh = TraceCache::new(Some(&store));
        let t2 = fresh.get_or_record(&bin, &input).expect("repairs");
        assert_eq!(*t1, *t2);
        // Repaired in place: a third cache now hits cleanly.
        let third = TraceCache::new(Some(&store));
        let t3 = third.get_or_record(&bin, &input).expect("hits");
        assert_eq!(*t1, *t3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pool_fanout_records_each_binary_once() {
        let prog = workloads::by_name("gzip")
            .expect("in suite")
            .build(Scale::Test);
        let bins: Vec<Binary> = CompileTarget::ALL_FOUR
            .iter()
            .map(|&t| compile(&prog, t))
            .collect();
        let refs: Vec<&Binary> = bins.iter().collect();
        let input = Input::test();
        let cache = TraceCache::in_memory();
        let pool = Pool::new(8);
        let traces = cache
            .get_or_record_all(&refs, &input, &pool)
            .expect("records");
        assert_eq!(traces.len(), 4);
        // Same batch again: all four come back as the same allocations.
        let again = cache.get_or_record_all(&refs, &input, &pool).expect("hits");
        for (a, b) in traces.iter().zip(&again) {
            assert!(Arc::ptr_eq(a, b));
        }
    }
}
