//! Content-addressed event-trace cache: record each `(binary, input)`
//! execution once per process — and once per store, across processes —
//! and serve every later detailed simulation from the recorded
//! [`EventTrace`].
//!
//! Two cache tiers:
//!
//! * an in-memory map of [`Arc<EventTrace>`], shared by every consumer
//!   holding the same [`TraceCache`] (one interpretation per
//!   experiment run);
//! * optionally, the [`ArtifactStore`], where traces persist keyed on
//!   `(binary digest, input digest)` — the same content-addressing the
//!   pipeline stages use — so repeat experiment runs skip
//!   interpretation entirely.
//!
//! ## The binary blob tier
//!
//! Trace payloads are megabytes of varint event bytes; round-tripping
//! them through base64-in-JSON envelopes pays ~33% size inflation plus
//! a parse, a decode, and a copy on every read. Persistent trace and
//! slice artifacts are therefore written to the store's **blob tier**
//! (see [`crate::blob`]): raw checksummed binary files under the exact
//! same content digests, with the event bytes stored verbatim. The
//! read path is zero-copy — the payload buffer that comes off disk
//! *becomes* [`EventTrace::bytes`], with no re-encode or intermediate
//! copy — and a sliced-trace manifest's per-slice blobs are prefetched
//! in parallel over a [`cbsp_par::Pool`] (independent files; the
//! index-ordered merge keeps results byte-identical at any thread
//! count; set `CBSP_NO_PREFETCH=1` to force serial reads).
//!
//! Legacy JSON envelopes remain readable: a legacy hit is decoded,
//! rewritten as a blob, and its envelope removed (read-through
//! migration, counted by `store/legacy_migrations`); [`migrate_store`]
//! performs the same rewrite in bulk for `cbsp cache migrate`. Either
//! format yields bit-identical traces, slices, and estimates. Corrupt
//! or truncated artifacts in either format follow the repair-as-miss
//! contract: typed errors, re-record, rewrite in place.

use cbsp_core::{weighted_cpi, weighted_cpi_with, CbspError};
use cbsp_par::Pool;
use cbsp_profile::ExecPoint;
use cbsp_program::{Binary, Input};
use cbsp_sim::{
    record_trace, replay_marker_sliced, replay_slice, slice_trace, EventTrace, IntervalSim,
    LevelStats, MemoryConfig, SimStats, SlicedTrace, TraceSlice,
};
use cbsp_simpoint::SimPoint;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::blob::{derived_key, Blob};
use crate::store::{content_hash, stage_key, ArtifactStore, StageKey};
use serde::Value;

/// Stage name traces are stored under.
pub const TRACE_STAGE: &str = "trace";

/// Stage name sliced-trace manifests (and their per-slice blobs) are
/// stored under. Like [`TRACE_STAGE`], artifacts in this namespace are
/// never referenced by run manifests, so `gc` always evicts them.
pub const TRACE_SLICE_STAGE: &str = "trace_slice";

/// `true` when the `CBSP_NO_TRACE_SLICES` environment knob disables the
/// sliced-trace estimate path (warm estimates then replay the full
/// trace in context; see README "Trace cache knobs").
pub fn slicing_disabled() -> bool {
    std::env::var("CBSP_NO_TRACE_SLICES").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// `true` when the `CBSP_NO_PREFETCH` environment knob disables the
/// parallel slice-blob prefetch fan-out (slice blobs are then read
/// serially; same bytes, same results — the knob is purely a
/// performance fallback for diagnosis).
pub fn prefetch_disabled() -> bool {
    std::env::var("CBSP_NO_PREFETCH").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Legacy on-store form of an [`EventTrace`]: header fields plus
/// base64 bytes inside the standard JSON envelope. New writes use the
/// blob tier; this form is kept readable for migration.
#[derive(Debug, Serialize, Deserialize)]
struct TraceArtifact {
    n_procs: u32,
    n_loops: u32,
    events: u64,
    data: String,
}

const BASE64_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes `bytes` as unpadded standard-alphabet base64.
pub fn base64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let v = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        let chars = [
            BASE64_ALPHABET[(v >> 18) as usize & 63],
            BASE64_ALPHABET[(v >> 12) as usize & 63],
            BASE64_ALPHABET[(v >> 6) as usize & 63],
            BASE64_ALPHABET[v as usize & 63],
        ];
        let keep = match chunk.len() {
            1 => 2,
            2 => 3,
            _ => 4,
        };
        for &c in &chars[..keep] {
            out.push(c as char);
        }
    }
    out
}

/// Decodes unpadded standard-alphabet base64 (trailing `=` tolerated).
/// Returns `None` on any character outside the alphabet or an
/// impossible length.
pub fn base64_decode(text: &str) -> Option<Vec<u8>> {
    let trimmed = text.trim_end_matches('=');
    let mut out = Vec::with_capacity(trimmed.len() / 4 * 3 + 2);
    let mut chunk = [0u8; 4];
    let mut filled = 0;
    let decode_one = |c: u8| -> Option<u8> {
        match c {
            b'A'..=b'Z' => Some(c - b'A'),
            b'a'..=b'z' => Some(c - b'a' + 26),
            b'0'..=b'9' => Some(c - b'0' + 52),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    };
    let flush = |chunk: &[u8], out: &mut Vec<u8>| -> Option<()> {
        let v = chunk.iter().fold(0u32, |acc, &c| (acc << 6) | u32::from(c));
        match chunk.len() {
            4 => out.extend_from_slice(&[(v >> 16) as u8, (v >> 8) as u8, v as u8]),
            3 => {
                let v = v << 6;
                out.extend_from_slice(&[(v >> 16) as u8, (v >> 8) as u8]);
            }
            2 => {
                let v = v << 12;
                out.push((v >> 16) as u8);
            }
            1 => return None,
            _ => {}
        }
        Some(())
    };
    for &c in trimmed.as_bytes() {
        chunk[filled] = decode_one(c)?;
        filled += 1;
        if filled == 4 {
            flush(&chunk, &mut out)?;
            filled = 0;
        }
    }
    flush(&chunk[..filled], &mut out)?;
    Some(out)
}

/// Content key of the trace for `(binary, input)`.
pub fn trace_key(binary: &Binary, input: &Input) -> StageKey {
    stage_key(
        TRACE_STAGE,
        &[
            Value::Str(content_hash(binary)),
            Value::Str(content_hash(input)),
        ],
    )
}

/// Legacy on-store form of one [`TraceSlice`]: the interval index, the
/// packed state checkpoint, and the re-based event stream (both
/// base64).
#[derive(Debug, Serialize, Deserialize)]
struct SliceEntry {
    interval: u64,
    state: String,
    events: u64,
    data: String,
}

/// Legacy on-store form of a [`SlicedTrace`]: the slice manifest with
/// every slice payload inline, base64-encoded. New writes use the blob
/// tier; this form is kept readable for migration.
#[derive(Debug, Serialize, Deserialize)]
struct SliceArtifact {
    n_procs: u32,
    n_loops: u32,
    full: SimStats,
    intervals: u64,
    slices: Vec<SliceEntry>,
}

/// Content key of the slice manifest for `(binary, input)` sliced at
/// `boundaries` under `config`, covering `selected` intervals.
///
/// Every input that shapes the slices is keyed: the binary and input
/// digests (which events exist), the boundary list (where intervals
/// cut), the memory configuration (immaterial to the bytes, but kept so
/// a config change can never serve a stale ground-truth `full` field),
/// and the selected interval set. `selected` must be sorted and
/// deduplicated — [`TraceCache::get_slices`] normalizes before keying —
/// so the key is order-insensitive.
pub fn trace_slice_key(
    binary: &Binary,
    input: &Input,
    config: &MemoryConfig,
    boundaries: &[ExecPoint],
    selected: &[usize],
) -> StageKey {
    stage_key(
        TRACE_SLICE_STAGE,
        &[
            Value::Str(content_hash(binary)),
            Value::Str(content_hash(input)),
            Value::Str(content_hash(config)),
            Value::Str(content_hash(boundaries)),
            Value::Str(content_hash(selected)),
        ],
    )
}

// ---------------------------------------------------------------------
// Blob-tier encodings
// ---------------------------------------------------------------------

fn read_u32(b: &[u8], pos: &mut usize) -> Option<u32> {
    let s = b.get(*pos..*pos + 4)?;
    *pos += 4;
    Some(u32::from_le_bytes(s.try_into().ok()?))
}

fn read_u64(b: &[u8], pos: &mut usize) -> Option<u64> {
    let s = b.get(*pos..*pos + 8)?;
    *pos += 8;
    Some(u64::from_le_bytes(s.try_into().ok()?))
}

fn stats_fields(s: &SimStats) -> [u64; 13] {
    [
        s.instructions,
        s.cycles,
        s.accesses,
        s.levels[0].hits,
        s.levels[0].misses,
        s.levels[1].hits,
        s.levels[1].misses,
        s.levels[2].hits,
        s.levels[2].misses,
        s.dram_accesses,
        s.dram_writebacks,
        s.branches,
        s.branch_mispredicts,
    ]
}

fn read_stats(b: &[u8], pos: &mut usize) -> Option<SimStats> {
    let mut f = [0u64; 13];
    for v in &mut f {
        *v = read_u64(b, pos)?;
    }
    Some(SimStats {
        instructions: f[0],
        cycles: f[1],
        accesses: f[2],
        levels: [
            LevelStats {
                hits: f[3],
                misses: f[4],
            },
            LevelStats {
                hits: f[5],
                misses: f[6],
            },
            LevelStats {
                hits: f[7],
                misses: f[8],
            },
        ],
        dram_accesses: f[9],
        dram_writebacks: f[10],
        branches: f[11],
        branch_mispredicts: f[12],
    })
}

/// Blob meta of a full trace: `n_procs` + `n_loops` + `events`, all LE.
/// The payload is the varint event bytes verbatim.
fn trace_blob_meta(trace: &EventTrace) -> [u8; 16] {
    let mut m = [0u8; 16];
    m[0..4].copy_from_slice(&trace.n_procs.to_le_bytes());
    m[4..8].copy_from_slice(&trace.n_loops.to_le_bytes());
    m[8..16].copy_from_slice(&trace.events.to_le_bytes());
    m
}

/// Adopts a verified trace blob as an [`EventTrace`]. The payload
/// buffer *is* the event buffer — no copy.
fn decode_trace_blob(blob: Blob) -> Option<EventTrace> {
    if blob.meta.len() != 16 {
        return None;
    }
    let mut p = 0;
    let n_procs = read_u32(&blob.meta, &mut p)?;
    let n_loops = read_u32(&blob.meta, &mut p)?;
    let events = read_u64(&blob.meta, &mut p)?;
    Some(EventTrace {
        n_procs,
        n_loops,
        events,
        bytes: blob.payload,
    })
}

/// Decoded slice-manifest blob: ground truth plus which per-slice
/// blobs to prefetch (their derived keys follow from the intervals).
struct SliceManifest {
    n_procs: u32,
    n_loops: u32,
    full: SimStats,
    intervals: usize,
    slice_intervals: Vec<u64>,
}

/// Blob meta of a slice manifest: dims, ground-truth statistics,
/// interval count, and the selected interval list. The payload is
/// empty — slice bytes live in their own per-slice blobs under
/// [`derived_key`]`(manifest, "slice", interval)`.
fn slice_manifest_meta(n_procs: u32, n_loops: u32, sliced: &SlicedTrace) -> Vec<u8> {
    let mut m = Vec::with_capacity(8 + 104 + 12 + 8 * sliced.slices.len());
    m.extend_from_slice(&n_procs.to_le_bytes());
    m.extend_from_slice(&n_loops.to_le_bytes());
    for v in stats_fields(&sliced.full) {
        m.extend_from_slice(&v.to_le_bytes());
    }
    m.extend_from_slice(&(sliced.intervals as u64).to_le_bytes());
    m.extend_from_slice(&(sliced.slices.len() as u32).to_le_bytes());
    for s in &sliced.slices {
        m.extend_from_slice(&(s.interval as u64).to_le_bytes());
    }
    m
}

fn decode_slice_manifest(blob: &Blob) -> Option<SliceManifest> {
    if !blob.payload.is_empty() {
        return None;
    }
    let b = &blob.meta;
    let mut p = 0;
    let n_procs = read_u32(b, &mut p)?;
    let n_loops = read_u32(b, &mut p)?;
    let full = read_stats(b, &mut p)?;
    let intervals = read_u64(b, &mut p)?;
    let n_slices = read_u32(b, &mut p)?;
    let mut slice_intervals = Vec::with_capacity(n_slices as usize);
    for _ in 0..n_slices {
        slice_intervals.push(read_u64(b, &mut p)?);
    }
    if p != b.len() {
        return None;
    }
    Some(SliceManifest {
        n_procs,
        n_loops,
        full,
        intervals: intervals as usize,
        slice_intervals,
    })
}

/// Blob meta of one per-slice blob: its interval, event count, and
/// checkpoint length. The payload is the re-based event bytes followed
/// by the packed state checkpoint — state last, so decoding can split
/// the small checkpoint off the end and adopt the truncated payload as
/// the event buffer without copying it.
fn slice_blob_parts(slice: &TraceSlice) -> ([u8; 20], Vec<u8>) {
    let mut m = [0u8; 20];
    m[0..8].copy_from_slice(&(slice.interval as u64).to_le_bytes());
    m[8..16].copy_from_slice(&slice.trace.events.to_le_bytes());
    m[16..20].copy_from_slice(&(slice.state.len() as u32).to_le_bytes());
    let mut payload = Vec::with_capacity(slice.trace.bytes.len() + slice.state.len());
    payload.extend_from_slice(&slice.trace.bytes);
    payload.extend_from_slice(&slice.state);
    (m, payload)
}

fn decode_slice_blob(
    expected_interval: u64,
    n_procs: u32,
    n_loops: u32,
    blob: Blob,
) -> Option<TraceSlice> {
    if blob.meta.len() != 20 {
        return None;
    }
    let mut p = 0;
    let interval = read_u64(&blob.meta, &mut p)?;
    let events = read_u64(&blob.meta, &mut p)?;
    let state_len = read_u32(&blob.meta, &mut p)? as usize;
    if interval != expected_interval {
        return None;
    }
    let mut payload = blob.payload;
    if state_len > payload.len() {
        return None;
    }
    let state = payload.split_off(payload.len() - state_len);
    Some(TraceSlice {
        interval: interval as usize,
        state,
        trace: EventTrace {
            n_procs,
            n_loops,
            events,
            bytes: payload,
        },
    })
}

/// Writes a [`SlicedTrace`] to the blob tier: per-slice blobs first,
/// manifest last, so a reader that finds the manifest finds every
/// slice it names.
fn put_slice_blobs(
    store: &ArtifactStore,
    key: &StageKey,
    n_procs: u32,
    n_loops: u32,
    sliced: &SlicedTrace,
    overwrite: bool,
) -> Result<(), CbspError> {
    for s in &sliced.slices {
        let skey = derived_key(key, "slice", s.interval as u64);
        let (meta, payload) = slice_blob_parts(s);
        if overwrite {
            store.put_blob_overwrite(TRACE_SLICE_STAGE, &skey, &meta, &payload)?;
        } else {
            store.put_blob(TRACE_SLICE_STAGE, &skey, &meta, &payload)?;
        }
    }
    let meta = slice_manifest_meta(n_procs, n_loops, sliced);
    if overwrite {
        store.put_blob_overwrite(TRACE_SLICE_STAGE, key, &meta, &[])?;
    } else {
        store.put_blob(TRACE_SLICE_STAGE, key, &meta, &[])?;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Legacy-envelope writers and bulk migration
// ---------------------------------------------------------------------

/// Writes `trace` as a **legacy JSON envelope** (base64 payload),
/// removing any blob for the same key so the envelope is what a reader
/// finds. Exists for migration tests and the `json_cold` benchmark
/// lanes — production writes go to the blob tier.
///
/// # Errors
///
/// Returns [`CbspError::StoreIo`] on filesystem failure.
pub fn put_trace_legacy(
    store: &ArtifactStore,
    binary: &Binary,
    input: &Input,
    trace: &EventTrace,
) -> Result<StageKey, CbspError> {
    let key = trace_key(binary, input);
    let artifact = TraceArtifact {
        n_procs: trace.n_procs,
        n_loops: trace.n_loops,
        events: trace.events,
        data: base64_encode(&trace.bytes),
    };
    store.put_overwrite(TRACE_STAGE, &key, &artifact)?;
    let _ = std::fs::remove_file(store.blob_path(&key));
    Ok(key)
}

/// Writes `sliced` as a **legacy JSON envelope** (all slices inline,
/// base64), removing any manifest or per-slice blobs for the same key.
/// Exists for migration tests and the `json_cold` benchmark lanes.
///
/// # Errors
///
/// Returns [`CbspError::StoreIo`] on filesystem failure.
pub fn put_slices_legacy(
    store: &ArtifactStore,
    binary: &Binary,
    input: &Input,
    config: &MemoryConfig,
    boundaries: &[ExecPoint],
    selected: &[usize],
    sliced: &SlicedTrace,
) -> Result<StageKey, CbspError> {
    let mut wanted: Vec<usize> = selected.to_vec();
    wanted.sort_unstable();
    wanted.dedup();
    let key = trace_slice_key(binary, input, config, boundaries, &wanted);
    store.put_overwrite(
        TRACE_SLICE_STAGE,
        &key,
        &encode_slice_artifact(binary, sliced),
    )?;
    let _ = std::fs::remove_file(store.blob_path(&key));
    for s in &sliced.slices {
        let skey = derived_key(&key, "slice", s.interval as u64);
        let _ = std::fs::remove_file(store.blob_path(&skey));
    }
    Ok(key)
}

/// Result of a [`migrate_store`] sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrateReport {
    /// Legacy trace envelopes rewritten as blobs.
    pub traces: u64,
    /// Legacy slice-manifest envelopes rewritten as blob manifests
    /// plus per-slice blobs.
    pub slice_manifests: u64,
    /// Legacy envelopes left in place because they failed to decode
    /// (they will be repaired on use, or evicted by `gc`).
    pub skipped: u64,
}

/// Rewrites every legacy `trace`/`trace_slice` JSON envelope in `store`
/// as blob-tier files, removing each envelope after its blob lands —
/// the bulk form of the read-through migration, backing `cbsp cache
/// migrate`. Pipeline-stage envelopes are not touched (JSON is the
/// right format for small structured artifacts). Keys are unchanged,
/// so nothing a run manifest references moves.
///
/// # Errors
///
/// Returns [`CbspError::StoreIo`] on filesystem failure. Corrupt
/// envelopes are counted in [`MigrateReport::skipped`], not errored.
pub fn migrate_store(store: &ArtifactStore) -> Result<MigrateReport, CbspError> {
    let mut report = MigrateReport::default();
    for (stage, key) in store.keys_in_format("json")? {
        match stage.as_str() {
            TRACE_STAGE => match store.get::<TraceArtifact>(&stage, &key) {
                Ok(Some(artifact)) => match base64_decode(&artifact.data) {
                    Some(bytes) => {
                        let trace = EventTrace {
                            n_procs: artifact.n_procs,
                            n_loops: artifact.n_loops,
                            events: artifact.events,
                            bytes,
                        };
                        store.put_blob_overwrite(
                            TRACE_STAGE,
                            &key,
                            &trace_blob_meta(&trace),
                            &trace.bytes,
                        )?;
                        store.remove_envelope(&key)?;
                        cbsp_trace::add("store/legacy_migrations", 1);
                        report.traces += 1;
                    }
                    None => report.skipped += 1,
                },
                Ok(None) => {}
                Err(
                    CbspError::ArtifactCorrupt { .. } | CbspError::ArtifactVersionMismatch { .. },
                ) => report.skipped += 1,
                Err(other) => return Err(other),
            },
            TRACE_SLICE_STAGE => match store.get::<SliceArtifact>(&stage, &key) {
                Ok(Some(artifact)) => match decode_slice_artifact(&artifact) {
                    Some(sliced) => {
                        put_slice_blobs(
                            store,
                            &key,
                            artifact.n_procs,
                            artifact.n_loops,
                            &sliced,
                            true,
                        )?;
                        store.remove_envelope(&key)?;
                        cbsp_trace::add("store/legacy_migrations", 1);
                        report.slice_manifests += 1;
                    }
                    None => report.skipped += 1,
                },
                Ok(None) => {}
                Err(
                    CbspError::ArtifactCorrupt { .. } | CbspError::ArtifactVersionMismatch { .. },
                ) => report.skipped += 1,
                Err(other) => return Err(other),
            },
            _ => {}
        }
    }
    Ok(report)
}

// ---------------------------------------------------------------------
// The cache
// ---------------------------------------------------------------------

/// How a [`TraceCache`] reaches its persistent tier: not at all,
/// through a borrow scoped to one experiment, or through shared
/// ownership for long-lived holders (the `cbsp-serve` daemon).
#[derive(Debug)]
enum StoreTier<'s> {
    None,
    Borrowed(&'s ArtifactStore),
    Shared(Arc<ArtifactStore>),
}

/// A two-tier (memory + optional store) cache of recorded event traces.
///
/// Cheap to construct; scope one per experiment so its in-memory tier
/// holds only the handful of binaries that experiment touches — or
/// build one with [`TraceCache::shared`] and keep it for a process
/// lifetime, as the serving daemon does.
#[derive(Debug)]
pub struct TraceCache<'s> {
    store: StoreTier<'s>,
    mem: Mutex<HashMap<String, Arc<EventTrace>>>,
    /// In-memory tier of the sliced-trace path: per-simpoint slice
    /// manifests keyed like the `trace_slice` store namespace.
    slices: Mutex<HashMap<String, Arc<SlicedTrace>>>,
    /// Pool slice-blob prefetches fan out over (serial when
    /// `CBSP_NO_PREFETCH` is set).
    prefetch: Pool,
    /// Whether a legacy JSON hit is rewritten to the blob tier
    /// (read-through migration). On by default; the `json_cold` bench
    /// lanes disable it so the legacy path stays measurable.
    migrate: bool,
}

impl<'s> TraceCache<'s> {
    /// Creates a cache backed by `store` (pass `None` for purely
    /// in-memory record-once behaviour).
    pub fn new(store: Option<&'s ArtifactStore>) -> Self {
        TraceCache {
            store: match store {
                Some(s) => StoreTier::Borrowed(s),
                None => StoreTier::None,
            },
            mem: Mutex::new(HashMap::new()),
            slices: Mutex::new(HashMap::new()),
            prefetch: Pool::auto(),
            migrate: true,
        }
    }

    /// Creates a cache with no persistent tier.
    pub fn in_memory() -> TraceCache<'static> {
        TraceCache::new(None)
    }

    /// Creates a cache that co-owns its backing store, freeing the
    /// holder from the borrow scope [`TraceCache::new`] imposes. A
    /// long-lived server keeps one of these so both the in-memory tier
    /// and the on-disk tier stay warm across requests.
    pub fn shared(store: Arc<ArtifactStore>) -> TraceCache<'static> {
        TraceCache {
            store: StoreTier::Shared(store),
            mem: Mutex::new(HashMap::new()),
            slices: Mutex::new(HashMap::new()),
            prefetch: Pool::auto(),
            migrate: true,
        }
    }

    /// Disables read-through migration of legacy JSON envelopes: a
    /// legacy hit is served but the envelope stays as-is. For
    /// benchmarks and diagnostics that need the legacy path to remain
    /// on disk across repeated reads.
    #[must_use]
    pub fn without_migration(mut self) -> Self {
        self.migrate = false;
        self
    }

    /// Overrides the pool slice-blob prefetches fan out over (the
    /// default is [`Pool::auto`]). Determinism tests pin this to
    /// compare thread counts; `CBSP_NO_PREFETCH` still wins at call
    /// time.
    #[must_use]
    pub fn with_prefetch(mut self, pool: Pool) -> Self {
        self.prefetch = pool;
        self
    }

    /// The persistent tier, whichever way it is held.
    fn store(&self) -> Option<&ArtifactStore> {
        match &self.store {
            StoreTier::None => None,
            StoreTier::Borrowed(s) => Some(s),
            StoreTier::Shared(s) => Some(s),
        }
    }

    /// The pool slice prefetches run on, honouring `CBSP_NO_PREFETCH`
    /// at call time.
    fn prefetch_pool(&self) -> Pool {
        if prefetch_disabled() {
            Pool::serial()
        } else {
            self.prefetch
        }
    }

    /// Returns the recorded trace for `(binary, input)`, interpreting
    /// the binary only if neither cache tier has it. Safe to call from
    /// pool workers; concurrent misses on the same key settle on one
    /// entry.
    ///
    /// Store hits read the blob tier zero-copy (the read buffer is
    /// handed out as [`EventTrace::bytes`]); a legacy JSON hit is
    /// served and migrated to a blob in place.
    ///
    /// # Errors
    ///
    /// Returns [`CbspError::StoreIo`] on store failure. A corrupt
    /// stored trace is treated as a miss and repaired in place.
    pub fn get_or_record(
        &self,
        binary: &Binary,
        input: &Input,
    ) -> Result<Arc<EventTrace>, CbspError> {
        let key = trace_key(binary, input);
        let mem_key = key.as_hex().to_string();
        if let Some(t) = self.mem.lock().expect("trace cache lock").get(&mem_key) {
            cbsp_trace::add("sim/trace_cache_hits", 1);
            return Ok(Arc::clone(t));
        }

        let mut repair = false;
        if let Some(store) = self.store() {
            match store.get_blob(TRACE_STAGE, &key) {
                Ok(Some(blob)) => match decode_trace_blob(blob) {
                    Some(trace) => {
                        cbsp_trace::add("sim/trace_cache_hits", 1);
                        let trace = Arc::new(trace);
                        self.insert(mem_key, &trace);
                        return Ok(trace);
                    }
                    None => {
                        repair = true;
                        cbsp_trace::add("store/repairs", 1);
                    }
                },
                Ok(None) => match store.get::<TraceArtifact>(TRACE_STAGE, &key) {
                    Ok(Some(artifact)) => match base64_decode(&artifact.data) {
                        Some(bytes) => {
                            cbsp_trace::add("sim/trace_cache_hits", 1);
                            let trace = Arc::new(EventTrace {
                                n_procs: artifact.n_procs,
                                n_loops: artifact.n_loops,
                                events: artifact.events,
                                bytes,
                            });
                            if self.migrate {
                                store.put_blob_overwrite(
                                    TRACE_STAGE,
                                    &key,
                                    &trace_blob_meta(&trace),
                                    &trace.bytes,
                                )?;
                                store.remove_envelope(&key)?;
                                cbsp_trace::add("store/legacy_migrations", 1);
                            }
                            self.insert(mem_key, &trace);
                            return Ok(trace);
                        }
                        None => {
                            // Checksummed envelope with undecodable
                            // base64: treat like any corrupt artifact.
                            repair = true;
                            cbsp_trace::add("store/repairs", 1);
                        }
                    },
                    Ok(None) => {}
                    Err(
                        CbspError::ArtifactCorrupt { .. }
                        | CbspError::ArtifactVersionMismatch { .. },
                    ) => {
                        repair = true;
                        cbsp_trace::add("store/repairs", 1);
                    }
                    Err(other) => return Err(other),
                },
                Err(
                    CbspError::ArtifactCorrupt { .. } | CbspError::ArtifactVersionMismatch { .. },
                ) => {
                    repair = true;
                    cbsp_trace::add("store/repairs", 1);
                }
                Err(other) => return Err(other),
            }
        }

        cbsp_trace::add("sim/trace_cache_misses", 1);
        let trace = Arc::new(record_trace(binary, input));
        if let Some(store) = self.store() {
            let meta = trace_blob_meta(&trace);
            if repair {
                store.put_blob_overwrite(TRACE_STAGE, &key, &meta, &trace.bytes)?;
                store.remove_envelope(&key)?;
            } else {
                store.put_blob(TRACE_STAGE, &key, &meta, &trace.bytes)?;
            }
        }
        self.insert(mem_key, &trace);
        Ok(trace)
    }

    /// [`TraceCache::get_or_record`] for a batch of binaries sharing
    /// one input, fanned out over `pool`. Results are in input order.
    ///
    /// # Errors
    ///
    /// Returns the first store error encountered, in input order.
    pub fn get_or_record_all(
        &self,
        binaries: &[&Binary],
        input: &Input,
        pool: &Pool,
    ) -> Result<Vec<Arc<EventTrace>>, CbspError> {
        pool.run_indexed(binaries.len(), |i| self.get_or_record(binaries[i], input))
            .into_iter()
            .collect()
    }

    fn insert(&self, mem_key: String, trace: &Arc<EventTrace>) {
        self.mem
            .lock()
            .expect("trace cache lock")
            .insert(mem_key, Arc::clone(trace));
    }

    /// Returns the per-simpoint slice manifest for `(binary, input)`
    /// cut at `boundaries` covering `selected` intervals, materializing
    /// it with one full replay only if neither cache tier has it. Warm
    /// calls touch kilobytes of slice payload instead of the full
    /// multi-megabyte trace (`sim/full_replay_avoided` counts them).
    ///
    /// Store hits read the manifest blob, then prefetch its per-slice
    /// blobs in parallel (`store/prefetch_fanouts` counts multi-slice
    /// fan-outs); the index-ordered merge keeps the result
    /// byte-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`CbspError::StoreIo`] on store failure. Corrupt stored
    /// manifests or slice blobs — damaged framing, undecodable
    /// payloads, or slice streams that fail to re-slice — are treated
    /// as misses and repaired in place.
    ///
    /// # Panics
    ///
    /// Panics if some boundary is never reached by the recorded
    /// execution (same contract as
    /// [`cbsp_sim::replay_marker_sliced`]).
    pub fn get_slices(
        &self,
        binary: &Binary,
        input: &Input,
        config: &MemoryConfig,
        boundaries: &[ExecPoint],
        selected: &[usize],
    ) -> Result<Arc<SlicedTrace>, CbspError> {
        let mut wanted: Vec<usize> = selected.to_vec();
        wanted.sort_unstable();
        wanted.dedup();
        let key = trace_slice_key(binary, input, config, boundaries, &wanted);
        let mem_key = key.as_hex().to_string();
        if let Some(s) = self.slices.lock().expect("slice cache lock").get(&mem_key) {
            cbsp_trace::add("sim/full_replay_avoided", 1);
            return Ok(Arc::clone(s));
        }

        let mut repair = false;
        if let Some(store) = self.store() {
            match store.get_blob(TRACE_SLICE_STAGE, &key) {
                Ok(Some(blob)) => match decode_slice_manifest(&blob) {
                    Some(man) => match self.fetch_slice_blobs(store, &key, &man)? {
                        Some(slices) => {
                            cbsp_trace::add("sim/full_replay_avoided", 1);
                            let sliced = Arc::new(SlicedTrace {
                                full: man.full,
                                intervals: man.intervals,
                                slices,
                            });
                            self.insert_slices(mem_key, &sliced);
                            return Ok(sliced);
                        }
                        None => {
                            repair = true;
                            cbsp_trace::add("store/repairs", 1);
                        }
                    },
                    None => {
                        repair = true;
                        cbsp_trace::add("store/repairs", 1);
                    }
                },
                Ok(None) => match store.get::<SliceArtifact>(TRACE_SLICE_STAGE, &key) {
                    Ok(Some(artifact)) => match decode_slice_artifact(&artifact) {
                        Some(sliced) => {
                            cbsp_trace::add("sim/full_replay_avoided", 1);
                            let sliced = Arc::new(sliced);
                            if self.migrate {
                                put_slice_blobs(
                                    store,
                                    &key,
                                    artifact.n_procs,
                                    artifact.n_loops,
                                    &sliced,
                                    true,
                                )?;
                                store.remove_envelope(&key)?;
                                cbsp_trace::add("store/legacy_migrations", 1);
                            }
                            self.insert_slices(mem_key, &sliced);
                            return Ok(sliced);
                        }
                        None => {
                            repair = true;
                            cbsp_trace::add("store/repairs", 1);
                        }
                    },
                    Ok(None) => {}
                    Err(
                        CbspError::ArtifactCorrupt { .. }
                        | CbspError::ArtifactVersionMismatch { .. },
                    ) => {
                        repair = true;
                        cbsp_trace::add("store/repairs", 1);
                    }
                    Err(other) => return Err(other),
                },
                Err(
                    CbspError::ArtifactCorrupt { .. } | CbspError::ArtifactVersionMismatch { .. },
                ) => {
                    repair = true;
                    cbsp_trace::add("store/repairs", 1);
                }
                Err(other) => return Err(other),
            }
        }

        // Materialize: one full replay cuts every requested slice. A
        // full trace that fails to decode can only be a corrupt stored
        // artifact — re-record it (repair-as-miss) and re-slice.
        let full = self.get_or_record(binary, input)?;
        let sliced = match slice_trace(&full, config, boundaries, &wanted) {
            Ok(s) => s,
            Err(_) => {
                cbsp_trace::add("store/repairs", 1);
                let fresh = self.rerecord(binary, input)?;
                slice_trace(&fresh, config, boundaries, &wanted)
                    .expect("freshly recorded trace decodes")
            }
        };
        let sliced = Arc::new(sliced);
        if let Some(store) = self.store() {
            put_slice_blobs(store, &key, full.n_procs, full.n_loops, &sliced, repair)?;
            if repair {
                store.remove_envelope(&key)?;
            }
        }
        self.insert_slices(mem_key, &sliced);
        Ok(sliced)
    }

    /// Reads every per-slice blob a manifest names, fanned out over the
    /// prefetch pool. Returns `Ok(None)` if any slice blob is missing
    /// or corrupt (repair-as-miss); `run_indexed`'s index-ordered merge
    /// keeps the slice order — and therefore every downstream result —
    /// independent of thread count.
    fn fetch_slice_blobs(
        &self,
        store: &ArtifactStore,
        key: &StageKey,
        man: &SliceManifest,
    ) -> Result<Option<Vec<TraceSlice>>, CbspError> {
        let pool = self.prefetch_pool();
        if man.slice_intervals.len() > 1 && pool.threads() > 1 {
            cbsp_trace::add("store/prefetch_fanouts", 1);
        }
        let fetched: Result<Vec<Option<TraceSlice>>, CbspError> = pool
            .run_indexed(man.slice_intervals.len(), |i| {
                let interval = man.slice_intervals[i];
                let skey = derived_key(key, "slice", interval);
                match store.get_blob(TRACE_SLICE_STAGE, &skey) {
                    Ok(Some(blob)) => {
                        Ok(decode_slice_blob(interval, man.n_procs, man.n_loops, blob))
                    }
                    Ok(None) => Ok(None),
                    Err(
                        CbspError::ArtifactCorrupt { .. }
                        | CbspError::ArtifactVersionMismatch { .. },
                    ) => Ok(None),
                    Err(other) => Err(other),
                }
            })
            .into_iter()
            .collect();
        Ok(fetched?.into_iter().collect::<Option<Vec<_>>>())
    }

    /// Records `(binary, input)` afresh, replacing both cache tiers'
    /// entries (the stored artifact decoded but its event stream was
    /// corrupt).
    fn rerecord(&self, binary: &Binary, input: &Input) -> Result<Arc<EventTrace>, CbspError> {
        let key = trace_key(binary, input);
        let trace = Arc::new(record_trace(binary, input));
        if let Some(store) = self.store() {
            store.put_blob_overwrite(TRACE_STAGE, &key, &trace_blob_meta(&trace), &trace.bytes)?;
            store.remove_envelope(&key)?;
        }
        self.insert(key.as_hex().to_string(), &trace);
        Ok(trace)
    }

    fn insert_slices(&self, mem_key: String, sliced: &Arc<SlicedTrace>) {
        self.slices
            .lock()
            .expect("slice cache lock")
            .insert(mem_key, Arc::clone(sliced));
    }

    /// True and SimPoint-estimated CPI for one binary, computed from
    /// per-simpoint trace slices: each selected interval's CPI comes
    /// from replaying its slice (an exact state checkpoint plus the
    /// interval's own events), and the whole-program truth comes from
    /// the slice manifest — so a warm call decodes only kilobytes.
    /// Slice replays are bit-identical to the in-context interval
    /// statistics of a full replay, so the result is byte-identical
    /// across cache temperature, on-disk format, thread count, *and*
    /// to the full-replay path.
    ///
    /// `phase_weights` follows [`weighted_cpi_with`] (the cross-binary
    /// scheme); pass `None` to use each point's own weight. With the
    /// `CBSP_NO_TRACE_SLICES` knob set, falls back to a full in-context
    /// replay — same estimates, none of the byte savings; the knob is
    /// purely a performance fallback.
    ///
    /// # Errors
    ///
    /// Returns [`CbspError::StoreIo`] on store failure.
    ///
    /// # Panics
    ///
    /// Panics if some boundary is never reached by the recorded
    /// execution.
    #[allow(clippy::too_many_arguments)]
    pub fn estimate_cpi_sliced(
        &self,
        binary: &Binary,
        input: &Input,
        config: &MemoryConfig,
        boundaries: &[ExecPoint],
        points: &[SimPoint],
        phase_weights: Option<&[f64]>,
        interval_count: usize,
    ) -> Result<CpiEstimate, CbspError> {
        let _span = cbsp_trace::span_labeled("sim/estimate_sliced", || binary.label());
        if slicing_disabled() {
            return self.estimate_cpi_full(
                binary,
                input,
                config,
                boundaries,
                points,
                phase_weights,
                interval_count,
            );
        }
        let selected: Vec<usize> = points.iter().map(|p| p.interval).collect();
        let sliced = self.get_slices(binary, input, config, boundaries, &selected)?;
        let n = interval_count.max(sliced.intervals);
        let mut interval_cpis = vec![0.0f64; n];
        let mut replayed: Option<Vec<(usize, IntervalSim)>> = replay_all_slices(&sliced, config);
        if replayed.is_none() {
            // A slice stream that fails to decode is a corrupt cached
            // manifest: drop it from both tiers and re-materialize.
            cbsp_trace::add("store/repairs", 1);
            let mut wanted = selected.clone();
            wanted.sort_unstable();
            wanted.dedup();
            let key = trace_slice_key(binary, input, config, boundaries, &wanted);
            self.slices
                .lock()
                .expect("slice cache lock")
                .remove(key.as_hex());
            if let Some(store) = self.store() {
                let full = self.get_or_record(binary, input)?;
                let fresh = slice_trace(&full, config, boundaries, &wanted)
                    .expect("freshly sliced trace decodes");
                let fresh = Arc::new(fresh);
                put_slice_blobs(store, &key, full.n_procs, full.n_loops, &fresh, true)?;
                store.remove_envelope(&key)?;
                self.insert_slices(key.as_hex().to_string(), &fresh);
                replayed = replay_all_slices(&fresh, config);
            }
        }
        let replayed = replayed.expect("re-materialized slices decode");
        for (interval, stats) in replayed {
            if interval < n {
                interval_cpis[interval] = stats.cpi();
            }
        }
        let estimated_cpi = match phase_weights {
            Some(w) => weighted_cpi_with(points, w, &interval_cpis),
            None => weighted_cpi(points, &interval_cpis),
        };
        Ok(CpiEstimate {
            true_cpi: sliced.full.cpi(),
            instructions: sliced.full.instructions,
            estimated_cpi,
            interval_cpis,
        })
    }

    /// The pre-slicing estimate path: replay the full trace in context.
    /// Kept behind `CBSP_NO_TRACE_SLICES` as a diagnostic baseline.
    #[allow(clippy::too_many_arguments)]
    fn estimate_cpi_full(
        &self,
        binary: &Binary,
        input: &Input,
        config: &MemoryConfig,
        boundaries: &[ExecPoint],
        points: &[SimPoint],
        phase_weights: Option<&[f64]>,
        interval_count: usize,
    ) -> Result<CpiEstimate, CbspError> {
        let trace = self.get_or_record(binary, input)?;
        let (full, mut intervals) = match replay_marker_sliced(&trace, config, boundaries) {
            Ok(r) => r,
            Err(_) => {
                cbsp_trace::add("store/repairs", 1);
                let fresh = self.rerecord(binary, input)?;
                replay_marker_sliced(&fresh, config, boundaries)
                    .expect("freshly recorded trace decodes")
            }
        };
        intervals.resize(interval_count.max(intervals.len()), IntervalSim::default());
        let interval_cpis: Vec<f64> = intervals.iter().map(IntervalSim::cpi).collect();
        let estimated_cpi = match phase_weights {
            Some(w) => weighted_cpi_with(points, w, &interval_cpis),
            None => weighted_cpi(points, &interval_cpis),
        };
        Ok(CpiEstimate {
            true_cpi: full.cpi(),
            instructions: full.instructions,
            estimated_cpi,
            interval_cpis,
        })
    }
}

/// Result of a sliced CPI estimate for one binary.
#[derive(Debug, Clone, PartialEq)]
pub struct CpiEstimate {
    /// Whole-program CPI (full-replay ground truth).
    pub true_cpi: f64,
    /// Whole-program instruction count.
    pub instructions: u64,
    /// The SimPoint-weighted CPI estimate.
    pub estimated_cpi: f64,
    /// Per-interval CPIs backing the estimate; selected intervals hold
    /// their slice-replayed CPI, unselected intervals are 0.
    pub interval_cpis: Vec<f64>,
}

/// Replays every slice in `sliced`, or `None` if any slice stream is
/// corrupt.
fn replay_all_slices(
    sliced: &SlicedTrace,
    config: &MemoryConfig,
) -> Option<Vec<(usize, IntervalSim)>> {
    sliced
        .slices
        .iter()
        .map(|s| replay_slice(s, config).ok().map(|r| (s.interval, r)))
        .collect()
}

fn encode_slice_artifact(binary: &Binary, sliced: &SlicedTrace) -> SliceArtifact {
    SliceArtifact {
        n_procs: binary.procs.len() as u32,
        n_loops: binary.loops.len() as u32,
        full: sliced.full,
        intervals: sliced.intervals as u64,
        slices: sliced
            .slices
            .iter()
            .map(|s| SliceEntry {
                interval: s.interval as u64,
                state: base64_encode(&s.state),
                events: s.trace.events,
                data: base64_encode(&s.trace.bytes),
            })
            .collect(),
    }
}

fn decode_slice_artifact(artifact: &SliceArtifact) -> Option<SlicedTrace> {
    let slices = artifact
        .slices
        .iter()
        .map(|e| {
            Some(TraceSlice {
                interval: e.interval as usize,
                state: base64_decode(&e.state)?,
                trace: EventTrace {
                    n_procs: artifact.n_procs,
                    n_loops: artifact.n_loops,
                    events: e.events,
                    bytes: base64_decode(&e.data)?,
                },
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(SlicedTrace {
        full: artifact.full,
        intervals: artifact.intervals as usize,
        slices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbsp_profile::MarkerRef;
    use cbsp_program::{compile, run, workloads, CompileTarget, Marker, Scale, TraceSink};
    use cbsp_sim::{replay_full, simulate_full, MemoryConfig};

    fn test_binary() -> Binary {
        let prog = workloads::by_name("gzip")
            .expect("in suite")
            .build(Scale::Test);
        compile(&prog, CompileTarget::W32_O2)
    }

    /// Counts marker executions to derive in-order [`ExecPoint`]
    /// boundaries without involving the profiling pipeline.
    #[derive(Default)]
    struct MarkerTally {
        counts: std::collections::BTreeMap<MarkerRef, u64>,
    }

    impl TraceSink for MarkerTally {
        fn on_block(&mut self, _block: cbsp_program::BlockId, _instrs: u64) {}

        fn on_marker(&mut self, marker: Marker) {
            let r = match marker {
                Marker::ProcEntry(p) => MarkerRef::Proc(u32::from(p)),
                Marker::LoopEntry(l) => MarkerRef::LoopEntry(u32::from(l)),
                Marker::LoopBack(l) => MarkerRef::LoopBack(u32::from(l)),
            };
            *self.counts.entry(r).or_insert(0) += 1;
        }
    }

    /// Sixteen boundaries at evenly spaced executions of the binary's
    /// most frequent marker, plus a few synthetic simpoints over the
    /// resulting intervals.
    fn boundaries_and_points(bin: &Binary, input: &Input) -> (Vec<ExecPoint>, Vec<SimPoint>) {
        let mut tally = MarkerTally::default();
        run(bin, input, &mut tally);
        let (&marker, &execs) = tally
            .counts
            .iter()
            .max_by_key(|(_, &n)| n)
            .expect("binary executes at least one marker");
        let cuts = 16.min(execs);
        let boundaries = (1..=cuts)
            .map(|i| ExecPoint {
                marker,
                count: i * execs / cuts,
            })
            .collect();
        let points = vec![
            SimPoint {
                phase: 0,
                interval: 0,
                weight: 0.5,
                share: 1.0,
                variance: 0.0,
            },
            SimPoint {
                phase: 1,
                interval: 2,
                weight: 0.3,
                share: 1.0,
                variance: 0.0,
            },
            SimPoint {
                phase: 2,
                interval: 3,
                weight: 0.2,
                share: 1.0,
                variance: 0.0,
            },
        ];
        (boundaries, points)
    }

    fn temp_store(tag: &str) -> (ArtifactStore, std::path::PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("cbsp-trace-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (ArtifactStore::open(&dir).expect("store opens"), dir)
    }

    #[test]
    fn base64_round_trips() {
        for len in 0..=67 {
            let bytes: Vec<u8> = (0..len as u8)
                .map(|i| i.wrapping_mul(37).wrapping_add(len as u8))
                .collect();
            let text = base64_encode(&bytes);
            assert_eq!(
                base64_decode(&text).as_deref(),
                Some(bytes.as_slice()),
                "len {len}"
            );
        }
        assert_eq!(
            base64_encode(b"any carnal pleasure"),
            "YW55IGNhcm5hbCBwbGVhc3VyZQ"
        );
        assert_eq!(
            base64_decode("YW55IGNhcm5hbCBwbGVhc3VyZQ==").as_deref(),
            Some(b"any carnal pleasure".as_slice())
        );
        assert!(base64_decode("a").is_none(), "length 1 mod 4 is impossible");
        assert!(base64_decode("ab c").is_none(), "alphabet violation");
    }

    #[test]
    fn memory_tier_records_once() {
        let bin = test_binary();
        let input = Input::test();
        let cache = TraceCache::in_memory();
        let _lock = cbsp_trace::test_lock();
        cbsp_trace::enable();
        cbsp_trace::reset();
        let t1 = cache.get_or_record(&bin, &input).expect("records");
        let t2 = cache.get_or_record(&bin, &input).expect("hits");
        assert!(Arc::ptr_eq(&t1, &t2), "second call serves the same trace");
        let counters = cbsp_trace::snapshot().counters;
        cbsp_trace::disable();
        assert_eq!(counters.get("sim/trace_cache_misses"), Some(&1));
        assert_eq!(counters.get("sim/trace_cache_hits"), Some(&1));
        assert!(counters.get("sim/record_bytes").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn store_tier_serves_blob_hits_zero_decode() {
        let bin = test_binary();
        let input = Input::test();
        let (store, dir) = temp_store("persist");

        let first = TraceCache::new(Some(&store));
        let t1 = first.get_or_record(&bin, &input).expect("records");
        // The recording landed in the blob tier, not a JSON envelope.
        let key = trace_key(&bin, &input);
        assert!(store.contains_blob(&key), "trace stored as a blob");
        assert!(!store.contains(&key), "no JSON envelope written");

        // A fresh cache (fresh process, conceptually) hits the store.
        let second = TraceCache::new(Some(&store));
        let _lock = cbsp_trace::test_lock();
        cbsp_trace::enable();
        cbsp_trace::reset();
        let t2 = second.get_or_record(&bin, &input).expect("store hit");
        let counters = cbsp_trace::snapshot().counters;
        cbsp_trace::disable();
        assert_eq!(*t1, *t2, "stored trace round-trips exactly");
        assert_eq!(counters.get("sim/trace_cache_hits"), Some(&1));
        assert_eq!(counters.get("sim/trace_cache_misses"), None);
        assert_eq!(counters.get("store/blob_reads"), Some(&1));

        // And the replayed simulation equals direct interpretation.
        let cfg = MemoryConfig::table1();
        assert_eq!(
            replay_full(&t2, &cfg).expect("decodes"),
            simulate_full(&bin, &input, &cfg)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_stored_trace_blob_is_repaired() {
        let bin = test_binary();
        let input = Input::test();
        let (store, dir) = temp_store("repair");
        let cache = TraceCache::new(Some(&store));
        let t1 = cache.get_or_record(&bin, &input).expect("records");

        // Truncate the blob on disk.
        let path = store.blob_path(&trace_key(&bin, &input));
        let bytes = std::fs::read(&path).expect("blob exists");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");

        let fresh = TraceCache::new(Some(&store));
        let t2 = fresh.get_or_record(&bin, &input).expect("repairs");
        assert_eq!(*t1, *t2);
        // Repaired in place: a third cache now hits cleanly.
        let third = TraceCache::new(Some(&store));
        let t3 = third.get_or_record(&bin, &input).expect("hits");
        assert_eq!(*t1, *t3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_trace_envelope_reads_through_and_migrates() {
        let bin = test_binary();
        let input = Input::test();
        let (store, dir) = temp_store("legacy-trace");
        let recorded = record_trace(&bin, &input);
        let key = put_trace_legacy(&store, &bin, &input, &recorded).expect("writes legacy");
        assert!(store.contains(&key), "legacy envelope on disk");
        assert!(!store.contains_blob(&key), "no blob yet");

        let cache = TraceCache::new(Some(&store));
        let _lock = cbsp_trace::test_lock();
        cbsp_trace::enable();
        cbsp_trace::reset();
        let t = cache.get_or_record(&bin, &input).expect("legacy hit");
        let counters = cbsp_trace::snapshot().counters;
        cbsp_trace::disable();
        assert_eq!(*t, recorded, "legacy payload decodes to the same trace");
        assert_eq!(counters.get("sim/trace_cache_hits"), Some(&1));
        assert_eq!(counters.get("store/legacy_migrations"), Some(&1));
        // Read-through migration: blob written, envelope gone.
        assert!(store.contains_blob(&key));
        assert!(!store.contains(&key));

        // A fresh cache now hits the blob directly.
        let fresh = TraceCache::new(Some(&store));
        let t2 = fresh.get_or_record(&bin, &input).expect("blob hit");
        assert_eq!(*t, *t2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn without_migration_leaves_the_envelope_in_place() {
        let bin = test_binary();
        let input = Input::test();
        let (store, dir) = temp_store("no-migrate");
        let recorded = record_trace(&bin, &input);
        let key = put_trace_legacy(&store, &bin, &input, &recorded).expect("writes legacy");

        let cache = TraceCache::new(Some(&store)).without_migration();
        let t = cache.get_or_record(&bin, &input).expect("legacy hit");
        assert_eq!(*t, recorded);
        assert!(store.contains(&key), "envelope untouched");
        assert!(!store.contains_blob(&key), "no blob written");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pool_fanout_records_each_binary_once() {
        let prog = workloads::by_name("gzip")
            .expect("in suite")
            .build(Scale::Test);
        let bins: Vec<Binary> = CompileTarget::ALL_FOUR
            .iter()
            .map(|&t| compile(&prog, t))
            .collect();
        let refs: Vec<&Binary> = bins.iter().collect();
        let input = Input::test();
        let cache = TraceCache::in_memory();
        let pool = Pool::new(8);
        let traces = cache
            .get_or_record_all(&refs, &input, &pool)
            .expect("records");
        assert_eq!(traces.len(), 4);
        // Same batch again: all four come back as the same allocations.
        let again = cache.get_or_record_all(&refs, &input, &pool).expect("hits");
        for (a, b) in traces.iter().zip(&again) {
            assert!(Arc::ptr_eq(a, b));
        }
    }

    #[test]
    fn warm_slice_manifest_avoids_the_full_replay() {
        let bin = test_binary();
        let input = Input::test();
        let (boundaries, points) = boundaries_and_points(&bin, &input);
        let selected: Vec<usize> = points.iter().map(|p| p.interval).collect();
        let config = MemoryConfig::table1();
        let cache = TraceCache::in_memory();

        let _lock = cbsp_trace::test_lock();
        cbsp_trace::enable();
        cbsp_trace::reset();
        let cold = cache
            .get_slices(&bin, &input, &config, &boundaries, &selected)
            .expect("materializes");
        let cold_counters = cbsp_trace::snapshot().counters;
        let warm = cache
            .get_slices(&bin, &input, &config, &boundaries, &selected)
            .expect("memory hit");
        let warm_counters = cbsp_trace::snapshot().counters;
        cbsp_trace::disable();

        assert!(Arc::ptr_eq(&cold, &warm), "same manifest allocation");
        assert_eq!(cold_counters.get("sim/full_replay_avoided"), None);
        assert_eq!(warm_counters.get("sim/full_replay_avoided"), Some(&1));
        // The manifest is a small fraction of the full trace.
        let full = cache.get_or_record(&bin, &input).expect("cached");
        assert!(
            cold.encoded_len() < full.bytes.len(),
            "slices {} vs full trace {}",
            cold.encoded_len(),
            full.bytes.len()
        );
        // Selection order and duplicates do not change the key.
        let shuffled = vec![selected[2], selected[0], selected[1], selected[0]];
        let again = cache
            .get_slices(&bin, &input, &config, &boundaries, &shuffled)
            .expect("normalized key hits");
        assert!(Arc::ptr_eq(&cold, &again));
    }

    #[test]
    fn slice_manifest_persists_as_blobs_and_prefetches() {
        let bin = test_binary();
        let input = Input::test();
        let (boundaries, points) = boundaries_and_points(&bin, &input);
        let selected: Vec<usize> = points.iter().map(|p| p.interval).collect();
        let config = MemoryConfig::table1();
        let (store, dir) = temp_store("slice-persist");

        let first = TraceCache::new(Some(&store));
        let cold = first
            .get_slices(&bin, &input, &config, &boundaries, &selected)
            .expect("materializes");

        // Manifest and one blob per selected interval, no envelopes.
        let key = trace_slice_key(&bin, &input, &config, &boundaries, &selected);
        assert!(store.contains_blob(&key), "manifest blob on disk");
        assert!(!store.contains(&key), "no JSON envelope written");
        for s in &cold.slices {
            let skey = derived_key(&key, "slice", s.interval as u64);
            assert!(store.contains_blob(&skey), "slice {} blob", s.interval);
        }

        // A fresh cache (fresh process, conceptually) loads the stored
        // manifest without touching the full trace.
        let second = TraceCache::new(Some(&store));
        let _lock = cbsp_trace::test_lock();
        cbsp_trace::enable();
        cbsp_trace::reset();
        let warm = second
            .get_slices(&bin, &input, &config, &boundaries, &selected)
            .expect("store hit");
        let counters = cbsp_trace::snapshot().counters;
        cbsp_trace::disable();

        assert_eq!(*cold, *warm, "stored manifest round-trips exactly");
        assert_eq!(counters.get("sim/full_replay_avoided"), Some(&1));
        assert_eq!(counters.get("sim/trace_cache_misses"), None);
        // Manifest + per-slice blobs were all read through the blob
        // tier; multi-slice reads fan out.
        let blob_reads = counters.get("store/blob_reads").copied().unwrap_or(0);
        assert_eq!(blob_reads, 1 + cold.slices.len() as u64);
        if Pool::auto().threads() > 1 {
            assert_eq!(counters.get("store/prefetch_fanouts"), Some(&1));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_slice_manifest_blob_is_repaired_as_a_miss() {
        let bin = test_binary();
        let input = Input::test();
        let (boundaries, points) = boundaries_and_points(&bin, &input);
        let selected: Vec<usize> = points.iter().map(|p| p.interval).collect();
        let config = MemoryConfig::table1();
        let (store, dir) = temp_store("slice-repair");

        let first = TraceCache::new(Some(&store));
        let cold = first
            .get_slices(&bin, &input, &config, &boundaries, &selected)
            .expect("materializes");

        // Truncate the manifest blob on disk.
        let key = trace_slice_key(&bin, &input, &config, &boundaries, &selected);
        let path = store.blob_path(&key);
        let bytes = std::fs::read(&path).expect("blob exists");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");

        let fresh = TraceCache::new(Some(&store));
        let repaired = fresh
            .get_slices(&bin, &input, &config, &boundaries, &selected)
            .expect("repairs");
        assert_eq!(*cold, *repaired);
        // Repaired in place: a third cache now hits cleanly.
        let third = TraceCache::new(Some(&store));
        let warm = third
            .get_slices(&bin, &input, &config, &boundaries, &selected)
            .expect("hits");
        assert_eq!(*cold, *warm);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_per_slice_blob_is_repaired_as_a_miss() {
        let bin = test_binary();
        let input = Input::test();
        let (boundaries, points) = boundaries_and_points(&bin, &input);
        let selected: Vec<usize> = points.iter().map(|p| p.interval).collect();
        let config = MemoryConfig::table1();
        let (store, dir) = temp_store("slice-blob-repair");

        let first = TraceCache::new(Some(&store));
        let cold = first
            .get_slices(&bin, &input, &config, &boundaries, &selected)
            .expect("materializes");

        // Corrupt one per-slice blob (flip a payload byte: framing
        // checksum catches it; deleting it exercises the same path).
        let key = trace_slice_key(&bin, &input, &config, &boundaries, &selected);
        let skey = derived_key(&key, "slice", cold.slices[1].interval as u64);
        let path = store.blob_path(&skey);
        let mut bytes = std::fs::read(&path).expect("blob exists");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("corrupt");

        let fresh = TraceCache::new(Some(&store));
        let repaired = fresh
            .get_slices(&bin, &input, &config, &boundaries, &selected)
            .expect("repairs");
        assert_eq!(*cold, *repaired);
        let third = TraceCache::new(Some(&store));
        let warm = third
            .get_slices(&bin, &input, &config, &boundaries, &selected)
            .expect("hits");
        assert_eq!(*cold, *warm);

        // A *missing* slice blob is the same miss.
        std::fs::remove_file(&path).expect("remove");
        let fourth = TraceCache::new(Some(&store));
        let again = fourth
            .get_slices(&bin, &input, &config, &boundaries, &selected)
            .expect("repairs missing blob");
        assert_eq!(*cold, *again);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_slice_envelope_reads_through_and_migrates() {
        let bin = test_binary();
        let input = Input::test();
        let (boundaries, points) = boundaries_and_points(&bin, &input);
        let selected: Vec<usize> = points.iter().map(|p| p.interval).collect();
        let config = MemoryConfig::table1();
        let (store, dir) = temp_store("legacy-slices");

        // Materialize slices, then rewrite them as a legacy envelope.
        let seed = TraceCache::in_memory();
        let sliced = seed
            .get_slices(&bin, &input, &config, &boundaries, &selected)
            .expect("materializes");
        let key = put_slices_legacy(
            &store,
            &bin,
            &input,
            &config,
            &boundaries,
            &selected,
            &sliced,
        )
        .expect("writes legacy");
        assert!(store.contains(&key));
        assert!(!store.contains_blob(&key));

        let cache = TraceCache::new(Some(&store));
        let _lock = cbsp_trace::test_lock();
        cbsp_trace::enable();
        cbsp_trace::reset();
        let warm = cache
            .get_slices(&bin, &input, &config, &boundaries, &selected)
            .expect("legacy hit");
        let counters = cbsp_trace::snapshot().counters;
        cbsp_trace::disable();
        assert_eq!(*warm, *sliced, "legacy payload decodes identically");
        assert_eq!(counters.get("sim/full_replay_avoided"), Some(&1));
        assert_eq!(counters.get("store/legacy_migrations"), Some(&1));
        // Migrated: manifest + slice blobs written, envelope gone.
        assert!(store.contains_blob(&key));
        assert!(!store.contains(&key));
        for s in sliced.slices.iter() {
            assert!(store.contains_blob(&derived_key(&key, "slice", s.interval as u64)));
        }

        let fresh = TraceCache::new(Some(&store));
        let again = fresh
            .get_slices(&bin, &input, &config, &boundaries, &selected)
            .expect("blob hit");
        assert_eq!(*warm, *again);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn migrate_store_rewrites_every_legacy_envelope() {
        let bin = test_binary();
        let input = Input::test();
        let (boundaries, points) = boundaries_and_points(&bin, &input);
        let selected: Vec<usize> = points.iter().map(|p| p.interval).collect();
        let config = MemoryConfig::table1();
        let (store, dir) = temp_store("bulk-migrate");

        let recorded = record_trace(&bin, &input);
        let tkey = put_trace_legacy(&store, &bin, &input, &recorded).expect("legacy trace");
        let seed = TraceCache::in_memory();
        let sliced = seed
            .get_slices(&bin, &input, &config, &boundaries, &selected)
            .expect("materializes");
        let skey = put_slices_legacy(
            &store,
            &bin,
            &input,
            &config,
            &boundaries,
            &selected,
            &sliced,
        )
        .expect("legacy slices");

        let report = migrate_store(&store).expect("migrates");
        assert_eq!(
            report,
            MigrateReport {
                traces: 1,
                slice_manifests: 1,
                skipped: 0
            }
        );
        assert!(store.contains_blob(&tkey) && !store.contains(&tkey));
        assert!(store.contains_blob(&skey) && !store.contains(&skey));
        // Idempotent: nothing legacy remains.
        assert_eq!(
            migrate_store(&store).expect("no-op"),
            MigrateReport::default()
        );

        // Migrated artifacts serve bit-identical data.
        let cache = TraceCache::new(Some(&store));
        assert_eq!(*cache.get_or_record(&bin, &input).expect("hit"), recorded);
        assert_eq!(
            *cache
                .get_slices(&bin, &input, &config, &boundaries, &selected)
                .expect("hit"),
            *sliced
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The estimate is byte-identical across cache temperature and
    /// thread count: cold materialization and warm slice replay run the
    /// same per-interval simulations.
    #[test]
    fn sliced_estimate_is_identical_cold_warm_and_across_threads() {
        let bin = test_binary();
        let input = Input::test();
        let (boundaries, points) = boundaries_and_points(&bin, &input);
        let config = MemoryConfig::table1();
        let (store, dir) = temp_store("slice-estimate");

        let n = boundaries.len() + 1;
        let cache = TraceCache::new(Some(&store));
        let cold = cache
            .estimate_cpi_sliced(&bin, &input, &config, &boundaries, &points, None, n)
            .expect("cold estimate");
        assert!(cold.true_cpi > 1.0 && cold.estimated_cpi > 0.0);
        assert_eq!(cold.interval_cpis.len(), n);

        for threads in [1usize, 8] {
            let pool = Pool::new(threads);
            let warm = pool.run_indexed(2 * threads.max(2), |_| {
                cache
                    .estimate_cpi_sliced(&bin, &input, &config, &boundaries, &points, None, n)
                    .expect("warm estimate")
            });
            for est in warm {
                assert_eq!(
                    cold.estimated_cpi.to_bits(),
                    est.estimated_cpi.to_bits(),
                    "{threads} threads"
                );
                assert_eq!(cold.true_cpi.to_bits(), est.true_cpi.to_bits());
                assert_eq!(cold.instructions, est.instructions);
                assert_eq!(cold.interval_cpis, est.interval_cpis);
            }
        }

        // A fresh cache over the same store (warm disk, cold memory)
        // also reproduces the estimate bit-for-bit.
        let fresh = TraceCache::new(Some(&store));
        let from_store = fresh
            .estimate_cpi_sliced(&bin, &input, &config, &boundaries, &points, None, n)
            .expect("store-warm estimate");
        assert_eq!(
            cold.estimated_cpi.to_bits(),
            from_store.estimated_cpi.to_bits()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
