//! The stage-graph orchestrator: the cross-binary pipeline of
//! `cbsp-core` expressed as named, individually cached stages.
//!
//! ```text
//! profile(b0) ─┐
//! profile(b1) ─┼─► mappable ─► vli ─► simpoint ─► map
//! profile(b…) ─┘
//! ```
//!
//! Each stage's content key is derived from everything that determines
//! its output — the binaries (hashed), the workload input, the stage
//! configuration, and the keys of upstream stages — so editing any
//! input invalidates exactly the downstream stages and nothing else.
//! Profile collection, the only per-binary stage, runs its binaries in
//! parallel on scoped threads.

use cbsp_core::{
    map_stage, mappable_stage, profile_stage, simpoint_stage, validate_binaries, vli_stage,
    CbspConfig, CbspError, CrossBinaryResult, MappableStage, MappedSlicing,
};
use cbsp_par::Pool;
use cbsp_profile::CallLoopProfile;
use cbsp_program::{Binary, Input};
use cbsp_simpoint::{SimPointConfig, SimPointResult};
use serde::Value;

use crate::sha256::hex_digest;
use crate::store::{
    canonical_json, content_hash, key_part, stage_key, ArtifactStore, ManifestStage, RunManifest,
    StageKey,
};

/// The five pipeline stages, in dependency order.
pub const STAGE_ORDER: [&str; 5] = ["profile", "mappable", "vli", "simpoint", "map"];

/// How the orchestrator uses the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Serve hits from the store; write misses back (the default).
    #[default]
    ReadWrite,
    /// Recompute every stage and overwrite stored artifacts.
    Refresh,
    /// Compute everything; never read or write the store.
    Bypass,
}

/// What happened to one stage execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageOutcome {
    /// Stage name (one of [`STAGE_ORDER`]).
    pub stage: String,
    /// Display label (e.g. the binary a profile covers).
    pub label: String,
    /// The artifact's content key.
    pub key: StageKey,
    /// `true` if served from the store without recomputation.
    pub hit: bool,
}

/// Cache behaviour of one orchestrated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Key identifying the run (hash over its stage keys).
    pub run_key: String,
    /// One outcome per stage execution (profiles appear once per
    /// binary).
    pub outcomes: Vec<StageOutcome>,
}

impl RunReport {
    /// Stage executions served from the store.
    pub fn hits(&self) -> usize {
        self.outcomes.iter().filter(|o| o.hit).count()
    }

    /// Stage executions that were recomputed.
    pub fn misses(&self) -> usize {
        self.outcomes.len() - self.hits()
    }

    /// Per-stage `(name, hits, executions)` in pipeline order.
    pub fn stage_summary(&self) -> Vec<(&'static str, usize, usize)> {
        STAGE_ORDER
            .iter()
            .map(|&name| {
                let of_stage = self.outcomes.iter().filter(|o| o.stage == name);
                let total = of_stage.clone().count();
                let hits = of_stage.filter(|o| o.hit).count();
                (name, hits, total)
            })
            .collect()
    }

    /// Number of pipeline stages (out of [`STAGE_ORDER`]'s five) whose
    /// executions were *all* served from the store.
    pub fn stages_fully_hit(&self) -> usize {
        self.stage_summary()
            .iter()
            .filter(|(_, hits, total)| total > &0 && hits == total)
            .count()
    }
}

/// Runs pipeline stages against an [`ArtifactStore`] under a
/// [`CachePolicy`].
#[derive(Debug, Clone)]
pub struct Orchestrator<'s> {
    store: &'s ArtifactStore,
    policy: CachePolicy,
}

impl<'s> Orchestrator<'s> {
    /// Creates an orchestrator over `store`.
    pub fn new(store: &'s ArtifactStore, policy: CachePolicy) -> Self {
        Orchestrator { store, policy }
    }

    /// Runs one stage through the cache: look up under `key`, compute
    /// on miss, store the result. A corrupt stored artifact is treated
    /// as a miss and repaired in place (the typed error is only
    /// surfaced to direct `ArtifactStore::get` callers); other store
    /// errors propagate.
    fn cached<T, F>(
        &self,
        stage: &'static str,
        label: &str,
        key: &StageKey,
        compute: F,
    ) -> Result<(T, StageOutcome), CbspError>
    where
        T: serde::Serialize + serde::de::DeserializeOwned,
        F: FnOnce() -> Result<T, CbspError>,
    {
        let mut repair = false;
        if self.policy == CachePolicy::ReadWrite {
            match self.store.get::<T>(stage, key) {
                Ok(Some(value)) => {
                    cbsp_trace::add("store/hits", 1);
                    if cbsp_trace::enabled() {
                        cbsp_trace::add(&format!("store/hit/{stage}"), 1);
                    }
                    return Ok((
                        value,
                        StageOutcome {
                            stage: stage.to_string(),
                            label: label.to_string(),
                            key: key.clone(),
                            hit: true,
                        },
                    ));
                }
                Ok(None) => {}
                Err(
                    CbspError::ArtifactCorrupt { .. } | CbspError::ArtifactVersionMismatch { .. },
                ) => {
                    repair = true;
                    cbsp_trace::add("store/repairs", 1);
                }
                Err(other) => return Err(other),
            }
        }
        if self.policy != CachePolicy::Bypass {
            cbsp_trace::add("store/misses", 1);
            if cbsp_trace::enabled() {
                cbsp_trace::add(&format!("store/miss/{stage}"), 1);
            }
        }
        let value = compute()?;
        match self.policy {
            CachePolicy::Bypass => {}
            CachePolicy::Refresh => self.store.put_overwrite(stage, key, &value)?,
            CachePolicy::ReadWrite => {
                if repair {
                    self.store.put_overwrite(stage, key, &value)?;
                } else {
                    self.store.put(stage, key, &value)?;
                }
            }
        }
        Ok((
            value,
            StageOutcome {
                stage: stage.to_string(),
                label: label.to_string(),
                key: key.clone(),
                hit: false,
            },
        ))
    }

    /// Runs the full cross-binary pipeline with per-stage caching,
    /// returning the result (identical to
    /// [`cbsp_core::run_cross_binary`] on the same inputs) and the
    /// cache report. `description` labels the run in its manifest.
    ///
    /// # Errors
    ///
    /// Returns validation errors from the pipeline and
    /// [`CbspError::StoreIo`] on store failure.
    pub fn run_cross_binary(
        &self,
        binaries: &[&Binary],
        input: &Input,
        config: &CbspConfig,
        description: &str,
    ) -> Result<(CrossBinaryResult, RunReport), CbspError> {
        validate_binaries(binaries, config)?;
        let mut outcomes: Vec<StageOutcome> = Vec::with_capacity(binaries.len() + 4);

        let bin_hashes: Vec<String> = binaries.iter().map(|b| content_hash(*b)).collect();
        let input_hash = content_hash(input);
        let hash_parts: Vec<Value> = bin_hashes.iter().map(|h| Value::Str(h.clone())).collect();

        // Stage 1 — profile, in parallel across binaries.
        let profile_keys: Vec<StageKey> = bin_hashes
            .iter()
            .map(|h| {
                stage_key(
                    "profile",
                    &[Value::Str(h.clone()), Value::Str(input_hash.clone())],
                )
            })
            .collect();
        let pool = Pool::new(config.simpoint.threads);
        let mut profiles: Vec<CallLoopProfile> = Vec::with_capacity(binaries.len());
        let results: Vec<Result<(CallLoopProfile, StageOutcome), CbspError>> =
            pool.run_indexed(binaries.len(), |i| {
                self.cached("profile", &binaries[i].label(), &profile_keys[i], || {
                    Ok(profile_stage(binaries[i], input))
                })
            });
        for result in results {
            let (profile, outcome) = result?;
            profiles.push(profile);
            outcomes.push(outcome);
        }

        // Stage 2 — mappable points across all binaries.
        let mut mappable_inputs = hash_parts.clone();
        mappable_inputs.push(Value::Str(input_hash.clone()));
        let mappable_key = stage_key("mappable", &mappable_inputs);
        let (mappable, outcome) = self.cached("mappable", "all binaries", &mappable_key, || {
            Ok(mappable_stage(binaries, &profiles))
        })?;
        outcomes.push(outcome);
        let MappableStage {
            set: mappable,
            recovered_procs,
        } = mappable;

        // Stage 3 — variable-length intervals on the primary.
        let vli_key = stage_key(
            "vli",
            &[
                Value::Str(bin_hashes[config.primary].clone()),
                Value::Str(input_hash.clone()),
                Value::UInt(config.interval_target),
                Value::UInt(config.primary as u64),
                Value::Str(mappable_key.as_hex().to_string()),
            ],
        );
        let (vli, outcome) =
            self.cached("vli", &binaries[config.primary].label(), &vli_key, || {
                Ok(vli_stage(binaries, input, config, &mappable))
            })?;
        outcomes.push(outcome);

        // Stage 4 — SimPoint clustering of the primary's intervals.
        // `threads` is an execution knob with no effect on the result
        // (the clustering is bit-identical at any thread count), so it
        // is normalized out of the content-addressed key: runs at
        // different thread counts share cache entries.
        let key_config = SimPointConfig {
            threads: 0,
            ..config.simpoint
        };
        let simpoint_key = stage_key(
            "simpoint",
            &[
                Value::Str(vli_key.as_hex().to_string()),
                key_part(&key_config),
            ],
        );
        let (simpoint, outcome): (SimPointResult, _) =
            self.cached("simpoint", "primary intervals", &simpoint_key, || {
                Ok(simpoint_stage(&vli, &config.simpoint))
            })?;
        outcomes.push(outcome);

        // Stage 5 — boundary translation and per-binary weights.
        let mut map_inputs = hash_parts;
        map_inputs.push(Value::Str(input_hash));
        map_inputs.push(Value::UInt(config.primary as u64));
        map_inputs.push(Value::Str(mappable_key.as_hex().to_string()));
        map_inputs.push(Value::Str(vli_key.as_hex().to_string()));
        map_inputs.push(Value::Str(simpoint_key.as_hex().to_string()));
        let map_key = stage_key("map", &map_inputs);
        let (mapped, outcome): (MappedSlicing, _) =
            self.cached("map", "all binaries", &map_key, || {
                map_stage(
                    binaries,
                    input,
                    config.primary,
                    &mappable,
                    &vli,
                    &simpoint,
                    &pool,
                )
            })?;
        outcomes.push(outcome);

        let run_key = run_key_of(&outcomes);
        if self.policy != CachePolicy::Bypass {
            self.store.write_manifest(&RunManifest {
                schema: crate::store::SCHEMA_VERSION,
                run_key: run_key.clone(),
                description: description.to_string(),
                finished_unix: std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map_or(0, |d| d.as_secs()),
                stages: outcomes
                    .iter()
                    .map(|o| ManifestStage {
                        stage: o.stage.clone(),
                        label: o.label.clone(),
                        key: o.key.as_hex().to_string(),
                        hit: o.hit,
                    })
                    .collect(),
            })?;
        }

        let result = CrossBinaryResult {
            mappable,
            recovered_procs,
            primary: config.primary,
            vli,
            simpoint,
            boundaries: mapped.boundaries,
            interval_instrs: mapped.interval_instrs,
            weights: mapped.weights,
        };
        Ok((result, RunReport { run_key, outcomes }))
    }
}

/// A run's identity: the hash of its ordered stage keys.
fn run_key_of(outcomes: &[StageOutcome]) -> String {
    let doc = Value::Array(
        outcomes
            .iter()
            .map(|o| Value::Str(o.key.as_hex().to_string()))
            .collect(),
    );
    hex_digest(canonical_json(&doc).as_bytes())
}
