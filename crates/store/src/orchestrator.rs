//! The stage-graph orchestrator: the cross-binary pipeline of
//! `cbsp-core` expressed as named, individually cached stages.
//!
//! ```text
//! profile(b0) ─┐
//! profile(b1) ─┼─► mappable ─► vli ─► simpoint ─► map
//! profile(b…) ─┘
//! ```
//!
//! Each stage's content key is derived from everything that determines
//! its output — the binaries (hashed), the workload input, the stage
//! configuration, and the keys of upstream stages — so editing any
//! input invalidates exactly the downstream stages and nothing else.
//! Profile collection, the only per-binary stage, runs its binaries in
//! parallel on scoped threads.

use cbsp_core::{
    map_stage, map_stage_fuzzy, mappable_stage, profile_stage, simpoint_stage, validate_binaries,
    vli_stage, CbspConfig, CbspError, CrossBinaryResult, MappableStage, MappedSlicing,
};
use cbsp_par::Pool;
use cbsp_profile::CallLoopProfile;
use cbsp_program::{Binary, Input};
use cbsp_simpoint::{EstimatorConfig, SimPointConfig, SimPointResult};
use serde::Value;
use std::sync::Arc;

use crate::sha256::hex_digest;
use crate::store::{
    canonical_json, content_hash, key_part, stage_key, ArtifactStore, ManifestStage, RunManifest,
    StageKey,
};

/// The five pipeline stages, in dependency order. These are *logical*
/// stage names; the estimator-dependent stages (`vli`, `simpoint`,
/// `map`) are stored under estimator-tagged namespaces — see
/// [`stage_namespaces`].
pub const STAGE_ORDER: [&str; 5] = ["profile", "mappable", "vli", "simpoint", "map"];

/// Store namespaces of the estimator-dependent pipeline stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageNamespaces {
    /// Namespace of the `vli` stage (depends only on the feature kind:
    /// every BBV-based selector shares one interval profile).
    pub vli: String,
    /// Namespace of the `simpoint` stage (full estimator tag).
    pub simpoint: String,
    /// Namespace of the `map` stage (full estimator tag).
    pub map: String,
}

/// The store namespaces `estimator`'s artifacts live under; `fuzzy` is
/// whether the run uses the fuzzy-mapping fallback.
///
/// The default estimator (nearest-centroid BBV) uses the plain stage
/// names, so its keys — and therefore its on-disk artifacts — are
/// byte-identical to the pre-estimator store. Every other lane gets
/// `stage@tag` namespaces (e.g. `simpoint@stratified`), which flow into
/// both the stage-key hash and the artifact envelope's stage string, so
/// lanes can never collide and `cache stats` can attribute populations
/// per estimator. The `vli` namespace depends only on the *feature*
/// kind: selectors reuse the same interval profile, so the `early` and
/// `stratified` lanes share the default lane's `vli` artifacts.
///
/// Fuzzy runs append `@fuzzy` to all three estimator-dependent
/// namespaces (cache-key invariant 8): fuzzy VLI cutting uses the
/// extended pairwise marker filter and the map stage stores mapping
/// records, so none of those artifacts may ever collide with an exact
/// lane's. The acceptance *threshold* does not enter the namespaces —
/// it only affects the map stage, where it enters the key inputs
/// directly (see [`pipeline_keys`]) — so fuzzy runs at different
/// thresholds share `vli`/`simpoint` artifacts.
pub fn stage_namespaces(estimator: &EstimatorConfig, fuzzy: bool) -> StageNamespaces {
    let vli = if estimator.features.wants_mav() {
        format!("vli@{}", estimator.features.tag())
    } else {
        "vli".to_string()
    };
    let (simpoint, map) = if estimator.is_default() {
        ("simpoint".to_string(), "map".to_string())
    } else {
        let tag = estimator.tag();
        (format!("simpoint@{tag}"), format!("map@{tag}"))
    };
    let suffix = |s: String| if fuzzy { format!("{s}@fuzzy") } else { s };
    StageNamespaces {
        vli: suffix(vli),
        simpoint: suffix(simpoint),
        map: suffix(map),
    }
}

/// The content keys of every stage of one pipeline run, derived from
/// the inputs alone — computing them costs a few hashes, never a stage
/// execution. This is what makes digest-based lookups (`cbsp-serve`'s
/// `simpoints.get`) possible: hash the inputs, chain the keys, and ask
/// the store directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineKeys {
    /// One `profile` key per binary, in binary order.
    pub profile: Vec<StageKey>,
    /// The `mappable` stage key (all binaries + input).
    pub mappable: StageKey,
    /// The `vli` stage key (primary binary's intervals).
    pub vli: StageKey,
    /// The `simpoint` stage key (clustering of the primary intervals;
    /// thread count normalized out — see [`pipeline_keys`]).
    pub simpoint: StageKey,
    /// The `map` stage key (boundary translation, all binaries).
    pub map: StageKey,
}

/// Derives the full key chain for a pipeline run without executing any
/// stage. The same derivation [`Orchestrator::run_cross_binary`] uses,
/// exposed so callers can probe the store (or deduplicate work) by
/// content digest alone.
///
/// The `simpoint` key normalizes `threads` to 0: thread count is an
/// execution knob with no effect on the result (clustering is
/// bit-identical at any setting), so runs at different thread counts
/// share cache entries.
///
/// The estimator enters the derivation through the stage *namespaces*
/// ([`stage_namespaces`]): the namespace string is hashed into each
/// stage key, so estimator lanes can never collide, while the default
/// lane's namespaces are the plain stage names and its keys stay
/// byte-identical to the pre-estimator store. The selector additionally
/// enters through the effective `representative` in the simpoint key
/// config (mirroring what [`cbsp_core::simpoint_stage`] actually runs).
///
/// # Errors
///
/// Returns the same input-validation errors as the pipeline itself
/// (empty set, program mismatch, primary out of range).
pub fn pipeline_keys(
    binaries: &[&Binary],
    input: &Input,
    config: &CbspConfig,
) -> Result<PipelineKeys, CbspError> {
    validate_binaries(binaries, config)?;
    let ns = stage_namespaces(&config.estimator, config.fuzzy.is_some());
    let bin_hashes: Vec<String> = binaries.iter().map(|b| content_hash(*b)).collect();
    let input_hash = content_hash(input);
    let hash_parts: Vec<Value> = bin_hashes.iter().map(|h| Value::Str(h.clone())).collect();

    let profile: Vec<StageKey> = bin_hashes
        .iter()
        .map(|h| {
            stage_key(
                "profile",
                &[Value::Str(h.clone()), Value::Str(input_hash.clone())],
            )
        })
        .collect();

    let mut mappable_inputs = hash_parts.clone();
    mappable_inputs.push(Value::Str(input_hash.clone()));
    let mappable = stage_key("mappable", &mappable_inputs);

    let vli = stage_key(
        &ns.vli,
        &[
            Value::Str(bin_hashes[config.primary].clone()),
            Value::Str(input_hash.clone()),
            Value::UInt(config.interval_target),
            Value::UInt(config.primary as u64),
            Value::Str(mappable.as_hex().to_string()),
        ],
    );

    let key_config = SimPointConfig {
        threads: 0,
        representative: config.estimator.selector,
        ..config.simpoint
    };
    let simpoint = stage_key(
        &ns.simpoint,
        &[Value::Str(vli.as_hex().to_string()), key_part(&key_config)],
    );

    let mut map_inputs = hash_parts;
    map_inputs.push(Value::Str(input_hash));
    map_inputs.push(Value::UInt(config.primary as u64));
    map_inputs.push(Value::Str(mappable.as_hex().to_string()));
    map_inputs.push(Value::Str(vli.as_hex().to_string()));
    map_inputs.push(Value::Str(simpoint.as_hex().to_string()));
    // The fuzzy config (acceptance threshold) changes only the matching
    // decisions of the map stage, so it enters only this key — fuzzy
    // runs at different thresholds share every upstream artifact.
    if let Some(fuzzy) = &config.fuzzy {
        map_inputs.push(key_part(fuzzy));
    }
    let map = stage_key(&ns.map, &map_inputs);

    Ok(PipelineKeys {
        profile,
        mappable,
        vli,
        simpoint,
        map,
    })
}

/// How the orchestrator uses the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Serve hits from the store; write misses back (the default).
    #[default]
    ReadWrite,
    /// Recompute every stage and overwrite stored artifacts.
    Refresh,
    /// Compute everything; never read or write the store.
    Bypass,
}

/// What happened to one stage execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageOutcome {
    /// Stage name (one of [`STAGE_ORDER`]).
    pub stage: String,
    /// Display label (e.g. the binary a profile covers).
    pub label: String,
    /// The artifact's content key.
    pub key: StageKey,
    /// `true` if served from the store without recomputation.
    pub hit: bool,
}

/// Cache behaviour of one orchestrated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Key identifying the run (hash over its stage keys).
    pub run_key: String,
    /// One outcome per stage execution (profiles appear once per
    /// binary).
    pub outcomes: Vec<StageOutcome>,
}

impl RunReport {
    /// Stage executions served from the store.
    pub fn hits(&self) -> usize {
        self.outcomes.iter().filter(|o| o.hit).count()
    }

    /// Stage executions that were recomputed.
    pub fn misses(&self) -> usize {
        self.outcomes.len() - self.hits()
    }

    /// Per-stage `(name, hits, executions)` in pipeline order.
    pub fn stage_summary(&self) -> Vec<(&'static str, usize, usize)> {
        STAGE_ORDER
            .iter()
            .map(|&name| {
                let of_stage = self.outcomes.iter().filter(|o| o.stage == name);
                let total = of_stage.clone().count();
                let hits = of_stage.filter(|o| o.hit).count();
                (name, hits, total)
            })
            .collect()
    }

    /// Number of pipeline stages (out of [`STAGE_ORDER`]'s five) whose
    /// executions were *all* served from the store.
    pub fn stages_fully_hit(&self) -> usize {
        self.stage_summary()
            .iter()
            .filter(|(_, hits, total)| total > &0 && hits == total)
            .count()
    }
}

/// Runs pipeline stages against an [`ArtifactStore`] under a
/// [`CachePolicy`].
#[derive(Clone)]
pub struct Orchestrator<'s> {
    store: &'s ArtifactStore,
    policy: CachePolicy,
    /// Polled at every stage boundary; `true` abandons the run with
    /// [`CbspError::Cancelled`]. `None` means never cancelled.
    cancel: Option<Arc<dyn Fn() -> bool + Send + Sync>>,
}

impl std::fmt::Debug for Orchestrator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Orchestrator")
            .field("store", &self.store)
            .field("policy", &self.policy)
            .field("cancel", &self.cancel.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

impl<'s> Orchestrator<'s> {
    /// Creates an orchestrator over `store`.
    pub fn new(store: &'s ArtifactStore, policy: CachePolicy) -> Self {
        Orchestrator {
            store,
            policy,
            cancel: None,
        }
    }

    /// Attaches a cancellation check, polled at every stage boundary of
    /// [`Orchestrator::run_cross_binary`]. When `check` returns `true`
    /// the run stops with [`CbspError::Cancelled`] before starting its
    /// next stage — cheap cooperative cancellation for servers
    /// enforcing per-request deadlines. Stages themselves are never
    /// interrupted, so the store is never left with a torn artifact.
    pub fn with_cancel(mut self, check: Arc<dyn Fn() -> bool + Send + Sync>) -> Self {
        self.cancel = Some(check);
        self
    }

    /// Returns [`CbspError::Cancelled`] if the cancellation check (if
    /// any) has fired.
    fn check_cancelled(&self, stage: &str) -> Result<(), CbspError> {
        match &self.cancel {
            Some(check) if check() => Err(CbspError::Cancelled {
                stage: stage.to_string(),
            }),
            _ => Ok(()),
        }
    }

    /// Runs one stage through the cache: look up under `key`, compute
    /// on miss, store the result. A corrupt stored artifact is treated
    /// as a miss and repaired in place (the typed error is only
    /// surfaced to direct `ArtifactStore::get` callers); other store
    /// errors propagate.
    ///
    /// `stage` is the logical stage name (one of [`STAGE_ORDER`], used
    /// for outcomes and trace counters); `ns` is the store namespace
    /// the artifact lives under — identical to `stage` except for
    /// non-default estimator lanes (see [`stage_namespaces`]).
    fn cached<T, F>(
        &self,
        stage: &'static str,
        ns: &str,
        label: &str,
        key: &StageKey,
        compute: F,
    ) -> Result<(T, StageOutcome), CbspError>
    where
        T: serde::Serialize + serde::de::DeserializeOwned,
        F: FnOnce() -> Result<T, CbspError>,
    {
        let mut repair = false;
        if self.policy == CachePolicy::ReadWrite {
            match self.store.get::<T>(ns, key) {
                Ok(Some(value)) => {
                    cbsp_trace::add("store/hits", 1);
                    if cbsp_trace::enabled() {
                        cbsp_trace::add(&format!("store/hit/{stage}"), 1);
                    }
                    return Ok((
                        value,
                        StageOutcome {
                            stage: stage.to_string(),
                            label: label.to_string(),
                            key: key.clone(),
                            hit: true,
                        },
                    ));
                }
                Ok(None) => {}
                Err(
                    CbspError::ArtifactCorrupt { .. } | CbspError::ArtifactVersionMismatch { .. },
                ) => {
                    repair = true;
                    cbsp_trace::add("store/repairs", 1);
                }
                Err(other) => return Err(other),
            }
        }
        if self.policy != CachePolicy::Bypass {
            cbsp_trace::add("store/misses", 1);
            if cbsp_trace::enabled() {
                cbsp_trace::add(&format!("store/miss/{stage}"), 1);
            }
        }
        let value = compute()?;
        match self.policy {
            CachePolicy::Bypass => {}
            CachePolicy::Refresh => self.store.put_overwrite(ns, key, &value)?,
            CachePolicy::ReadWrite => {
                if repair {
                    self.store.put_overwrite(ns, key, &value)?;
                } else {
                    self.store.put(ns, key, &value)?;
                }
            }
        }
        Ok((
            value,
            StageOutcome {
                stage: stage.to_string(),
                label: label.to_string(),
                key: key.clone(),
                hit: false,
            },
        ))
    }

    /// Runs the full cross-binary pipeline with per-stage caching,
    /// returning the result (identical to
    /// [`cbsp_core::run_cross_binary`] on the same inputs) and the
    /// cache report. `description` labels the run in its manifest.
    ///
    /// # Errors
    ///
    /// Returns validation errors from the pipeline and
    /// [`CbspError::StoreIo`] on store failure.
    pub fn run_cross_binary(
        &self,
        binaries: &[&Binary],
        input: &Input,
        config: &CbspConfig,
        description: &str,
    ) -> Result<(CrossBinaryResult, RunReport), CbspError> {
        let keys = pipeline_keys(binaries, input, config)?;
        let ns = stage_namespaces(&config.estimator, config.fuzzy.is_some());
        let mut outcomes: Vec<StageOutcome> = Vec::with_capacity(binaries.len() + 4);

        // Stage 1 — profile, in parallel across binaries.
        self.check_cancelled("profile")?;
        let pool = Pool::new(config.simpoint.threads);
        let mut profiles: Vec<CallLoopProfile> = Vec::with_capacity(binaries.len());
        let results: Vec<Result<(CallLoopProfile, StageOutcome), CbspError>> =
            pool.run_indexed(binaries.len(), |i| {
                self.cached(
                    "profile",
                    "profile",
                    &binaries[i].label(),
                    &keys.profile[i],
                    || Ok(profile_stage(binaries[i], input)),
                )
            });
        for result in results {
            let (profile, outcome) = result?;
            profiles.push(profile);
            outcomes.push(outcome);
        }

        // Stage 2 — mappable points across all binaries.
        self.check_cancelled("mappable")?;
        let (mappable, outcome) = self.cached(
            "mappable",
            "mappable",
            "all binaries",
            &keys.mappable,
            || Ok(mappable_stage(binaries, &profiles)),
        )?;
        outcomes.push(outcome);
        let MappableStage {
            set: mappable,
            recovered_procs,
        } = mappable;

        // Stage 3 — variable-length intervals on the primary.
        self.check_cancelled("vli")?;
        let (vli, outcome) = self.cached(
            "vli",
            &ns.vli,
            &binaries[config.primary].label(),
            &keys.vli,
            || Ok(vli_stage(binaries, input, config, &mappable, &profiles)),
        )?;
        outcomes.push(outcome);

        // Stage 4 — SimPoint clustering of the primary's intervals.
        self.check_cancelled("simpoint")?;
        let (simpoint, outcome): (SimPointResult, _) = self.cached(
            "simpoint",
            &ns.simpoint,
            "primary intervals",
            &keys.simpoint,
            || Ok(simpoint_stage(&vli, &config.simpoint, &config.estimator)),
        )?;
        outcomes.push(outcome);

        // Stage 5 — boundary translation and per-binary weights.
        self.check_cancelled("map")?;
        let (mapped, outcome): (MappedSlicing, _) =
            self.cached("map", &ns.map, "all binaries", &keys.map, || {
                if config.fuzzy.is_some() {
                    Ok(map_stage_fuzzy(
                        binaries, input, &profiles, &vli, &simpoint, config, &pool,
                    ))
                } else {
                    map_stage(
                        binaries,
                        input,
                        config.primary,
                        &mappable,
                        &vli,
                        &simpoint,
                        &pool,
                    )
                }
            })?;
        outcomes.push(outcome);

        let run_key = run_key_of(&outcomes);
        if self.policy != CachePolicy::Bypass {
            self.store.write_manifest(&RunManifest {
                schema: crate::store::SCHEMA_VERSION,
                run_key: run_key.clone(),
                description: description.to_string(),
                finished_unix: std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map_or(0, |d| d.as_secs()),
                stages: outcomes
                    .iter()
                    .map(|o| ManifestStage {
                        stage: o.stage.clone(),
                        label: o.label.clone(),
                        key: o.key.as_hex().to_string(),
                        hit: o.hit,
                    })
                    .collect(),
            })?;
        }

        let result = CrossBinaryResult {
            mappable,
            recovered_procs,
            primary: config.primary,
            vli,
            simpoint,
            boundaries: mapped.boundaries,
            interval_instrs: mapped.interval_instrs,
            weights: mapped.weights,
            mappings: mapped.mappings,
        };
        Ok((result, RunReport { run_key, outcomes }))
    }
}

/// A run's identity: the hash of its ordered stage keys.
fn run_key_of(outcomes: &[StageOutcome]) -> String {
    let doc = Value::Array(
        outcomes
            .iter()
            .map(|o| Value::Str(o.key.as_hex().to_string()))
            .collect(),
    );
    hex_digest(canonical_json(&doc).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbsp_program::{compile, workloads, CompileTarget, Scale};

    #[test]
    fn estimator_lanes_get_disjoint_keys_and_share_what_they_can() {
        let prog = workloads::by_name("swim")
            .expect("in suite")
            .build(Scale::Test);
        let bins: Vec<Binary> = CompileTarget::ALL_FOUR
            .iter()
            .map(|&t| compile(&prog, t))
            .collect();
        let refs: Vec<&Binary> = bins.iter().collect();
        let input = Input::test();
        let of = |tag: &str| {
            let config = CbspConfig {
                estimator: EstimatorConfig::parse(tag).expect("known tag"),
                ..CbspConfig::default()
            };
            pipeline_keys(&refs, &input, &config).expect("keys derive")
        };
        let bbv = of("bbv");
        let mav = of("bbv+mav");
        let strat = of("stratified");
        let early = of("early");

        // Estimator-independent stages share keys across all lanes.
        for other in [&mav, &strat, &early] {
            assert_eq!(bbv.profile, other.profile);
            assert_eq!(bbv.mappable, other.mappable);
        }
        // BBV-feature selectors reuse the default lane's interval
        // profile; the MAV lane records extra payload and must not.
        assert_eq!(bbv.vli, strat.vli);
        assert_eq!(bbv.vli, early.vli);
        assert_ne!(bbv.vli, mav.vli);
        // Clustering and mapping keys are disjoint across every lane.
        let simpoints = [
            &bbv.simpoint,
            &mav.simpoint,
            &strat.simpoint,
            &early.simpoint,
        ];
        let maps = [&bbv.map, &mav.map, &strat.map, &early.map];
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(simpoints[i], simpoints[j], "simpoint keys {i} vs {j}");
                assert_ne!(maps[i], maps[j], "map keys {i} vs {j}");
            }
        }
    }

    #[test]
    fn default_estimator_uses_plain_namespaces() {
        let ns = stage_namespaces(&EstimatorConfig::default(), false);
        assert_eq!(
            (ns.vli.as_str(), ns.simpoint.as_str(), ns.map.as_str()),
            ("vli", "simpoint", "map")
        );
        let strat = stage_namespaces(&EstimatorConfig::parse("stratified").expect("known"), false);
        assert_eq!(strat.vli, "vli", "selector lanes share the vli namespace");
        assert_eq!(strat.simpoint, "simpoint@stratified");
        assert_eq!(strat.map, "map@stratified");
        let mav = stage_namespaces(&EstimatorConfig::parse("bbv+mav").expect("known"), false);
        assert_eq!(mav.vli, "vli@bbv+mav");
        assert_eq!(mav.simpoint, "simpoint@bbv+mav");
    }

    #[test]
    fn fuzzy_namespaces_are_suffixed_everywhere() {
        let ns = stage_namespaces(&EstimatorConfig::default(), true);
        assert_eq!(
            (ns.vli.as_str(), ns.simpoint.as_str(), ns.map.as_str()),
            ("vli@fuzzy", "simpoint@fuzzy", "map@fuzzy")
        );
        let mav = stage_namespaces(&EstimatorConfig::parse("bbv+mav").expect("known"), true);
        assert_eq!(mav.vli, "vli@bbv+mav@fuzzy");
        assert_eq!(mav.simpoint, "simpoint@bbv+mav@fuzzy");
        assert_eq!(mav.map, "map@bbv+mav@fuzzy");
    }

    #[test]
    fn fuzzy_keys_never_collide_with_exact_lanes() {
        use cbsp_core::FuzzyConfig;
        let prog = workloads::by_name("swim")
            .expect("in suite")
            .build(Scale::Test);
        let bins: Vec<Binary> = CompileTarget::ALL_FOUR
            .iter()
            .map(|&t| compile(&prog, t))
            .collect();
        let refs: Vec<&Binary> = bins.iter().collect();
        let input = Input::test();
        let of = |fuzzy: Option<FuzzyConfig>| {
            let config = CbspConfig {
                fuzzy,
                ..CbspConfig::default()
            };
            pipeline_keys(&refs, &input, &config).expect("keys derive")
        };
        let exact = of(None);
        let fuzzy = of(Some(FuzzyConfig::default()));
        let loose = of(Some(FuzzyConfig { threshold: 0.3 }));

        // Invariant 8: no estimator-dependent key of a fuzzy run may
        // collide with an exact lane's.
        assert_eq!(exact.profile, fuzzy.profile);
        assert_eq!(exact.mappable, fuzzy.mappable);
        assert_ne!(exact.vli, fuzzy.vli);
        assert_ne!(exact.simpoint, fuzzy.simpoint);
        assert_ne!(exact.map, fuzzy.map);
        // Thresholds differ only in matching: map keys split, upstream
        // artifacts are shared.
        assert_eq!(fuzzy.vli, loose.vli);
        assert_eq!(fuzzy.simpoint, loose.simpoint);
        assert_ne!(fuzzy.map, loose.map);
    }
}
