//! The stage-graph orchestrator: the cross-binary pipeline of
//! `cbsp-core` expressed as named, individually cached stages.
//!
//! ```text
//! profile(b0) ─┐
//! profile(b1) ─┼─► mappable ─► vli ─► simpoint ─► map
//! profile(b…) ─┘
//! ```
//!
//! Each stage's content key is derived from everything that determines
//! its output — the binaries (hashed), the workload input, the stage
//! configuration, and the keys of upstream stages — so editing any
//! input invalidates exactly the downstream stages and nothing else.
//! Profile collection, the only per-binary stage, runs its binaries in
//! parallel on scoped threads.

use cbsp_core::{
    map_stage, mappable_stage, profile_stage, simpoint_stage, validate_binaries, vli_stage,
    CbspConfig, CbspError, CrossBinaryResult, MappableStage, MappedSlicing,
};
use cbsp_par::Pool;
use cbsp_profile::CallLoopProfile;
use cbsp_program::{Binary, Input};
use cbsp_simpoint::{SimPointConfig, SimPointResult};
use serde::Value;
use std::sync::Arc;

use crate::sha256::hex_digest;
use crate::store::{
    canonical_json, content_hash, key_part, stage_key, ArtifactStore, ManifestStage, RunManifest,
    StageKey,
};

/// The five pipeline stages, in dependency order.
pub const STAGE_ORDER: [&str; 5] = ["profile", "mappable", "vli", "simpoint", "map"];

/// The content keys of every stage of one pipeline run, derived from
/// the inputs alone — computing them costs a few hashes, never a stage
/// execution. This is what makes digest-based lookups (`cbsp-serve`'s
/// `simpoints.get`) possible: hash the inputs, chain the keys, and ask
/// the store directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineKeys {
    /// One `profile` key per binary, in binary order.
    pub profile: Vec<StageKey>,
    /// The `mappable` stage key (all binaries + input).
    pub mappable: StageKey,
    /// The `vli` stage key (primary binary's intervals).
    pub vli: StageKey,
    /// The `simpoint` stage key (clustering of the primary intervals;
    /// thread count normalized out — see [`pipeline_keys`]).
    pub simpoint: StageKey,
    /// The `map` stage key (boundary translation, all binaries).
    pub map: StageKey,
}

/// Derives the full key chain for a pipeline run without executing any
/// stage. The same derivation [`Orchestrator::run_cross_binary`] uses,
/// exposed so callers can probe the store (or deduplicate work) by
/// content digest alone.
///
/// The `simpoint` key normalizes `threads` to 0: thread count is an
/// execution knob with no effect on the result (clustering is
/// bit-identical at any setting), so runs at different thread counts
/// share cache entries.
///
/// # Errors
///
/// Returns the same input-validation errors as the pipeline itself
/// (empty set, program mismatch, primary out of range).
pub fn pipeline_keys(
    binaries: &[&Binary],
    input: &Input,
    config: &CbspConfig,
) -> Result<PipelineKeys, CbspError> {
    validate_binaries(binaries, config)?;
    let bin_hashes: Vec<String> = binaries.iter().map(|b| content_hash(*b)).collect();
    let input_hash = content_hash(input);
    let hash_parts: Vec<Value> = bin_hashes.iter().map(|h| Value::Str(h.clone())).collect();

    let profile: Vec<StageKey> = bin_hashes
        .iter()
        .map(|h| {
            stage_key(
                "profile",
                &[Value::Str(h.clone()), Value::Str(input_hash.clone())],
            )
        })
        .collect();

    let mut mappable_inputs = hash_parts.clone();
    mappable_inputs.push(Value::Str(input_hash.clone()));
    let mappable = stage_key("mappable", &mappable_inputs);

    let vli = stage_key(
        "vli",
        &[
            Value::Str(bin_hashes[config.primary].clone()),
            Value::Str(input_hash.clone()),
            Value::UInt(config.interval_target),
            Value::UInt(config.primary as u64),
            Value::Str(mappable.as_hex().to_string()),
        ],
    );

    let key_config = SimPointConfig {
        threads: 0,
        ..config.simpoint
    };
    let simpoint = stage_key(
        "simpoint",
        &[Value::Str(vli.as_hex().to_string()), key_part(&key_config)],
    );

    let mut map_inputs = hash_parts;
    map_inputs.push(Value::Str(input_hash));
    map_inputs.push(Value::UInt(config.primary as u64));
    map_inputs.push(Value::Str(mappable.as_hex().to_string()));
    map_inputs.push(Value::Str(vli.as_hex().to_string()));
    map_inputs.push(Value::Str(simpoint.as_hex().to_string()));
    let map = stage_key("map", &map_inputs);

    Ok(PipelineKeys {
        profile,
        mappable,
        vli,
        simpoint,
        map,
    })
}

/// How the orchestrator uses the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Serve hits from the store; write misses back (the default).
    #[default]
    ReadWrite,
    /// Recompute every stage and overwrite stored artifacts.
    Refresh,
    /// Compute everything; never read or write the store.
    Bypass,
}

/// What happened to one stage execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageOutcome {
    /// Stage name (one of [`STAGE_ORDER`]).
    pub stage: String,
    /// Display label (e.g. the binary a profile covers).
    pub label: String,
    /// The artifact's content key.
    pub key: StageKey,
    /// `true` if served from the store without recomputation.
    pub hit: bool,
}

/// Cache behaviour of one orchestrated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Key identifying the run (hash over its stage keys).
    pub run_key: String,
    /// One outcome per stage execution (profiles appear once per
    /// binary).
    pub outcomes: Vec<StageOutcome>,
}

impl RunReport {
    /// Stage executions served from the store.
    pub fn hits(&self) -> usize {
        self.outcomes.iter().filter(|o| o.hit).count()
    }

    /// Stage executions that were recomputed.
    pub fn misses(&self) -> usize {
        self.outcomes.len() - self.hits()
    }

    /// Per-stage `(name, hits, executions)` in pipeline order.
    pub fn stage_summary(&self) -> Vec<(&'static str, usize, usize)> {
        STAGE_ORDER
            .iter()
            .map(|&name| {
                let of_stage = self.outcomes.iter().filter(|o| o.stage == name);
                let total = of_stage.clone().count();
                let hits = of_stage.filter(|o| o.hit).count();
                (name, hits, total)
            })
            .collect()
    }

    /// Number of pipeline stages (out of [`STAGE_ORDER`]'s five) whose
    /// executions were *all* served from the store.
    pub fn stages_fully_hit(&self) -> usize {
        self.stage_summary()
            .iter()
            .filter(|(_, hits, total)| total > &0 && hits == total)
            .count()
    }
}

/// Runs pipeline stages against an [`ArtifactStore`] under a
/// [`CachePolicy`].
#[derive(Clone)]
pub struct Orchestrator<'s> {
    store: &'s ArtifactStore,
    policy: CachePolicy,
    /// Polled at every stage boundary; `true` abandons the run with
    /// [`CbspError::Cancelled`]. `None` means never cancelled.
    cancel: Option<Arc<dyn Fn() -> bool + Send + Sync>>,
}

impl std::fmt::Debug for Orchestrator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Orchestrator")
            .field("store", &self.store)
            .field("policy", &self.policy)
            .field("cancel", &self.cancel.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

impl<'s> Orchestrator<'s> {
    /// Creates an orchestrator over `store`.
    pub fn new(store: &'s ArtifactStore, policy: CachePolicy) -> Self {
        Orchestrator {
            store,
            policy,
            cancel: None,
        }
    }

    /// Attaches a cancellation check, polled at every stage boundary of
    /// [`Orchestrator::run_cross_binary`]. When `check` returns `true`
    /// the run stops with [`CbspError::Cancelled`] before starting its
    /// next stage — cheap cooperative cancellation for servers
    /// enforcing per-request deadlines. Stages themselves are never
    /// interrupted, so the store is never left with a torn artifact.
    pub fn with_cancel(mut self, check: Arc<dyn Fn() -> bool + Send + Sync>) -> Self {
        self.cancel = Some(check);
        self
    }

    /// Returns [`CbspError::Cancelled`] if the cancellation check (if
    /// any) has fired.
    fn check_cancelled(&self, stage: &str) -> Result<(), CbspError> {
        match &self.cancel {
            Some(check) if check() => Err(CbspError::Cancelled {
                stage: stage.to_string(),
            }),
            _ => Ok(()),
        }
    }

    /// Runs one stage through the cache: look up under `key`, compute
    /// on miss, store the result. A corrupt stored artifact is treated
    /// as a miss and repaired in place (the typed error is only
    /// surfaced to direct `ArtifactStore::get` callers); other store
    /// errors propagate.
    fn cached<T, F>(
        &self,
        stage: &'static str,
        label: &str,
        key: &StageKey,
        compute: F,
    ) -> Result<(T, StageOutcome), CbspError>
    where
        T: serde::Serialize + serde::de::DeserializeOwned,
        F: FnOnce() -> Result<T, CbspError>,
    {
        let mut repair = false;
        if self.policy == CachePolicy::ReadWrite {
            match self.store.get::<T>(stage, key) {
                Ok(Some(value)) => {
                    cbsp_trace::add("store/hits", 1);
                    if cbsp_trace::enabled() {
                        cbsp_trace::add(&format!("store/hit/{stage}"), 1);
                    }
                    return Ok((
                        value,
                        StageOutcome {
                            stage: stage.to_string(),
                            label: label.to_string(),
                            key: key.clone(),
                            hit: true,
                        },
                    ));
                }
                Ok(None) => {}
                Err(
                    CbspError::ArtifactCorrupt { .. } | CbspError::ArtifactVersionMismatch { .. },
                ) => {
                    repair = true;
                    cbsp_trace::add("store/repairs", 1);
                }
                Err(other) => return Err(other),
            }
        }
        if self.policy != CachePolicy::Bypass {
            cbsp_trace::add("store/misses", 1);
            if cbsp_trace::enabled() {
                cbsp_trace::add(&format!("store/miss/{stage}"), 1);
            }
        }
        let value = compute()?;
        match self.policy {
            CachePolicy::Bypass => {}
            CachePolicy::Refresh => self.store.put_overwrite(stage, key, &value)?,
            CachePolicy::ReadWrite => {
                if repair {
                    self.store.put_overwrite(stage, key, &value)?;
                } else {
                    self.store.put(stage, key, &value)?;
                }
            }
        }
        Ok((
            value,
            StageOutcome {
                stage: stage.to_string(),
                label: label.to_string(),
                key: key.clone(),
                hit: false,
            },
        ))
    }

    /// Runs the full cross-binary pipeline with per-stage caching,
    /// returning the result (identical to
    /// [`cbsp_core::run_cross_binary`] on the same inputs) and the
    /// cache report. `description` labels the run in its manifest.
    ///
    /// # Errors
    ///
    /// Returns validation errors from the pipeline and
    /// [`CbspError::StoreIo`] on store failure.
    pub fn run_cross_binary(
        &self,
        binaries: &[&Binary],
        input: &Input,
        config: &CbspConfig,
        description: &str,
    ) -> Result<(CrossBinaryResult, RunReport), CbspError> {
        let keys = pipeline_keys(binaries, input, config)?;
        let mut outcomes: Vec<StageOutcome> = Vec::with_capacity(binaries.len() + 4);

        // Stage 1 — profile, in parallel across binaries.
        self.check_cancelled("profile")?;
        let pool = Pool::new(config.simpoint.threads);
        let mut profiles: Vec<CallLoopProfile> = Vec::with_capacity(binaries.len());
        let results: Vec<Result<(CallLoopProfile, StageOutcome), CbspError>> =
            pool.run_indexed(binaries.len(), |i| {
                self.cached("profile", &binaries[i].label(), &keys.profile[i], || {
                    Ok(profile_stage(binaries[i], input))
                })
            });
        for result in results {
            let (profile, outcome) = result?;
            profiles.push(profile);
            outcomes.push(outcome);
        }

        // Stage 2 — mappable points across all binaries.
        self.check_cancelled("mappable")?;
        let (mappable, outcome) =
            self.cached("mappable", "all binaries", &keys.mappable, || {
                Ok(mappable_stage(binaries, &profiles))
            })?;
        outcomes.push(outcome);
        let MappableStage {
            set: mappable,
            recovered_procs,
        } = mappable;

        // Stage 3 — variable-length intervals on the primary.
        self.check_cancelled("vli")?;
        let (vli, outcome) =
            self.cached("vli", &binaries[config.primary].label(), &keys.vli, || {
                Ok(vli_stage(binaries, input, config, &mappable))
            })?;
        outcomes.push(outcome);

        // Stage 4 — SimPoint clustering of the primary's intervals.
        self.check_cancelled("simpoint")?;
        let (simpoint, outcome): (SimPointResult, _) =
            self.cached("simpoint", "primary intervals", &keys.simpoint, || {
                Ok(simpoint_stage(&vli, &config.simpoint))
            })?;
        outcomes.push(outcome);

        // Stage 5 — boundary translation and per-binary weights.
        self.check_cancelled("map")?;
        let (mapped, outcome): (MappedSlicing, _) =
            self.cached("map", "all binaries", &keys.map, || {
                map_stage(
                    binaries,
                    input,
                    config.primary,
                    &mappable,
                    &vli,
                    &simpoint,
                    &pool,
                )
            })?;
        outcomes.push(outcome);

        let run_key = run_key_of(&outcomes);
        if self.policy != CachePolicy::Bypass {
            self.store.write_manifest(&RunManifest {
                schema: crate::store::SCHEMA_VERSION,
                run_key: run_key.clone(),
                description: description.to_string(),
                finished_unix: std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map_or(0, |d| d.as_secs()),
                stages: outcomes
                    .iter()
                    .map(|o| ManifestStage {
                        stage: o.stage.clone(),
                        label: o.label.clone(),
                        key: o.key.as_hex().to_string(),
                        hit: o.hit,
                    })
                    .collect(),
            })?;
        }

        let result = CrossBinaryResult {
            mappable,
            recovered_procs,
            primary: config.primary,
            vli,
            simpoint,
            boundaries: mapped.boundaries,
            interval_instrs: mapped.interval_instrs,
            weights: mapped.weights,
        };
        Ok((result, RunReport { run_key, outcomes }))
    }
}

/// A run's identity: the hash of its ordered stage keys.
fn run_key_of(outcomes: &[StageOutcome]) -> String {
    let doc = Value::Array(
        outcomes
            .iter()
            .map(|o| Value::Str(o.key.as_hex().to_string()))
            .collect(),
    );
    hex_digest(canonical_json(&doc).as_bytes())
}
