//! The binary blob artifact tier: raw checksummed files for large
//! payloads.
//!
//! JSON envelopes (see [`crate::store`]) are the right format for
//! pipeline-stage artifacts — small, structured, human-inspectable —
//! but a recorded [`EventTrace`](cbsp_sim::EventTrace) is megabytes of
//! varint event bytes, and round-tripping it through base64-in-JSON
//! pays ~33% size inflation plus a parse, a decode, and a copy on
//! every read. The blob tier stores such payloads as raw binary files
//! with a small fixed header, keyed by the *same* content digests as
//! the envelope tier, so cache-key derivation, gc roots, and the
//! repair-as-miss contract are unchanged — only the bytes on disk are.
//!
//! ## On-disk layout
//!
//! Blob files live beside the envelopes, distinguished by extension:
//!
//! ```text
//! <root>/objects/<k[0..2]>/<k>.blob
//! ```
//!
//! A blob file is a fixed 100-byte header followed by a small *meta*
//! section and the *payload* bytes verbatim:
//!
//! ```text
//! offset  size  field
//!      0     4  magic "CBSB"
//!      4     4  format version (u32 LE, currently 1)
//!      8     1  stage-name length (≤ 15)
//!      9    15  stage name, zero-padded
//!     24    32  key (raw SHA-256; must match the filename)
//!     56    32  checksum: SHA-256 of meta ‖ payload
//!     88     4  meta length (u32 LE)
//!     92     8  payload length (u64 LE)
//!    100     —  meta bytes, then payload bytes
//! ```
//!
//! The *meta* section carries the payload's fixed header fields (event
//! counts, dimensions — whatever the consumer needs to interpret the
//! raw bytes); the *payload* is handed out in its own freshly read
//! buffer, so a consumer like [`crate::TraceCache`] can adopt it as
//! the event buffer directly — no re-encode, no intermediate copy.
//!
//! Corruption — wrong magic, stage or key mismatch, bad lengths,
//! checksum mismatch, truncation, trailing bytes — is detected on read
//! and reported as a typed
//! [`CbspError::ArtifactCorrupt`](cbsp_core::CbspError), never a
//! panic; an unknown format version reports
//! [`CbspError::ArtifactVersionMismatch`](cbsp_core::CbspError).
//! Property-tested over header and payload mutations in
//! `crates/store/tests/blob_props.rs`.

use cbsp_core::CbspError;
use std::io::Read;
use std::path::PathBuf;

use crate::sha256::{to_hex, Sha256};
use crate::store::{ArtifactStore, StageKey};

/// First four bytes of every blob file.
pub const BLOB_MAGIC: [u8; 4] = *b"CBSB";

/// Blob framing version; bump when the header or section layout
/// changes incompatibly.
pub const BLOB_FORMAT_VERSION: u32 = 1;

/// Fixed header size in bytes.
pub const BLOB_HEADER_LEN: usize = 100;

/// Longest stage name the fixed header can hold.
pub const BLOB_STAGE_MAX: usize = 15;

/// A verified blob read: the meta section and the payload, each in its
/// own buffer. The payload buffer is freshly allocated at exactly the
/// payload's length, so consumers can adopt it without copying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blob {
    /// The fixed-field meta section.
    pub meta: Vec<u8>,
    /// The raw payload bytes, verbatim as written.
    pub payload: Vec<u8>,
}

fn corrupt(key: &StageKey, detail: impl Into<String>) -> CbspError {
    CbspError::ArtifactCorrupt {
        key: key.as_hex().to_string(),
        detail: detail.into(),
    }
}

fn io_err(path: &std::path::Path, e: impl std::fmt::Display) -> CbspError {
    CbspError::StoreIo {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

/// Decodes a 64-hex-digit key into its raw 32 bytes.
fn key_bytes(key: &StageKey) -> [u8; 32] {
    let hex = key.as_hex().as_bytes();
    let nib = |c: u8| -> u8 {
        match c {
            b'0'..=b'9' => c - b'0',
            b'a'..=b'f' => c - b'a' + 10,
            b'A'..=b'F' => c - b'A' + 10,
            _ => 0,
        }
    };
    let mut out = [0u8; 32];
    for (i, chunk) in hex.chunks(2).take(32).enumerate() {
        out[i] = (nib(chunk[0]) << 4) | nib(chunk[1]);
    }
    out
}

fn checksum(meta: &[u8], payload: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(meta);
    h.update(payload);
    h.finalize()
}

/// Builds the 100-byte header for (`stage`, `key`, `meta`, `payload`).
///
/// # Panics
///
/// Panics if `stage` exceeds [`BLOB_STAGE_MAX`] bytes or `meta`
/// exceeds `u32::MAX` — both programmer errors, not data corruption.
fn encode_header(
    stage: &str,
    key: &StageKey,
    meta: &[u8],
    payload: &[u8],
) -> [u8; BLOB_HEADER_LEN] {
    assert!(
        stage.len() <= BLOB_STAGE_MAX,
        "blob stage name `{stage}` exceeds {BLOB_STAGE_MAX} bytes"
    );
    let mut h = [0u8; BLOB_HEADER_LEN];
    h[0..4].copy_from_slice(&BLOB_MAGIC);
    h[4..8].copy_from_slice(&BLOB_FORMAT_VERSION.to_le_bytes());
    h[8] = stage.len() as u8;
    h[9..9 + stage.len()].copy_from_slice(stage.as_bytes());
    h[24..56].copy_from_slice(&key_bytes(key));
    h[56..88].copy_from_slice(&checksum(meta, payload));
    h[88..92].copy_from_slice(
        &u32::try_from(meta.len())
            .expect("meta fits u32")
            .to_le_bytes(),
    );
    h[92..100].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    h
}

impl ArtifactStore {
    /// Path of the blob file for `key`.
    pub fn blob_path(&self, key: &StageKey) -> PathBuf {
        self.object_path(key).with_extension("blob")
    }

    /// Whether a blob exists for `key` (without verifying it).
    pub fn contains_blob(&self, key: &StageKey) -> bool {
        self.blob_path(key).is_file()
    }

    /// Stores (`meta`, `payload`) as the blob of (`stage`, `key`).
    /// Returns `true` if newly written, `false` if a blob already
    /// existed (like [`ArtifactStore::put`], content-addressed blobs
    /// only need overwriting to repair corruption).
    ///
    /// # Errors
    ///
    /// Returns [`CbspError::StoreIo`] on filesystem failure.
    pub fn put_blob(
        &self,
        stage: &str,
        key: &StageKey,
        meta: &[u8],
        payload: &[u8],
    ) -> Result<bool, CbspError> {
        if self.contains_blob(key) {
            return Ok(false);
        }
        self.put_blob_overwrite(stage, key, meta, payload)?;
        Ok(true)
    }

    /// Stores the blob unconditionally, replacing any existing file
    /// (used to refresh or to repair a corrupt blob). Write-then-rename
    /// like the envelope tier, so readers never observe a torn file.
    ///
    /// # Errors
    ///
    /// Returns [`CbspError::StoreIo`] on filesystem failure.
    pub fn put_blob_overwrite(
        &self,
        stage: &str,
        key: &StageKey,
        meta: &[u8],
        payload: &[u8],
    ) -> Result<(), CbspError> {
        let _span = cbsp_trace::span_labeled("store/put_blob", || stage.to_string());
        let header = encode_header(stage, key, meta, payload);
        let path = self.blob_path(key);
        let dir = path.parent().expect("blob path has a parent");
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let tmp = path.with_extension(crate::store::tmp_suffix());
        let write = |tmp: &std::path::Path| -> std::io::Result<()> {
            use std::io::Write;
            let mut f = std::io::BufWriter::new(std::fs::File::create(tmp)?);
            f.write_all(&header)?;
            f.write_all(meta)?;
            f.write_all(payload)?;
            f.flush()
        };
        write(&tmp).map_err(|e| io_err(&tmp, e))?;
        std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        cbsp_trace::add(
            "store/blob_bytes_written",
            (BLOB_HEADER_LEN + meta.len() + payload.len()) as u64,
        );
        Ok(())
    }

    /// Retrieves and verifies the blob for (`stage`, `key`).
    ///
    /// Returns `Ok(None)` on a clean miss (no file). The payload is
    /// read with a single allocation sized exactly to the declared
    /// payload length — the buffer handed back *is* the read buffer.
    ///
    /// # Errors
    ///
    /// * [`CbspError::ArtifactCorrupt`] — bad magic, wrong stage/key
    ///   binding, impossible lengths, truncation, trailing bytes, or
    ///   checksum mismatch;
    /// * [`CbspError::ArtifactVersionMismatch`] — blob format version
    ///   from a different build;
    /// * [`CbspError::StoreIo`] — filesystem failure other than
    ///   not-found.
    pub fn get_blob(&self, stage: &str, key: &StageKey) -> Result<Option<Blob>, CbspError> {
        let _span = cbsp_trace::span_labeled("store/get_blob", || stage.to_string());
        let path = self.blob_path(key);
        let mut file = match std::fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err(&path, e)),
        };
        let total = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

        let mut header = [0u8; BLOB_HEADER_LEN];
        file.read_exact(&mut header)
            .map_err(|_| corrupt(key, "blob truncated inside the header"))?;
        if header[0..4] != BLOB_MAGIC {
            return Err(corrupt(key, "bad blob magic"));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if version != BLOB_FORMAT_VERSION {
            return Err(CbspError::ArtifactVersionMismatch {
                key: key.as_hex().to_string(),
                found: version,
                supported: BLOB_FORMAT_VERSION,
            });
        }
        let stage_len = header[8] as usize;
        if stage_len > BLOB_STAGE_MAX {
            return Err(corrupt(key, format!("impossible stage length {stage_len}")));
        }
        let stored_stage = &header[9..9 + stage_len];
        if stored_stage != stage.as_bytes() {
            return Err(corrupt(
                key,
                format!(
                    "stage mismatch: stored for `{}`, requested `{stage}`",
                    String::from_utf8_lossy(stored_stage)
                ),
            ));
        }
        if header[9 + stage_len..24].iter().any(|&b| b != 0) {
            return Err(corrupt(key, "nonzero stage padding"));
        }
        if header[24..56] != key_bytes(key) {
            return Err(corrupt(key, "stored key does not match its filename"));
        }
        let meta_len = u32::from_le_bytes(header[88..92].try_into().expect("4 bytes")) as usize;
        let payload_len = u64::from_le_bytes(header[92..100].try_into().expect("8 bytes"));
        let declared = BLOB_HEADER_LEN as u64 + meta_len as u64 + payload_len;
        if declared != total {
            return Err(corrupt(
                key,
                format!("length mismatch: header declares {declared} bytes, file has {total}"),
            ));
        }
        let payload_len = payload_len as usize;

        let mut meta = vec![0u8; meta_len];
        file.read_exact(&mut meta)
            .map_err(|_| corrupt(key, "blob truncated inside the meta section"))?;
        // The payload buffer is the one we hand out: one allocation,
        // filled directly from the file, adopted by the caller.
        let mut payload = vec![0u8; payload_len];
        file.read_exact(&mut payload)
            .map_err(|_| corrupt(key, "blob truncated inside the payload"))?;
        if header[56..88] != checksum(&meta, &payload) {
            return Err(corrupt(key, "blob checksum mismatch"));
        }
        cbsp_trace::add("store/blob_reads", 1);
        cbsp_trace::add(
            "store/blob_bytes_read",
            (BLOB_HEADER_LEN + meta_len + payload_len) as u64,
        );
        Ok(Some(Blob { meta, payload }))
    }

    /// Removes the *envelope* file for `key` if one exists — the
    /// cleanup half of a legacy-to-blob migration. Removing a file
    /// that is already gone is not an error (a racing migrator won).
    ///
    /// # Errors
    ///
    /// Returns [`CbspError::StoreIo`] on any other filesystem failure.
    pub fn remove_envelope(&self, key: &StageKey) -> Result<(), CbspError> {
        let path = self.object_path(key);
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(&path, e)),
        }
    }
}

/// Derives a subordinate blob key from `parent`: the SHA-256 of
/// `"<parent-hex>/<label>/<index>"`. Used for per-slice blobs hanging
/// off a slice-manifest key — the derivation is deterministic, so the
/// sub-keys never need to be stored, and distinct parents can never
/// collide (their hex digests differ).
pub fn derived_key(parent: &StageKey, label: &str, index: u64) -> StageKey {
    let mut h = Sha256::new();
    h.update(parent.as_hex().as_bytes());
    h.update(b"/");
    h.update(label.as_bytes());
    h.update(b"/");
    h.update(index.to_string().as_bytes());
    StageKey::parse(&to_hex(&h.finalize())).expect("sha256 hex is a valid key")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::stage_key;
    use serde::Value;

    fn temp_store(tag: &str) -> (ArtifactStore, PathBuf) {
        let dir = std::env::temp_dir().join(format!("cbsp-blob-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (ArtifactStore::open(&dir).expect("store opens"), dir)
    }

    fn a_key(n: u64) -> StageKey {
        stage_key("trace", &[Value::UInt(n)])
    }

    #[test]
    fn blob_round_trips_and_is_idempotent() {
        let (store, dir) = temp_store("roundtrip");
        let key = a_key(1);
        let meta = [1u8, 2, 3];
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        assert!(store
            .put_blob("trace", &key, &meta, &payload)
            .expect("puts"));
        assert!(
            !store
                .put_blob("trace", &key, &meta, &payload)
                .expect("noop"),
            "second put of the same key is a no-op"
        );
        let blob = store.get_blob("trace", &key).expect("reads").expect("hit");
        assert_eq!(blob.meta, meta);
        assert_eq!(blob.payload, payload);
        assert!(store.contains_blob(&key));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_miss_is_none() {
        let (store, dir) = temp_store("miss");
        assert_eq!(store.get_blob("trace", &a_key(2)).expect("no error"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_stage_and_version_are_typed() {
        let (store, dir) = temp_store("stage");
        let key = a_key(3);
        store.put_blob("trace", &key, &[], b"xyz").expect("puts");
        let err = store
            .get_blob("trace_slice", &key)
            .expect_err("stage mismatch");
        assert!(matches!(err, CbspError::ArtifactCorrupt { .. }), "{err}");

        // Flip the version field.
        let path = store.blob_path(&key);
        let mut bytes = std::fs::read(&path).expect("blob exists");
        bytes[4] = 99;
        std::fs::write(&path, &bytes).expect("rewrites");
        let err = store.get_blob("trace", &key).expect_err("version mismatch");
        assert!(
            matches!(err, CbspError::ArtifactVersionMismatch { found: 99, .. }),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_and_corruption_are_typed_never_panics() {
        let (store, dir) = temp_store("corrupt");
        let key = a_key(4);
        let payload: Vec<u8> = (0..5000u32).map(|i| i as u8).collect();
        store
            .put_blob("trace", &key, &[7; 20], &payload)
            .expect("puts");
        let path = store.blob_path(&key);
        let pristine = std::fs::read(&path).expect("blob exists");

        // Truncate at every section boundary and a few interior cuts.
        for cut in [
            0,
            10,
            BLOB_HEADER_LEN - 1,
            BLOB_HEADER_LEN,
            BLOB_HEADER_LEN + 10,
            pristine.len() - 1,
        ] {
            std::fs::write(&path, &pristine[..cut]).expect("truncates");
            let err = store.get_blob("trace", &key).expect_err("truncated");
            assert!(
                matches!(err, CbspError::ArtifactCorrupt { .. }),
                "cut {cut}: {err}"
            );
        }
        // Trailing bytes are a length mismatch.
        let mut longer = pristine.clone();
        longer.push(0);
        std::fs::write(&path, &longer).expect("extends");
        let err = store.get_blob("trace", &key).expect_err("trailing");
        assert!(matches!(err, CbspError::ArtifactCorrupt { .. }), "{err}");
        // A flipped payload byte fails the checksum.
        let mut flipped = pristine.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        std::fs::write(&path, &flipped).expect("flips");
        let err = store.get_blob("trace", &key).expect_err("checksum");
        assert!(matches!(err, CbspError::ArtifactCorrupt { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn derived_keys_are_stable_and_distinct() {
        let parent = a_key(5);
        let k0 = derived_key(&parent, "slice", 0);
        let k1 = derived_key(&parent, "slice", 1);
        assert_eq!(k0, derived_key(&parent, "slice", 0), "deterministic");
        assert_ne!(k0, k1);
        assert_ne!(k0, parent);
        assert_eq!(k0.as_hex().len(), 64);
    }
}
