//! # cbsp-store — content-addressed artifacts + incremental pipeline
//!
//! Infrastructure the paper's experiments lean on implicitly: profiling
//! and clustering runs are deterministic functions of their inputs, so
//! their outputs can be cached on disk and shared across CLI runs,
//! benchmark sweeps, and figure regeneration.
//!
//! Two layers:
//!
//! * [`ArtifactStore`] — a content-addressed on-disk store. Artifacts
//!   are keyed by the SHA-256 of a canonical description of their
//!   inputs, written as checksummed, schema-versioned JSON envelopes,
//!   and described by human-readable run manifests. Corruption is
//!   detected on read and reported as a typed
//!   [`CbspError`](cbsp_core::CbspError) — never a panic.
//! * [`Orchestrator`] — the `cbsp-core` pipeline as a five-stage graph
//!   (`profile → mappable → vli → simpoint → map`) with per-stage cache
//!   lookup, key-chained invalidation, and parallel profile collection
//!   across binaries.
//!
//! ## Example
//!
//! ```
//! use cbsp_program::{workloads, compile, CompileTarget, Input, Scale};
//! use cbsp_core::CbspConfig;
//! use cbsp_store::{ArtifactStore, CachePolicy, Orchestrator};
//!
//! let dir = std::env::temp_dir().join(format!("cbsp-store-doc-{}", std::process::id()));
//! let store = ArtifactStore::open(&dir).expect("store opens");
//! let prog = workloads::by_name("swim").expect("in suite").build(Scale::Test);
//! let bins: Vec<_> = CompileTarget::ALL_FOUR.iter().map(|&t| compile(&prog, t)).collect();
//! let refs: Vec<_> = bins.iter().collect();
//! let config = CbspConfig { interval_target: 20_000, ..CbspConfig::default() };
//!
//! let orch = Orchestrator::new(&store, CachePolicy::ReadWrite);
//! let (first, cold) = orch
//!     .run_cross_binary(&refs, &Input::test(), &config, "swim/test")
//!     .expect("pipeline runs");
//! let (second, warm) = orch
//!     .run_cross_binary(&refs, &Input::test(), &config, "swim/test")
//!     .expect("pipeline runs");
//! assert_eq!(first, second);
//! assert_eq!(cold.hits(), 0);
//! assert_eq!(warm.misses(), 0);
//! std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod blob;
pub mod orchestrator;
pub mod sha256;
pub mod store;
pub mod traces;

pub use blob::{
    derived_key, Blob, BLOB_FORMAT_VERSION, BLOB_HEADER_LEN, BLOB_MAGIC, BLOB_STAGE_MAX,
};
pub use orchestrator::{
    pipeline_keys, stage_namespaces, CachePolicy, Orchestrator, PipelineKeys, RunReport,
    StageNamespaces, StageOutcome, STAGE_ORDER,
};
pub use sha256::{hex_digest, Sha256};
pub use store::{
    canonical_json, content_hash, key_part, stage_key, ArtifactStore, GcReport, ManifestStage,
    RunManifest, StageKey, StageStats, StoreStats, SCHEMA_VERSION,
};
pub use traces::{
    migrate_store, prefetch_disabled, put_slices_legacy, put_trace_legacy, slicing_disabled,
    trace_key, trace_slice_key, CpiEstimate, MigrateReport, TraceCache, TRACE_SLICE_STAGE,
    TRACE_STAGE,
};
