//! The content-addressed on-disk artifact store.
//!
//! Every pipeline artifact is stored under a [`StageKey`] — the SHA-256
//! of a canonical JSON document naming the stage, the schema version,
//! and every input that determines the artifact (source program,
//! target/opt configuration, stage configuration). Identical inputs
//! always map to the same key, so cache lookup is a pure function of
//! the work description and invalidation is automatic: changing any
//! input changes the key, and the old artifact simply stops being
//! referenced.
//!
//! ## On-disk layout
//!
//! ```text
//! <root>/objects/<k[0..2]>/<k>.json   checksummed artifact envelopes
//! <root>/objects/<k[0..2]>/<k>.blob   binary blob tier (see [`crate::blob`])
//! <root>/manifests/<run>.json         human-readable run manifests
//! ```
//!
//! An artifact file is a JSON envelope:
//!
//! ```text
//! { "schema": 1, "stage": "vli", "key": "<64 hex>",
//!   "checksum": "<sha256 of canonical payload>", "payload": ... }
//! ```
//!
//! `get` re-serializes the parsed payload canonically and compares its
//! SHA-256 with the stored checksum, so truncation or on-disk
//! modification is detected and reported as a typed
//! [`CbspError::ArtifactCorrupt`] — never a panic, and never silently
//! wrong data.

use cbsp_core::CbspError;
use serde::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use crate::sha256::hex_digest;

/// Artifact schema version; bump when envelope or payload encodings
/// change incompatibly.
///
/// v2: `SimPoint` gained a `share` field and `VliProfile` a `mavs`
/// field (estimator lanes); v1 payloads no longer deserialize.
///
/// v3: fuzzy cross-binary mapping — `MappedSlicing` gained an optional
/// `mappings` table (omitted when empty, so exact-lane payload *bytes*
/// are unchanged from v2) and fuzzy lanes store under `@fuzzy`
/// namespaces. The version bump keeps pre-fuzzy readers from
/// misinterpreting fuzzy artifacts (e.g. sentinel boundaries).
pub const SCHEMA_VERSION: u32 = 3;

/// A content key: the SHA-256 (hex) of a stage's canonical input
/// description.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StageKey(String);

impl StageKey {
    /// The full 64-hex-digit key.
    pub fn as_hex(&self) -> &str {
        &self.0
    }

    /// Shortened prefix for display.
    pub fn short(&self) -> &str {
        &self.0[..12]
    }

    /// Re-admits a 64-hex-digit digest as a key. Keys are normally
    /// *derived* ([`stage_key`]), but migration and blob sub-keys need
    /// to reconstruct one from an existing on-disk digest. Returns
    /// `None` unless `hex` is exactly 64 lowercase-hex digits.
    pub fn parse(hex: &str) -> Option<StageKey> {
        let valid = hex.len() == 64
            && hex
                .bytes()
                .all(|c| c.is_ascii_digit() || (b'a'..=b'f').contains(&c));
        valid.then(|| StageKey(hex.to_string()))
    }
}

impl fmt::Display for StageKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Canonical compact JSON of any serializable value (the byte string
/// all hashes are computed over).
pub fn canonical_json<T: serde::Serialize + ?Sized>(value: &T) -> String {
    serde_json::to_string(value).expect("serialization to a string cannot fail")
}

/// SHA-256 (hex) of a value's canonical JSON — used to identify stage
/// *inputs* (binaries, workloads) inside key documents.
pub fn content_hash<T: serde::Serialize + ?Sized>(value: &T) -> String {
    hex_digest(canonical_json(value).as_bytes())
}

/// Derives the [`StageKey`] for `stage` from the canonical description
/// of everything that determines its output.
///
/// `inputs` should hold one entry per determining input, either a
/// content hash string (for large inputs like binaries) or the
/// serialized configuration itself (for small configs) — see
/// [`key_part`].
pub fn stage_key(stage: &str, inputs: &[Value]) -> StageKey {
    let doc = Value::Object(vec![
        ("schema".to_string(), Value::UInt(u64::from(SCHEMA_VERSION))),
        ("stage".to_string(), Value::Str(stage.to_string())),
        ("inputs".to_string(), Value::Array(inputs.to_vec())),
    ]);
    StageKey(hex_digest(canonical_json(&doc).as_bytes()))
}

/// Converts any serializable value into a key-document part.
pub fn key_part<T: serde::Serialize>(value: &T) -> Value {
    serde_json::to_value(value).expect("serialization to a value cannot fail")
}

/// Per-stage usage in [`StoreStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StageStats {
    /// Number of artifacts of this stage.
    pub artifacts: u64,
    /// Total bytes of their envelope files.
    pub bytes: u64,
}

/// A snapshot of the store's disk usage.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StoreStats {
    /// Total artifact count.
    pub artifacts: u64,
    /// Total bytes across artifact files.
    pub bytes: u64,
    /// Number of run manifests.
    pub manifests: u64,
    /// Per-stage breakdown, keyed by stage name.
    pub per_stage: BTreeMap<String, StageStats>,
    /// Per-format breakdown (`json` envelopes vs `blob` files), so
    /// `cache stats` reports both tiers and gc reports don't silently
    /// miss one.
    pub per_format: BTreeMap<String, StageStats>,
}

/// Result of a [`ArtifactStore::gc`] sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Artifacts removed (unreferenced by any manifest).
    pub removed: u64,
    /// Bytes reclaimed.
    pub reclaimed_bytes: u64,
    /// Artifacts kept (referenced).
    pub kept: u64,
}

/// One stage record inside a [`RunManifest`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ManifestStage {
    /// Stage name (`profile`, `mappable`, `vli`, `simpoint`, `map`).
    pub stage: String,
    /// Display label (e.g. which binary a profile covers).
    pub label: String,
    /// The artifact's content key.
    pub key: String,
    /// Whether this run served the stage from the store.
    pub hit: bool,
}

/// A human-readable record of one orchestrated run: which artifacts it
/// produced or reused. Manifests are what `gc` treats as roots.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RunManifest {
    /// Envelope schema version the run wrote.
    pub schema: u32,
    /// Key identifying the run (hash over its stage keys).
    pub run_key: String,
    /// What was analyzed (program, input, targets).
    pub description: String,
    /// Seconds since the Unix epoch when the run finished.
    pub finished_unix: u64,
    /// Stage-by-stage artifact keys and hit/miss outcomes.
    pub stages: Vec<ManifestStage>,
}

/// The content-addressed artifact store rooted at one directory.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: PathBuf,
}

/// A tmp-file suffix unique per process *and* per in-process writer, so
/// concurrent writers of the same key never rename each other's file
/// out from under themselves.
pub(crate) fn tmp_suffix() -> String {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    format!(
        "tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    )
}

fn io_err(path: &Path, e: impl fmt::Display) -> CbspError {
    CbspError::StoreIo {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

fn corrupt(key: &StageKey, detail: impl Into<String>) -> CbspError {
    CbspError::ArtifactCorrupt {
        key: key.as_hex().to_string(),
        detail: detail.into(),
    }
}

/// Reads the stage name out of a blob file's fixed header — best-effort
/// attribution for stats; a malformed header yields `None` (the file
/// still counts toward totals, under `<unknown>`).
fn read_blob_stage(path: &Path) -> Option<String> {
    use std::io::Read;
    let mut header = [0u8; 24];
    std::fs::File::open(path)
        .ok()?
        .read_exact(&mut header)
        .ok()?;
    if header[0..4] != crate::blob::BLOB_MAGIC {
        return None;
    }
    let len = header[8] as usize;
    if len > crate::blob::BLOB_STAGE_MAX {
        return None;
    }
    String::from_utf8(header[9..9 + len].to_vec()).ok()
}

impl ArtifactStore {
    /// Opens (creating if necessary) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`CbspError::StoreIo`] if the directories cannot be
    /// created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, CbspError> {
        let root = root.into();
        for sub in ["objects", "manifests"] {
            let dir = root.join(sub);
            std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        }
        Ok(ArtifactStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the artifact file for `key`.
    pub fn object_path(&self, key: &StageKey) -> PathBuf {
        self.root
            .join("objects")
            .join(&key.as_hex()[..2])
            .join(format!("{}.json", key.as_hex()))
    }

    /// Whether an artifact exists for `key` (without verifying it).
    pub fn contains(&self, key: &StageKey) -> bool {
        self.object_path(key).is_file()
    }

    /// Stores `value` as the artifact of (`stage`, `key`). Returns
    /// `true` if the artifact was newly written, `false` if an entry
    /// already existed (content-addressed stores never need to
    /// overwrite a present key except to repair corruption — pass
    /// `overwrite` via [`ArtifactStore::put_overwrite`] for that).
    ///
    /// # Errors
    ///
    /// Returns [`CbspError::StoreIo`] on filesystem failure.
    pub fn put<T: serde::Serialize>(
        &self,
        stage: &str,
        key: &StageKey,
        value: &T,
    ) -> Result<bool, CbspError> {
        if self.contains(key) {
            return Ok(false);
        }
        self.put_overwrite(stage, key, value)?;
        Ok(true)
    }

    /// Stores `value` unconditionally, replacing any existing artifact
    /// (used to refresh or to repair a corrupt file).
    ///
    /// # Errors
    ///
    /// Returns [`CbspError::StoreIo`] on filesystem failure.
    pub fn put_overwrite<T: serde::Serialize>(
        &self,
        stage: &str,
        key: &StageKey,
        value: &T,
    ) -> Result<(), CbspError> {
        let _span = cbsp_trace::span_labeled("store/put", || stage.to_string());
        let payload = serde_json::to_value(value).expect("serialization cannot fail");
        let checksum = hex_digest(canonical_json(&payload).as_bytes());
        let envelope = Value::Object(vec![
            ("schema".to_string(), Value::UInt(u64::from(SCHEMA_VERSION))),
            ("stage".to_string(), Value::Str(stage.to_string())),
            ("key".to_string(), Value::Str(key.as_hex().to_string())),
            ("checksum".to_string(), Value::Str(checksum)),
            ("payload".to_string(), payload),
        ]);
        let text = serde_json::to_string(&envelope).expect("serialization cannot fail");
        let path = self.object_path(key);
        let dir = path.parent().expect("object path has a parent");
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        // Write-then-rename so readers never observe a torn file, and
        // concurrent writers of the same key settle on identical
        // content.
        let tmp = path.with_extension(tmp_suffix());
        std::fs::write(&tmp, &text).map_err(|e| io_err(&tmp, e))?;
        std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        cbsp_trace::add("store/bytes_written", text.len() as u64);
        Ok(())
    }

    /// Retrieves and verifies the artifact for (`stage`, `key`).
    ///
    /// Returns `Ok(None)` on a clean miss (no file).
    ///
    /// # Errors
    ///
    /// * [`CbspError::ArtifactCorrupt`] — unparseable envelope, wrong
    ///   stage/key binding, checksum mismatch, or undecodable payload;
    /// * [`CbspError::ArtifactVersionMismatch`] — schema version from a
    ///   different build;
    /// * [`CbspError::StoreIo`] — filesystem failure other than
    ///   not-found.
    pub fn get<T: serde::de::DeserializeOwned>(
        &self,
        stage: &str,
        key: &StageKey,
    ) -> Result<Option<T>, CbspError> {
        let _span = cbsp_trace::span_labeled("store/get", || stage.to_string());
        let path = self.object_path(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err(&path, e)),
        };
        cbsp_trace::add("store/bytes_read", text.len() as u64);
        let envelope: Value = serde_json::parse(&text)
            .map_err(|e| corrupt(key, format!("unparseable envelope: {e}")))?;
        let fields = envelope
            .as_object()
            .ok_or_else(|| corrupt(key, "envelope is not an object"))?;
        let field = |name: &str| -> Result<&Value, CbspError> {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| corrupt(key, format!("envelope is missing `{name}`")))
        };

        let schema = match field("schema")? {
            Value::UInt(v) => *v as u32,
            _ => return Err(corrupt(key, "schema is not an integer")),
        };
        if schema != SCHEMA_VERSION {
            return Err(CbspError::ArtifactVersionMismatch {
                key: key.as_hex().to_string(),
                found: schema,
                supported: SCHEMA_VERSION,
            });
        }
        match field("stage")? {
            Value::Str(s) if s == stage => {}
            Value::Str(s) => {
                return Err(corrupt(
                    key,
                    format!("stage mismatch: stored for `{s}`, requested `{stage}`"),
                ))
            }
            _ => return Err(corrupt(key, "stage is not a string")),
        }
        match field("key")? {
            Value::Str(s) if s == key.as_hex() => {}
            _ => return Err(corrupt(key, "stored key does not match its filename")),
        }
        let checksum = match field("checksum")? {
            Value::Str(s) => s.clone(),
            _ => return Err(corrupt(key, "checksum is not a string")),
        };
        let payload = field("payload")?;
        let actual = hex_digest(canonical_json(payload).as_bytes());
        if actual != checksum {
            return Err(corrupt(
                key,
                format!("checksum mismatch: stored {checksum}, computed {actual}"),
            ));
        }
        let value = serde_json::from_value::<T>(payload.clone())
            .map_err(|e| corrupt(key, format!("payload does not decode: {e}")))?;
        Ok(Some(value))
    }

    /// Writes a run manifest (named by its run key).
    ///
    /// # Errors
    ///
    /// Returns [`CbspError::StoreIo`] on filesystem failure.
    pub fn write_manifest(&self, manifest: &RunManifest) -> Result<PathBuf, CbspError> {
        let path = self
            .root
            .join("manifests")
            .join(format!("{}.json", manifest.run_key));
        let text = serde_json::to_string_pretty(manifest).expect("serialization cannot fail");
        let tmp = path.with_extension(tmp_suffix());
        std::fs::write(&tmp, &text).map_err(|e| io_err(&tmp, e))?;
        std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        Ok(path)
    }

    /// Reads all run manifests (unparseable ones are skipped: they
    /// cannot serve as gc roots, which only makes gc more aggressive,
    /// never wrong).
    ///
    /// # Errors
    ///
    /// Returns [`CbspError::StoreIo`] if the manifest directory cannot
    /// be listed.
    pub fn manifests(&self) -> Result<Vec<RunManifest>, CbspError> {
        let dir = self.root.join("manifests");
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&dir).map_err(|e| io_err(&dir, e))? {
            let entry = entry.map_err(|e| io_err(&dir, e))?;
            let path = entry.path();
            if path.extension().is_none_or(|e| e != "json") {
                continue;
            }
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            if let Ok(m) = serde_json::from_str::<RunManifest>(&text) {
                out.push(m);
            }
        }
        out.sort_by_key(|m| m.finished_unix);
        Ok(out)
    }

    fn walk_objects(
        &self,
        mut visit: impl FnMut(&Path, u64, Option<&str>, &str),
    ) -> Result<(), CbspError> {
        let objects = self.root.join("objects");
        for shard in std::fs::read_dir(&objects).map_err(|e| io_err(&objects, e))? {
            let shard = shard.map_err(|e| io_err(&objects, e))?.path();
            if !shard.is_dir() {
                continue;
            }
            for entry in std::fs::read_dir(&shard).map_err(|e| io_err(&shard, e))? {
                let path = entry.map_err(|e| io_err(&shard, e))?.path();
                let format = match path.extension().and_then(|e| e.to_str()) {
                    Some("json") => "json",
                    Some("blob") => "blob",
                    _ => continue,
                };
                let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                // Best-effort stage attribution for stats; a file that
                // doesn't parse still counts toward totals. Blob stage
                // names sit in the fixed header — no JSON parse needed.
                let stage = if format == "blob" {
                    read_blob_stage(&path)
                } else {
                    std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|text| serde_json::parse(&text).ok())
                        .and_then(|v| {
                            v.as_object().and_then(|fields| {
                                fields
                                    .iter()
                                    .find(|(k, _)| k == "stage")
                                    .and_then(|(_, v)| match v {
                                        Value::Str(s) => Some(s.clone()),
                                        _ => None,
                                    })
                            })
                        })
                };
                visit(&path, bytes, stage.as_deref(), format);
            }
        }
        Ok(())
    }

    /// Enumerates `(stage, key)` for every artifact stored in `format`
    /// (`"json"` or `"blob"`) — the worklist a migration sweeps over.
    /// Files whose stage cannot be attributed or whose name is not a
    /// valid key are skipped (they cannot be migrated mechanically and
    /// will be repaired on use instead).
    ///
    /// # Errors
    ///
    /// Returns [`CbspError::StoreIo`] if the store cannot be listed.
    pub fn keys_in_format(&self, format: &str) -> Result<Vec<(String, StageKey)>, CbspError> {
        let mut out = Vec::new();
        self.walk_objects(|path, _, stage, fmt| {
            if fmt != format {
                return;
            }
            let key = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(StageKey::parse);
            if let (Some(stage), Some(key)) = (stage, key) {
                out.push((stage.to_string(), key));
            }
        })?;
        out.sort();
        Ok(out)
    }

    /// Disk-usage statistics for `cache stats`.
    ///
    /// # Errors
    ///
    /// Returns [`CbspError::StoreIo`] if the store cannot be listed.
    pub fn stats(&self) -> Result<StoreStats, CbspError> {
        let mut stats = StoreStats::default();
        self.walk_objects(|_, bytes, stage, format| {
            stats.artifacts += 1;
            stats.bytes += bytes;
            let entry = stats
                .per_stage
                .entry(stage.unwrap_or("<unknown>").to_string())
                .or_default();
            entry.artifacts += 1;
            entry.bytes += bytes;
            let fmt = stats.per_format.entry(format.to_string()).or_default();
            fmt.artifacts += 1;
            fmt.bytes += bytes;
        })?;
        stats.manifests = self.manifests()?.len() as u64;
        Ok(stats)
    }

    /// Removes every artifact not referenced by any run manifest.
    ///
    /// # Errors
    ///
    /// Returns [`CbspError::StoreIo`] if the store cannot be listed.
    pub fn gc(&self) -> Result<GcReport, CbspError> {
        let mut referenced = std::collections::BTreeSet::new();
        for manifest in self.manifests()? {
            for stage in &manifest.stages {
                referenced.insert(stage.key.clone());
            }
        }
        let mut report = GcReport::default();
        let mut doomed: Vec<PathBuf> = Vec::new();
        self.walk_objects(|path, bytes, _, _| {
            let key = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("")
                .to_string();
            if referenced.contains(&key) {
                report.kept += 1;
            } else {
                report.removed += 1;
                report.reclaimed_bytes += bytes;
                doomed.push(path.to_path_buf());
            }
        })?;
        for path in doomed {
            std::fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
        }
        cbsp_trace::add("store/evicted", report.removed);
        cbsp_trace::add("store/evicted_bytes", report.reclaimed_bytes);
        Ok(report)
    }
}
