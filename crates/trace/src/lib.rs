//! # cbsp-trace — pipeline observability
//!
//! Zero-dependency (std-only) instrumentation layer for the CBSP
//! pipeline: thread-safe span timers with hierarchical
//! `stage/substage` names, monotonic counters, gauges, and two
//! exporters — Chrome trace-event JSON (loadable in `chrome://tracing`
//! or Perfetto) and a flat machine-readable `metrics.json` snapshot.
//!
//! ## Overhead contract
//!
//! Tracing is **disabled by default**. Every instrumentation entry
//! point ([`span`], [`add`], [`gauge`]) starts with a single relaxed
//! atomic load; when tracing is disabled that is the *entire* cost —
//! no allocation, no lock, no clock read. Instrumentation never
//! branches on pipeline data, so enabling it cannot change any
//! computed result: the 1-vs-8-thread byte-identical determinism
//! guarantees hold with tracing on or off.
//!
//! ## Model
//!
//! - **Spans** measure wall-clock duration of a named scope. A span is
//!   recorded when its guard drops, tagged with a small sequential id
//!   for the recording thread. Names are `'static` hierarchical paths
//!   (`"stage/profile"`, `"pool/job"`); an optional per-instance label
//!   carries dynamic context (a binary name, a store stage key).
//! - **Counters** are monotonic `u64` sums merged under one lock;
//!   concurrent increments from pool workers are safe and total
//!   correctly (see the counter-merge tests in `cbsp-par`).
//! - **Gauges** are last-write-wins `f64` observations.
//!
//! ## Exporters
//!
//! [`chrome_trace_json`] emits `{"traceEvents": [...]}` with complete
//! (`"ph": "X"`) events in microseconds relative to the collector
//! epoch. [`metrics_json`] emits `{schema, counters, gauges, spans}`
//! where `spans` aggregates per-name `{count, total_ns}`. Both are
//! plain strings; callers decide where to write them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Global on/off switch. One relaxed load on every instrumentation
/// call; everything else is behind it.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Returns whether tracing is currently enabled.
///
/// Use this to skip *preparing* expensive span labels; the
/// instrumentation entry points all perform this check themselves.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns tracing on. Events recorded after this call are kept until
/// [`reset`].
pub fn enable() {
    state(); // materialize the collector (and its epoch) eagerly
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns tracing off. Already-recorded data is retained and still
/// exportable; in-flight span guards created while enabled will still
/// record on drop.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Clears all recorded events, counters and gauges, and restarts the
/// trace epoch. Does not change the enabled flag.
pub fn reset() {
    let st = state();
    st.events.lock().expect("trace events lock").clear();
    st.counters.lock().expect("trace counters lock").clear();
    st.gauges.lock().expect("trace gauges lock").clear();
    *st.epoch.lock().expect("trace epoch lock") = Instant::now();
}

/// One completed span occurrence.
struct Event {
    name: &'static str,
    label: Option<String>,
    tid: u64,
    start_ns: u64,
    dur_ns: u64,
}

/// The global collector. Lives behind a `OnceLock`; all mutation is
/// mutex-guarded so recording is safe from any pool worker.
struct State {
    epoch: Mutex<Instant>,
    events: Mutex<Vec<Event>>,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
}

fn state() -> &'static State {
    static STATE: OnceLock<State> = OnceLock::new();
    STATE.get_or_init(|| State {
        epoch: Mutex::new(Instant::now()),
        events: Mutex::new(Vec::new()),
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
    })
}

/// Small sequential id for the calling thread (1, 2, 3, ... in first
/// instrumentation-call order). Chrome trace `tid`s stay readable this
/// way, unlike the opaque 64-bit OS thread ids.
fn thread_tag() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TAG: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TAG.with(|t| *t)
}

/// RAII span guard: records a completed event when dropped. A no-op
/// (and allocation-free) when tracing was disabled at creation.
#[must_use = "a span measures the scope it lives in; binding it to _ drops it immediately"]
pub struct Span {
    rec: Option<SpanRec>,
}

struct SpanRec {
    name: &'static str,
    label: Option<String>,
    start: Instant,
}

/// Starts a span with a static hierarchical name, e.g.
/// `"stage/simpoint"`.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { rec: None };
    }
    Span {
        rec: Some(SpanRec {
            name,
            label: None,
            start: Instant::now(),
        }),
    }
}

/// Starts a span with a dynamic label. The label closure only runs
/// when tracing is enabled, so formatting costs nothing when off.
#[inline]
pub fn span_labeled<F: FnOnce() -> String>(name: &'static str, label: F) -> Span {
    if !enabled() {
        return Span { rec: None };
    }
    Span {
        rec: Some(SpanRec {
            name,
            label: Some(label()),
            start: Instant::now(),
        }),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(rec) = self.rec.take() else { return };
        let dur_ns = saturating_ns(rec.start.elapsed().as_nanos());
        let st = state();
        let epoch = *st.epoch.lock().expect("trace epoch lock");
        // `duration_since` saturates to zero if a reset() moved the
        // epoch past this span's start.
        let start_ns = saturating_ns(rec.start.duration_since(epoch).as_nanos());
        st.events.lock().expect("trace events lock").push(Event {
            name: rec.name,
            label: rec.label,
            tid: thread_tag(),
            start_ns,
            dur_ns,
        });
    }
}

fn saturating_ns(ns: u128) -> u64 {
    u64::try_from(ns).unwrap_or(u64::MAX)
}

/// Adds `delta` to the named monotonic counter. No-op when tracing is
/// disabled or `delta` is zero.
#[inline]
pub fn add(name: &str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    let mut counters = state().counters.lock().expect("trace counters lock");
    match counters.get_mut(name) {
        Some(v) => *v = v.saturating_add(delta),
        None => {
            counters.insert(name.to_string(), delta);
        }
    }
}

/// Records a last-write-wins gauge observation. No-op when disabled.
#[inline]
pub fn gauge(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    state()
        .gauges
        .lock()
        .expect("trace gauges lock")
        .insert(name.to_string(), value);
}

/// Aggregate of all occurrences of one span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanTotal {
    /// Number of recorded occurrences.
    pub count: u64,
    /// Sum of recorded durations, nanoseconds.
    pub total_ns: u64,
}

/// Point-in-time copy of the collector's aggregates, in plain
/// `BTreeMap`s so downstream crates can embed them with whatever
/// serializer they use.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Per-span-name totals.
    pub spans: BTreeMap<String, SpanTotal>,
}

/// Takes a snapshot of current counters, gauges, and span totals.
pub fn snapshot() -> Snapshot {
    let st = state();
    let counters = st.counters.lock().expect("trace counters lock").clone();
    let gauges = st.gauges.lock().expect("trace gauges lock").clone();
    let mut spans: BTreeMap<String, SpanTotal> = BTreeMap::new();
    for ev in st.events.lock().expect("trace events lock").iter() {
        let slot = spans.entry(ev.name.to_string()).or_insert(SpanTotal {
            count: 0,
            total_ns: 0,
        });
        slot.count += 1;
        slot.total_ns = slot.total_ns.saturating_add(ev.dur_ns);
    }
    Snapshot {
        counters,
        gauges,
        spans,
    }
}

// ---------------------------------------------------------------------
// Exporters (hand-written JSON; this crate stays std-only)
// ---------------------------------------------------------------------

/// Escapes `s` as the body of a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_str_value(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s);
    out.push('"');
}

/// Formats an `f64` so it parses back as a JSON *float* (a trailing
/// `.0` is kept for integral values); non-finite values become `null`.
fn push_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{v:.1}");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Renders all recorded spans as a Chrome trace-event JSON document:
/// `{"traceEvents": [...], "displayTimeUnit": "ms"}` with complete
/// (`"ph": "X"`) events, timestamps in microseconds since the trace
/// epoch. Load the output in `chrome://tracing` or
/// <https://ui.perfetto.dev>.
pub fn chrome_trace_json() -> String {
    let st = state();
    let events = st.events.lock().expect("trace events lock");
    let mut indices: Vec<usize> = (0..events.len()).collect();
    indices.sort_by_key(|&i| (events[i].start_ns, events[i].tid));

    let mut out = String::with_capacity(256 + events.len() * 128);
    out.push_str("{\"traceEvents\":[");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"cbsp\"}}",
    );
    for &i in &indices {
        let ev = &events[i];
        out.push(',');
        out.push_str("{\"name\":");
        push_str_value(&mut out, ev.name);
        out.push_str(",\"cat\":\"cbsp\",\"ph\":\"X\",\"pid\":1,\"tid\":");
        let _ = write!(out, "{}", ev.tid);
        out.push_str(",\"ts\":");
        push_f64(&mut out, ev.start_ns as f64 / 1000.0);
        out.push_str(",\"dur\":");
        push_f64(&mut out, ev.dur_ns as f64 / 1000.0);
        if let Some(label) = &ev.label {
            out.push_str(",\"args\":{\"label\":");
            push_str_value(&mut out, label);
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Renders the current [`Snapshot`] as flat machine-readable JSON:
/// `{"schema": 1, "counters": {...}, "gauges": {...}, "spans":
/// {"name": {"count": n, "total_ns": n}, ...}}`.
pub fn metrics_json() -> String {
    snapshot().to_json()
}

impl Snapshot {
    /// Serializes this snapshot in the `metrics.json` format.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"schema\":1,\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str_value(&mut out, name);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str_value(&mut out, name);
            out.push(':');
            push_f64(&mut out, *v);
        }
        out.push_str("},\"spans\":{");
        for (i, (name, t)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str_value(&mut out, name);
            let _ = write!(
                out,
                ":{{\"count\":{},\"total_ns\":{}}}",
                t.count, t.total_ns
            );
        }
        out.push_str("}}");
        out
    }
}

/// Guard + helpers for tests that manipulate the global collector.
///
/// The collector is process-global, and Rust runs `#[test]`s in one
/// binary concurrently; tests that enable/reset tracing must hold this
/// lock for their whole body or they will observe each other's events.
/// Poisoning is ignored: a failed test must not cascade.
pub fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert_and_allocation_free() {
        let _guard = test_lock();
        disable();
        reset();
        {
            let s = span("stage/test");
            assert!(s.rec.is_none(), "no record captured while disabled");
        }
        let _ = span_labeled("stage/test", || unreachable!("label closure must not run"));
        add("counter/test", 5);
        gauge("gauge/test", 1.5);
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn records_spans_counters_gauges() {
        let _guard = test_lock();
        enable();
        reset();
        {
            let _outer = span("stage/outer");
            let _inner = span_labeled("stage/inner", || "gcc".to_string());
        }
        add("pipeline/intervals_produced", 7);
        add("pipeline/intervals_produced", 3);
        gauge("pipeline/dims", 15.0);
        let snap = snapshot();
        disable();
        reset();
        assert_eq!(snap.counters["pipeline/intervals_produced"], 10);
        assert_eq!(snap.gauges["pipeline/dims"], 15.0);
        assert_eq!(snap.spans["stage/outer"].count, 1);
        assert_eq!(snap.spans["stage/inner"].count, 1);
        // Inner closed first, so outer's duration dominates.
        assert!(snap.spans["stage/outer"].total_ns >= snap.spans["stage/inner"].total_ns);
    }

    #[test]
    fn zero_delta_add_does_not_create_counter() {
        let _guard = test_lock();
        enable();
        reset();
        add("counter/zero", 0);
        let snap = snapshot();
        disable();
        reset();
        assert!(!snap.counters.contains_key("counter/zero"));
    }

    #[test]
    fn json_escaping_handles_special_characters() {
        let mut out = String::new();
        push_str_value(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn f64_formatting_round_trips_as_float() {
        let mut out = String::new();
        push_f64(&mut out, 2.0);
        assert_eq!(out, "2.0");
        out.clear();
        push_f64(&mut out, 0.125);
        assert_eq!(out, "0.125");
        out.clear();
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn chrome_trace_shape_is_stable() {
        let _guard = test_lock();
        enable();
        reset();
        {
            let _s = span_labeled("stage/compile", || "O0".to_string());
        }
        let json = chrome_trace_json();
        disable();
        reset();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"stage/compile\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"args\":{\"label\":\"O0\"}"));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn metrics_json_shape_is_stable() {
        let _guard = test_lock();
        enable();
        reset();
        add("store/hits", 2);
        gauge("pool/threads", 8.0);
        {
            let _s = span("stage/map");
        }
        let json = metrics_json();
        disable();
        reset();
        assert!(json.starts_with("{\"schema\":1,\"counters\":{"));
        assert!(json.contains("\"store/hits\":2"));
        assert!(json.contains("\"pool/threads\":8.0"));
        assert!(json.contains("\"stage/map\":{\"count\":1,\"total_ns\":"));
    }

    #[test]
    fn concurrent_counter_adds_merge_exactly() {
        let _guard = test_lock();
        enable();
        reset();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        add("test/merge", 1);
                    }
                });
            }
        });
        let snap = snapshot();
        disable();
        reset();
        assert_eq!(snap.counters["test/merge"], 8000);
    }

    #[test]
    fn reset_restarts_epoch_and_clears() {
        let _guard = test_lock();
        enable();
        reset();
        add("a", 1);
        {
            let _s = span("b");
        }
        reset();
        let snap = snapshot();
        disable();
        reset();
        assert!(snap.counters.is_empty());
        assert!(snap.spans.is_empty());
    }
}
