//! Round-trip tests: the hand-written JSON emitters must produce
//! documents the workspace JSON parser accepts, and the parsed trees
//! must reconstruct the snapshot exactly.

use serde_json::Value;

fn get<'a>(v: &'a Value, key: &str) -> &'a Value {
    let pairs = v.as_object().expect("object");
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("missing key `{key}`"))
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::UInt(n) => *n,
        other => panic!("expected unsigned integer, got {other:?}"),
    }
}

fn populate() -> cbsp_trace::Snapshot {
    cbsp_trace::enable();
    cbsp_trace::reset();
    {
        let _compile = cbsp_trace::span_labeled("stage/compile", || "gcc \"quoted\\path\"".into());
        let _inner = cbsp_trace::span("pool/job");
    }
    {
        let _profile = cbsp_trace::span("stage/profile");
    }
    cbsp_trace::add("store/hits", 3);
    cbsp_trace::add("store/misses", 1);
    cbsp_trace::add("pool/queue_wait_ns", 12_345);
    cbsp_trace::gauge("pool/threads", 8.0);
    cbsp_trace::gauge("pipeline/ratio", 0.625);
    cbsp_trace::snapshot()
}

#[test]
fn metrics_json_round_trips_through_parser() {
    let _guard = cbsp_trace::test_lock();
    let snap = populate();
    let json = cbsp_trace::metrics_json();
    cbsp_trace::disable();
    cbsp_trace::reset();

    let doc = serde_json::parse(&json).expect("metrics.json must be valid JSON");
    assert_eq!(as_u64(get(&doc, "schema")), 1);

    // Counters reconstruct exactly.
    let counters = get(&doc, "counters").as_object().unwrap();
    assert_eq!(counters.len(), snap.counters.len());
    for (name, expect) in &snap.counters {
        let got = counters.iter().find(|(k, _)| k == name).expect("counter");
        assert_eq!(as_u64(&got.1), *expect, "counter {name}");
    }

    // Gauges reconstruct exactly, and parse back as floats.
    let gauges = get(&doc, "gauges").as_object().unwrap();
    assert_eq!(gauges.len(), snap.gauges.len());
    for (name, expect) in &snap.gauges {
        match gauges.iter().find(|(k, _)| k == name) {
            Some((_, Value::Float(f))) => assert_eq!(f, expect, "gauge {name}"),
            other => panic!("gauge {name} parsed as {other:?}"),
        }
    }

    // Span totals reconstruct exactly.
    let spans = get(&doc, "spans").as_object().unwrap();
    assert_eq!(spans.len(), snap.spans.len());
    for (name, expect) in &snap.spans {
        let (_, entry) = spans.iter().find(|(k, _)| k == name).expect("span");
        assert_eq!(as_u64(get(entry, "count")), expect.count, "span {name}");
        assert_eq!(
            as_u64(get(entry, "total_ns")),
            expect.total_ns,
            "span {name}"
        );
    }
}

#[test]
fn chrome_trace_round_trips_through_parser() {
    let _guard = cbsp_trace::test_lock();
    let snap = populate();
    let json = cbsp_trace::chrome_trace_json();
    cbsp_trace::disable();
    cbsp_trace::reset();

    let doc = serde_json::parse(&json).expect("chrome trace must be valid JSON");
    let events = get(&doc, "traceEvents").as_array().unwrap();

    // One metadata record plus one complete event per span occurrence.
    let expected: u64 = snap.spans.values().map(|t| t.count).sum();
    let complete: Vec<&Value> = events
        .iter()
        .filter(|e| matches!(get(e, "ph"), Value::Str(s) if s == "X"))
        .collect();
    assert_eq!(complete.len() as u64, expected);
    assert_eq!(events.len() as u64, expected + 1, "one metadata event");

    let mut last_ts = f64::NEG_INFINITY;
    for ev in &complete {
        // Required trace-event fields, with the types Perfetto expects.
        match get(ev, "name") {
            Value::Str(name) => assert!(snap.spans.contains_key(name), "unknown span {name}"),
            other => panic!("name must be a string, got {other:?}"),
        }
        assert!(matches!(get(ev, "cat"), Value::Str(s) if s == "cbsp"));
        assert!(as_u64(get(ev, "pid")) >= 1);
        assert!(as_u64(get(ev, "tid")) >= 1);
        let ts = match get(ev, "ts") {
            Value::Float(f) => *f,
            Value::UInt(n) => *n as f64,
            other => panic!("ts must be numeric, got {other:?}"),
        };
        assert!(ts >= 0.0);
        assert!(ts >= last_ts, "events must be sorted by start time");
        last_ts = ts;
        match get(ev, "dur") {
            Value::Float(f) => assert!(*f >= 0.0),
            Value::UInt(_) => {}
            other => panic!("dur must be numeric, got {other:?}"),
        }
    }

    // The label with embedded quotes and backslashes survived escaping.
    let labeled = complete
        .iter()
        .find(|e| matches!(get(e, "name"), Value::Str(s) if s == "stage/compile"))
        .expect("compile span present");
    let args = get(labeled, "args");
    match get(args, "label") {
        Value::Str(s) => assert_eq!(s, "gcc \"quoted\\path\""),
        other => panic!("label must be a string, got {other:?}"),
    }
}
