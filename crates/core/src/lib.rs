//! # cbsp-core — Cross Binary Simulation Points
//!
//! The primary contribution of the paper (Perelman et al., ISPASS
//! 2007): finding a *single* set of simulation points usable across
//! every binary compiled from one program source, so that sampled
//! simulation compares the *same* parts of execution when the ISA or
//! optimization level changes.
//!
//! * [`find_mappable_points`] / [`MappableSet`] — procedure entries and
//!   loop branches identifiable in every binary (§3.2.2);
//! * [`inlining::recover_inlined`] — re-mapping loops of inlined
//!   procedures by their trip-count signatures (§3.3);
//! * [`build_vli`] / [`VliProfile`] — variable-length intervals bounded
//!   by mappable points (§3.2.3);
//! * [`run_cross_binary`] — the end-to-end six-step pipeline (§3.2),
//!   producing mapped simulation points and per-binary weights;
//! * [`run_per_binary`] — the classic per-binary SimPoint baseline
//!   (§2) the paper compares against;
//! * [`estimate`] — CPI extrapolation, speedup, and the paper's error
//!   metrics (§5.2);
//! * [`fuzzy`] — the similarity-based mapping fallback for binaries
//!   whose markers optimization destroyed (the paper's `applu` §5.1
//!   failure mode): cosine window matching over shared-space profiles,
//!   per-simpoint [`fuzzy::SimpointMapping`] outcomes, contract
//!   documented (and replay-tested) in `docs/MAPPING.md`.
//!
//! ## Example
//!
//! ```
//! use cbsp_program::{workloads, compile, CompileTarget, Input, Scale};
//! use cbsp_core::{run_cross_binary, CbspConfig};
//!
//! let prog = workloads::by_name("swim").expect("in suite").build(Scale::Test);
//! let bins: Vec<_> = CompileTarget::ALL_FOUR
//!     .iter()
//!     .map(|&t| compile(&prog, t))
//!     .collect();
//! let config = CbspConfig { interval_target: 20_000, ..CbspConfig::default() };
//! let result = run_cross_binary(
//!     &bins.iter().collect::<Vec<_>>(),
//!     &Input::test(),
//!     &config,
//! )?;
//! // The same phases, with per-binary weights, for all four binaries.
//! assert_eq!(result.weights.len(), 4);
//! # Ok::<(), cbsp_core::CbspError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod estimate;
pub mod fuzzy;
pub mod inlining;
pub mod mappable;
pub mod perbinary;
pub mod pipeline;
pub mod softmarkers;
pub mod vli;

pub use error::CbspError;
pub use estimate::{
    estimated_cycles, relative_error, speedup, speedup_error, stratified_ci, weighted_cpi,
    weighted_cpi_with, weighted_metric, weighted_metric_with, STRATIFIED_CI_Z,
};
pub use fuzzy::{
    cosine_similarity, extended_markers, map_stage_fuzzy, mapping_stats, FuzzyConfig, MappingStats,
    SimpointMapping, UNMAPPED_BOUNDARY,
};
pub use mappable::{find_mappable_points, MappablePoint, MappableSet, PointKind};
pub use perbinary::{run_per_binary, PerBinaryResult};
pub use pipeline::{
    map_stage, mappable_stage, profile_stage, profile_stage_all, run_cross_binary, simpoint_stage,
    validate_binaries, vli_stage, CbspConfig, CrossBinaryResult, MappableStage, MappedSlicing,
};
pub use softmarkers::{
    marker_period_stats, marker_period_stats_all, select_phase_markers, slice_at_marker,
    MarkerStats,
};
pub use vli::{build_vli, build_vli_with, slice_instr_counts, VliProfile};
