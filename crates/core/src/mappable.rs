//! Finding mappable points across binaries (paper §3.2.2).
//!
//! A *mappable point* is an instruction that exists in every binary of
//! the set and marks the same point of execution in all of them:
//!
//! * **procedure entry points**, matched by symbol name — they
//!   "represent the same exact point in execution across all of the
//!   binaries";
//! * **loop entry points** and **loop-body (back) branches**, matched
//!   by debug line number *and* profiled execution count — "if the
//!   execution counts and line numbers for a branch match across all
//!   binaries, then that branch represents the same part of execution".
//!
//! The execution-count requirement is what makes `(marker, count)`
//! coordinates transferable: a region can start "at mappable point A
//! after it has executed X times" in *any* binary of the set.
//!
//! Matching uses only observable information — symbols, lines, counts —
//! never the compiler's ground-truth provenance fields. Inline recovery
//! (paper §3.3) lives in [`crate::inlining`] and extends the set
//! produced here.

use cbsp_profile::{CallLoopProfile, MarkerRef};
use cbsp_program::Binary;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What kind of code structure a mappable point is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PointKind {
    /// A procedure entry point.
    ProcEntry,
    /// A loop entry point (executes once per loop entry).
    LoopEntry,
    /// A loop-body (back) branch (executes once per iteration, or per
    /// unrolled group).
    LoopBody,
}

/// One point mapped across all binaries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappablePoint {
    /// Structure kind.
    pub kind: PointKind,
    /// Total executions on the profiled input — identical in every
    /// binary by construction.
    pub execs: u64,
    /// The concrete marker in each binary, indexed like the binary set
    /// the point was built from.
    pub per_binary: Vec<MarkerRef>,
    /// True when this point was matched by inline recovery rather than
    /// by direct symbol/line matching.
    pub recovered: bool,
    /// Human-readable description, e.g. `"proc smvp"` or `"loop@line 12"`.
    pub label: String,
}

/// The set of mappable points for a group of binaries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappableSet {
    /// Number of binaries the set spans.
    pub binaries: usize,
    /// The points.
    pub points: Vec<MappablePoint>,
}

impl MappableSet {
    /// Points of a given kind.
    pub fn of_kind(&self, kind: PointKind) -> impl Iterator<Item = &MappablePoint> {
        self.points.iter().filter(move |p| p.kind == kind)
    }

    /// Translates a marker of binary `from` to the corresponding marker
    /// of binary `to`, if the marker is mappable.
    pub fn translate(&self, from: usize, marker: MarkerRef, to: usize) -> Option<MarkerRef> {
        self.points
            .iter()
            .find(|p| p.per_binary[from] == marker)
            .map(|p| p.per_binary[to])
    }

    /// The markers of binary `index`, as a lookup-friendly sorted list.
    pub fn markers_of(&self, index: usize) -> Vec<MarkerRef> {
        let mut v: Vec<MarkerRef> = self.points.iter().map(|p| p.per_binary[index]).collect();
        v.sort_unstable();
        v
    }

    /// Expected mappable-marker executions per interval of
    /// `interval_target` instructions, given the total instruction
    /// count of the profiled run.
    ///
    /// A coarse early warning for interval inflation: a density below
    /// ~2 means boundary candidates are rare on average and mapped
    /// intervals will balloon past the target. Note it is a *run-wide
    /// average*: a program can be marker-rich in one region and starved
    /// in another (`applu` has dense init markers but none inside its
    /// optimized solver code — its intervals balloon despite a moderate
    /// average density), so treat a low value as definitive trouble and
    /// a high value as merely encouraging.
    pub fn density(&self, total_instrs: u64, interval_target: u64) -> f64 {
        let executions: u64 = self.points.iter().map(|p| p.execs).sum();
        let intervals = total_instrs as f64 / interval_target.max(1) as f64;
        if intervals > 0.0 {
            executions as f64 / intervals
        } else {
            0.0
        }
    }
}

/// Finds all directly-matchable points across `binaries` (procedure
/// entries by name, loop entries/bodies by line + counts). Inline
/// recovery is applied separately by
/// [`recover_inlined`](crate::inlining::recover_inlined).
///
/// # Panics
///
/// Panics if `binaries` and `profiles` differ in length or are empty.
pub fn find_mappable_points(binaries: &[&Binary], profiles: &[&CallLoopProfile]) -> MappableSet {
    assert!(!binaries.is_empty(), "need at least one binary");
    assert_eq!(binaries.len(), profiles.len(), "one profile per binary");
    let n = binaries.len();
    let mut points = Vec::new();

    // --- Procedure entries, matched by symbol name. -----------------
    // name -> per-binary (proc index, entry count)
    let mut by_name: BTreeMap<&str, Vec<Option<(u32, u64)>>> = BTreeMap::new();
    for (bi, bin) in binaries.iter().enumerate() {
        for (pi, proc) in bin.procs.iter().enumerate() {
            let entry = by_name
                .entry(proc.name.as_str())
                .or_insert_with(|| vec![None; n]);
            // Duplicate symbol within one binary would be ambiguous; our
            // compiler never emits one, but guard anyway.
            if entry[bi].is_some() {
                entry[bi] = Some((u32::MAX, 0));
            } else {
                entry[bi] = Some((pi as u32, profiles[bi].proc_entries[pi]));
            }
        }
    }
    for (name, slots) in &by_name {
        let Some(resolved) = all_present(slots) else {
            continue; // missing from some binary (e.g. inlined away)
        };
        let count = resolved[0].1;
        if count == 0 || resolved.iter().any(|&(i, c)| i == u32::MAX || c != count) {
            continue; // never executed, ambiguous, or counts disagree
        }
        points.push(MappablePoint {
            kind: PointKind::ProcEntry,
            execs: count,
            per_binary: resolved.iter().map(|&(i, _)| MarkerRef::Proc(i)).collect(),
            recovered: false,
            label: format!("proc {name}"),
        });
    }

    // --- Loops, matched by debug line. -------------------------------
    // line -> per-binary (loop index, entries, backs); ambiguous when a
    // binary has several loops on one line.
    type LoopsPerBinary = Vec<Option<(u32, u64, u64)>>;
    let mut by_line: BTreeMap<u32, LoopsPerBinary> = BTreeMap::new();
    for (bi, bin) in binaries.iter().enumerate() {
        for (li, lp) in bin.loops.iter().enumerate() {
            let Some(line) = lp.line else {
                continue; // degraded debug info: unmatchable here
            };
            let entry = by_line.entry(line.0).or_insert_with(|| vec![None; n]);
            if entry[bi].is_some() {
                entry[bi] = Some((u32::MAX, 0, 0)); // ambiguous line
            } else {
                entry[bi] = Some((
                    li as u32,
                    profiles[bi].loop_entries[li],
                    profiles[bi].loop_backs[li],
                ));
            }
        }
    }
    for (line, slots) in &by_line {
        let Some(resolved) = all_present(slots) else {
            continue;
        };
        if resolved.iter().any(|&(i, _, _)| i == u32::MAX) {
            continue;
        }
        let entries = resolved[0].1;
        // Loop entry point: entry counts must agree and be nonzero.
        if entries > 0 && resolved.iter().all(|&(_, e, _)| e == entries) {
            points.push(MappablePoint {
                kind: PointKind::LoopEntry,
                execs: entries,
                per_binary: resolved
                    .iter()
                    .map(|&(i, _, _)| MarkerRef::LoopEntry(i))
                    .collect(),
                recovered: false,
                label: format!("loop-entry@line{line}"),
            });
            // Loop body branch: back counts must *also* agree (unrolling
            // breaks this while leaving the entry mappable).
            let backs = resolved[0].2;
            if backs > 0 && resolved.iter().all(|&(_, _, b)| b == backs) {
                points.push(MappablePoint {
                    kind: PointKind::LoopBody,
                    execs: backs,
                    per_binary: resolved
                        .iter()
                        .map(|&(i, _, _)| MarkerRef::LoopBack(i))
                        .collect(),
                    recovered: false,
                    label: format!("loop-body@line{line}"),
                });
            }
        }
    }

    MappableSet {
        binaries: n,
        points,
    }
}

fn all_present<T: Copy>(slots: &[Option<T>]) -> Option<Vec<T>> {
    if slots.iter().all(Option::is_some) {
        Some(slots.iter().map(|s| s.expect("checked")).collect())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbsp_program::{compile, CompileTarget, Input, LoopHints, ProgramBuilder, TripCount};

    fn analyze(prog: &cbsp_program::SourceProgram) -> (Vec<Binary>, MappableSet) {
        let input = Input::test();
        let bins: Vec<Binary> = CompileTarget::ALL_FOUR
            .iter()
            .map(|&t| compile(prog, t))
            .collect();
        let profiles: Vec<CallLoopProfile> = bins
            .iter()
            .map(|b| CallLoopProfile::collect(b, &input))
            .collect();
        let set = find_mappable_points(
            &bins.iter().collect::<Vec<_>>(),
            &profiles.iter().collect::<Vec<_>>(),
        );
        (bins, set)
    }

    #[test]
    fn plain_program_maps_everything() {
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.loop_fixed(20, |body| {
                body.call("work");
            });
        });
        b.proc("work", |p| {
            p.loop_random(3, 9, |body| body.work(10));
        });
        let (_, set) = analyze(&b.finish());
        assert_eq!(set.of_kind(PointKind::ProcEntry).count(), 2);
        assert_eq!(set.of_kind(PointKind::LoopEntry).count(), 2);
        assert_eq!(set.of_kind(PointKind::LoopBody).count(), 2);
        for p in &set.points {
            assert_eq!(p.per_binary.len(), 4);
            assert!(p.execs > 0);
            assert!(!p.recovered);
        }
    }

    #[test]
    fn unrolled_loop_keeps_entry_loses_body() {
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.loop_with(
                TripCount::Fixed(40),
                LoopHints {
                    unroll: 4,
                    split: false,
                },
                |body| body.work(10),
            );
        });
        let (_, set) = analyze(&b.finish());
        assert_eq!(set.of_kind(PointKind::LoopEntry).count(), 1);
        assert_eq!(
            set.of_kind(PointKind::LoopBody).count(),
            0,
            "unrolling changes back-branch counts"
        );
    }

    #[test]
    fn inlined_procedure_is_not_directly_mappable() {
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.loop_fixed(10, |body| body.call("hot"));
        });
        b.inline_proc("hot", |p| {
            p.loop_fixed(5, |body| body.work(10));
        });
        let (_, set) = analyze(&b.finish());
        // Only main survives as a procedure point.
        assert_eq!(set.of_kind(PointKind::ProcEntry).count(), 1);
        // hot's loop has no line in O2 binaries: unmatched here.
        assert_eq!(
            set.of_kind(PointKind::LoopEntry).count(),
            1,
            "only main's loop"
        );
    }

    #[test]
    fn split_loops_are_not_mappable() {
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.loop_with(
                TripCount::Fixed(8),
                LoopHints {
                    unroll: 0,
                    split: true,
                },
                |body| {
                    body.work(5);
                    body.work(7);
                },
            );
        });
        let (_, set) = analyze(&b.finish());
        assert_eq!(set.of_kind(PointKind::LoopEntry).count(), 0);
        assert_eq!(set.of_kind(PointKind::LoopBody).count(), 0);
    }

    #[test]
    fn density_predicts_interval_inflation() {
        use cbsp_program::{workloads, Scale};
        let analyze_suite = |name: &str| {
            let prog = workloads::by_name(name)
                .expect("in suite")
                .build(Scale::Test);
            let input = Input::test();
            let bins: Vec<Binary> = CompileTarget::ALL_FOUR
                .iter()
                .map(|&t| compile(&prog, t))
                .collect();
            let profiles: Vec<CallLoopProfile> = bins
                .iter()
                .map(|b| CallLoopProfile::collect(b, &input))
                .collect();
            let set = find_mappable_points(
                &bins.iter().collect::<Vec<_>>(),
                &profiles.iter().collect::<Vec<_>>(),
            );
            set.density(profiles[0].instructions, 20_000)
        };
        let swim = analyze_suite("swim");
        let applu = analyze_suite("applu");
        assert!(
            swim > 2.0 * applu,
            "swim density {swim} should clearly exceed applu's {applu}"
        );
        assert!(swim > 10.0, "swim is marker-rich: {swim}");
    }

    #[test]
    fn translate_maps_markers_between_binaries() {
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.call("f");
            p.call("g");
        });
        b.proc("f", |p| p.work(10));
        b.proc("g", |p| p.work(10));
        let (bins, set) = analyze(&b.finish());
        // Find f's proc id in binary 0 and 3; they may differ, but
        // translate must connect them.
        let f0 = bins[0].proc_by_name("f").expect("f in 32u");
        let f3 = bins[3].proc_by_name("f").expect("f in 64o");
        assert_eq!(
            set.translate(0, MarkerRef::Proc(f0.0), 3),
            Some(MarkerRef::Proc(f3.0))
        );
        assert_eq!(set.translate(0, MarkerRef::LoopBack(99), 3), None);
    }

    #[test]
    fn dead_procedures_are_excluded() {
        use cbsp_program::Cond;
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.if_then(Cond::Never, |t| t.call("never_runs"));
            p.work(10);
        });
        b.proc("never_runs", |p| p.work(1));
        let (_, set) = analyze(&b.finish());
        assert!(
            set.points.iter().all(|p| p.label != "proc never_runs"),
            "zero-count procedures must not be mappable"
        );
    }
}
