//! Recovering mappable points lost to inlining (paper §3.3).
//!
//! When `-O2` inlines a procedure, the optimized binary has neither its
//! symbol nor usable line info for its loops, so direct matching fails.
//! The paper's recovery: "we can detect inlined procedures by their
//! parent nodes and the loop structure within the procedure" — if
//! procedure `P` (with a loop executing N times) is called from `Q`,
//! then after inlining `Q` contains an extra loop executing N times,
//! identifiable by its execution counts. "Of course, if N = M, we can
//! not determine which loop belongs to the inlined procedure" — the
//! recovery declines ambiguous matches rather than guessing (this is
//! exactly what defeats it on `applu`, whose five inlined solvers have
//! identical loop structures).

use crate::mappable::{MappablePoint, MappableSet, PointKind};
use cbsp_profile::{CallGraph, CallLoopProfile, MarkerRef};
use cbsp_program::Binary;
use std::collections::{BTreeMap, BTreeSet};

/// Loop signature used for recovery: (entry count, back count).
type Signature = (u64, u64);

/// Extends `set` with loops recovered from inlined procedures.
///
/// Returns the number of procedures whose loops were fully recovered.
/// A procedure's loops are recovered only when *every* loop of the
/// procedure finds a unique count-signature match inside the callers'
/// code in *every* binary the procedure is missing from; partial or
/// ambiguous matches are declined.
pub fn recover_inlined(
    binaries: &[&Binary],
    profiles: &[&CallLoopProfile],
    set: &mut MappableSet,
) -> usize {
    let n = binaries.len();
    assert_eq!(profiles.len(), n);
    assert_eq!(set.binaries, n);

    // Loops already matched, per binary.
    let mut matched: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
    for p in &set.points {
        if p.kind == PointKind::LoopEntry {
            for (bi, m) in p.per_binary.iter().enumerate() {
                if let MarkerRef::LoopEntry(i) = m {
                    matched[bi].insert(*i);
                }
            }
        }
    }

    // Name → proc index per binary.
    let name_maps: Vec<BTreeMap<&str, u32>> = binaries
        .iter()
        .map(|b| {
            b.procs
                .iter()
                .enumerate()
                .map(|(i, p)| (p.name.as_str(), i as u32))
                .collect()
        })
        .collect();
    let call_graphs: Vec<CallGraph> = binaries.iter().map(|b| CallGraph::of(b)).collect();

    // Candidate pool per binary: unmatched loops with degraded lines,
    // grouped by (containing proc, signature).
    let mut pools: Vec<BTreeMap<(u32, Signature), Vec<u32>>> = Vec::with_capacity(n);
    for (bi, bin) in binaries.iter().enumerate() {
        let mut pool: BTreeMap<(u32, Signature), Vec<u32>> = BTreeMap::new();
        for (li, lp) in bin.loops.iter().enumerate() {
            if lp.line.is_some() || matched[bi].contains(&(li as u32)) {
                continue;
            }
            let sig = (profiles[bi].loop_entries[li], profiles[bi].loop_backs[li]);
            if sig.0 == 0 {
                continue;
            }
            pool.entry((lp.proc.0, sig)).or_default().push(li as u32);
        }
        pools.push(pool);
    }

    // Procedures present somewhere but missing elsewhere.
    let mut all_names: BTreeSet<&str> = BTreeSet::new();
    for m in &name_maps {
        all_names.extend(m.keys().copied());
    }

    let mut recovered_procs = 0;
    for name in all_names {
        let present: Vec<usize> = (0..n)
            .filter(|&i| name_maps[i].contains_key(name))
            .collect();
        if present.len() == n || present.is_empty() {
            continue;
        }
        let r = present[0];
        let p_r = name_maps[r][name];
        if profiles[r].proc_entries[p_r as usize] == 0 {
            continue; // never executed: nothing to recover
        }

        // The procedure's loops in the reference binary, with their
        // signatures. Decline if two loops share a signature (the
        // paper's N = M ambiguity).
        let ref_loops: Vec<(u32, Signature, u32)> = binaries[r]
            .loops
            .iter()
            .enumerate()
            .filter(|(_, lp)| lp.proc.0 == p_r)
            .map(|(li, _)| {
                (
                    li as u32,
                    (profiles[r].loop_entries[li], profiles[r].loop_backs[li]),
                    0u32,
                )
            })
            .filter(|(_, sig, _)| sig.0 > 0)
            .collect();
        if ref_loops.is_empty() {
            continue;
        }
        {
            let mut sigs: Vec<Signature> = ref_loops.iter().map(|&(_, s, _)| s).collect();
            sigs.sort_unstable();
            let len_before = sigs.len();
            sigs.dedup();
            if sigs.len() != len_before {
                continue; // intra-procedure signature collision
            }
        }

        // Callers of the procedure (by name) in the reference binary.
        let caller_names: Vec<&str> = call_graphs[r].callers[p_r as usize]
            .iter()
            .map(|c| binaries[r].procs[c.index()].name.as_str())
            .collect();
        if caller_names.is_empty() {
            continue;
        }

        // For each reference loop, find it in every other binary.
        let mut per_loop_markers: Vec<Vec<Option<(u32, Signature)>>> =
            vec![vec![None; n]; ref_loops.len()];
        let mut ok = true;
        'outer: for (k, &(li_r, sig, _)) in ref_loops.iter().enumerate() {
            let line_r = binaries[r].loops[li_r as usize].line;
            for bi in 0..n {
                if bi == r {
                    per_loop_markers[k][bi] = Some((li_r, sig));
                    continue;
                }
                if present.contains(&bi) {
                    // Symbol exists here: find the loop by line inside P.
                    let p_b = name_maps[bi][name];
                    let found: Vec<u32> = binaries[bi]
                        .loops
                        .iter()
                        .enumerate()
                        .filter(|(lj, lp)| {
                            lp.proc.0 == p_b
                                && lp.line == line_r
                                && (profiles[bi].loop_entries[*lj], profiles[bi].loop_backs[*lj])
                                    == sig
                        })
                        .map(|(lj, _)| lj as u32)
                        .collect();
                    if found.len() != 1 {
                        ok = false;
                        break 'outer;
                    }
                    per_loop_markers[k][bi] = Some((found[0], sig));
                } else {
                    // Symbol missing: search the callers' pools for a
                    // unique signature match.
                    let mut candidates: Vec<u32> = Vec::new();
                    for caller in &caller_names {
                        let Some(&q_b) = name_maps[bi].get(caller) else {
                            continue; // caller itself missing here
                        };
                        if let Some(c) = pools[bi].get(&(q_b, sig)) {
                            candidates.extend_from_slice(c);
                        }
                    }
                    if candidates.len() != 1 {
                        ok = false; // nothing found, or N = M ambiguity
                        break 'outer;
                    }
                    per_loop_markers[k][bi] = Some((candidates[0], sig));
                }
            }
        }
        if !ok {
            continue;
        }

        // Commit: add entry + body points for every recovered loop and
        // retire the used candidates.
        for (k, &(_, sig, _)) in ref_loops.iter().enumerate() {
            let ids: Vec<u32> = per_loop_markers[k]
                .iter()
                .map(|s| s.expect("all binaries resolved").0)
                .collect();
            set.points.push(MappablePoint {
                kind: PointKind::LoopEntry,
                execs: sig.0,
                per_binary: ids.iter().map(|&i| MarkerRef::LoopEntry(i)).collect(),
                recovered: true,
                label: format!("recovered-loop-entry in {name}"),
            });
            if sig.1 > 0 {
                set.points.push(MappablePoint {
                    kind: PointKind::LoopBody,
                    execs: sig.1,
                    per_binary: ids.iter().map(|&i| MarkerRef::LoopBack(i)).collect(),
                    recovered: true,
                    label: format!("recovered-loop-body in {name}"),
                });
            }
            for (bi, id) in ids.iter().enumerate() {
                matched[bi].insert(*id);
                for pool in pools[bi].values_mut() {
                    pool.retain(|x| x != id);
                }
            }
        }
        recovered_procs += 1;
    }
    recovered_procs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mappable::find_mappable_points;
    use cbsp_program::{compile, CompileTarget, Input, LoopHints, ProgramBuilder, TripCount};

    fn analyze(prog: &cbsp_program::SourceProgram) -> (MappableSet, usize) {
        let input = Input::test();
        let bins: Vec<Binary> = CompileTarget::ALL_FOUR
            .iter()
            .map(|&t| compile(prog, t))
            .collect();
        let profiles: Vec<CallLoopProfile> = bins
            .iter()
            .map(|b| CallLoopProfile::collect(b, &input))
            .collect();
        let bin_refs: Vec<&Binary> = bins.iter().collect();
        let prof_refs: Vec<&CallLoopProfile> = profiles.iter().collect();
        let mut set = find_mappable_points(&bin_refs, &prof_refs);
        let recovered = recover_inlined(&bin_refs, &prof_refs, &mut set);
        (set, recovered)
    }

    #[test]
    fn recovers_a_simple_inlined_loop() {
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.loop_fixed(10, |body| body.call("hot"));
        });
        b.inline_proc("hot", |p| {
            p.loop_fixed(7, |body| body.work(10));
        });
        let (set, recovered) = analyze(&b.finish());
        assert_eq!(recovered, 1);
        let rec: Vec<_> = set.points.iter().filter(|p| p.recovered).collect();
        assert_eq!(rec.len(), 2, "entry + body points");
        assert!(rec
            .iter()
            .any(|p| p.kind == PointKind::LoopEntry && p.execs == 10));
        assert!(rec
            .iter()
            .any(|p| p.kind == PointKind::LoopBody && p.execs == 70));
    }

    #[test]
    fn distinct_trip_counts_recover_two_inlined_procs() {
        // The fma3d pattern: two inlined element routines with distinct
        // loop structures.
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.loop_fixed(10, |body| {
                body.call("solid");
                body.call("shell");
            });
        });
        b.inline_proc("solid", |p| {
            p.loop_fixed(6, |body| body.work(10));
        });
        b.inline_proc("shell", |p| {
            p.loop_fixed(4, |body| body.work(10));
        });
        let (set, recovered) = analyze(&b.finish());
        assert_eq!(recovered, 2);
        assert_eq!(set.points.iter().filter(|p| p.recovered).count(), 4);
    }

    #[test]
    fn identical_trip_counts_are_ambiguous_and_declined() {
        // The applu pattern: two inlined procedures with identical loop
        // signatures called from the same parent.
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.loop_fixed(10, |body| {
                body.call("solver_a");
                body.call("solver_b");
            });
        });
        for name in ["solver_a", "solver_b"] {
            b.inline_proc(name, |p| {
                p.loop_fixed(5, |body| body.work(10));
            });
        }
        let (set, recovered) = analyze(&b.finish());
        assert_eq!(recovered, 0, "N = M must be declined");
        assert_eq!(set.points.iter().filter(|p| p.recovered).count(), 0);
    }

    #[test]
    fn multi_site_inlining_is_declined() {
        // Inlined at two call sites: per-site counts cannot equal the
        // out-of-line total, so recovery must decline.
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.loop_fixed(10, |body| {
                body.call("hot");
                body.call("hot2_wrapper");
            });
        });
        b.proc("hot2_wrapper", |p| p.call("hot"));
        b.inline_proc("hot", |p| {
            p.loop_fixed(3, |body| body.work(5));
        });
        let (set, recovered) = analyze(&b.finish());
        assert_eq!(recovered, 0);
        assert_eq!(set.points.iter().filter(|p| p.recovered).count(), 0);
    }

    #[test]
    fn split_inlined_loops_defeat_recovery() {
        // applu's full failure mode: inlined AND split.
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.loop_fixed(6, |body| body.call("solver"));
        });
        b.inline_proc("solver", |p| {
            p.loop_with(
                TripCount::Fixed(9),
                LoopHints {
                    unroll: 0,
                    split: true,
                },
                |body| {
                    body.work(5);
                    body.work(7);
                },
            );
        });
        let (set, recovered) = analyze(&b.finish());
        // Two split clones share the signature: ambiguous.
        assert_eq!(recovered, 0);
        assert_eq!(set.points.iter().filter(|p| p.recovered).count(), 0);
    }
}
