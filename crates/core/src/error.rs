//! Error type of the cross-binary pipeline.

use cbsp_profile::MarkerRef;
use std::fmt;

/// Errors produced by [`run_cross_binary`](crate::run_cross_binary).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CbspError {
    /// The binary set was empty.
    EmptyBinarySet,
    /// The binaries were not all compiled from the same program.
    ProgramMismatch {
        /// Program of the first binary.
        expected: String,
        /// The mismatching program found.
        found: String,
    },
    /// The configured primary index exceeds the binary set.
    PrimaryOutOfRange {
        /// The configured primary index.
        primary: usize,
        /// Number of binaries supplied.
        binaries: usize,
    },
    /// An interval boundary used a marker that is not in the mappable
    /// set (internal invariant violation — the VLI builder only cuts at
    /// mappable markers).
    UnmappableBoundary {
        /// The offending marker (in primary-binary coordinates).
        marker: MarkerRef,
    },
    /// A stored artifact's checksum did not match its payload: the file
    /// was truncated or modified on disk after being written.
    ArtifactCorrupt {
        /// Content key of the corrupt artifact.
        key: String,
        /// What the verifier found wrong.
        detail: String,
    },
    /// A stored artifact exists but was written under an incompatible
    /// schema version and cannot be decoded.
    ArtifactVersionMismatch {
        /// Content key of the artifact.
        key: String,
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        supported: u32,
    },
    /// A pipeline run was abandoned at a stage boundary before
    /// completing — its deadline passed or its owner requested
    /// shutdown. Cancellation is only observed *between* stages, so a
    /// cancelled run never leaves a partially written artifact.
    Cancelled {
        /// The stage whose boundary observed the cancellation.
        stage: String,
    },
    /// The artifact store itself could not be read or written (I/O).
    StoreIo {
        /// Path involved in the failed operation.
        path: String,
        /// Stringified OS error (kept as text so the error stays
        /// `Clone + PartialEq`).
        detail: String,
    },
}

impl fmt::Display for CbspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CbspError::EmptyBinarySet => write!(f, "binary set is empty"),
            CbspError::ProgramMismatch { expected, found } => write!(
                f,
                "binaries mix programs: expected {expected}, found {found}"
            ),
            CbspError::PrimaryOutOfRange { primary, binaries } => write!(
                f,
                "primary index {primary} out of range for {binaries} binaries"
            ),
            CbspError::UnmappableBoundary { marker } => {
                write!(f, "interval boundary {marker} is not a mappable point")
            }
            CbspError::ArtifactCorrupt { key, detail } => {
                write!(f, "artifact {key} is corrupt: {detail}")
            }
            CbspError::ArtifactVersionMismatch {
                key,
                found,
                supported,
            } => write!(
                f,
                "artifact {key} has schema version {found}, this build supports {supported}"
            ),
            CbspError::Cancelled { stage } => {
                write!(f, "pipeline run cancelled at the {stage} stage boundary")
            }
            CbspError::StoreIo { path, detail } => {
                write!(f, "artifact store I/O error at {path}: {detail}")
            }
        }
    }
}

impl std::error::Error for CbspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CbspError::ProgramMismatch {
            expected: "gcc".into(),
            found: "mcf".into(),
        };
        let s = e.to_string();
        assert!(s.contains("gcc") && s.contains("mcf"));
        assert!(CbspError::EmptyBinarySet.to_string().contains("empty"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes_error(CbspError::EmptyBinarySet);
    }
}
