//! Variable Length Interval construction (paper §3.2.3).
//!
//! Execution of the *primary binary* is cut into intervals of at least
//! `target` instructions, where every cut lands on a mappable marker:
//! "if the desired interval size is 100 million instructions, and we
//! have just executed 100 million instructions, we need to create an
//! interval boundary on the next mappable marker we encounter." Each
//! boundary is recorded as a `(marker, execution count)` pair, which is
//! exactly what makes the interval transferable to every other binary.

use cbsp_profile::{BbvBuilder, ExecPoint, Interval, MarkerCounts, MarkerRef, MavBuilder};
use cbsp_program::{run, Binary, BlockId, Input, Marker, TraceSink};
use serde::{Deserialize, Serialize};

/// The primary binary's variable-length-interval profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VliProfile {
    /// The intervals, in execution order.
    pub intervals: Vec<Interval>,
    /// `boundaries[i]` is the execution point ending interval `i`
    /// (exclusive). The final interval is the tail after the last
    /// boundary, so `boundaries.len() == intervals.len() - 1` unless the
    /// run ended exactly on a boundary.
    pub boundaries: Vec<ExecPoint>,
    /// Per-interval memory-access vectors, aligned with `intervals`.
    /// Empty unless access recording was requested (see
    /// [`build_vli_with`]) — the BBV-only estimators never pay for it.
    pub mavs: Vec<Vec<f64>>,
}

impl VliProfile {
    /// Total instructions across all intervals.
    pub fn total_instrs(&self) -> u64 {
        self.intervals.iter().map(|i| i.instrs).sum()
    }

    /// Average interval size in instructions (0 for an empty profile).
    pub fn average_interval_size(&self) -> f64 {
        if self.intervals.is_empty() {
            0.0
        } else {
            self.total_instrs() as f64 / self.intervals.len() as f64
        }
    }

    /// Interval `i`'s memory-access vector (empty when not recorded).
    pub fn mav(&self, i: usize) -> &[f64] {
        self.mavs.get(i).map_or(&[], |m| m.as_slice())
    }
}

/// Fast membership test for "is this marker mappable".
#[derive(Debug, Clone)]
struct MarkerFilter {
    procs: Vec<bool>,
    entries: Vec<bool>,
    backs: Vec<bool>,
}

impl MarkerFilter {
    fn new(binary: &Binary, mappable: &[MarkerRef]) -> Self {
        let mut f = MarkerFilter {
            procs: vec![false; binary.procs.len()],
            entries: vec![false; binary.loops.len()],
            backs: vec![false; binary.loops.len()],
        };
        for m in mappable {
            match *m {
                MarkerRef::Proc(i) => f.procs[i as usize] = true,
                MarkerRef::LoopEntry(i) => f.entries[i as usize] = true,
                MarkerRef::LoopBack(i) => f.backs[i as usize] = true,
            }
        }
        f
    }

    #[inline]
    fn contains(&self, m: Marker) -> bool {
        match m {
            Marker::ProcEntry(p) => self.procs[p.index()],
            Marker::LoopEntry(l) => self.entries[l.index()],
            Marker::LoopBack(l) => self.backs[l.index()],
        }
    }
}

/// Optional per-interval memory-access accumulation for [`VliSink`].
///
/// The no-op `()` impl keeps the default (BBV-only) profiling path
/// free of any per-access work: the sink is monomorphized over the
/// recorder, so the disabled case compiles to nothing.
trait MavRecord {
    /// Whether interval MAVs are collected at all.
    const ENABLED: bool;
    fn observe(&mut self, addr: u64, is_write: bool);
    fn take_interval(&mut self) -> Vec<f64>;
}

impl MavRecord for () {
    const ENABLED: bool = false;

    #[inline]
    fn observe(&mut self, _addr: u64, _is_write: bool) {}

    fn take_interval(&mut self) -> Vec<f64> {
        Vec::new()
    }
}

impl MavRecord for MavBuilder {
    const ENABLED: bool = true;

    #[inline]
    fn observe(&mut self, addr: u64, is_write: bool) {
        MavBuilder::observe(self, addr, is_write);
    }

    fn take_interval(&mut self) -> Vec<f64> {
        MavBuilder::take_interval(self)
    }
}

struct VliSink<M> {
    builder: BbvBuilder,
    mav: M,
    counts: MarkerCounts,
    filter: MarkerFilter,
    target: u64,
    intervals: Vec<Interval>,
    boundaries: Vec<ExecPoint>,
    mavs: Vec<Vec<f64>>,
}

impl<M: MavRecord> TraceSink for VliSink<M> {
    #[inline]
    fn on_block(&mut self, block: BlockId, instrs: u64) {
        self.builder.observe(block, instrs);
    }

    #[inline]
    fn on_access(&mut self, addr: u64, is_write: bool) {
        self.mav.observe(addr, is_write);
    }

    #[inline]
    fn on_marker(&mut self, marker: Marker) {
        let count = self.counts.observe(marker);
        if self.builder.instrs() >= self.target && self.filter.contains(marker) {
            let (bbv, instrs) = self.builder.take_interval();
            self.intervals.push(Interval { bbv, instrs });
            if M::ENABLED {
                self.mavs.push(self.mav.take_interval());
            }
            self.boundaries.push(ExecPoint {
                marker: marker.into(),
                count,
            });
        }
    }
}

/// Builds the VLI profile of `binary` (the primary binary) on `input`,
/// cutting at `mappable` markers every `target` instructions.
///
/// # Panics
///
/// Panics if `target` is zero.
pub fn build_vli(
    binary: &Binary,
    input: &Input,
    target: u64,
    mappable: &[MarkerRef],
) -> VliProfile {
    run_vli(binary, input, target, mappable, ())
}

/// [`build_vli`] with optional memory-access recording: when
/// `record_mav` is set the profile additionally carries one
/// memory-access vector per interval (`mavs`), feeding the BBV+MAV
/// estimator. Interval *boundaries* are identical either way — the MAV
/// is extra payload and never changes the cutting.
pub fn build_vli_with(
    binary: &Binary,
    input: &Input,
    target: u64,
    mappable: &[MarkerRef],
    record_mav: bool,
) -> VliProfile {
    if record_mav {
        run_vli(binary, input, target, mappable, MavBuilder::new())
    } else {
        run_vli(binary, input, target, mappable, ())
    }
}

fn run_vli<M: MavRecord>(
    binary: &Binary,
    input: &Input,
    target: u64,
    mappable: &[MarkerRef],
    mav: M,
) -> VliProfile {
    assert!(target > 0, "interval target must be positive");
    let mut sink = VliSink {
        builder: BbvBuilder::new(binary.block_count()),
        mav,
        counts: MarkerCounts::for_binary(binary),
        filter: MarkerFilter::new(binary, mappable),
        target,
        intervals: Vec::new(),
        boundaries: Vec::new(),
        mavs: Vec::new(),
    };
    run(binary, input, &mut sink);
    if sink.builder.instrs() > 0 {
        let (bbv, instrs) = sink.builder.take_interval();
        sink.intervals.push(Interval { bbv, instrs });
        if M::ENABLED {
            sink.mavs.push(sink.mav.take_interval());
        }
    }
    VliProfile {
        intervals: sink.intervals,
        boundaries: sink.boundaries,
        mavs: sink.mavs,
    }
}

struct InstrSliceSink {
    counts: MarkerCounts,
    boundaries: Vec<ExecPoint>,
    next: usize,
    cur: u64,
    slices: Vec<u64>,
}

impl TraceSink for InstrSliceSink {
    #[inline]
    fn on_block(&mut self, _: BlockId, instrs: u64) {
        self.cur += instrs;
    }

    #[inline]
    fn on_marker(&mut self, marker: Marker) {
        let count = self.counts.observe(marker);
        if let Some(b) = self.boundaries.get(self.next) {
            if b.marker.to_marker() == marker && b.count == count {
                self.slices.push(self.cur);
                self.cur = 0;
                self.next += 1;
            }
        }
    }
}

/// Counts instructions per interval when `binary`'s execution is sliced
/// at `boundaries` (used to recalculate per-binary phase weights, paper
/// §3.2.6). Returns `boundaries.len() + 1` counts when the tail is
/// nonempty, `boundaries.len()` otherwise.
///
/// # Panics
///
/// Panics if some boundary is never reached — the boundaries do not
/// belong to this `(binary, input)` pair.
pub fn slice_instr_counts(binary: &Binary, input: &Input, boundaries: &[ExecPoint]) -> Vec<u64> {
    let mut sink = InstrSliceSink {
        counts: MarkerCounts::for_binary(binary),
        boundaries: boundaries.to_vec(),
        next: 0,
        cur: 0,
        slices: Vec::with_capacity(boundaries.len() + 1),
    };
    run(binary, input, &mut sink);
    assert_eq!(
        sink.next,
        boundaries.len(),
        "all boundaries must occur in this binary's execution"
    );
    if sink.cur > 0 {
        sink.slices.push(sink.cur);
    }
    sink.slices
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mappable::find_mappable_points;
    use cbsp_profile::CallLoopProfile;
    use cbsp_program::{compile, CompileTarget, ProgramBuilder};

    fn setup() -> (Vec<Binary>, Input, crate::mappable::MappableSet) {
        let mut b = ProgramBuilder::new("t");
        let a = b.array_f64("a", 256);
        b.proc("main", |p| {
            p.loop_fixed(300, |body| {
                body.compute(40, |k| {
                    k.seq(a, 4);
                });
                body.call("f");
            });
        });
        b.proc("f", |p| p.work(20));
        let prog = b.finish();
        let input = Input::test();
        let bins: Vec<Binary> = CompileTarget::ALL_FOUR
            .iter()
            .map(|&t| compile(&prog, t))
            .collect();
        let profiles: Vec<CallLoopProfile> = bins
            .iter()
            .map(|b| CallLoopProfile::collect(b, &input))
            .collect();
        let set = find_mappable_points(
            &bins.iter().collect::<Vec<_>>(),
            &profiles.iter().collect::<Vec<_>>(),
        );
        (bins, input, set)
    }

    #[test]
    fn vli_intervals_partition_execution_and_meet_the_target() {
        let (bins, input, set) = setup();
        let target = 2_000;
        let vli = build_vli(&bins[0], &input, target, &set.markers_of(0));
        assert!(vli.intervals.len() > 3);
        assert_eq!(vli.boundaries.len(), vli.intervals.len() - 1);
        let full = cbsp_program::run(&bins[0], &input, &mut cbsp_program::NullSink);
        assert_eq!(vli.total_instrs(), full.instructions);
        for iv in &vli.intervals[..vli.intervals.len() - 1] {
            assert!(iv.instrs >= target, "interval below target");
        }
        assert!(vli.average_interval_size() >= target as f64);
    }

    #[test]
    fn boundaries_transfer_to_other_binaries() {
        let (bins, input, set) = setup();
        let vli = build_vli(&bins[0], &input, 2_000, &set.markers_of(0));
        // Translate boundaries to binary 3 and slice it there.
        let translated: Vec<ExecPoint> = vli
            .boundaries
            .iter()
            .map(|b| ExecPoint {
                marker: set.translate(0, b.marker, 3).expect("boundary is mappable"),
                count: b.count,
            })
            .collect();
        let slices = slice_instr_counts(&bins[3], &input, &translated);
        assert_eq!(slices.len(), vli.intervals.len());
        let full = cbsp_program::run(&bins[3], &input, &mut cbsp_program::NullSink);
        assert_eq!(slices.iter().sum::<u64>(), full.instructions);
        // Mapped intervals cover the same *fractions* of execution
        // (within one loop iteration of slack).
        for (i, s) in slices.iter().enumerate() {
            let f0 = vli.intervals[i].instrs as f64 / vli.total_instrs() as f64;
            let f3 = *s as f64 / full.instructions as f64;
            assert!(
                (f0 - f3).abs() < 0.02,
                "interval {i}: primary frac {f0:.4} vs mapped frac {f3:.4}"
            );
        }
    }

    #[test]
    fn mav_recording_aligns_with_intervals_and_never_changes_cutting() {
        let (bins, input, set) = setup();
        let plain = build_vli(&bins[0], &input, 2_000, &set.markers_of(0));
        assert!(plain.mavs.is_empty(), "BBV-only profiling records no MAVs");
        assert!(plain.mav(0).is_empty());
        let with = build_vli_with(&bins[0], &input, 2_000, &set.markers_of(0), true);
        // Same cutting: intervals and boundaries byte-identical.
        assert_eq!(with.intervals, plain.intervals);
        assert_eq!(with.boundaries, plain.boundaries);
        // One MAV per interval; the workload touches memory, so the
        // vectors carry mass.
        assert_eq!(with.mavs.len(), with.intervals.len());
        assert_eq!(with.mav(0).len(), cbsp_profile::MavBuilder::DIMS);
        assert!(with.mavs.iter().any(|m| m.iter().sum::<f64>() > 0.0));
        // Recording is deterministic.
        let again = build_vli_with(&bins[0], &input, 2_000, &set.markers_of(0), true);
        assert_eq!(again, with);
    }

    #[test]
    fn no_mappable_markers_yields_one_interval() {
        let (bins, input, _) = setup();
        let vli = build_vli(&bins[0], &input, 1_000, &[]);
        assert_eq!(vli.intervals.len(), 1);
        assert!(vli.boundaries.is_empty());
    }

    #[test]
    #[should_panic(expected = "must occur")]
    fn boundaries_are_input_specific() {
        // (marker, count) coordinates name a moment of ONE input's
        // execution; applying them to a different input is an error the
        // tooling must catch, not silently mis-slice (the paper profiles
        // each program/input pair separately for the same reason).
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.loop_fixed(200, |body| {
                body.loop_random(5, 50, |inner| inner.work(30));
            });
        });
        let bin = compile(&b.finish(), CompileTarget::W32_O2);
        let input = Input::new("a", 1, cbsp_program::Scale::Test);
        let profile = CallLoopProfile::collect(&bin, &input);
        let set = find_mappable_points(&[&bin], &[&profile]);
        let vli = build_vli(&bin, &input, 1_000, &set.markers_of(0));
        assert!(vli.boundaries.len() > 3);
        // A different seed draws different trip counts: the total
        // executions of the inner-loop marker differ, so at least the
        // late boundaries never occur.
        let other = Input::new("b", 2, cbsp_program::Scale::Test);
        let _ = slice_instr_counts(&bin, &other, &vli.boundaries);
    }

    #[test]
    #[should_panic(expected = "must occur")]
    fn foreign_boundaries_panic() {
        let (bins, input, _) = setup();
        let bad = vec![ExecPoint {
            marker: MarkerRef::LoopBack(0),
            count: 1_000_000,
        }];
        let _ = slice_instr_counts(&bins[0], &input, &bad);
    }
}
