//! Similarity-based fallback mapping for marker-loss binaries.
//!
//! Exact cross-binary mapping (paper §3.2) needs a `(marker, count)`
//! pair that exists in *every* binary. Aggressive inlining and loop
//! splitting — the `applu` failure mode of paper §5.1, reproduced by
//! [`CompileOptions::marker_destroying`](cbsp_program::CompileOptions::marker_destroying)
//! — can leave a binary with (almost) no such pairs, and the exact map
//! stage dead-ends. This module adds the fuzzy fallback of ROADMAP
//! item 4, following the region-similarity idea of the binary code
//! similarity literature (PEM, arxiv 2308.15449):
//!
//! 1. **Cut finer.** With fuzzy mapping enabled, the primary binary's
//!    VLIs are bounded by the *union of pairwise* mappable points
//!    ([`extended_markers`]) instead of the global intersection, so one
//!    marker-destroyed binary no longer balloons every interval.
//! 2. **Translate what you can.** Each boundary is translated per
//!    binary through that binary's pairwise table; boundaries the
//!    table cannot translate get their instruction offsets
//!    interpolated between the nearest translated neighbours.
//! 3. **Match the rest by similarity.** A simulation point whose
//!    region has an untranslatable endpoint is matched by sliding a
//!    window over the target binary's execution and maximizing cosine
//!    similarity ([`cosine_similarity`]) between normalized region
//!    profiles built in a *shared observable space*: per-procedure-name
//!    instruction mass plus per-array access mass (both survive
//!    recompilation), extended with the MAV for `bbv+mav` estimator
//!    lanes via the same [`FeatureBuilder`] seam the clustering uses.
//!
//! Every simulation point's outcome is recorded as a
//! [`SimpointMapping`]: `Exact` (both endpoints translated), `Fuzzy`
//! with a confidence (the best cosine similarity, if it clears the
//! [`FuzzyConfig::threshold`]), or `Unmapped`. Exact lanes never enter
//! this module — their results and cache keys stay byte-identical.
//!
//! See `docs/MAPPING.md` for the full decision flow and worked
//! examples (replay-tested byte-for-byte by `tests/mapping_doc.rs`).

use crate::inlining::recover_inlined;
use crate::mappable::find_mappable_points;
use crate::pipeline::{CbspConfig, MappedSlicing};
use crate::vli::VliProfile;
use cbsp_par::Pool;
use cbsp_profile::{CallGraph, CallLoopProfile, ExecPoint, MarkerCounts, MarkerRef, MavBuilder};
use cbsp_program::{run, Binary, BlockId, Input, Marker, TraceSink};
use cbsp_simpoint::{FeatureBuilder, SimPointResult};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Chunk granularity: how many profile chunks one target-scaled
/// interval spans. Finer chunks localize matches better but cost
/// proportionally more cosine evaluations.
const CHUNKS_PER_INTERVAL: u64 = 8;

/// Upper bound on the number of profile chunks per binary, so fuzzy
/// matching stays linear-ish even on huge runs.
const MAX_CHUNKS: u64 = 4096;

/// Sentinel stored in `boundaries[b]` for a boundary the pairwise
/// table could not translate into binary `b`. Consumers must check
/// [`SimpointMapping`] before dereferencing a boundary of a fuzzy run;
/// the sentinel never names a real marker (`u32::MAX` is not a valid
/// procedure index) and its count is 0 (real counts are 1-based).
pub const UNMAPPED_BOUNDARY: ExecPoint = ExecPoint {
    marker: MarkerRef::Proc(u32::MAX),
    count: 0,
};

/// Configuration of the fuzzy mapping fallback.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FuzzyConfig {
    /// Minimum cosine similarity a window must reach to be accepted as
    /// a fuzzy match; below it the simulation point is reported
    /// [`SimpointMapping::Unmapped`]. In `[0, 1]`; see `docs/MAPPING.md`
    /// for threshold guidance.
    pub threshold: f64,
}

impl FuzzyConfig {
    /// Default acceptance threshold. Profiles in the shared observable
    /// space are family-normalized, so unrelated regions usually score
    /// well under 0.5 while true correspondences score above 0.8; 0.6
    /// rejects noise without starving the fallback.
    pub const DEFAULT_THRESHOLD: f64 = 0.6;
}

impl Default for FuzzyConfig {
    fn default() -> Self {
        FuzzyConfig {
            threshold: Self::DEFAULT_THRESHOLD,
        }
    }
}

/// How one simulation point was carried into one binary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SimpointMapping {
    /// Both region endpoints translated exactly through the pairwise
    /// mappable table — the region is the paper's exact mapping.
    Exact,
    /// At least one endpoint was untranslatable; the region was matched
    /// by profile similarity.
    Fuzzy {
        /// Best cosine similarity found, in `[threshold, 1]`.
        confidence: f64,
        /// Start of the matched window, as an instruction offset into
        /// the target binary's execution.
        start: u64,
        /// End (exclusive) of the matched window, as an instruction
        /// offset.
        end: u64,
    },
    /// No window cleared the acceptance threshold; the point
    /// contributes nothing in this binary.
    Unmapped,
}

impl SimpointMapping {
    /// True for `Exact` and `Fuzzy` (the point is usable in this
    /// binary).
    pub fn is_mapped(&self) -> bool {
        !matches!(self, SimpointMapping::Unmapped)
    }

    /// The fuzzy confidence, if any (`None` for `Exact`/`Unmapped`).
    pub fn confidence(&self) -> Option<f64> {
        match self {
            SimpointMapping::Fuzzy { confidence, .. } => Some(*confidence),
            _ => None,
        }
    }

    /// Short label: `"exact"`, `"fuzzy"`, or `"unmapped"`.
    pub fn kind(&self) -> &'static str {
        match self {
            SimpointMapping::Exact => "exact",
            SimpointMapping::Fuzzy { .. } => "fuzzy",
            SimpointMapping::Unmapped => "unmapped",
        }
    }
}

impl std::fmt::Display for SimpointMapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimpointMapping::Fuzzy { confidence, .. } => {
                write!(f, "fuzzy({confidence:.3})")
            }
            other => f.write_str(other.kind()),
        }
    }
}

/// Aggregate mapping outcome across all binaries of a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MappingStats {
    /// Simulation-point slots (points × binaries) mapped exactly.
    pub exact: usize,
    /// Slots mapped by similarity.
    pub fuzzy: usize,
    /// Slots left unmapped.
    pub unmapped: usize,
    /// Mean confidence over the fuzzy slots (0 when there are none).
    pub mean_confidence: f64,
}

impl MappingStats {
    /// Fraction of slots that are usable (exact or fuzzy), in `[0, 1]`;
    /// 1 for an empty table.
    pub fn mapped_fraction(&self) -> f64 {
        let total = self.exact + self.fuzzy + self.unmapped;
        if total == 0 {
            1.0
        } else {
            (self.exact + self.fuzzy) as f64 / total as f64
        }
    }
}

/// Summarizes a `mappings[binary][point]` table (as produced by
/// [`map_stage_fuzzy`] and stored in
/// [`CrossBinaryResult::mappings`](crate::CrossBinaryResult::mappings)).
pub fn mapping_stats(mappings: &[Vec<SimpointMapping>]) -> MappingStats {
    let (mut exact, mut fuzzy, mut unmapped, mut conf) = (0usize, 0usize, 0usize, 0.0f64);
    for row in mappings {
        for m in row {
            match m {
                SimpointMapping::Exact => exact += 1,
                SimpointMapping::Fuzzy { confidence, .. } => {
                    fuzzy += 1;
                    conf += confidence;
                }
                SimpointMapping::Unmapped => unmapped += 1,
            }
        }
    }
    MappingStats {
        exact,
        fuzzy,
        unmapped,
        mean_confidence: if fuzzy > 0 { conf / fuzzy as f64 } else { 0.0 },
    }
}

/// Cosine similarity of two equal-length vectors, in `[-1, 1]` (0 when
/// either vector has zero norm). The fuzzy matcher's distance measure;
/// profiles here are non-negative, so scores land in `[0, 1]`.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let (mut dot, mut na, mut nb) = (0.0f64, 0.0f64, 0.0f64);
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// The pairwise mappable table `primary marker → target marker` for one
/// (primary, target) binary pair: [`find_mappable_points`] on just the
/// pair, plus inline recovery. A pairwise table is always a superset of
/// the all-binaries table — dropping binaries can only relax the
/// match-everywhere constraint.
fn pair_table(
    primary: &Binary,
    primary_prof: &CallLoopProfile,
    target: &Binary,
    target_prof: &CallLoopProfile,
) -> BTreeMap<MarkerRef, MarkerRef> {
    let bins = [primary, target];
    let profs = [primary_prof, target_prof];
    let mut set = find_mappable_points(&bins, &profs);
    recover_inlined(&bins, &profs, &mut set);
    set.points
        .iter()
        .map(|p| (p.per_binary[0], p.per_binary[1]))
        .collect()
}

/// The extended marker filter for fuzzy VLI cutting: the union over all
/// non-primary binaries of the primary-side markers of each *pairwise*
/// mappable table. Sorted and deduplicated.
///
/// Cutting by this union keeps intervals near the target size even when
/// one marker-destroyed binary would empty the global intersection —
/// boundaries then translate exactly into the binaries whose pairwise
/// table has them, and fall back to fuzzy matching elsewhere.
pub fn extended_markers(
    binaries: &[&Binary],
    profiles: &[CallLoopProfile],
    primary: usize,
) -> Vec<MarkerRef> {
    let mut union: BTreeSet<MarkerRef> = BTreeSet::new();
    for b in 0..binaries.len() {
        if b == primary {
            continue;
        }
        union.extend(
            pair_table(
                binaries[primary],
                &profiles[primary],
                binaries[b],
                &profiles[b],
            )
            .keys(),
        );
    }
    union.into_iter().collect()
}

/// The shared observable space for one (primary, target) pair: one
/// dimension per procedure name present in *both* binaries' symbol
/// tables, followed by one dimension per program array. Array access
/// counts are a semantic invariant that survives even aggressive
/// inlining and loop splitting; shared names survive for every
/// procedure the optimizer keeps. A procedure whose name exists in
/// only one binary (it was inlined away in the other) attributes its
/// mass to the nearest caller with a shared name — mirroring where
/// that code physically lives in the other binary — so an inlined-away
/// callee's mass lands on the same dimension in both profiles instead
/// of scoring as orthogonal noise.
struct SharedSpace {
    /// `proc name → dimension`, shared names only (plus both mains).
    name_dims: BTreeMap<String, usize>,
    /// Number of name dimensions (array dims follow).
    names: usize,
    /// Total dimensionality: `names + arrays`.
    dims: usize,
}

impl SharedSpace {
    fn new(primary: &Binary, target: &Binary) -> Self {
        let a: BTreeSet<&str> = primary.procs.iter().map(|p| p.name.as_str()).collect();
        let b: BTreeSet<&str> = target.procs.iter().map(|p| p.name.as_str()).collect();
        let mut name_dims = BTreeMap::new();
        for name in a.intersection(&b) {
            let next = name_dims.len();
            name_dims.entry(name.to_string()).or_insert(next);
        }
        // `main` is never inlined away, but guard the fallback anchor
        // anyway: both entry procedures always get a dimension.
        for bin in [primary, target] {
            let next = name_dims.len();
            name_dims
                .entry(bin.procs[bin.main_proc.index()].name.clone())
                .or_insert(next);
        }
        let names = name_dims.len();
        let arrays = primary.layout.arrays.len().max(target.layout.arrays.len());
        SharedSpace {
            name_dims,
            names,
            dims: names + arrays,
        }
    }

    /// Per-proc `BinProcId index → name dimension` lookup for `binary`.
    /// Procedures without a shared name walk up `binary`'s static call
    /// graph (breadth-first, so the *nearest* shared caller wins;
    /// ascending ids break ties deterministically) and fall back to the
    /// entry procedure's dimension.
    fn proc_dims(&self, binary: &Binary) -> Vec<usize> {
        let graph = CallGraph::of(binary);
        let main_dim = self.name_dims[&binary.procs[binary.main_proc.index()].name];
        binary
            .procs
            .iter()
            .enumerate()
            .map(|(i, p)| {
                if let Some(&d) = self.name_dims.get(&p.name) {
                    return d;
                }
                let mut seen = vec![false; binary.procs.len()];
                seen[i] = true;
                let mut queue: std::collections::VecDeque<usize> =
                    graph.callers[i].iter().map(|c| c.index()).collect();
                while let Some(c) = queue.pop_front() {
                    if seen[c] {
                        continue;
                    }
                    seen[c] = true;
                    if let Some(&d) = self.name_dims.get(&binary.procs[c].name) {
                        return d;
                    }
                    queue.extend(graph.callers[c].iter().map(|x| x.index()));
                }
                main_dim
            })
            .collect()
    }

    /// Projects one primary-binary interval BBV into the shared space:
    /// instruction mass by containing procedure name, array access mass
    /// by target array (block entries × per-entry op counts).
    fn project_bbv(&self, binary: &Binary, proc_dims: &[usize], bbv: &[f64]) -> Vec<f64> {
        let mut hot = vec![0.0f64; self.dims];
        for (i, &mass) in bbv.iter().enumerate() {
            if mass <= 0.0 {
                continue;
            }
            let block = &binary.blocks[i];
            hot[proc_dims[block.proc.index()]] += mass;
            if block.instrs > 0 {
                let entries = mass / block.instrs as f64;
                for op in &block.ops {
                    hot[self.names + op.array.index()] += entries * op.count as f64;
                }
            }
        }
        normalize_families(&mut hot, self.names);
        hot
    }
}

/// L1-normalizes the two profile families in place — name mass
/// (`hot[..names]`) and array mass (`hot[names..]`) — to 0.5 each, so
/// neither family's absolute scale dominates the cosine. A family with
/// zero mass is left at zero (mirrors `BbvMavFeatures`).
fn normalize_families(hot: &mut [f64], names: usize) {
    let (name_family, array_family) = hot.split_at_mut(names);
    for family in [name_family, array_family] {
        let mass: f64 = family.iter().sum();
        if mass > 0.0 {
            for x in family.iter_mut() {
                *x *= 0.5 / mass;
            }
        }
    }
}

/// One instrumented replay of a target binary: records the instruction
/// offset of every watched (translated) boundary point and accumulates
/// fixed-size profile chunks in the shared observable space (plus MAVs
/// when the estimator lane wants them).
struct ChunkSink<'a> {
    bin: &'a Binary,
    proc_dims: Vec<usize>,
    names: usize,
    chunk_size: u64,
    record_mav: bool,
    mav: MavBuilder,
    counts: MarkerCounts,
    /// `(marker, count) → boundary index` for translated boundaries.
    watch: BTreeMap<(MarkerRef, u64), usize>,
    /// Instruction offset at which each watched boundary fired.
    offsets: Vec<Option<u64>>,
    instrs_total: u64,
    cur: Vec<f64>,
    cur_instrs: u64,
    chunks: Vec<Vec<f64>>,
    chunk_mavs: Vec<Vec<f64>>,
    /// Cumulative instruction offset at each chunk's end.
    chunk_ends: Vec<u64>,
}

impl<'a> ChunkSink<'a> {
    fn new(
        bin: &'a Binary,
        space: &SharedSpace,
        translated: &[Option<ExecPoint>],
        chunk_size: u64,
        record_mav: bool,
    ) -> Self {
        let mut watch = BTreeMap::new();
        for (i, t) in translated.iter().enumerate() {
            if let Some(pt) = t {
                watch.insert((pt.marker, pt.count), i);
            }
        }
        ChunkSink {
            bin,
            proc_dims: space.proc_dims(bin),
            names: space.names,
            chunk_size: chunk_size.max(1),
            record_mav,
            mav: MavBuilder::new(),
            counts: MarkerCounts::for_binary(bin),
            watch,
            offsets: vec![None; translated.len()],
            instrs_total: 0,
            cur: vec![0.0; space.dims],
            cur_instrs: 0,
            chunks: Vec::new(),
            chunk_mavs: Vec::new(),
            chunk_ends: Vec::new(),
        }
    }

    fn close_chunk(&mut self) {
        let dims = self.cur.len();
        self.chunks
            .push(std::mem::replace(&mut self.cur, vec![0.0; dims]));
        self.chunk_mavs.push(if self.record_mav {
            self.mav.take_interval()
        } else {
            Vec::new()
        });
        self.chunk_ends.push(self.instrs_total);
        self.cur_instrs = 0;
    }

    fn finish(&mut self) {
        if self.cur_instrs > 0 || self.chunks.is_empty() {
            self.close_chunk();
        }
    }
}

impl TraceSink for ChunkSink<'_> {
    fn on_block(&mut self, block: BlockId, instrs: u64) {
        let b = &self.bin.blocks[block.index()];
        self.cur[self.proc_dims[b.proc.index()]] += instrs as f64;
        for op in &b.ops {
            self.cur[self.names + op.array.index()] += op.count as f64;
        }
        self.instrs_total += instrs;
        self.cur_instrs += instrs;
        if self.cur_instrs >= self.chunk_size {
            self.close_chunk();
        }
    }

    fn on_access(&mut self, addr: u64, is_write: bool) {
        if self.record_mav {
            self.mav.observe(addr, is_write);
        }
    }

    fn on_marker(&mut self, marker: Marker) {
        if self.watch.is_empty() {
            return;
        }
        let count = self.counts.observe(marker);
        if let Some(&i) = self.watch.get(&(MarkerRef::from(marker), count)) {
            self.offsets[i] = Some(self.instrs_total);
        }
    }
}

/// Fills untranslatable boundary offsets by linear interpolation of the
/// primary's instruction positions between the nearest translated
/// neighbours (run start and end act as virtual anchors), then clamps
/// the result to be non-decreasing and within `[0, total_b]`.
fn interpolate_offsets(
    recorded: &[Option<u64>],
    primary_pos: &[u64],
    total_p: u64,
    total_b: u64,
) -> Vec<u64> {
    let n = recorded.len();
    let mut filled = Vec::with_capacity(n);
    let mut prev: (u64, u64) = (0, 0); // (primary position, target offset)
    for i in 0..n {
        let off = match recorded[i] {
            Some(o) => {
                prev = (primary_pos[i], o);
                o
            }
            None => {
                // Next translated anchor, or the virtual run end.
                let next = (i + 1..n)
                    .find_map(|j| recorded[j].map(|o| (primary_pos[j], o)))
                    .unwrap_or((total_p, total_b));
                let span_p = next.0.saturating_sub(prev.0);
                if span_p == 0 {
                    prev.1
                } else {
                    let frac = primary_pos[i].saturating_sub(prev.0) as f64 / span_p as f64;
                    prev.1 + (frac * next.1.saturating_sub(prev.1) as f64).round() as u64
                }
            }
        };
        let off = off.max(filled.last().copied().unwrap_or(0)).min(total_b);
        filled.push(off);
    }
    filled
}

/// Rough serial cost of [`map_stage_fuzzy`] for `Pool::for_work`
/// gating: every non-primary binary is replayed once for chunk
/// profiling (~2 ns per instruction with the profile bookkeeping) plus
/// the cosine sweeps (bounded by `MAX_CHUNKS` windows per point).
fn fuzzy_cost_estimate_ns(total_instrs: u64, n_binaries: usize) -> u64 {
    total_instrs.saturating_mul(2 * n_binaries.saturating_sub(1) as u64)
}

/// Two windows whose cosine similarities differ by less than this are
/// treated as tied and resolved by proximity to the interpolated
/// expected position. Repeated code (a split loop's halves, a phase
/// that recurs at startup and mid-run) produces *exact*-looking ties;
/// without the locality prior the search would pick the earliest
/// occurrence — often the program's cold-cache start — and a window
/// whose feature profile is perfect but whose timing is not.
const SIMILARITY_TIE_EPS: f64 = 1e-6;

/// The similarity window search for one simulation point: slides a
/// `win`-chunk window over chunk starts in `[lo_chunk, hi_chunk - win]`
/// and returns the window with the highest cosine similarity against
/// `region_feat`. Windows within [`SIMILARITY_TIE_EPS`] of the best
/// score are tied; the tie goes to the window whose start chunk is
/// closest to `expected_chunk` (the region's interpolated position),
/// then to the earliest — both rules are deterministic, so results
/// stay byte-identical at any thread count. `None` when the range
/// cannot fit a window.
#[allow(clippy::too_many_arguments)]
fn best_window(
    region_feat: &[f64],
    cum_hot: &[Vec<f64>],
    cum_mav: &[Vec<f64>],
    names: usize,
    builder: &dyn FeatureBuilder,
    lo_chunk: usize,
    hi_chunk: usize,
    win: usize,
    expected_chunk: usize,
) -> Option<(usize, f64)> {
    if win == 0 || hi_chunk < lo_chunk + win {
        return None;
    }
    let mav_dims = cum_mav[0].len();
    let mut scores: Vec<(usize, f64)> = Vec::with_capacity(hi_chunk - lo_chunk - win + 1);
    let mut top = f64::NEG_INFINITY;
    for c0 in lo_chunk..=hi_chunk - win {
        let mut hot: Vec<f64> = cum_hot[c0 + win]
            .iter()
            .zip(&cum_hot[c0])
            .map(|(a, b)| a - b)
            .collect();
        normalize_families(&mut hot, names);
        let mav: Vec<f64> = (0..mav_dims)
            .map(|d| cum_mav[c0 + win][d] - cum_mav[c0][d])
            .collect();
        let feat = builder.features(&hot, &mav);
        let sim = cosine_similarity(region_feat, &feat);
        top = top.max(sim);
        scores.push((c0, sim));
    }
    scores
        .into_iter()
        .filter(|&(_, sim)| sim >= top - SIMILARITY_TIE_EPS)
        .min_by_key(|&(c0, _)| (c0.abs_diff(expected_chunk), c0))
}

/// Pipeline steps 5–6 with the fuzzy fallback (the `--fuzzy-map` lane's
/// replacement for [`map_stage`](crate::map_stage)).
///
/// For each non-primary binary: build the pairwise mappable table,
/// translate every VLI boundary it covers, replay the binary once to
/// record translated-boundary offsets and chunked shared-space
/// profiles, interpolate the untranslatable offsets for interval
/// instruction counts and phase weights, and resolve each simulation
/// point to [`SimpointMapping::Exact`] (both endpoints translated),
/// `Fuzzy` (best window clears `config.fuzzy`'s threshold) or
/// `Unmapped`. Untranslatable entries of the returned `boundaries` hold
/// [`UNMAPPED_BOUNDARY`].
///
/// Infallible where the exact stage errors on unmappable boundaries —
/// unmappable is an expected outcome here, not an invariant violation.
/// Results are byte-identical at any thread count.
pub fn map_stage_fuzzy(
    binaries: &[&Binary],
    input: &Input,
    profiles: &[CallLoopProfile],
    vli: &VliProfile,
    simpoint: &SimPointResult,
    config: &CbspConfig,
    pool: &Pool,
) -> MappedSlicing {
    let _span = cbsp_trace::span("stage/map-fuzzy");
    let fuzzy = config.fuzzy.unwrap_or_default();
    let primary = config.primary;
    let instrs: Vec<u64> = vli.intervals.iter().map(|i| i.instrs).collect();
    let n_intervals = vli.intervals.len();
    let total_p: u64 = instrs.iter().sum();
    // Primary-execution position of each boundary: boundary `i` ends
    // interval `i`, so it sits after intervals `0..=i`.
    let mut primary_pos = Vec::with_capacity(vli.boundaries.len());
    let mut acc = 0u64;
    for &n in instrs.iter().take(vli.boundaries.len()) {
        acc += n;
        primary_pos.push(acc);
    }
    let k = simpoint
        .points
        .iter()
        .map(|p| p.phase as usize + 1)
        .max()
        .unwrap_or(1);
    let wants_mav = config.estimator.features.wants_mav();

    let est_ns = fuzzy_cost_estimate_ns(total_p, binaries.len());
    let per_binary = pool.for_work(est_ns).run_indexed(binaries.len(), |b| {
        if b == primary {
            let mut slices = instrs.clone();
            slices.resize(n_intervals, 0);
            let w = phase_weights(&slices, &simpoint.labels, k);
            let mappings = vec![SimpointMapping::Exact; simpoint.points.len()];
            return (vli.boundaries.clone(), slices, w, mappings);
        }
        let builder = config.estimator.features.builder();
        let table = pair_table(
            binaries[primary],
            &profiles[primary],
            binaries[b],
            &profiles[b],
        );
        let translated: Vec<Option<ExecPoint>> = vli
            .boundaries
            .iter()
            .map(|bp| {
                table.get(&bp.marker).map(|&m| ExecPoint {
                    marker: m,
                    count: bp.count,
                })
            })
            .collect();

        let total_b = profiles[b].instructions;
        let rho = if total_p > 0 {
            total_b as f64 / total_p as f64
        } else {
            1.0
        };
        let chunk_size =
            ((config.interval_target as f64 * rho / CHUNKS_PER_INTERVAL as f64).round() as u64)
                .max(total_b / MAX_CHUNKS + 1);

        let space = SharedSpace::new(binaries[primary], binaries[b]);
        let mut sink = ChunkSink::new(binaries[b], &space, &translated, chunk_size, wants_mav);
        run(binaries[b], input, &mut sink);
        sink.finish();

        let filled = interpolate_offsets(&sink.offsets, &primary_pos, total_p, total_b);

        // Prefix sums over the chunk profiles for O(dims) window sums.
        let nchunks = sink.chunks.len();
        let mav_dims = sink.chunk_mavs.iter().map(|m| m.len()).max().unwrap_or(0);
        let mut cum_hot = vec![vec![0.0f64; space.dims]];
        let mut cum_mav = vec![vec![0.0f64; mav_dims]];
        for c in 0..nchunks {
            let mut h = cum_hot[c].clone();
            for (d, x) in sink.chunks[c].iter().enumerate() {
                h[d] += x;
            }
            cum_hot.push(h);
            let mut m = cum_mav[c].clone();
            for (d, x) in sink.chunk_mavs[c].iter().enumerate() {
                m[d] += x;
            }
            cum_mav.push(m);
        }

        let proc_dims_p = space.proc_dims(binaries[primary]);
        let nb = translated.len();
        let mappings: Vec<SimpointMapping> = simpoint
            .points
            .iter()
            .map(|pt| {
                let r = pt.interval;
                let start_known = r == 0 || translated[r - 1].is_some();
                let end_known = r >= nb || translated[r].is_some();
                if start_known && end_known {
                    return SimpointMapping::Exact;
                }
                // Bracket the search between the nearest *recorded*
                // offsets around the region (run start/end otherwise).
                let lo_off = (0..r.min(nb))
                    .rev()
                    .find_map(|j| sink.offsets[j])
                    .unwrap_or(0);
                let hi_off = (r..nb).find_map(|j| sink.offsets[j]).unwrap_or(total_b);
                let lo_chunk = sink.chunk_ends.partition_point(|&e| e <= lo_off);
                let hi_chunk = sink
                    .chunk_ends
                    .partition_point(|&e| e < hi_off)
                    .saturating_add(1)
                    .min(nchunks);
                let len_b = instrs[r] as f64 * rho;
                let span = hi_chunk.saturating_sub(lo_chunk);
                let win =
                    ((len_b / chunk_size.max(1) as f64).round() as usize).clamp(1, span.max(1));
                // Where interpolation expects the region to start: the
                // locality prior that resolves similarity ties between
                // repeated occurrences of the same code.
                let expected_off = if r == 0 { 0 } else { filled[r - 1] };
                let expected_chunk = sink.chunk_ends.partition_point(|&e| e <= expected_off);
                let region_feat = {
                    let hot =
                        space.project_bbv(binaries[primary], &proc_dims_p, &vli.intervals[r].bbv);
                    builder.features(&hot, vli.mav(r))
                };
                match best_window(
                    &region_feat,
                    &cum_hot,
                    &cum_mav,
                    space.names,
                    builder.as_ref(),
                    lo_chunk,
                    hi_chunk,
                    win,
                    expected_chunk,
                ) {
                    Some((c0, confidence)) if confidence >= fuzzy.threshold => {
                        let start = if c0 == 0 { 0 } else { sink.chunk_ends[c0 - 1] };
                        SimpointMapping::Fuzzy {
                            confidence,
                            start,
                            end: sink.chunk_ends[c0 + win - 1],
                        }
                    }
                    _ => SimpointMapping::Unmapped,
                }
            })
            .collect();

        // A matched window is itself a time correspondence: it pins
        // the target-binary offsets of the region's boundaries far
        // more reliably than linear interpolation between distant
        // surviving markers. Feed the matches back as anchors and
        // re-interpolate before deriving interval slices and phase
        // weights, so the weight a lost phase carries reflects where
        // similarity *found* it rather than where interpolation
        // guessed it. Two safeguards: (1) repeated code can place two
        // windows out of interval order, and anchoring both would
        // corrupt the whole interpolation (non-decreasing clamping
        // flattens every boundary between them), so only the longest
        // interval-ordered subsequence with non-decreasing starts is
        // anchored; (2) a kept match overrides even a *recorded*
        // boundary of its own region — a marker that survives a
        // marker-destroying transform often fires at a different rate
        // (a split loop's back-edge counts drift), so its recorded
        // offset can be wildly wrong, while the window is direct
        // evidence of where the region ran. Recorded offsets away
        // from fuzzy regions are kept verbatim, and with no fuzzy
        // points the anchors equal the recorded offsets, so the
        // slices — hence the weights — are byte-identical to the
        // exact map stage.
        let mut matched: Vec<(usize, u64, u64)> = simpoint
            .points
            .iter()
            .zip(&mappings)
            .filter_map(|(pt, m)| match *m {
                SimpointMapping::Fuzzy { start, end, .. } => Some((pt.interval, start, end)),
                _ => None,
            })
            .collect();
        matched.sort_unstable_by_key(|&(r, _, _)| r);
        let mut anchors = sink.offsets.clone();
        let mut fed = vec![false; anchors.len()];
        for i in longest_ordered_subsequence(&matched) {
            let (r, start, end) = matched[i];
            if r >= 1 && !fed[r - 1] {
                anchors[r - 1] = Some(start);
                fed[r - 1] = true;
            }
            if r < nb && !fed[r] {
                anchors[r] = Some(end);
                fed[r] = true;
            }
        }
        let refined = interpolate_offsets(&anchors, &primary_pos, total_p, total_b);
        let mut slices = Vec::with_capacity(refined.len() + 1);
        let mut prev = 0u64;
        for &o in &refined {
            slices.push(o - prev);
            prev = o;
        }
        slices.push(total_b - prev);
        slices.resize(n_intervals, 0);
        let w = phase_weights(&slices, &simpoint.labels, k);

        let bounds: Vec<ExecPoint> = translated
            .into_iter()
            .map(|t| t.unwrap_or(UNMAPPED_BOUNDARY))
            .collect();
        (bounds, slices, w, mappings)
    });

    let mut boundaries = Vec::with_capacity(binaries.len());
    let mut interval_instrs = Vec::with_capacity(binaries.len());
    let mut weights = Vec::with_capacity(binaries.len());
    let mut mappings = Vec::with_capacity(binaries.len());
    for (bounds, slices, w, m) in per_binary {
        boundaries.push(bounds);
        interval_instrs.push(slices);
        weights.push(w);
        mappings.push(m);
    }

    MappedSlicing {
        boundaries,
        interval_instrs,
        weights,
        mappings,
    }
}

/// Indices of the longest subsequence of `matched` (already sorted by
/// interval) whose window start offsets are non-decreasing — the
/// largest mutually consistent set of fuzzy matches to use as
/// interpolation anchors. Ties go to the earliest indices, so the
/// result is deterministic at any thread count. O(n²) in the number of
/// fuzzy simulation points, which is tiny.
fn longest_ordered_subsequence(matched: &[(usize, u64, u64)]) -> Vec<usize> {
    let n = matched.len();
    if n == 0 {
        return Vec::new();
    }
    let mut len = vec![1usize; n];
    let mut prev = vec![usize::MAX; n];
    let mut best = 0usize;
    for i in 0..n {
        for j in 0..i {
            if matched[j].1 <= matched[i].1 && len[j] + 1 > len[i] {
                len[i] = len[j] + 1;
                prev[i] = j;
            }
        }
        if len[i] > len[best] {
            best = i;
        }
    }
    let mut out = Vec::with_capacity(len[best]);
    let mut cur = best;
    loop {
        out.push(cur);
        if prev[cur] == usize::MAX {
            break;
        }
        cur = prev[cur];
    }
    out.reverse();
    out
}

/// Phase weights from per-interval instruction counts (the same
/// recalculation the exact map stage performs).
fn phase_weights(slices: &[u64], labels: &[u32], k: usize) -> Vec<f64> {
    let total: u64 = slices.iter().sum();
    let mut w = vec![0.0f64; k];
    for (i, &label) in labels.iter().enumerate() {
        w[label as usize] += slices[i] as f64;
    }
    if total > 0 {
        for x in w.iter_mut() {
            *x /= total as f64;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_basics() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn family_normalization_balances_masses() {
        let mut hot = vec![3.0, 1.0, 10.0, 30.0];
        normalize_families(&mut hot, 2);
        let names: f64 = hot[..2].iter().sum();
        let arrays: f64 = hot[2..].iter().sum();
        assert!((names - 0.5).abs() < 1e-12);
        assert!((arrays - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_family_stays_zero() {
        let mut hot = vec![2.0, 2.0, 0.0, 0.0];
        normalize_families(&mut hot, 2);
        assert_eq!(&hot[2..], &[0.0, 0.0]);
        assert!((hot[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn interpolation_fills_between_anchors() {
        // Boundaries at primary positions 100, 200, 300 of a 400-instr
        // run; only the middle one translated (offset 60 of 120).
        let filled = interpolate_offsets(&[None, Some(60), None], &[100, 200, 300], 400, 120);
        assert_eq!(filled, vec![30, 60, 90]);
    }

    #[test]
    fn interpolation_is_monotone_and_clamped() {
        let filled = interpolate_offsets(&[Some(50), Some(40), None], &[10, 20, 30], 40, 100);
        assert!(filled.windows(2).all(|w| w[0] <= w[1]));
        assert!(*filled.last().unwrap() <= 100);
    }

    #[test]
    fn best_window_ties_break_to_the_expected_position() {
        // Two identical chunks: both windows score 1.0 against the
        // region. The tie must go to the window nearest the
        // interpolated expected position — repeated code (split loops,
        // a startup phase recurring mid-run) produces exactly this
        // kind of tie, and "earliest" would pick the cold-start copy.
        let chunk = vec![0.5, 0.5];
        let cum = vec![vec![0.0, 0.0], vec![0.5, 0.5], vec![1.0, 1.0]];
        let cum_mav = vec![vec![]; 3];
        let builder = cbsp_simpoint::FeatureKind::Bbv.builder();
        for expected in [0usize, 1] {
            let got = best_window(
                &chunk,
                &cum,
                &cum_mav,
                1,
                builder.as_ref(),
                0,
                2,
                1,
                expected,
            );
            let (c0, sim) = got.expect("windows exist");
            assert_eq!(c0, expected, "tie must follow the locality prior");
            assert!((sim - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn below_threshold_window_reports_unmapped_semantics() {
        // Orthogonal profiles: similarity 0 < any positive threshold.
        let region = vec![1.0, 0.0];
        let cum = vec![vec![0.0, 0.0], vec![0.0, 1.0]];
        let cum_mav = vec![vec![]; 2];
        let builder = cbsp_simpoint::FeatureKind::Bbv.builder();
        let (_, sim) = best_window(&region, &cum, &cum_mav, 1, builder.as_ref(), 0, 1, 1, 0)
            .expect("one window");
        assert!(sim < FuzzyConfig::DEFAULT_THRESHOLD);
    }

    #[test]
    fn mapping_stats_aggregate() {
        let table = vec![
            vec![SimpointMapping::Exact, SimpointMapping::Exact],
            vec![
                SimpointMapping::Fuzzy {
                    confidence: 0.8,
                    start: 0,
                    end: 10,
                },
                SimpointMapping::Unmapped,
            ],
        ];
        let s = mapping_stats(&table);
        assert_eq!((s.exact, s.fuzzy, s.unmapped), (2, 1, 1));
        assert!((s.mean_confidence - 0.8).abs() < 1e-12);
        assert!((s.mapped_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SimpointMapping::Exact.to_string(), "exact");
        assert_eq!(SimpointMapping::Unmapped.to_string(), "unmapped");
        let f = SimpointMapping::Fuzzy {
            confidence: 0.875,
            start: 0,
            end: 4,
        };
        assert_eq!(f.to_string(), "fuzzy(0.875)");
        assert_eq!(f.kind(), "fuzzy");
        assert_eq!(f.confidence(), Some(0.875));
        assert!(f.is_mapped());
        assert!(!SimpointMapping::Unmapped.is_mapped());
    }
}
