//! The per-binary SimPoint baseline (paper §2).
//!
//! Classic SimPoint applied independently to each binary: fixed-length
//! intervals, per-binary BBVs, per-binary clustering and simulation
//! points. Accurate for each binary against its own full run, but its
//! sampling bias is *not* consistent across binaries — the failure mode
//! the cross-binary technique fixes (§2.4, §5.2).

use cbsp_profile::{profile_fli, Interval, PinPointsFile, RegionBound, SimRegion};
use cbsp_program::{Binary, Input};
use cbsp_simpoint::{analyze, SimPointConfig, SimPointResult};

/// Result of a per-binary (FLI) SimPoint analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct PerBinaryResult {
    /// The profiled fixed-length intervals.
    pub intervals: Vec<Interval>,
    /// SimPoint clustering of those intervals.
    pub simpoint: SimPointResult,
    /// Interval size target used.
    pub interval_target: u64,
}

impl PerBinaryResult {
    /// Number of intervals.
    pub fn interval_count(&self) -> usize {
        self.intervals.len()
    }

    /// Starting dynamic instruction offset of interval `i` (intervals
    /// partition the run contiguously).
    pub fn interval_start(&self, i: usize) -> u64 {
        self.intervals[..i].iter().map(|iv| iv.instrs).sum()
    }

    /// Builds a PinPoints region file (instruction-offset bounds; valid
    /// only for the binary it was produced from).
    pub fn pinpoints(&self, binary: &Binary, input: &Input) -> PinPointsFile {
        let regions = self
            .simpoint
            .points
            .iter()
            .map(|pt| {
                let start = self.interval_start(pt.interval);
                SimRegion {
                    phase: pt.phase,
                    weight: pt.weight,
                    start: RegionBound::Instr(start),
                    end: RegionBound::Instr(start + self.intervals[pt.interval].instrs),
                }
            })
            .collect();
        PinPointsFile {
            program: binary.program.clone(),
            binary: binary.label(),
            input: input.name.clone(),
            interval_target: self.interval_target,
            regions,
        }
    }
}

/// Runs classic per-binary SimPoint on one binary.
///
/// # Panics
///
/// Panics if `interval_target` is zero.
pub fn run_per_binary(
    binary: &Binary,
    input: &Input,
    interval_target: u64,
    config: &SimPointConfig,
) -> PerBinaryResult {
    let intervals = profile_fli(binary, input, interval_target);
    let vectors: Vec<Vec<f64>> = intervals.iter().map(|i| i.bbv.clone()).collect();
    let instrs: Vec<u64> = intervals.iter().map(|i| i.instrs).collect();
    let simpoint = analyze(&vectors, &instrs, config);
    PerBinaryResult {
        intervals,
        simpoint,
        interval_target,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbsp_program::{compile, workloads, CompileTarget, Scale};

    #[test]
    fn per_binary_analysis_is_well_formed() {
        let prog = workloads::by_name("art")
            .expect("in suite")
            .build(Scale::Test);
        let bin = compile(&prog, CompileTarget::W32_O2);
        let input = Input::test();
        let r = run_per_binary(&bin, &input, 20_000, &SimPointConfig::default());
        assert!(r.interval_count() > 3);
        assert!((r.simpoint.total_weight() - 1.0).abs() < 1e-9);
        assert!(r.simpoint.k >= 1 && r.simpoint.k <= 10);
        let pp = r.pinpoints(&bin, &input);
        assert_eq!(pp.validate(), Ok(()));
    }

    #[test]
    fn interval_start_offsets_are_cumulative() {
        let prog = workloads::by_name("gzip")
            .expect("in suite")
            .build(Scale::Test);
        let bin = compile(&prog, CompileTarget::W64_O0);
        let r = run_per_binary(&bin, &Input::test(), 30_000, &SimPointConfig::default());
        assert_eq!(r.interval_start(0), 0);
        for i in 1..r.interval_count() {
            assert_eq!(
                r.interval_start(i),
                r.interval_start(i - 1) + r.intervals[i - 1].instrs
            );
        }
    }

    #[test]
    fn different_binaries_may_cluster_differently() {
        // Not asserted as a hard property (they *can* agree), but the
        // machinery must at least produce independent results per binary.
        let prog = workloads::by_name("gcc")
            .expect("in suite")
            .build(Scale::Test);
        let input = Input::test();
        let a = run_per_binary(
            &compile(&prog, CompileTarget::W32_O0),
            &input,
            20_000,
            &SimPointConfig::default(),
        );
        let b = run_per_binary(
            &compile(&prog, CompileTarget::W32_O2),
            &input,
            20_000,
            &SimPointConfig::default(),
        );
        // -O0 executes ~3x the instructions: more intervals.
        assert!(a.interval_count() > b.interval_count());
    }
}
