//! Performance extrapolation and error metrics (paper §2.3 step 6 and
//! §5.2).
//!
//! A SimPoint estimate of a whole-program metric is the weighted
//! average of the metric over the simulation points. Speedup between
//! two binaries is the ratio of their total cycles; the paper's
//! speedup-error metric is `|(S_true − S_est) / S_true|`.

use cbsp_simpoint::SimPoint;

/// Whole-program estimate of any per-instruction metric (CPI, MPKI,
/// miss rate, ...) from simulation points, using each point's own
/// weight (paper §2.3 step 6: "SimPoint computes a weighted average for
/// the architecture metric of interest (CPI, miss rate, etc.)").
///
/// `interval_values[i]` is the metric measured on interval `i`.
pub fn weighted_metric(points: &[SimPoint], interval_values: &[f64]) -> f64 {
    points
        .iter()
        .map(|p| p.weight * interval_values[p.interval])
        .sum()
}

/// [`weighted_metric`] with externally recalculated phase weights (the
/// cross-binary scheme, §3.2.6): `phase_weights[phase]` replaces each
/// point's stored weight.
pub fn weighted_metric_with(
    points: &[SimPoint],
    phase_weights: &[f64],
    interval_values: &[f64],
) -> f64 {
    points
        .iter()
        .map(|p| phase_weights[p.phase as usize] * interval_values[p.interval])
        .sum()
}

/// Whole-program CPI estimate from simulation points, using each
/// point's own weight (the per-binary SimPoint scheme).
///
/// `interval_cpis[i]` is the measured CPI of interval `i`.
pub fn weighted_cpi(points: &[SimPoint], interval_cpis: &[f64]) -> f64 {
    weighted_metric(points, interval_cpis)
}

/// Whole-program CPI estimate with externally recalculated phase
/// weights (the cross-binary scheme, §3.2.6): `phase_weights[phase]`
/// replaces each point's stored weight.
pub fn weighted_cpi_with(points: &[SimPoint], phase_weights: &[f64], interval_cpis: &[f64]) -> f64 {
    weighted_metric_with(points, phase_weights, interval_cpis)
}

/// Relative error `|true − estimate| / true` (0 when `true` is 0).
pub fn relative_error(true_value: f64, estimate: f64) -> f64 {
    if true_value == 0.0 {
        0.0
    } else {
        (true_value - estimate).abs() / true_value.abs()
    }
}

/// Speedup of `new` over `base`: `cycles_base / cycles_new`.
///
/// Greater than 1 means `new` is faster.
pub fn speedup(cycles_base: f64, cycles_new: f64) -> f64 {
    if cycles_new == 0.0 {
        0.0
    } else {
        cycles_base / cycles_new
    }
}

/// The paper's speedup-error metric:
/// `|(TrueSpeedup − EstimatedSpeedup) / TrueSpeedup|`.
pub fn speedup_error(true_speedup: f64, estimated_speedup: f64) -> f64 {
    relative_error(true_speedup, estimated_speedup)
}

/// Estimated total cycles of a binary from its CPI estimate and true
/// instruction count.
pub fn estimated_cycles(cpi_estimate: f64, instructions: u64) -> f64 {
    cpi_estimate * instructions as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<SimPoint> {
        vec![
            SimPoint {
                phase: 0,
                interval: 2,
                weight: 0.7,
                variance: 0.0,
            },
            SimPoint {
                phase: 1,
                interval: 5,
                weight: 0.3,
                variance: 0.0,
            },
        ]
    }

    #[test]
    fn weighted_cpi_uses_point_weights() {
        let cpis = vec![0.0, 0.0, 2.0, 0.0, 0.0, 4.0];
        let est = weighted_cpi(&pts(), &cpis);
        assert!((est - (0.7 * 2.0 + 0.3 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn weighted_cpi_with_overrides_weights() {
        let cpis = vec![0.0, 0.0, 2.0, 0.0, 0.0, 4.0];
        let est = weighted_cpi_with(&pts(), &[0.5, 0.5], &cpis);
        assert!((est - 3.0).abs() < 1e-12);
    }

    #[test]
    fn error_metrics() {
        assert!((relative_error(4.0, 5.0) - 0.25).abs() < 1e-12);
        assert_eq!(relative_error(0.0, 5.0), 0.0);
        assert!((speedup(300.0, 100.0) - 3.0).abs() < 1e-12);
        assert!((speedup_error(2.0, 1.8) - 0.1).abs() < 1e-12);
        assert_eq!(estimated_cycles(2.5, 1000), 2500.0);
    }

    #[test]
    fn perfect_estimates_have_zero_error() {
        assert_eq!(speedup_error(1.7, 1.7), 0.0);
        assert_eq!(relative_error(3.3, 3.3), 0.0);
    }
}
