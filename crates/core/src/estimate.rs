//! Performance extrapolation and error metrics (paper §2.3 step 6 and
//! §5.2).
//!
//! A SimPoint estimate of a whole-program metric is the weighted
//! average of the metric over the simulation points. Speedup between
//! two binaries is the ratio of their total cycles; the paper's
//! speedup-error metric is `|(S_true − S_est) / S_true|`.

use cbsp_simpoint::SimPoint;

/// Whole-program estimate of any per-instruction metric (CPI, MPKI,
/// miss rate, ...) from simulation points, using each point's own
/// weight (paper §2.3 step 6: "SimPoint computes a weighted average for
/// the architecture metric of interest (CPI, miss rate, etc.)").
///
/// `interval_values[i]` is the metric measured on interval `i`.
pub fn weighted_metric(points: &[SimPoint], interval_values: &[f64]) -> f64 {
    points
        .iter()
        .map(|p| p.weight * interval_values[p.interval])
        .sum()
}

/// [`weighted_metric`] with externally recalculated phase weights (the
/// cross-binary scheme, §3.2.6): `phase_weights[phase]` replaces each
/// point's stored weight.
pub fn weighted_metric_with(
    points: &[SimPoint],
    phase_weights: &[f64],
    interval_values: &[f64],
) -> f64 {
    points
        .iter()
        .map(|p| phase_weights[p.phase as usize] * p.share * interval_values[p.interval])
        .sum()
}

/// Whole-program CPI estimate from simulation points, using each
/// point's own weight (the per-binary SimPoint scheme).
///
/// `interval_cpis[i]` is the measured CPI of interval `i`.
pub fn weighted_cpi(points: &[SimPoint], interval_cpis: &[f64]) -> f64 {
    weighted_metric(points, interval_cpis)
}

/// Whole-program CPI estimate with externally recalculated phase
/// weights (the cross-binary scheme, §3.2.6): `phase_weights[phase]`
/// replaces each point's stored weight.
pub fn weighted_cpi_with(points: &[SimPoint], phase_weights: &[f64], interval_cpis: &[f64]) -> f64 {
    weighted_metric_with(points, phase_weights, interval_cpis)
}

/// Relative error `|true − estimate| / true` (0 when `true` is 0).
pub fn relative_error(true_value: f64, estimate: f64) -> f64 {
    if true_value == 0.0 {
        0.0
    } else {
        (true_value - estimate).abs() / true_value.abs()
    }
}

/// Speedup of `new` over `base`: `cycles_base / cycles_new`.
///
/// Greater than 1 means `new` is faster.
pub fn speedup(cycles_base: f64, cycles_new: f64) -> f64 {
    if cycles_new == 0.0 {
        0.0
    } else {
        cycles_base / cycles_new
    }
}

/// The paper's speedup-error metric:
/// `|(TrueSpeedup − EstimatedSpeedup) / TrueSpeedup|`.
pub fn speedup_error(true_speedup: f64, estimated_speedup: f64) -> f64 {
    relative_error(true_speedup, estimated_speedup)
}

/// Estimated total cycles of a binary from its CPI estimate and true
/// instruction count.
pub fn estimated_cycles(cpi_estimate: f64, instructions: u64) -> f64 {
    cpi_estimate * instructions as f64
}

/// Normal quantile used for the stratified confidence interval (95%).
pub const STRATIFIED_CI_Z: f64 = 1.96;

/// Half-width of the stratified estimator's confidence interval on a
/// weighted metric (arxiv 2603.22605's two-phase stratified sampling).
///
/// Each phase is a stratum sampled at `m_k` of its `n_k` intervals (the
/// points the stratified selector chose). The estimate's variance is
/// the weighted sum of per-stratum sampling variances with a
/// finite-population correction:
///
/// ```text
/// Var = Σ_k w_k² · (s_k² / m_k) · (1 − m_k / n_k)
/// ```
///
/// where `s_k²` is the sample variance of the phase's representative
/// metric values (0 when `m_k < 2`) and `w_k = phase_weights[k]`. The
/// reported half-width is `z · √Var` with `z =` [`STRATIFIED_CI_Z`].
///
/// Degenerate strata contribute zero width by construction:
/// single-member and singly-sampled phases (`m_k = 1` ⇒ `s_k² = 0`),
/// zero-variance phases (identical metric values), and fully sampled
/// phases (`m_k = n_k` ⇒ the correction vanishes). Single-representative
/// selectors therefore always report a zero-width interval.
pub fn stratified_ci(
    points: &[SimPoint],
    labels: &[u32],
    phase_weights: &[f64],
    interval_values: &[f64],
) -> f64 {
    let mut var = 0.0;
    for (phase, w) in phase_weights.iter().enumerate() {
        let reps: Vec<f64> = points
            .iter()
            .filter(|p| p.phase as usize == phase)
            .map(|p| interval_values[p.interval])
            .collect();
        let m = reps.len();
        if m < 2 {
            continue;
        }
        let n_k = labels.iter().filter(|&&l| l as usize == phase).count();
        let mean = reps.iter().sum::<f64>() / m as f64;
        let s2 = reps.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / (m - 1) as f64;
        let fpc = (1.0 - m as f64 / n_k as f64).max(0.0);
        var += w * w * (s2 / m as f64) * fpc;
    }
    STRATIFIED_CI_Z * var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<SimPoint> {
        vec![
            SimPoint {
                phase: 0,
                interval: 2,
                weight: 0.7,
                share: 1.0,
                variance: 0.0,
            },
            SimPoint {
                phase: 1,
                interval: 5,
                weight: 0.3,
                share: 1.0,
                variance: 0.0,
            },
        ]
    }

    #[test]
    fn weighted_cpi_uses_point_weights() {
        let cpis = vec![0.0, 0.0, 2.0, 0.0, 0.0, 4.0];
        let est = weighted_cpi(&pts(), &cpis);
        assert!((est - (0.7 * 2.0 + 0.3 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn weighted_cpi_with_overrides_weights() {
        let cpis = vec![0.0, 0.0, 2.0, 0.0, 0.0, 4.0];
        let est = weighted_cpi_with(&pts(), &[0.5, 0.5], &cpis);
        assert!((est - 3.0).abs() < 1e-12);
    }

    #[test]
    fn error_metrics() {
        assert!((relative_error(4.0, 5.0) - 0.25).abs() < 1e-12);
        assert_eq!(relative_error(0.0, 5.0), 0.0);
        assert!((speedup(300.0, 100.0) - 3.0).abs() < 1e-12);
        assert!((speedup_error(2.0, 1.8) - 0.1).abs() < 1e-12);
        assert_eq!(estimated_cycles(2.5, 1000), 2500.0);
    }

    #[test]
    fn perfect_estimates_have_zero_error() {
        assert_eq!(speedup_error(1.7, 1.7), 0.0);
        assert_eq!(relative_error(3.3, 3.3), 0.0);
    }

    fn strat_point(phase: u32, interval: usize, share: f64, weight: f64) -> SimPoint {
        SimPoint {
            phase,
            interval,
            weight,
            share,
            variance: 0.0,
        }
    }

    #[test]
    fn single_representative_lanes_report_zero_width() {
        // One point per phase (m_k = 1): zero-width interval.
        let labels = vec![0, 0, 0, 1, 1, 1];
        let cpis = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let ci = stratified_ci(&pts(), &labels, &[0.7, 0.3], &cpis);
        assert_eq!(ci, 0.0);
    }

    #[test]
    fn zero_variance_phases_report_zero_width() {
        // Two representatives per phase with identical CPIs.
        let points = vec![
            strat_point(0, 0, 0.5, 0.35),
            strat_point(0, 1, 0.5, 0.35),
            strat_point(1, 3, 0.5, 0.15),
            strat_point(1, 4, 0.5, 0.15),
        ];
        let labels = vec![0, 0, 0, 1, 1, 1];
        let cpis = vec![2.0, 2.0, 2.0, 5.0, 5.0, 5.0];
        let ci = stratified_ci(&points, &labels, &[0.7, 0.3], &cpis);
        assert_eq!(ci, 0.0);
    }

    #[test]
    fn fully_sampled_phases_report_zero_width() {
        // Every member selected (m_k = n_k): the finite-population
        // correction cancels the sampling variance entirely.
        let points = vec![strat_point(0, 0, 0.5, 0.5), strat_point(0, 1, 0.5, 0.5)];
        let labels = vec![0, 0];
        let cpis = vec![1.0, 9.0];
        let ci = stratified_ci(&points, &labels, &[1.0], &cpis);
        assert_eq!(ci, 0.0);
    }

    #[test]
    fn spread_partially_sampled_phases_report_positive_width() {
        let points = vec![strat_point(0, 0, 0.5, 0.5), strat_point(0, 2, 0.5, 0.5)];
        let labels = vec![0, 0, 0, 0];
        let cpis = vec![1.0, 1.0, 9.0, 9.0];
        let ci = stratified_ci(&points, &labels, &[1.0], &cpis);
        // s² = 32, m = 2, n = 4 ⇒ Var = 32/2 · (1 − 1/2) = 8.
        let expected = STRATIFIED_CI_Z * 8.0f64.sqrt();
        assert!((ci - expected).abs() < 1e-12, "ci {ci} vs {expected}");
    }
}
