//! Software phase markers (related work, paper §6).
//!
//! Lau, Perelman & Calder, "Selecting software phase markers with code
//! structure analysis" (CGO 2006 — the paper's reference \[4\]) select
//! *individual code constructs* whose executions align with the
//! program's natural phase behaviour: a good phase marker executes with
//! a stable number of instructions between consecutive executions (low
//! variability) at a granularity near the desired interval size.
//!
//! This module implements that analysis over our marker machinery:
//! measure every procedure-entry and loop-entry marker's period
//! statistics, select low-variability candidates near a target period,
//! and (optionally) slice execution at a chosen marker — producing
//! phase-aligned variable-length intervals without any clustering.
//! The cross-binary pipeline does not use this (it cuts at *mappable*
//! markers at a fixed pitch); it exists to compare against and to
//! explore the design space the related work covers.

use cbsp_par::Pool;
use cbsp_profile::{BbvBuilder, Interval, MarkerRef};
use cbsp_program::{run, Binary, BlockId, Input, Marker, TraceSink};
use serde::{Deserialize, Serialize};

/// Period statistics of one marker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarkerStats {
    /// The marker.
    pub marker: MarkerRef,
    /// Times it executed.
    pub execs: u64,
    /// Mean instructions between consecutive executions.
    pub mean_period: f64,
    /// Coefficient of variation of the period (stddev / mean); 0 means
    /// perfectly regular.
    pub cv: f64,
}

struct PeriodSink {
    instrs: u64,
    /// Per-marker: (count, last-seen instr, sum of deltas, sum of squared deltas).
    procs: Vec<(u64, u64, f64, f64)>,
    loops: Vec<(u64, u64, f64, f64)>,
}

impl PeriodSink {
    #[inline]
    fn observe(slot: &mut (u64, u64, f64, f64), now: u64) {
        if slot.0 > 0 {
            let delta = (now - slot.1) as f64;
            slot.2 += delta;
            slot.3 += delta * delta;
        }
        slot.0 += 1;
        slot.1 = now;
    }
}

impl TraceSink for PeriodSink {
    #[inline]
    fn on_block(&mut self, _: BlockId, instrs: u64) {
        self.instrs += instrs;
    }

    #[inline]
    fn on_marker(&mut self, marker: Marker) {
        let now = self.instrs;
        match marker {
            Marker::ProcEntry(p) => Self::observe(&mut self.procs[p.index()], now),
            Marker::LoopEntry(l) => Self::observe(&mut self.loops[l.index()], now),
            Marker::LoopBack(_) => {} // too fine-grained to be phase markers
        }
    }
}

/// Measures period statistics for every procedure-entry and loop-entry
/// marker of `binary` on `input`. Markers executing fewer than 3 times
/// are omitted (no meaningful variability).
pub fn marker_period_stats(binary: &Binary, input: &Input) -> Vec<MarkerStats> {
    let mut sink = PeriodSink {
        instrs: 0,
        procs: vec![(0, 0, 0.0, 0.0); binary.procs.len()],
        loops: vec![(0, 0, 0.0, 0.0); binary.loops.len()],
    };
    run(binary, input, &mut sink);

    let to_stats = |make: fn(u32) -> MarkerRef, slots: &[(u64, u64, f64, f64)]| {
        slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.0 >= 3)
            .map(|(i, &(count, _, sum, sumsq))| {
                let n = (count - 1) as f64; // number of periods
                let mean = sum / n;
                let var = (sumsq / n - mean * mean).max(0.0);
                MarkerStats {
                    marker: make(i as u32),
                    execs: count,
                    mean_period: mean,
                    cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
                }
            })
            .collect::<Vec<_>>()
    };
    let mut out = to_stats(MarkerRef::Proc, &sink.procs);
    out.extend(to_stats(MarkerRef::LoopEntry, &sink.loops));
    out
}

/// [`marker_period_stats`] for a batch of binaries, fanned out over
/// `pool` (each call replays one binary's full execution; the runs are
/// independent). Results are in input order.
pub fn marker_period_stats_all(
    binaries: &[&Binary],
    input: &Input,
    pool: &Pool,
) -> Vec<Vec<MarkerStats>> {
    pool.run_indexed(binaries.len(), |i| marker_period_stats(binaries[i], input))
}

/// Selects phase-marker candidates: mean period within
/// `[target, max_period_factor × target]` and variability below
/// `max_cv`, sorted most-regular first.
pub fn select_phase_markers(
    stats: &[MarkerStats],
    target: u64,
    max_period_factor: f64,
    max_cv: f64,
) -> Vec<MarkerStats> {
    let lo = target as f64;
    let hi = lo * max_period_factor.max(1.0);
    let mut picked: Vec<MarkerStats> = stats
        .iter()
        .copied()
        .filter(|s| s.mean_period >= lo && s.mean_period <= hi && s.cv <= max_cv)
        .collect();
    picked.sort_by(|a, b| a.cv.partial_cmp(&b.cv).expect("finite cv"));
    picked
}

struct MarkerSliceSink {
    builder: BbvBuilder,
    marker: Marker,
    intervals: Vec<Interval>,
}

impl TraceSink for MarkerSliceSink {
    #[inline]
    fn on_block(&mut self, block: BlockId, instrs: u64) {
        self.builder.observe(block, instrs);
    }

    #[inline]
    fn on_marker(&mut self, marker: Marker) {
        if marker == self.marker && self.builder.instrs() > 0 {
            let (bbv, instrs) = self.builder.take_interval();
            self.intervals.push(Interval { bbv, instrs });
        }
    }
}

/// Slices execution into intervals bounded by *every* execution of
/// `marker` — phase-aligned variable-length intervals with no pitch
/// control (the related-work approach).
pub fn slice_at_marker(binary: &Binary, input: &Input, marker: MarkerRef) -> Vec<Interval> {
    let mut sink = MarkerSliceSink {
        builder: BbvBuilder::new(binary.block_count()),
        marker: marker.to_marker(),
        intervals: Vec::new(),
    };
    run(binary, input, &mut sink);
    if sink.builder.instrs() > 0 {
        let (bbv, instrs) = sink.builder.take_interval();
        sink.intervals.push(Interval { bbv, instrs });
    }
    sink.intervals
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbsp_program::{compile, workloads, CompileTarget, ProgramBuilder, Scale};

    #[test]
    fn regular_loops_have_low_cv_irregular_high() {
        let mut b = ProgramBuilder::new("t");
        b.proc("main", |p| {
            p.loop_fixed(60, |outer| {
                outer.call("steady");
                outer.call("noisy");
            });
        });
        b.proc("steady", |p| {
            p.loop_fixed(20, |body| body.work(40));
        });
        b.proc("noisy", |p| {
            p.loop_random(1, 60, |body| body.work(40));
        });
        let bin = compile(&b.finish(), CompileTarget::W32_O2);
        let input = cbsp_program::Input::test();
        let stats = marker_period_stats(&bin, &input);

        let steady = bin.proc_by_name("steady").expect("steady");
        let noisy = bin.proc_by_name("noisy").expect("noisy");
        let of = |m: MarkerRef| stats.iter().find(|s| s.marker == m).expect("profiled");
        let s = of(MarkerRef::Proc(steady.0));
        let n = of(MarkerRef::Proc(noisy.0));
        assert_eq!(s.execs, 60);
        // steady's period varies only with noisy's random trips between
        // entries; noisy's own period includes steady (constant) — so
        // compare loop-entry markers of the two *inner loops* instead,
        // whose periods are one full outer iteration each.
        assert!(s.mean_period > 0.0 && n.mean_period > 0.0);

        // The inner loop of `steady` iterates a fixed 20 times: its
        // *entry* period (once per outer iteration) varies with noisy's
        // random work, but its own body is constant. Select markers at
        // the outer-iteration granularity and require the steadier one
        // to rank first.
        let target = (s.mean_period * 0.5) as u64;
        let picked = select_phase_markers(&stats, target, 4.0, 1.0);
        assert!(!picked.is_empty());
        for w in picked.windows(2) {
            assert!(w[0].cv <= w[1].cv, "sorted by variability");
        }
    }

    #[test]
    fn swim_timestep_markers_are_nearly_perfect() {
        // swim's calc procedures are called once per timestep with very
        // regular work: their entry markers must show tiny variability.
        let prog = workloads::by_name("swim")
            .expect("in suite")
            .build(Scale::Test);
        let bin = compile(&prog, CompileTarget::W32_O2);
        let input = cbsp_program::Input::test();
        let stats = marker_period_stats(&bin, &input);
        let calc1 = bin.proc_by_name("calc1").expect("calc1");
        let s = stats
            .iter()
            .find(|s| s.marker == MarkerRef::Proc(calc1.0))
            .expect("calc1 profiled");
        assert!(s.cv < 0.25, "calc1 period CV {}", s.cv);

        // And slicing at it yields one interval per timestep with
        // near-equal sizes.
        let intervals = slice_at_marker(&bin, &input, MarkerRef::Proc(calc1.0));
        assert_eq!(intervals.len() as u64, s.execs + 1);
        let sizes: Vec<u64> = intervals[1..intervals.len() - 1]
            .iter()
            .map(|i| i.instrs)
            .collect();
        let mean = sizes.iter().sum::<u64>() as f64 / sizes.len() as f64;
        for sz in &sizes {
            assert!(
                (*sz as f64 - mean).abs() < 0.5 * mean,
                "interval {sz} far from mean {mean}"
            );
        }
    }

    #[test]
    fn slicing_partitions_execution() {
        let prog = workloads::by_name("art")
            .expect("in suite")
            .build(Scale::Test);
        let bin = compile(&prog, CompileTarget::W64_O2);
        let input = cbsp_program::Input::test();
        let full = cbsp_program::run(&bin, &input, &mut cbsp_program::NullSink);
        let main_loopish = marker_period_stats(&bin, &input);
        let best = main_loopish
            .iter()
            .max_by_key(|s| s.execs)
            .expect("some marker");
        let intervals = slice_at_marker(&bin, &input, best.marker);
        let total: u64 = intervals.iter().map(|i| i.instrs).sum();
        assert_eq!(total, full.instructions);
    }

    #[test]
    fn selection_respects_the_period_window() {
        let stats = vec![
            MarkerStats {
                marker: MarkerRef::Proc(0),
                execs: 100,
                mean_period: 50_000.0,
                cv: 0.01,
            },
            MarkerStats {
                marker: MarkerRef::Proc(1),
                execs: 100,
                mean_period: 1_000_000.0,
                cv: 0.0,
            },
            MarkerStats {
                marker: MarkerRef::Proc(2),
                execs: 100,
                mean_period: 120_000.0,
                cv: 0.9,
            },
        ];
        let picked = select_phase_markers(&stats, 100_000, 2.0, 0.3);
        assert!(picked.is_empty(), "none fits both window and cv");
        let picked = select_phase_markers(&stats, 40_000, 2.0, 0.3);
        assert_eq!(picked.len(), 1);
        assert_eq!(picked[0].marker, MarkerRef::Proc(0));
    }
}
