//! The end-to-end Cross Binary SimPoint pipeline (paper §3.2).
//!
//! Given all binaries of one program and one input:
//!
//! 1. profile each binary's calls and loop branches
//!    ([`CallLoopProfile`]);
//! 2. find the mappable points that exist in every binary
//!    ([`find_mappable_points`], plus inline recovery);
//! 3. cut the *primary* binary's execution into variable-length
//!    intervals bounded by mappable points ([`build_vli`]);
//! 4. run SimPoint on the primary binary's interval BBVs
//!    ([`cbsp_simpoint::analyze`]);
//! 5. map the chosen simulation points to every binary — free, because
//!    boundaries are `(marker, count)` pairs and markers are mappable;
//! 6. recalculate each binary's phase weights from its own instruction
//!    counts over the mapped intervals ([`slice_instr_counts`]).

use crate::error::CbspError;
use crate::inlining::recover_inlined;
use crate::mappable::{find_mappable_points, MappableSet};
use crate::vli::{build_vli_with, slice_instr_counts, VliProfile};
use cbsp_par::Pool;
use cbsp_profile::{CallLoopProfile, ExecPoint, PinPointsFile, RegionBound, SimRegion};
use cbsp_program::{Binary, Input};
use cbsp_simpoint::{analyze, EstimatorConfig, SimPointConfig, SimPointResult};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration of a cross-binary analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CbspConfig {
    /// Desired interval size in instructions (the paper uses 100M on
    /// SPEC; the default here is scaled to the synthetic suite).
    pub interval_target: u64,
    /// SimPoint clustering configuration.
    pub simpoint: SimPointConfig,
    /// Index of the primary binary (whose execution defines the
    /// intervals). "The primary binary can be selected arbitrarily"
    /// (§3.2.4); interval sizes in the other binaries stretch or shrink
    /// with their relative instruction counts.
    pub primary: usize,
    /// Estimation methodology: which features feed the clustering and
    /// how representatives are chosen. The estimator's selector is the
    /// single source of truth for representative selection — it
    /// overrides `simpoint.representative` in [`simpoint_stage`].
    pub estimator: EstimatorConfig,
}

impl Default for CbspConfig {
    fn default() -> Self {
        CbspConfig {
            interval_target: 100_000,
            simpoint: SimPointConfig::default(),
            primary: 0,
            estimator: EstimatorConfig::default(),
        }
    }
}

/// Result of the cross-binary pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossBinaryResult {
    /// The mappable-point set.
    pub mappable: MappableSet,
    /// Procedures whose loops inline recovery re-mapped.
    pub recovered_procs: usize,
    /// Index of the primary binary.
    pub primary: usize,
    /// The primary binary's VLI profile.
    pub vli: VliProfile,
    /// SimPoint clustering of the primary binary's intervals.
    pub simpoint: SimPointResult,
    /// Interval boundaries translated to each binary (index-aligned
    /// with the input binary set).
    pub boundaries: Vec<Vec<ExecPoint>>,
    /// Instructions per mapped interval, per binary.
    pub interval_instrs: Vec<Vec<u64>>,
    /// Recalculated phase weights per binary: `weights[b][phase]`.
    pub weights: Vec<Vec<f64>>,
}

impl CrossBinaryResult {
    /// Number of intervals in the mapped slicing.
    pub fn interval_count(&self) -> usize {
        self.vli.intervals.len()
    }

    /// Builds a PinPoints region file for binary `b` (regions =
    /// simulation points, bounds = mapped marker coordinates, weights =
    /// binary-specific recalculated weights).
    pub fn pinpoints_for(&self, b: usize, binary: &Binary, input: &Input) -> PinPointsFile {
        let bounds = &self.boundaries[b];
        let regions = self
            .simpoint
            .points
            .iter()
            .map(|pt| {
                let i = pt.interval;
                let start = if i == 0 {
                    RegionBound::Instr(0)
                } else {
                    RegionBound::Point(bounds[i - 1])
                };
                let end = if i < bounds.len() {
                    RegionBound::Point(bounds[i])
                } else {
                    RegionBound::Instr(u64::MAX) // tail region: run to end
                };
                SimRegion {
                    phase: pt.phase,
                    // The binary's recalculated phase weight, split by
                    // the point's within-phase share (1 for the
                    // single-representative selectors).
                    weight: self.weights[b][pt.phase as usize] * pt.share,
                    start,
                    end,
                }
            })
            .collect();
        PinPointsFile {
            program: binary.program.clone(),
            binary: binary.label(),
            input: input.name.clone(),
            interval_target: 0, // variable-length; target kept in config
            regions,
        }
    }
}

/// Output of the *mappable* stage: the cross-binary point set plus the
/// inline-recovery count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappableStage {
    /// The mappable-point set across all binaries.
    pub set: MappableSet,
    /// Procedures whose loops inline recovery re-mapped.
    pub recovered_procs: usize,
}

/// Output of the *map* stage: the primary slicing carried onto every
/// binary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappedSlicing {
    /// Interval boundaries translated to each binary.
    pub boundaries: Vec<Vec<ExecPoint>>,
    /// Instructions per mapped interval, per binary.
    pub interval_instrs: Vec<Vec<u64>>,
    /// Recalculated phase weights per binary.
    pub weights: Vec<Vec<f64>>,
}

/// Validates the binary set and configuration before any pipeline work.
///
/// # Errors
///
/// Returns an error when the binary set is empty, mixes programs, or
/// the primary index is out of range.
pub fn validate_binaries(binaries: &[&Binary], config: &CbspConfig) -> Result<(), CbspError> {
    if binaries.is_empty() {
        return Err(CbspError::EmptyBinarySet);
    }
    if config.primary >= binaries.len() {
        return Err(CbspError::PrimaryOutOfRange {
            primary: config.primary,
            binaries: binaries.len(),
        });
    }
    let program = &binaries[0].program;
    if let Some(b) = binaries.iter().find(|b| &b.program != program) {
        return Err(CbspError::ProgramMismatch {
            expected: program.clone(),
            found: b.program.clone(),
        });
    }
    Ok(())
}

/// Pipeline step 1 for one binary: its call/loop execution profile.
pub fn profile_stage(binary: &Binary, input: &Input) -> CallLoopProfile {
    let _span = cbsp_trace::span_labeled("stage/profile", || binary.label());
    CallLoopProfile::collect(binary, input)
}

/// Pipeline step 1 for every binary, fanned out over `pool` (one job
/// per binary; profiles are independent full-program runs and dominate
/// the pre-clustering wall time).
pub fn profile_stage_all(binaries: &[&Binary], input: &Input, pool: &Pool) -> Vec<CallLoopProfile> {
    pool.run_indexed(binaries.len(), |i| profile_stage(binaries[i], input))
}

/// Pipeline step 2: mappable points across all binaries, with inlined
/// loops recovered (paper §3.2.1–§3.2.2).
pub fn mappable_stage(binaries: &[&Binary], profiles: &[CallLoopProfile]) -> MappableStage {
    let _span = cbsp_trace::span("stage/mappable");
    let prof_refs: Vec<&CallLoopProfile> = profiles.iter().collect();
    let mut set = find_mappable_points(binaries, &prof_refs);
    let recovered_procs = recover_inlined(binaries, &prof_refs, &mut set);
    MappableStage {
        set,
        recovered_procs,
    }
}

/// Pipeline step 3: variable-length intervals on the primary binary
/// (paper §3.2.3).
pub fn vli_stage(
    binaries: &[&Binary],
    input: &Input,
    config: &CbspConfig,
    mappable: &MappableSet,
) -> VliProfile {
    let _span = cbsp_trace::span("stage/vli");
    let vli = build_vli_with(
        binaries[config.primary],
        input,
        config.interval_target,
        &mappable.markers_of(config.primary),
        config.estimator.features.wants_mav(),
    );
    cbsp_trace::add("pipeline/intervals_produced", vli.intervals.len() as u64);
    vli
}

/// Pipeline step 4: SimPoint clustering of the primary's interval
/// features. The estimator decides both the feature vectors (BBV, or
/// BBV ⧺ MAV when the profile recorded accesses) and the
/// representative-selection policy (`estimator.selector` overrides
/// `config.representative`).
pub fn simpoint_stage(
    vli: &VliProfile,
    config: &SimPointConfig,
    estimator: &EstimatorConfig,
) -> SimPointResult {
    let _span = cbsp_trace::span("stage/simpoint");
    let builder = estimator.features.builder();
    let vectors: Vec<Vec<f64>> = vli
        .intervals
        .iter()
        .enumerate()
        .map(|(i, iv)| builder.features(&iv.bbv, vli.mav(i)))
        .collect();
    let instrs: Vec<u64> = vli.intervals.iter().map(|i| i.instrs).collect();
    let effective = SimPointConfig {
        representative: estimator.selector,
        ..*config
    };
    analyze(&vectors, &instrs, &effective)
}

/// Pipeline steps 5–6: translate interval boundaries to every binary
/// and recalculate per-binary instruction counts and phase weights
/// (paper §3.2.4).
///
/// # Errors
///
/// Returns [`CbspError::UnmappableBoundary`] if a VLI boundary uses a
/// marker outside the mappable set (an internal invariant violation).
pub fn map_stage(
    binaries: &[&Binary],
    input: &Input,
    primary: usize,
    mappable: &MappableSet,
    vli: &VliProfile,
    simpoint: &SimPointResult,
    pool: &Pool,
) -> Result<MappedSlicing, CbspError> {
    let _span = cbsp_trace::span("stage/map");
    // Steps 5 and 6 fused into one per-binary fan-out: translate the
    // binary's boundary column (step 5, cheap table lookups), then
    // compute its interval instruction counts and phase weights
    // (step 6, where `slice_instr_counts` re-executes each non-primary
    // binary and dominates). One fan-out instead of two halves the
    // spawn/queue overhead, and the whole stage is `for_work`-gated on
    // the slicing cost so small workloads skip the fan-out entirely —
    // the same gating that fixed the compile-stage parallel regression.
    let mut table: BTreeMap<cbsp_profile::MarkerRef, usize> = BTreeMap::new();
    for (pi, p) in mappable.points.iter().enumerate() {
        table.insert(p.per_binary[primary], pi);
    }
    let instrs: Vec<u64> = vli.intervals.iter().map(|i| i.instrs).collect();
    let n_intervals = vli.intervals.len();
    let k = simpoint
        .points
        .iter()
        .map(|p| p.phase as usize + 1)
        .max()
        .unwrap_or(1);
    let est_ns = map_cost_estimate_ns(instrs.iter().sum(), vli.boundaries.len(), binaries.len());
    let per_binary = pool.for_work(est_ns).run_indexed(binaries.len(), |b| {
        let bounds = vli
            .boundaries
            .iter()
            .map(|bp| {
                let pi = table
                    .get(&bp.marker)
                    .ok_or(CbspError::UnmappableBoundary { marker: bp.marker })?;
                Ok(ExecPoint {
                    marker: mappable.points[*pi].per_binary[b],
                    count: bp.count,
                })
            })
            .collect::<Result<Vec<ExecPoint>, CbspError>>()?;
        let mut slices = if b == primary {
            instrs.clone()
        } else {
            slice_instr_counts(binaries[b], input, &bounds)
        };
        slices.resize(n_intervals, 0); // zero-length tail in this binary
        let total: u64 = slices.iter().sum();
        let mut w = vec![0.0f64; k];
        for (i, &label) in simpoint.labels.iter().enumerate() {
            w[label as usize] += slices[i] as f64;
        }
        if total > 0 {
            for x in w.iter_mut() {
                *x /= total as f64;
            }
        }
        Ok((bounds, slices, w))
    });

    let mut boundaries = Vec::with_capacity(binaries.len());
    let mut interval_instrs = Vec::with_capacity(binaries.len());
    let mut weights = Vec::with_capacity(binaries.len());
    for r in per_binary {
        let (bounds, slices, w): (Vec<ExecPoint>, Vec<u64>, Vec<f64>) = r?;
        boundaries.push(bounds);
        interval_instrs.push(slices);
        weights.push(w);
    }

    Ok(MappedSlicing {
        boundaries,
        interval_instrs,
        weights,
    })
}

/// Estimated serial cost of the map stage, for [`Pool::for_work`]
/// gating: slicing re-executes every non-primary binary (roughly one
/// nanosecond per primary instruction each), plus boundary translation
/// (tree lookups, ~100 ns per boundary per binary).
fn map_cost_estimate_ns(total_instrs: u64, n_boundaries: usize, n_binaries: usize) -> u64 {
    let non_primary = n_binaries.saturating_sub(1) as u64;
    total_instrs
        .saturating_mul(non_primary)
        .saturating_add((n_boundaries * n_binaries) as u64 * 100)
}

/// Runs the full cross-binary pipeline over `binaries`.
///
/// This is the uncached composition of the stage functions
/// ([`profile_stage`] → [`mappable_stage`] → [`vli_stage`] →
/// [`simpoint_stage`] → [`map_stage`]); the `cbsp-store` crate wraps
/// the same stages with a content-addressed artifact cache.
///
/// # Errors
///
/// Returns an error when the binary set is empty, mixes programs, or
/// the primary index is out of range.
pub fn run_cross_binary(
    binaries: &[&Binary],
    input: &Input,
    config: &CbspConfig,
) -> Result<CrossBinaryResult, CbspError> {
    validate_binaries(binaries, config)?;
    let pool = Pool::new(config.simpoint.threads);

    // Steps 1-2: profiles and mappable points.
    let profiles = profile_stage_all(binaries, input, &pool);
    let MappableStage {
        set: mappable,
        recovered_procs,
    } = mappable_stage(binaries, &profiles);

    // Step 3: VLIs on the primary binary.
    let primary = config.primary;
    let vli = vli_stage(binaries, input, config, &mappable);

    // Step 4: SimPoint on the primary's interval features.
    let simpoint = simpoint_stage(&vli, &config.simpoint, &config.estimator);

    // Steps 5-6: boundary translation and weight recalculation.
    let MappedSlicing {
        boundaries,
        interval_instrs,
        weights,
    } = map_stage(binaries, input, primary, &mappable, &vli, &simpoint, &pool)?;

    Ok(CrossBinaryResult {
        mappable,
        recovered_procs,
        primary,
        vli,
        simpoint,
        boundaries,
        interval_instrs,
        weights,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbsp_program::{compile, workloads, CompileTarget, Scale};

    fn run_for(name: &str) -> (Vec<Binary>, Input, CrossBinaryResult) {
        let prog = workloads::by_name(name)
            .expect("in suite")
            .build(Scale::Test);
        let input = Input::test();
        let bins: Vec<Binary> = CompileTarget::ALL_FOUR
            .iter()
            .map(|&t| compile(&prog, t))
            .collect();
        let config = CbspConfig {
            interval_target: 20_000,
            ..CbspConfig::default()
        };
        let result = run_cross_binary(&bins.iter().collect::<Vec<_>>(), &input, &config)
            .expect("pipeline runs");
        (bins, input, result)
    }

    #[test]
    fn pipeline_produces_consistent_structures() {
        let (_bins, _input, r) = run_for("swim");
        assert!(r.interval_count() > 2);
        assert_eq!(r.boundaries.len(), 4);
        assert_eq!(r.weights.len(), 4);
        assert_eq!(r.interval_instrs.len(), 4);
        for b in 0..4 {
            assert_eq!(r.interval_instrs[b].len(), r.interval_count());
            let total: f64 = r.weights[b].iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "weights[{b}] sum {total}");
        }
        assert_eq!(r.simpoint.labels.len(), r.interval_count());
    }

    #[test]
    fn weights_differ_across_binaries_but_phases_align() {
        let (_bins, _input, r) = run_for("apsi");
        // Same phase structure everywhere (labels come from the primary),
        // but weights are binary-specific.
        let w0 = &r.weights[0];
        assert!(
            r.weights
                .iter()
                .any(|w| { w.iter().zip(w0).any(|(a, b)| (a - b).abs() > 1e-6) }),
            "at least one binary should reweight phases"
        );
    }

    #[test]
    fn errors_are_reported() {
        let prog = workloads::by_name("gzip")
            .expect("in suite")
            .build(Scale::Test);
        let other = workloads::by_name("mcf")
            .expect("in suite")
            .build(Scale::Test);
        let a = compile(&prog, CompileTarget::W32_O0);
        let b = compile(&other, CompileTarget::W32_O2);
        let input = Input::test();
        let config = CbspConfig::default();

        assert!(matches!(
            run_cross_binary(&[], &input, &config),
            Err(CbspError::EmptyBinarySet)
        ));
        assert!(matches!(
            run_cross_binary(&[&a, &b], &input, &config),
            Err(CbspError::ProgramMismatch { .. })
        ));
        let bad = CbspConfig {
            primary: 5,
            ..config
        };
        assert!(matches!(
            run_cross_binary(&[&a], &input, &bad),
            Err(CbspError::PrimaryOutOfRange { .. })
        ));
    }

    #[test]
    fn pinpoints_files_validate() {
        let (bins, input, r) = run_for("gzip");
        for (b, bin) in bins.iter().enumerate() {
            let pp = r.pinpoints_for(b, bin, &input);
            assert_eq!(pp.validate(), Ok(()), "binary {b}");
            assert_eq!(pp.regions.len(), r.simpoint.points.len());
        }
    }

    #[test]
    fn applu_pattern_yields_oversized_intervals() {
        let (_bins, _input, r) = run_for("applu");
        // The paper's Figure 2 outlier: inlining + splitting leaves no
        // mappable markers inside a driver iteration, so VLIs are far
        // larger than the target.
        assert!(
            r.vli.average_interval_size() > 2.0 * 20_000.0,
            "applu VLIs should balloon: avg {}",
            r.vli.average_interval_size()
        );
    }

    #[test]
    fn swim_intervals_stay_near_the_target() {
        let (_bins, _input, r) = run_for("swim");
        assert!(
            r.vli.average_interval_size() < 2.0 * 20_000.0,
            "swim has dense markers: avg {}",
            r.vli.average_interval_size()
        );
    }
}
