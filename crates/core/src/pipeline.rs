//! The end-to-end Cross Binary SimPoint pipeline (paper §3.2).
//!
//! Given all binaries of one program and one input:
//!
//! 1. profile each binary's calls and loop branches
//!    ([`CallLoopProfile`]);
//! 2. find the mappable points that exist in every binary
//!    ([`find_mappable_points`], plus inline recovery);
//! 3. cut the *primary* binary's execution into variable-length
//!    intervals bounded by mappable points ([`build_vli`]);
//! 4. run SimPoint on the primary binary's interval BBVs
//!    ([`cbsp_simpoint::analyze`]);
//! 5. map the chosen simulation points to every binary — free, because
//!    boundaries are `(marker, count)` pairs and markers are mappable;
//! 6. recalculate each binary's phase weights from its own instruction
//!    counts over the mapped intervals ([`slice_instr_counts`]).

use crate::error::CbspError;
use crate::fuzzy::{extended_markers, map_stage_fuzzy, FuzzyConfig, SimpointMapping};
use crate::inlining::recover_inlined;
use crate::mappable::{find_mappable_points, MappableSet};
use crate::vli::{build_vli_with, slice_instr_counts, VliProfile};
use cbsp_par::Pool;
use cbsp_profile::{CallLoopProfile, ExecPoint, PinPointsFile, RegionBound, SimRegion};
use cbsp_program::{Binary, Input};
use cbsp_simpoint::{analyze, EstimatorConfig, SimPointConfig, SimPointResult};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration of a cross-binary analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CbspConfig {
    /// Desired interval size in instructions (the paper uses 100M on
    /// SPEC; the default here is scaled to the synthetic suite).
    pub interval_target: u64,
    /// SimPoint clustering configuration.
    pub simpoint: SimPointConfig,
    /// Index of the primary binary (whose execution defines the
    /// intervals). "The primary binary can be selected arbitrarily"
    /// (§3.2.4); interval sizes in the other binaries stretch or shrink
    /// with their relative instruction counts.
    pub primary: usize,
    /// Estimation methodology: which features feed the clustering and
    /// how representatives are chosen. The estimator's selector is the
    /// single source of truth for representative selection — it
    /// overrides `simpoint.representative` in [`simpoint_stage`].
    pub estimator: EstimatorConfig,
    /// Similarity-based fallback mapping for marker-loss binaries
    /// (ROADMAP item 4). `None` — the default — runs the exact
    /// pipeline, byte-identical to pre-fuzzy behavior. `Some` switches
    /// VLI cutting to the extended pairwise marker filter
    /// ([`extended_markers`]) and the map stage to
    /// [`map_stage_fuzzy`]; see `docs/MAPPING.md`.
    pub fuzzy: Option<FuzzyConfig>,
}

impl Default for CbspConfig {
    fn default() -> Self {
        CbspConfig {
            interval_target: 100_000,
            simpoint: SimPointConfig::default(),
            primary: 0,
            estimator: EstimatorConfig::default(),
            fuzzy: None,
        }
    }
}

/// Result of the cross-binary pipeline.
// Serialize/Deserialize are manual, not derived: `mappings` must be
// omitted when empty so exact-lane JSON (and therefore cached
// artifacts and digests) stays byte-identical to pre-fuzzy output —
// the vendored serde derive has no `skip_serializing_if`.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossBinaryResult {
    /// The mappable-point set.
    pub mappable: MappableSet,
    /// Procedures whose loops inline recovery re-mapped.
    pub recovered_procs: usize,
    /// Index of the primary binary.
    pub primary: usize,
    /// The primary binary's VLI profile.
    pub vli: VliProfile,
    /// SimPoint clustering of the primary binary's intervals.
    pub simpoint: SimPointResult,
    /// Interval boundaries translated to each binary (index-aligned
    /// with the input binary set).
    pub boundaries: Vec<Vec<ExecPoint>>,
    /// Instructions per mapped interval, per binary.
    pub interval_instrs: Vec<Vec<u64>>,
    /// Recalculated phase weights per binary: `weights[b][phase]`.
    pub weights: Vec<Vec<f64>>,
    /// How each simulation point was carried into each binary:
    /// `mappings[b][point]`. Empty for exact (non-fuzzy) runs, where
    /// every point is exact by construction.
    pub mappings: Vec<Vec<SimpointMapping>>,
}

impl Serialize for CrossBinaryResult {
    fn serialize_value(&self) -> serde::Value {
        let mut fields = vec![
            ("mappable".to_string(), self.mappable.serialize_value()),
            (
                "recovered_procs".to_string(),
                self.recovered_procs.serialize_value(),
            ),
            ("primary".to_string(), self.primary.serialize_value()),
            ("vli".to_string(), self.vli.serialize_value()),
            ("simpoint".to_string(), self.simpoint.serialize_value()),
            ("boundaries".to_string(), self.boundaries.serialize_value()),
            (
                "interval_instrs".to_string(),
                self.interval_instrs.serialize_value(),
            ),
            ("weights".to_string(), self.weights.serialize_value()),
        ];
        if !self.mappings.is_empty() {
            fields.push(("mappings".to_string(), self.mappings.serialize_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for CrossBinaryResult {
    fn deserialize_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let pairs = value
            .as_object()
            .ok_or_else(|| serde::__private::unexpected("struct CrossBinaryResult", value))?;
        let field = |name: &str| serde::__private::get(pairs, name);
        Ok(CrossBinaryResult {
            mappable: req(field("mappable"), "mappable")?,
            recovered_procs: req(field("recovered_procs"), "recovered_procs")?,
            primary: req(field("primary"), "primary")?,
            vli: req(field("vli"), "vli")?,
            simpoint: req(field("simpoint"), "simpoint")?,
            boundaries: req(field("boundaries"), "boundaries")?,
            interval_instrs: req(field("interval_instrs"), "interval_instrs")?,
            weights: req(field("weights"), "weights")?,
            mappings: match field("mappings") {
                Some(v) => Deserialize::deserialize_value(v)?,
                None => Vec::new(),
            },
        })
    }
}

/// Deserializes a required struct field (shared by the manual impls
/// above; mirrors the derive's missing-field handling).
fn req<T: Deserialize>(value: Option<&serde::Value>, name: &str) -> Result<T, serde::Error> {
    match value {
        Some(v) => T::deserialize_value(v),
        None => T::deserialize_missing(name),
    }
}

impl CrossBinaryResult {
    /// Number of intervals in the mapped slicing.
    pub fn interval_count(&self) -> usize {
        self.vli.intervals.len()
    }

    /// Builds a PinPoints region file for binary `b` (regions =
    /// simulation points, bounds = mapped marker coordinates, weights =
    /// binary-specific recalculated weights).
    ///
    /// For fuzzy runs (non-empty [`mappings`](Self::mappings)), each
    /// region's bounds follow its [`SimpointMapping`]: exact points use
    /// marker coordinates as always, fuzzy points use the matched
    /// instruction-offset window, and unmapped points get a zero-weight
    /// empty region. Mapped weights are renormalized to sum to 1 so the
    /// file still validates when some points are unmapped.
    pub fn pinpoints_for(&self, b: usize, binary: &Binary, input: &Input) -> PinPointsFile {
        let bounds = &self.boundaries[b];
        let maps = (!self.mappings.is_empty()).then(|| &self.mappings[b]);
        let mut regions: Vec<SimRegion> = self
            .simpoint
            .points
            .iter()
            .enumerate()
            .map(|(pi, pt)| {
                // The binary's recalculated phase weight, split by the
                // point's within-phase share (1 for the
                // single-representative selectors).
                let weight = self.weights[b][pt.phase as usize] * pt.share;
                match maps.map(|m| m[pi]) {
                    Some(SimpointMapping::Fuzzy { start, end, .. }) => {
                        return SimRegion {
                            phase: pt.phase,
                            weight,
                            start: RegionBound::Instr(start),
                            end: RegionBound::Instr(end),
                        };
                    }
                    Some(SimpointMapping::Unmapped) => {
                        return SimRegion {
                            phase: pt.phase,
                            weight: 0.0,
                            start: RegionBound::Instr(0),
                            end: RegionBound::Instr(0),
                        };
                    }
                    Some(SimpointMapping::Exact) | None => {}
                }
                let i = pt.interval;
                let start = if i == 0 {
                    RegionBound::Instr(0)
                } else {
                    RegionBound::Point(bounds[i - 1])
                };
                let end = if i < bounds.len() {
                    RegionBound::Point(bounds[i])
                } else {
                    RegionBound::Instr(u64::MAX) // tail region: run to end
                };
                SimRegion {
                    phase: pt.phase,
                    weight,
                    start,
                    end,
                }
            })
            .collect();
        if maps.is_some() {
            let total: f64 = regions.iter().map(|r| r.weight).sum();
            if total > 0.0 {
                for r in regions.iter_mut() {
                    r.weight /= total;
                }
            }
        }
        PinPointsFile {
            program: binary.program.clone(),
            binary: binary.label(),
            input: input.name.clone(),
            interval_target: 0, // variable-length; target kept in config
            regions,
        }
    }
}

/// Output of the *mappable* stage: the cross-binary point set plus the
/// inline-recovery count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappableStage {
    /// The mappable-point set across all binaries.
    pub set: MappableSet,
    /// Procedures whose loops inline recovery re-mapped.
    pub recovered_procs: usize,
}

/// Output of the *map* stage: the primary slicing carried onto every
/// binary.
// Manual serde for the same reason as [`CrossBinaryResult`]: an empty
// `mappings` table is omitted so exact-lane artifacts stay
// byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct MappedSlicing {
    /// Interval boundaries translated to each binary. In fuzzy runs,
    /// untranslatable entries hold
    /// [`UNMAPPED_BOUNDARY`](crate::fuzzy::UNMAPPED_BOUNDARY).
    pub boundaries: Vec<Vec<ExecPoint>>,
    /// Instructions per mapped interval, per binary.
    pub interval_instrs: Vec<Vec<u64>>,
    /// Recalculated phase weights per binary.
    pub weights: Vec<Vec<f64>>,
    /// Per-simpoint mapping outcomes (`mappings[b][point]`); empty for
    /// exact runs.
    pub mappings: Vec<Vec<SimpointMapping>>,
}

impl Serialize for MappedSlicing {
    fn serialize_value(&self) -> serde::Value {
        let mut fields = vec![
            ("boundaries".to_string(), self.boundaries.serialize_value()),
            (
                "interval_instrs".to_string(),
                self.interval_instrs.serialize_value(),
            ),
            ("weights".to_string(), self.weights.serialize_value()),
        ];
        if !self.mappings.is_empty() {
            fields.push(("mappings".to_string(), self.mappings.serialize_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for MappedSlicing {
    fn deserialize_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let pairs = value
            .as_object()
            .ok_or_else(|| serde::__private::unexpected("struct MappedSlicing", value))?;
        let field = |name: &str| serde::__private::get(pairs, name);
        Ok(MappedSlicing {
            boundaries: req(field("boundaries"), "boundaries")?,
            interval_instrs: req(field("interval_instrs"), "interval_instrs")?,
            weights: req(field("weights"), "weights")?,
            mappings: match field("mappings") {
                Some(v) => Deserialize::deserialize_value(v)?,
                None => Vec::new(),
            },
        })
    }
}

/// Validates the binary set and configuration before any pipeline work.
///
/// # Errors
///
/// Returns an error when the binary set is empty, mixes programs, or
/// the primary index is out of range.
pub fn validate_binaries(binaries: &[&Binary], config: &CbspConfig) -> Result<(), CbspError> {
    if binaries.is_empty() {
        return Err(CbspError::EmptyBinarySet);
    }
    if config.primary >= binaries.len() {
        return Err(CbspError::PrimaryOutOfRange {
            primary: config.primary,
            binaries: binaries.len(),
        });
    }
    let program = &binaries[0].program;
    if let Some(b) = binaries.iter().find(|b| &b.program != program) {
        return Err(CbspError::ProgramMismatch {
            expected: program.clone(),
            found: b.program.clone(),
        });
    }
    Ok(())
}

/// Pipeline step 1 for one binary: its call/loop execution profile.
pub fn profile_stage(binary: &Binary, input: &Input) -> CallLoopProfile {
    let _span = cbsp_trace::span_labeled("stage/profile", || binary.label());
    CallLoopProfile::collect(binary, input)
}

/// Pipeline step 1 for every binary, fanned out over `pool` (one job
/// per binary; profiles are independent full-program runs and dominate
/// the pre-clustering wall time).
pub fn profile_stage_all(binaries: &[&Binary], input: &Input, pool: &Pool) -> Vec<CallLoopProfile> {
    pool.run_indexed(binaries.len(), |i| profile_stage(binaries[i], input))
}

/// Pipeline step 2: mappable points across all binaries, with inlined
/// loops recovered (paper §3.2.1–§3.2.2).
pub fn mappable_stage(binaries: &[&Binary], profiles: &[CallLoopProfile]) -> MappableStage {
    let _span = cbsp_trace::span("stage/mappable");
    let prof_refs: Vec<&CallLoopProfile> = profiles.iter().collect();
    let mut set = find_mappable_points(binaries, &prof_refs);
    let recovered_procs = recover_inlined(binaries, &prof_refs, &mut set);
    MappableStage {
        set,
        recovered_procs,
    }
}

/// Pipeline step 3: variable-length intervals on the primary binary
/// (paper §3.2.3).
///
/// Exact runs cut at the markers mappable across *all* binaries. Fuzzy
/// runs (`config.fuzzy` set) cut at the union of *pairwise* mappable
/// markers instead ([`extended_markers`], which needs `profiles`), so a
/// single marker-destroyed binary cannot balloon every interval.
pub fn vli_stage(
    binaries: &[&Binary],
    input: &Input,
    config: &CbspConfig,
    mappable: &MappableSet,
    profiles: &[CallLoopProfile],
) -> VliProfile {
    let _span = cbsp_trace::span("stage/vli");
    let markers = if config.fuzzy.is_some() && binaries.len() > 1 {
        extended_markers(binaries, profiles, config.primary)
    } else {
        mappable.markers_of(config.primary)
    };
    let vli = build_vli_with(
        binaries[config.primary],
        input,
        config.interval_target,
        &markers,
        config.estimator.features.wants_mav(),
    );
    cbsp_trace::add("pipeline/intervals_produced", vli.intervals.len() as u64);
    vli
}

/// Pipeline step 4: SimPoint clustering of the primary's interval
/// features. The estimator decides both the feature vectors (BBV, or
/// BBV ⧺ MAV when the profile recorded accesses) and the
/// representative-selection policy (`estimator.selector` overrides
/// `config.representative`).
pub fn simpoint_stage(
    vli: &VliProfile,
    config: &SimPointConfig,
    estimator: &EstimatorConfig,
) -> SimPointResult {
    let _span = cbsp_trace::span("stage/simpoint");
    let builder = estimator.features.builder();
    let vectors: Vec<Vec<f64>> = vli
        .intervals
        .iter()
        .enumerate()
        .map(|(i, iv)| builder.features(&iv.bbv, vli.mav(i)))
        .collect();
    let instrs: Vec<u64> = vli.intervals.iter().map(|i| i.instrs).collect();
    let effective = SimPointConfig {
        representative: estimator.selector,
        ..*config
    };
    analyze(&vectors, &instrs, &effective)
}

/// Pipeline steps 5–6: translate interval boundaries to every binary
/// and recalculate per-binary instruction counts and phase weights
/// (paper §3.2.4).
///
/// # Errors
///
/// Returns [`CbspError::UnmappableBoundary`] if a VLI boundary uses a
/// marker outside the mappable set (an internal invariant violation).
pub fn map_stage(
    binaries: &[&Binary],
    input: &Input,
    primary: usize,
    mappable: &MappableSet,
    vli: &VliProfile,
    simpoint: &SimPointResult,
    pool: &Pool,
) -> Result<MappedSlicing, CbspError> {
    let _span = cbsp_trace::span("stage/map");
    // Steps 5 and 6 fused into one per-binary fan-out: translate the
    // binary's boundary column (step 5, cheap table lookups), then
    // compute its interval instruction counts and phase weights
    // (step 6, where `slice_instr_counts` re-executes each non-primary
    // binary and dominates). One fan-out instead of two halves the
    // spawn/queue overhead, and the whole stage is `for_work`-gated on
    // the slicing cost so small workloads skip the fan-out entirely —
    // the same gating that fixed the compile-stage parallel regression.
    let mut table: BTreeMap<cbsp_profile::MarkerRef, usize> = BTreeMap::new();
    for (pi, p) in mappable.points.iter().enumerate() {
        table.insert(p.per_binary[primary], pi);
    }
    let instrs: Vec<u64> = vli.intervals.iter().map(|i| i.instrs).collect();
    let n_intervals = vli.intervals.len();
    let k = simpoint
        .points
        .iter()
        .map(|p| p.phase as usize + 1)
        .max()
        .unwrap_or(1);
    let est_ns = map_cost_estimate_ns(instrs.iter().sum(), vli.boundaries.len(), binaries.len());
    let per_binary = pool.for_work(est_ns).run_indexed(binaries.len(), |b| {
        let bounds = vli
            .boundaries
            .iter()
            .map(|bp| {
                let pi = table
                    .get(&bp.marker)
                    .ok_or(CbspError::UnmappableBoundary { marker: bp.marker })?;
                Ok(ExecPoint {
                    marker: mappable.points[*pi].per_binary[b],
                    count: bp.count,
                })
            })
            .collect::<Result<Vec<ExecPoint>, CbspError>>()?;
        let mut slices = if b == primary {
            instrs.clone()
        } else {
            slice_instr_counts(binaries[b], input, &bounds)
        };
        slices.resize(n_intervals, 0); // zero-length tail in this binary
        let total: u64 = slices.iter().sum();
        let mut w = vec![0.0f64; k];
        for (i, &label) in simpoint.labels.iter().enumerate() {
            w[label as usize] += slices[i] as f64;
        }
        if total > 0 {
            for x in w.iter_mut() {
                *x /= total as f64;
            }
        }
        Ok((bounds, slices, w))
    });

    let mut boundaries = Vec::with_capacity(binaries.len());
    let mut interval_instrs = Vec::with_capacity(binaries.len());
    let mut weights = Vec::with_capacity(binaries.len());
    for r in per_binary {
        let (bounds, slices, w): (Vec<ExecPoint>, Vec<u64>, Vec<f64>) = r?;
        boundaries.push(bounds);
        interval_instrs.push(slices);
        weights.push(w);
    }

    Ok(MappedSlicing {
        boundaries,
        interval_instrs,
        weights,
        mappings: Vec::new(), // exact runs: every point exact by construction
    })
}

/// Estimated serial cost of the map stage, for [`Pool::for_work`]
/// gating: slicing re-executes every non-primary binary (roughly one
/// nanosecond per primary instruction each), plus boundary translation
/// (tree lookups, ~100 ns per boundary per binary).
fn map_cost_estimate_ns(total_instrs: u64, n_boundaries: usize, n_binaries: usize) -> u64 {
    let non_primary = n_binaries.saturating_sub(1) as u64;
    total_instrs
        .saturating_mul(non_primary)
        .saturating_add((n_boundaries * n_binaries) as u64 * 100)
}

/// Runs the full cross-binary pipeline over `binaries`.
///
/// This is the uncached composition of the stage functions
/// ([`profile_stage`] → [`mappable_stage`] → [`vli_stage`] →
/// [`simpoint_stage`] → [`map_stage`]); the `cbsp-store` crate wraps
/// the same stages with a content-addressed artifact cache.
///
/// # Errors
///
/// Returns an error when the binary set is empty, mixes programs, or
/// the primary index is out of range.
pub fn run_cross_binary(
    binaries: &[&Binary],
    input: &Input,
    config: &CbspConfig,
) -> Result<CrossBinaryResult, CbspError> {
    validate_binaries(binaries, config)?;
    let pool = Pool::new(config.simpoint.threads);

    // Steps 1-2: profiles and mappable points.
    let profiles = profile_stage_all(binaries, input, &pool);
    let MappableStage {
        set: mappable,
        recovered_procs,
    } = mappable_stage(binaries, &profiles);

    // Step 3: VLIs on the primary binary.
    let primary = config.primary;
    let vli = vli_stage(binaries, input, config, &mappable, &profiles);

    // Step 4: SimPoint on the primary's interval features.
    let simpoint = simpoint_stage(&vli, &config.simpoint, &config.estimator);

    // Steps 5-6: boundary translation and weight recalculation —
    // exact-only, or with the similarity fallback when fuzzy mapping
    // is enabled.
    let MappedSlicing {
        boundaries,
        interval_instrs,
        weights,
        mappings,
    } = if config.fuzzy.is_some() {
        map_stage_fuzzy(binaries, input, &profiles, &vli, &simpoint, config, &pool)
    } else {
        map_stage(binaries, input, primary, &mappable, &vli, &simpoint, &pool)?
    };

    Ok(CrossBinaryResult {
        mappable,
        recovered_procs,
        primary,
        vli,
        simpoint,
        boundaries,
        interval_instrs,
        weights,
        mappings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbsp_program::{compile, workloads, CompileTarget, Scale};

    fn run_for(name: &str) -> (Vec<Binary>, Input, CrossBinaryResult) {
        let prog = workloads::by_name(name)
            .expect("in suite")
            .build(Scale::Test);
        let input = Input::test();
        let bins: Vec<Binary> = CompileTarget::ALL_FOUR
            .iter()
            .map(|&t| compile(&prog, t))
            .collect();
        let config = CbspConfig {
            interval_target: 20_000,
            ..CbspConfig::default()
        };
        let result = run_cross_binary(&bins.iter().collect::<Vec<_>>(), &input, &config)
            .expect("pipeline runs");
        (bins, input, result)
    }

    #[test]
    fn pipeline_produces_consistent_structures() {
        let (_bins, _input, r) = run_for("swim");
        assert!(r.interval_count() > 2);
        assert_eq!(r.boundaries.len(), 4);
        assert_eq!(r.weights.len(), 4);
        assert_eq!(r.interval_instrs.len(), 4);
        for b in 0..4 {
            assert_eq!(r.interval_instrs[b].len(), r.interval_count());
            let total: f64 = r.weights[b].iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "weights[{b}] sum {total}");
        }
        assert_eq!(r.simpoint.labels.len(), r.interval_count());
    }

    #[test]
    fn weights_differ_across_binaries_but_phases_align() {
        let (_bins, _input, r) = run_for("apsi");
        // Same phase structure everywhere (labels come from the primary),
        // but weights are binary-specific.
        let w0 = &r.weights[0];
        assert!(
            r.weights
                .iter()
                .any(|w| { w.iter().zip(w0).any(|(a, b)| (a - b).abs() > 1e-6) }),
            "at least one binary should reweight phases"
        );
    }

    #[test]
    fn errors_are_reported() {
        let prog = workloads::by_name("gzip")
            .expect("in suite")
            .build(Scale::Test);
        let other = workloads::by_name("mcf")
            .expect("in suite")
            .build(Scale::Test);
        let a = compile(&prog, CompileTarget::W32_O0);
        let b = compile(&other, CompileTarget::W32_O2);
        let input = Input::test();
        let config = CbspConfig::default();

        assert!(matches!(
            run_cross_binary(&[], &input, &config),
            Err(CbspError::EmptyBinarySet)
        ));
        assert!(matches!(
            run_cross_binary(&[&a, &b], &input, &config),
            Err(CbspError::ProgramMismatch { .. })
        ));
        let bad = CbspConfig {
            primary: 5,
            ..config
        };
        assert!(matches!(
            run_cross_binary(&[&a], &input, &bad),
            Err(CbspError::PrimaryOutOfRange { .. })
        ));
    }

    #[test]
    fn pinpoints_files_validate() {
        let (bins, input, r) = run_for("gzip");
        for (b, bin) in bins.iter().enumerate() {
            let pp = r.pinpoints_for(b, bin, &input);
            assert_eq!(pp.validate(), Ok(()), "binary {b}");
            assert_eq!(pp.regions.len(), r.simpoint.points.len());
        }
    }

    #[test]
    fn applu_pattern_yields_oversized_intervals() {
        let (_bins, _input, r) = run_for("applu");
        // The paper's Figure 2 outlier: inlining + splitting leaves no
        // mappable markers inside a driver iteration, so VLIs are far
        // larger than the target.
        assert!(
            r.vli.average_interval_size() > 2.0 * 20_000.0,
            "applu VLIs should balloon: avg {}",
            r.vli.average_interval_size()
        );
    }

    #[test]
    fn swim_intervals_stay_near_the_target() {
        let (_bins, _input, r) = run_for("swim");
        assert!(
            r.vli.average_interval_size() < 2.0 * 20_000.0,
            "swim has dense markers: avg {}",
            r.vli.average_interval_size()
        );
    }
}
