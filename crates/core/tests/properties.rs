//! Property-based tests of the estimation math and the mappable-set
//! data structure.

use cbsp_core::{
    estimated_cycles, relative_error, speedup, speedup_error, weighted_cpi, weighted_cpi_with,
};
use cbsp_simpoint::SimPoint;
use proptest::prelude::*;

fn points_and_cpis() -> impl Strategy<Value = (Vec<SimPoint>, Vec<f64>)> {
    (1usize..8).prop_flat_map(|k| {
        let weights = prop::collection::vec(0.01f64..1.0, k);
        let cpis = prop::collection::vec(0.5f64..50.0, k);
        (weights, cpis).prop_map(|(raw_w, cpis)| {
            let total: f64 = raw_w.iter().sum();
            let points = raw_w
                .iter()
                .enumerate()
                .map(|(i, w)| SimPoint {
                    phase: i as u32,
                    interval: i,
                    weight: w / total,
                    share: 1.0,
                    variance: 0.0,
                })
                .collect();
            (points, cpis)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// A weighted CPI estimate is a convex combination: bounded by the
    /// smallest and largest per-point CPI.
    #[test]
    fn weighted_cpi_is_convex((points, cpis) in points_and_cpis()) {
        let est = weighted_cpi(&points, &cpis);
        let lo = cpis.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = cpis.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9, "{est} outside [{lo}, {hi}]");
    }

    /// Overriding with identical phase weights reproduces weighted_cpi.
    #[test]
    fn weighted_cpi_with_matches_on_same_weights((points, cpis) in points_and_cpis()) {
        let phase_weights: Vec<f64> = points.iter().map(|p| p.weight).collect();
        let a = weighted_cpi(&points, &cpis);
        let b = weighted_cpi_with(&points, &phase_weights, &cpis);
        prop_assert!((a - b).abs() < 1e-12);
    }

    /// If every phase has the same CPI, the estimate is exact no matter
    /// the weights.
    #[test]
    fn uniform_cpi_is_estimated_exactly((points, _) in points_and_cpis(), cpi in 0.5f64..50.0) {
        let cpis = vec![cpi; points.len()];
        let est = weighted_cpi(&points, &cpis);
        prop_assert!((est - cpi).abs() < 1e-9);
    }

    /// Error metric identities: zero at equality, scale-invariant,
    /// symmetric under proportional scaling of both speedups.
    #[test]
    fn error_metric_identities(t in 0.1f64..100.0, e in 0.1f64..100.0, s in 0.1f64..10.0) {
        prop_assert_eq!(relative_error(t, t), 0.0);
        let base = speedup_error(t, e);
        let scaled = speedup_error(t * s, e * s);
        prop_assert!((base - scaled).abs() < 1e-9, "scale invariance");
        prop_assert!(base >= 0.0);
    }

    /// Speedup composition: speedup(a, b) * speedup(b, c) = speedup(a, c).
    #[test]
    fn speedup_composes(a in 1.0f64..1e9, b in 1.0f64..1e9, c in 1.0f64..1e9) {
        let lhs = speedup(a, b) * speedup(b, c);
        let rhs = speedup(a, c);
        prop_assert!((lhs - rhs).abs() < 1e-6 * rhs.abs());
    }

    /// Estimated cycles scale linearly in both arguments.
    #[test]
    fn estimated_cycles_is_bilinear(cpi in 0.1f64..50.0, instrs in 1u64..1_000_000) {
        let one = estimated_cycles(cpi, instrs);
        let double_cpi = estimated_cycles(2.0 * cpi, instrs);
        prop_assert!((2.0 * one - double_cpi).abs() < 1e-6 * one);
        let double_instrs = estimated_cycles(cpi, 2 * instrs);
        prop_assert!((2.0 * one - double_instrs).abs() < 1e-6 * one);
    }
}

mod mappable_translation {
    use cbsp_core::{run_cross_binary, CbspConfig};
    use cbsp_program::{compile, workloads, Binary, CompileTarget, Input, Scale};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

        /// Marker translation between binaries is a consistent bijection
        /// on the mappable set: translating a marker from binary a to b
        /// and back is the identity, for random benchmark/pair choices.
        #[test]
        fn translation_round_trips(bench_idx in 0usize..21, a in 0usize..4, b in 0usize..4) {
            let w = workloads::suite()[bench_idx];
            let prog = w.build(Scale::Test);
            let input = Input::test();
            let bins: Vec<Binary> = CompileTarget::ALL_FOUR
                .iter()
                .map(|&t| compile(&prog, t))
                .collect();
            let config = CbspConfig { interval_target: 50_000, ..CbspConfig::default() };
            let result = run_cross_binary(&bins.iter().collect::<Vec<_>>(), &input, &config)
                .expect("pipeline runs");
            for point in &result.mappable.points {
                let m_a = point.per_binary[a];
                let m_b = result.mappable.translate(a, m_a, b).expect("mappable");
                prop_assert_eq!(m_b, point.per_binary[b]);
                let back = result.mappable.translate(b, m_b, a).expect("mappable");
                prop_assert_eq!(back, m_a);
            }
        }
    }
}
