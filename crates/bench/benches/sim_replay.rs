//! Record-once replay vs direct interpretation: the cost of a detailed
//! simulation pass as (a) a live interpreter run, (b) a replay of an
//! in-memory event trace, (c) a replay served through the
//! content-addressed trace cache (decode-from-store included), and
//! (d) per-simpoint slice replays — the sliced-trace estimate path,
//! which touches only the selected intervals' bytes.

use cbsp_profile::{ExecPoint, MarkerRef};
use cbsp_program::{
    compile, run, workloads, Binary, CompileTarget, Input, Marker, NullSink, Scale, TraceSink,
};
use cbsp_sim::{
    record_trace, replay, replay_full, replay_slice, simulate_full, slice_trace, MemoryConfig,
};
use cbsp_store::{put_trace_legacy, ArtifactStore, TraceCache};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::path::PathBuf;

/// Counts marker executions to derive in-order [`ExecPoint`]
/// boundaries without involving the profiling pipeline.
#[derive(Default)]
struct MarkerTally {
    counts: std::collections::BTreeMap<MarkerRef, u64>,
}

impl TraceSink for MarkerTally {
    fn on_block(&mut self, _block: cbsp_program::BlockId, _instrs: u64) {}

    fn on_marker(&mut self, marker: Marker) {
        let r = match marker {
            Marker::ProcEntry(p) => MarkerRef::Proc(u32::from(p)),
            Marker::LoopEntry(l) => MarkerRef::LoopEntry(u32::from(l)),
            Marker::LoopBack(l) => MarkerRef::LoopBack(u32::from(l)),
        };
        *self.counts.entry(r).or_insert(0) += 1;
    }
}

/// Boundaries at evenly spaced executions of the binary's most frequent
/// marker (in execution order, as the sliced sinks require).
fn marker_boundaries(bin: &Binary, input: &Input, cuts: u64) -> Vec<ExecPoint> {
    let mut tally = MarkerTally::default();
    run(bin, input, &mut tally);
    let (&marker, &execs) = tally
        .counts
        .iter()
        .max_by_key(|(_, &n)| n)
        .expect("binary executes at least one marker");
    let cuts = cuts.min(execs);
    (1..=cuts)
        .map(|i| ExecPoint {
            marker,
            count: i * execs / cuts,
        })
        .collect()
}

fn setup(name: &str) -> (Binary, Input) {
    let prog = workloads::by_name(name)
        .expect("in suite")
        .build(Scale::Train);
    (compile(&prog, CompileTarget::W32_O2), Input::train())
}

fn temp_store(tag: &str) -> (ArtifactStore, PathBuf) {
    let dir = std::env::temp_dir().join(format!("cbsp-bench-replay-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ArtifactStore::open(&dir).expect("store opens");
    (store, dir)
}

fn bench_interpret_vs_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_replay");
    group.sample_size(10);
    for name in ["gzip", "gcc"] {
        let (bin, input) = setup(name);
        let mem = MemoryConfig::table1();

        // Baseline: the interpreter drives the sink directly.
        group.bench_with_input(BenchmarkId::new("interpret", name), &name, |b, _| {
            b.iter(|| black_box(simulate_full(&bin, &input, &mem)))
        });

        // One-time record cost (interpret + encode), for context.
        group.bench_with_input(BenchmarkId::new("record", name), &name, |b, _| {
            b.iter(|| black_box(record_trace(&bin, &input)))
        });

        // Replay of an already-recorded in-memory trace — the steady
        // state of every repeat detailed simulation.
        let trace = record_trace(&bin, &input);
        group.bench_with_input(BenchmarkId::new("replay", name), &name, |b, _| {
            b.iter(|| black_box(replay_full(&trace, &mem).expect("decodes")))
        });

        // Decode-only throughput (null sink): isolates the varint
        // decode loop from the cache-model cost that dominates replay.
        group.bench_with_input(BenchmarkId::new("decode_only", name), &name, |b, _| {
            b.iter(|| {
                let mut sink = NullSink;
                replay(&trace, &mut sink).expect("decodes");
                black_box(trace.events)
            })
        });

        // Per-simpoint slice replays: checkpoint-restore plus only the
        // selected intervals' events — what a warm `estimate.cpi` pays
        // per simulation point instead of a full-trace replay.
        let boundaries = marker_boundaries(&bin, &input, 8);
        let selected: Vec<usize> = (0..=boundaries.len()).step_by(2).collect();
        let sliced = slice_trace(&trace, &mem, &boundaries, &selected).expect("trace slices");
        group.bench_with_input(BenchmarkId::new("replay_sliced", name), &name, |b, _| {
            b.iter(|| {
                let mut instrs = 0u64;
                for slice in &sliced.slices {
                    instrs += replay_slice(slice, &mem).expect("decodes").instructions;
                }
                black_box(instrs)
            })
        });

        // Slice decode-only throughput (null sink, no checkpoint
        // restore): the sliced counterpart of `decode_only`, isolating
        // the per-slice varint decode loop.
        group.bench_with_input(BenchmarkId::new("decode_sliced", name), &name, |b, _| {
            b.iter(|| {
                let mut events = 0u64;
                for slice in &sliced.slices {
                    let mut sink = NullSink;
                    replay(&slice.trace, &mut sink).expect("decodes");
                    events += slice.trace.events;
                }
                black_box(events)
            })
        });

        // Replay through a store-backed cache primed with a *legacy*
        // JSON envelope: includes the envelope read, checksum, and
        // base64 decode of a cold in-memory tier (rebuilt each
        // iteration; migration disabled so every iteration re-reads
        // the JSON path).
        let (store, dir) = temp_store(name);
        put_trace_legacy(&store, &bin, &input, &trace).expect("store usable");
        group.bench_with_input(BenchmarkId::new("store_replay", name), &name, |b, _| {
            b.iter(|| {
                let cache = TraceCache::new(Some(&store)).without_migration();
                let trace = cache.get_or_record(&bin, &input).expect("store usable");
                black_box(replay_full(&trace, &mem).expect("decodes"))
            })
        });
        let _ = std::fs::remove_dir_all(&dir);

        // Same cold store-backed replay, served from the blob tier:
        // header validation plus one checksum pass over bytes that are
        // adopted verbatim as the trace — no base64, no JSON.
        let (store, dir) = temp_store(&format!("{name}-blob"));
        let primer = TraceCache::new(Some(&store));
        primer.get_or_record(&bin, &input).expect("store usable");
        group.bench_with_input(
            BenchmarkId::new("store_replay_blob", name),
            &name,
            |b, _| {
                b.iter(|| {
                    let cache = TraceCache::new(Some(&store));
                    let trace = cache.get_or_record(&bin, &input).expect("store usable");
                    black_box(replay_full(&trace, &mem).expect("decodes"))
                })
            },
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, bench_interpret_vs_replay);
criterion_main!(benches);
