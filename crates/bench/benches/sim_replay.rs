//! Record-once replay vs direct interpretation: the cost of a detailed
//! simulation pass as (a) a live interpreter run, (b) a replay of an
//! in-memory event trace, and (c) a replay served through the
//! content-addressed trace cache (decode-from-store included).

use cbsp_program::{compile, workloads, Binary, CompileTarget, Input, NullSink, Scale};
use cbsp_sim::{record_trace, replay, replay_full, simulate_full, MemoryConfig};
use cbsp_store::{ArtifactStore, TraceCache};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::path::PathBuf;

fn setup(name: &str) -> (Binary, Input) {
    let prog = workloads::by_name(name)
        .expect("in suite")
        .build(Scale::Train);
    (compile(&prog, CompileTarget::W32_O2), Input::train())
}

fn temp_store(tag: &str) -> (ArtifactStore, PathBuf) {
    let dir = std::env::temp_dir().join(format!("cbsp-bench-replay-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ArtifactStore::open(&dir).expect("store opens");
    (store, dir)
}

fn bench_interpret_vs_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_replay");
    group.sample_size(10);
    for name in ["gzip", "gcc"] {
        let (bin, input) = setup(name);
        let mem = MemoryConfig::table1();

        // Baseline: the interpreter drives the sink directly.
        group.bench_with_input(BenchmarkId::new("interpret", name), &name, |b, _| {
            b.iter(|| black_box(simulate_full(&bin, &input, &mem)))
        });

        // One-time record cost (interpret + encode), for context.
        group.bench_with_input(BenchmarkId::new("record", name), &name, |b, _| {
            b.iter(|| black_box(record_trace(&bin, &input)))
        });

        // Replay of an already-recorded in-memory trace — the steady
        // state of every repeat detailed simulation.
        let trace = record_trace(&bin, &input);
        group.bench_with_input(BenchmarkId::new("replay", name), &name, |b, _| {
            b.iter(|| black_box(replay_full(&trace, &mem).expect("decodes")))
        });

        // Decode-only throughput (null sink): isolates the varint
        // decode loop from the cache-model cost that dominates replay.
        group.bench_with_input(BenchmarkId::new("decode_only", name), &name, |b, _| {
            b.iter(|| {
                let mut sink = NullSink;
                replay(&trace, &mut sink).expect("decodes");
                black_box(trace.events)
            })
        });

        // Replay through a store-backed cache primed on disk: includes
        // the envelope read, checksum, and base64 decode of a cold
        // in-memory tier (rebuilt each iteration).
        let (store, dir) = temp_store(name);
        let primer = TraceCache::new(Some(&store));
        primer.get_or_record(&bin, &input).expect("store usable");
        group.bench_with_input(BenchmarkId::new("store_replay", name), &name, |b, _| {
            b.iter(|| {
                let cache = TraceCache::new(Some(&store));
                let trace = cache.get_or_record(&bin, &input).expect("store usable");
                black_box(replay_full(&trace, &mem).expect("decodes"))
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, bench_interpret_vs_replay);
criterion_main!(benches);
