//! Parallel-clustering benchmark: weighted Lloyd k-means on the shared
//! pool at 1/2/4/8 threads. Results are bit-identical at every pool
//! size, so this measures pure scheduling + reduction overhead against
//! the parallel speedup.

use cbsp_simpoint::{kmeans_with, Pool, VectorSet};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

/// Deterministic synthetic points in `phases` separated clusters.
fn synthetic(n: usize, dims: usize, phases: usize) -> (VectorSet, Vec<f64>) {
    let mut data = VectorSet::with_capacity(dims, n);
    let mut row = vec![0.0; dims];
    for i in 0..n {
        for (j, slot) in row.iter_mut().enumerate() {
            let phase_offset = (i % phases) as f64 * 50.0;
            *slot = phase_offset + ((i * 13 + j * 5) % 17) as f64 * 0.5;
        }
        data.push(&row);
    }
    let weights = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
    (data, weights)
}

fn bench_kmeans_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_parallel");
    group.sample_size(20);
    for &n in &[1024usize, 8192] {
        let (data, weights) = synthetic(n, 15, 8);
        for &threads in &[1usize, 2, 4, 8] {
            let pool = Pool::new(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}_k8"), threads),
                &threads,
                |b, _| b.iter(|| black_box(kmeans_with(&data, &weights, 8, 3, 100, &pool))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kmeans_parallel);
criterion_main!(benches);
