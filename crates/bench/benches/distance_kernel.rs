//! Distance-kernel microbenchmark: the flat [`VectorSet`] storage with
//! the unrolled `distance_sq` kernel against the nested-`Vec` layout
//! with a naive scalar loop (the engine's pre-flat representation).
//!
//! The workload is the clustering hot loop: for every point, distance
//! to every one of `k` centroids.

use cbsp_simpoint::{distance_sq, VectorSet};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

const K: usize = 16;

/// Deterministic synthetic points (no RNG: keeps runs comparable).
fn synthetic(n: usize, dims: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..dims)
                .map(|j| ((i * 31 + j * 7) % 97) as f64 * 0.25)
                .collect()
        })
        .collect()
}

/// The pre-VectorSet kernel: plain scalar loop over nested Vecs.
fn scalar_distance_sq(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

fn bench_distance_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_kernel");
    for &dims in &[15usize, 64, 240] {
        let rows = synthetic(1024, dims);
        let centroid_rows = synthetic(K, dims);
        let flat = VectorSet::from_rows(&rows);
        let centroids = VectorSet::from_rows(&centroid_rows);

        group.bench_with_input(
            BenchmarkId::new("nested_vec_scalar", dims),
            &dims,
            |b, _| {
                b.iter(|| {
                    let mut sum = 0.0;
                    for v in &rows {
                        for cent in &centroid_rows {
                            sum += scalar_distance_sq(v, cent);
                        }
                    }
                    black_box(sum)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("flat_unrolled", dims), &dims, |b, _| {
            b.iter(|| {
                let mut sum = 0.0;
                for v in flat.rows() {
                    for cent in centroids.rows() {
                        sum += distance_sq(v, cent);
                    }
                }
                black_box(sum)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distance_kernel);
criterion_main!(benches);
