//! Distance-kernel microbenchmark: the flat [`VectorSet`] storage with
//! the unrolled kernels against the nested-`Vec` layout with naive
//! scalar loops (the engine's pre-flat representation).
//!
//! The workload is the clustering hot loop: for every point, distance
//! to every one of `k` centroids. Both the squared-Euclidean kernel
//! (k-means assignment) and the L1 kernel (BIC scoring / diagnostics)
//! get an A/B lane — scalar vs the 8-accumulator unrolled form — and
//! `sq_4lane`/`sq_8lane` isolate the 4→8 width change, so a lane-width
//! change shows up as a ratio shift here before it reaches the
//! pipeline gate.

use cbsp_simpoint::{distance_l1, distance_sq, VectorSet};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

const K: usize = 16;

/// Deterministic synthetic points (no RNG: keeps runs comparable).
fn synthetic(n: usize, dims: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..dims)
                .map(|j| ((i * 31 + j * 7) % 97) as f64 * 0.25)
                .collect()
        })
        .collect()
}

/// The pre-VectorSet kernel: plain scalar loop over nested Vecs.
fn scalar_distance_sq(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Scalar L1 baseline for the A/B lane.
fn scalar_distance_l1(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        acc += (x - y).abs();
    }
    acc
}

/// The 4-lane predecessor of `distance_sq`: same structure, half the
/// accumulator chains. The `sq_4lane`/`sq_8lane` pair isolates the
/// width change from everything else.
fn distance_sq_4lane(a: &[f64], b: &[f64]) -> f64 {
    const LANES: usize = 4;
    let main = a.len() & !(LANES - 1);
    let mut acc = [0.0f64; LANES];
    for (ca, cb) in a[..main]
        .chunks_exact(LANES)
        .zip(b[..main].chunks_exact(LANES))
    {
        for lane in 0..LANES {
            let d = ca[lane] - cb[lane];
            acc[lane] += d * d;
        }
    }
    let mut tail = 0.0;
    for (x, y) in a[main..].iter().zip(&b[main..]) {
        let d = x - y;
        tail += d * d;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

fn bench_distance_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_kernel");
    for &dims in &[15usize, 64, 240] {
        let rows = synthetic(1024, dims);
        let centroid_rows = synthetic(K, dims);
        let flat = VectorSet::from_rows(&rows);
        let centroids = VectorSet::from_rows(&centroid_rows);

        group.bench_with_input(
            BenchmarkId::new("nested_vec_scalar", dims),
            &dims,
            |b, _| {
                b.iter(|| {
                    let mut sum = 0.0;
                    for v in &rows {
                        for cent in &centroid_rows {
                            sum += scalar_distance_sq(v, cent);
                        }
                    }
                    black_box(sum)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("flat_unrolled", dims), &dims, |b, _| {
            b.iter(|| {
                let mut sum = 0.0;
                for v in flat.rows() {
                    for cent in centroids.rows() {
                        sum += distance_sq(v, cent);
                    }
                }
                black_box(sum)
            })
        });

        // Width A/B lane: the 4-lane predecessor vs the shipped 8-lane
        // kernel, both over the flat layout so only the width differs.
        group.bench_with_input(BenchmarkId::new("sq_4lane", dims), &dims, |b, _| {
            b.iter(|| {
                let mut sum = 0.0;
                for v in flat.rows() {
                    for cent in centroids.rows() {
                        sum += distance_sq_4lane(v, cent);
                    }
                }
                black_box(sum)
            })
        });
        group.bench_with_input(BenchmarkId::new("sq_8lane", dims), &dims, |b, _| {
            b.iter(|| {
                let mut sum = 0.0;
                for v in flat.rows() {
                    for cent in centroids.rows() {
                        sum += distance_sq(v, cent);
                    }
                }
                black_box(sum)
            })
        });

        // L1 A/B lane: scalar loop vs the unrolled 8-lane kernel, both
        // over the flat layout so only the kernel differs.
        group.bench_with_input(BenchmarkId::new("l1_scalar", dims), &dims, |b, _| {
            b.iter(|| {
                let mut sum = 0.0;
                for v in flat.rows() {
                    for cent in centroids.rows() {
                        sum += scalar_distance_l1(v, cent);
                    }
                }
                black_box(sum)
            })
        });
        group.bench_with_input(BenchmarkId::new("l1_unrolled", dims), &dims, |b, _| {
            b.iter(|| {
                let mut sum = 0.0;
                for v in flat.rows() {
                    for cent in centroids.rows() {
                        sum += distance_l1(v, cent);
                    }
                }
                black_box(sum)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distance_kernel);
criterion_main!(benches);
