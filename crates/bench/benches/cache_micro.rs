//! Microbenchmarks of the CMP$im-like memory system: raw hierarchy
//! throughput under characteristic access patterns, and full-binary
//! simulation speed (the number that decides how fast the whole
//! experiment harness can run).

use cbsp_program::{compile, workloads, CompileTarget, Input, Scale};
use cbsp_sim::{simulate_full, Hierarchy, MemoryConfig, Replacement};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_hierarchy_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy");
    const N: u64 = 100_000;
    group.throughput(Throughput::Elements(N));

    group.bench_function("l1_hits", |b| {
        b.iter_batched(
            || Hierarchy::new(&MemoryConfig::table1()),
            |mut h| {
                for i in 0..N {
                    h.access(0x1000 + (i % 128) * 64, i % 4 == 0);
                }
                black_box(h)
            },
            criterion::BatchSize::SmallInput,
        )
    });

    group.bench_function("l3_stream", |b| {
        b.iter_batched(
            || {
                let mut h = Hierarchy::new(&MemoryConfig::table1());
                for i in 0..12_288u64 {
                    h.access(i * 64, true); // warm a 768 KB set into L3
                }
                h
            },
            |mut h| {
                for i in 0..N {
                    h.access((i % 12_288) * 64, false);
                }
                black_box(h)
            },
            criterion::BatchSize::SmallInput,
        )
    });

    group.bench_function("dram_random", |b| {
        let mut x = 0x12345u64;
        b.iter_batched(
            || Hierarchy::new(&MemoryConfig::table1()),
            |mut h| {
                for _ in 0..N {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    h.access((x % (64 * 1024 * 1024)) & !63, false);
                }
                black_box(h)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_replacement_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("replacement");
    const N: u64 = 100_000;
    group.throughput(Throughput::Elements(N));
    for policy in [Replacement::Lru, Replacement::Fifo, Replacement::Random] {
        let mut config = MemoryConfig::table1();
        config.replacement = policy;
        group.bench_with_input(
            BenchmarkId::new("mixed", format!("{policy:?}")),
            &config,
            |b, config| {
                b.iter_batched(
                    || Hierarchy::new(config),
                    |mut h| {
                        for i in 0..N {
                            // 2 MB strided walk: exercises every level.
                            h.access((i * 192) % (2 * 1024 * 1024), i % 5 == 0);
                        }
                        black_box(h)
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_full_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_full");
    group.sample_size(10);
    let input = Input::test();
    for name in ["gzip", "mcf"] {
        let prog = workloads::by_name(name)
            .expect("in suite")
            .build(Scale::Test);
        let bin = compile(&prog, CompileTarget::W32_O2);
        group.bench_with_input(BenchmarkId::new("test_scale", name), &bin, |b, bin| {
            b.iter(|| black_box(simulate_full(bin, &input, &MemoryConfig::table1())))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hierarchy_patterns,
    bench_replacement_policies,
    bench_full_simulation
);
criterion_main!(benches);
