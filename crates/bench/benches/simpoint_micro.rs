//! Microbenchmarks of the SimPoint engine: projection, k-means, BIC,
//! and the full `analyze` driver at realistic interval counts.

use cbsp_simpoint::{
    analyze, bic, kmeans, kmeans_hamerly_from, Pool, Projection, SimPointConfig, VectorSet,
};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

/// Synthetic BBVs: `n` intervals over `dims` blocks in `phases` phases.
fn synthetic_bbvs(n: usize, dims: usize, phases: usize) -> (Vec<Vec<f64>>, Vec<u64>) {
    let mut vectors = Vec::with_capacity(n);
    for i in 0..n {
        let p = i % phases;
        let mut v = vec![0.0; dims];
        let base = (p * dims / phases) % dims;
        for j in 0..(dims / phases).max(1) {
            v[base + j] = 100.0 + ((i * 7 + j * 3) % 13) as f64;
        }
        vectors.push(v);
    }
    (vectors, vec![100_000; n])
}

/// Synthetic BBVs projected to SimPoint's 15 dimensions.
fn projected(n: usize, dims: usize, phases: usize) -> (VectorSet, Vec<f64>) {
    let (vectors, counts) = synthetic_bbvs(n, dims, phases);
    let p = Projection::new(1, 15);
    let data = p.project_all(&VectorSet::from_rows(&vectors), &Pool::serial());
    let weights: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    (data, weights)
}

fn bench_projection(c: &mut Criterion) {
    let mut group = c.benchmark_group("projection");
    for &dims in &[128usize, 512, 2048] {
        let (vectors, _) = synthetic_bbvs(64, dims, 4);
        let p = Projection::new(42, 15);
        group.bench_with_input(
            BenchmarkId::new("project_64_vectors", dims),
            &dims,
            |b, _| {
                b.iter(|| {
                    for v in &vectors {
                        black_box(p.project(v));
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans");
    for &n in &[100usize, 400, 1600] {
        let (data, weights) = projected(n, 240, 6);
        group.bench_with_input(BenchmarkId::new("k8", n), &n, |b, _| {
            b.iter(|| black_box(kmeans(&data, &weights, 8, 3, 100)))
        });
    }
    group.finish();
}

fn bench_hamerly_vs_lloyd(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_engines");
    for &n in &[400usize, 1600] {
        let (data, weights) = projected(n, 240, 6);
        let mut init = VectorSet::new(data.dims());
        for i in 0..8 {
            init.push(data.row(i * n / 8));
        }
        group.bench_with_input(BenchmarkId::new("lloyd_k8", n), &n, |b, _| {
            b.iter(|| black_box(kmeans(&data, &weights, 8, 3, 100)))
        });
        group.bench_with_input(BenchmarkId::new("hamerly_k8", n), &n, |b, _| {
            b.iter(|| black_box(kmeans_hamerly_from(&data, &weights, init.clone(), 100)))
        });
    }
    group.finish();
}

fn bench_bic(c: &mut Criterion) {
    let (data, weights) = projected(400, 240, 6);
    let clustering = kmeans(&data, &weights, 6, 3, 100);
    c.bench_function("bic/400x15", |b| {
        b.iter(|| black_box(bic(&data, &weights, &clustering)))
    });
}

fn bench_analyze(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyze");
    group.sample_size(10);
    for &n in &[100usize, 400] {
        let (vectors, counts) = synthetic_bbvs(n, 600, 6);
        group.bench_with_input(BenchmarkId::new("full_driver", n), &n, |b, _| {
            b.iter(|| black_box(analyze(&vectors, &counts, &SimPointConfig::default())))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_projection,
    bench_kmeans,
    bench_hamerly_vs_lloyd,
    bench_bic,
    bench_analyze
);
criterion_main!(benches);
