//! Benchmarks of each cross-binary pipeline stage (paper §3.2 steps),
//! plus the end-to-end pipeline: where does analysis time go?

use cbsp_core::{build_vli, find_mappable_points, run_cross_binary, CbspConfig};
use cbsp_profile::{profile_fli, CallLoopProfile};
use cbsp_program::{compile, workloads, Binary, CompileTarget, Input, Scale};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn setup(name: &str) -> (Vec<Binary>, Vec<CallLoopProfile>, Input) {
    let prog = workloads::by_name(name)
        .expect("in suite")
        .build(Scale::Test);
    let input = Input::test();
    let binaries: Vec<Binary> = CompileTarget::ALL_FOUR
        .iter()
        .map(|&t| compile(&prog, t))
        .collect();
    let profiles = binaries
        .iter()
        .map(|b| CallLoopProfile::collect(b, &input))
        .collect();
    (binaries, profiles, input)
}

fn bench_stages(c: &mut Criterion) {
    let (binaries, profiles, input) = setup("gcc");
    let bin_refs: Vec<&Binary> = binaries.iter().collect();
    let prof_refs: Vec<&CallLoopProfile> = profiles.iter().collect();

    let mut group = c.benchmark_group("stages");
    group.sample_size(20);

    group.bench_function("step1_callloop_profile", |b| {
        b.iter(|| black_box(CallLoopProfile::collect(&binaries[0], &input)))
    });

    group.bench_function("step2_find_mappable", |b| {
        b.iter(|| black_box(find_mappable_points(&bin_refs, &prof_refs)))
    });

    let set = find_mappable_points(&bin_refs, &prof_refs);
    let markers = set.markers_of(0);
    group.bench_function("step3_build_vli", |b| {
        b.iter(|| black_box(build_vli(&binaries[0], &input, 20_000, &markers)))
    });

    group.bench_function("fli_profile_baseline", |b| {
        b.iter(|| black_box(profile_fli(&binaries[0], &input, 20_000)))
    });

    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for name in ["gzip", "gcc", "applu"] {
        let (binaries, _, input) = setup(name);
        let bin_refs: Vec<&Binary> = binaries.iter().collect();
        let config = CbspConfig {
            interval_target: 20_000,
            ..CbspConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("cross_binary", name), &name, |b, _| {
            b.iter(|| black_box(run_cross_binary(&bin_refs, &input, &config).expect("runs")))
        });
    }
    group.finish();
}

fn bench_region_sim_and_bbfile(c: &mut Criterion) {
    use cbsp_core::{run_cross_binary, CbspConfig};
    use cbsp_profile::{parse_bb, write_bb};
    use cbsp_sim::{simulate_regions, MemoryConfig};

    let (binaries, _, input) = setup("swim");
    let config = CbspConfig {
        interval_target: 20_000,
        ..CbspConfig::default()
    };
    let result = run_cross_binary(&binaries.iter().collect::<Vec<&Binary>>(), &input, &config)
        .expect("pipeline runs");
    let file = result.pinpoints_for(1, &binaries[1], &input);

    let mut group = c.benchmark_group("consumers");
    group.sample_size(10);
    group.bench_function("region_simulation", |b| {
        b.iter(|| {
            black_box(simulate_regions(
                &binaries[1],
                &input,
                &MemoryConfig::table1(),
                &file,
            ))
        })
    });

    let intervals = profile_fli(&binaries[0], &input, 20_000);
    let text = write_bb(&intervals);
    group.bench_function("bb_write", |b| b.iter(|| black_box(write_bb(&intervals))));
    group.bench_function("bb_parse", |b| {
        b.iter(|| black_box(parse_bb(&text).expect("parses")))
    });
    group.finish();
}

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    for name in ["gcc", "swim"] {
        let prog = workloads::by_name(name)
            .expect("in suite")
            .build(Scale::Test);
        group.bench_with_input(BenchmarkId::new("w64_o2", name), &prog, |b, prog| {
            b.iter(|| black_box(compile(prog, CompileTarget::W64_O2)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_stages,
    bench_end_to_end,
    bench_region_sim_and_bbfile,
    bench_compile
);
criterion_main!(benches);
