//! One Criterion bench per paper artifact (Table 1, Figures 1–5,
//! Tables 2–3), each timing the regeneration of that artifact on a
//! small subset at test scale.
//!
//! The *full* regeneration at reference scale — the numbers recorded in
//! `EXPERIMENTS.md` — is produced by the `experiments` binary:
//!
//! ```text
//! cargo run --release -p cbsp-bench --bin experiments -- all --scale ref
//! ```

use cbsp_bench::{evaluate_benchmark, phase_bias, report, run_suite, Pair};
use cbsp_program::Scale;
use cbsp_sim::MemoryConfig;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const SUBSET: &[&str] = &["gzip", "swim", "crafty"];
const INTERVAL: u64 = 20_000;

fn subset() -> Vec<String> {
    SUBSET.iter().map(|s| s.to_string()).collect()
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("artifact/table1_memory_config", |b| {
        b.iter(|| black_box(report::table1(&MemoryConfig::table1())))
    });
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("artifact");
    group.sample_size(10);
    // The suite evaluation produces the data behind Figures 1-5; each
    // figure's rendering is then timed separately on top of it.
    let results = run_suite(&subset(), Scale::Test, INTERVAL, &MemoryConfig::table1(), 3);

    group.bench_function("fig1_num_simpoints", |b| {
        b.iter(|| black_box(report::fig1(&results)))
    });
    group.bench_function("fig2_vli_interval_size", |b| {
        b.iter(|| black_box(report::fig2(&results)))
    });
    group.bench_function("fig3_cpi_error", |b| {
        b.iter(|| black_box(report::fig3(&results)))
    });
    group.bench_function("fig4_same_platform_speedup_error", |b| {
        b.iter(|| black_box(report::fig4(&results)))
    });
    group.bench_function("fig5_cross_platform_speedup_error", |b| {
        b.iter(|| black_box(report::fig5(&results)))
    });

    // End-to-end data collection for one benchmark (the expensive part
    // behind every figure).
    group.bench_function("figdata_one_benchmark_eval", |b| {
        b.iter(|| {
            black_box(evaluate_benchmark(
                "gzip",
                Scale::Test,
                INTERVAL,
                &MemoryConfig::table1(),
            ))
        })
    });
    group.finish();
}

fn bench_phase_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("artifact");
    group.sample_size(10);
    group.bench_function("table2_gcc_phase_bias", |b| {
        b.iter(|| {
            let run = evaluate_benchmark("gcc", Scale::Test, INTERVAL, &MemoryConfig::table1());
            black_box(phase_bias(&run, Pair::P32u64u, 3))
        })
    });
    group.bench_function("table3_apsi_phase_bias", |b| {
        b.iter(|| {
            let run = evaluate_benchmark("apsi", Scale::Test, INTERVAL, &MemoryConfig::table1());
            black_box(phase_bias(&run, Pair::P32o64o, 3))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1, bench_figures, bench_phase_tables);
criterion_main!(benches);
