//! Cold vs. warm pipeline runs through the artifact store: how much
//! wall-clock a populated cache saves, and what the store machinery
//! itself (hashing, serialization, checksumming) costs on a hit.

use cbsp_core::CbspConfig;
use cbsp_program::{compile, workloads, Binary, CompileTarget, Input, Scale};
use cbsp_sim::record_trace;
use cbsp_store::{put_trace_legacy, ArtifactStore, CachePolicy, Orchestrator, TraceCache};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::path::PathBuf;

fn setup(name: &str) -> (Vec<Binary>, Input, CbspConfig) {
    let prog = workloads::by_name(name)
        .expect("in suite")
        .build(Scale::Test);
    let binaries: Vec<Binary> = CompileTarget::ALL_FOUR
        .iter()
        .map(|&t| compile(&prog, t))
        .collect();
    let config = CbspConfig {
        interval_target: 20_000,
        ..CbspConfig::default()
    };
    (binaries, Input::test(), config)
}

fn temp_store(tag: &str) -> (ArtifactStore, PathBuf) {
    let dir = std::env::temp_dir().join(format!("cbsp-bench-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ArtifactStore::open(&dir).expect("store opens");
    (store, dir)
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    group.sample_size(10);
    for name in ["gzip", "gcc"] {
        let (binaries, input, config) = setup(name);
        let bin_refs: Vec<&Binary> = binaries.iter().collect();

        // Cold: every iteration recomputes all five stages (Refresh
        // overwrites, so the store never serves a hit).
        let (store, dir) = temp_store(&format!("cold-{name}"));
        let orchestrator = Orchestrator::new(&store, CachePolicy::Refresh);
        group.bench_with_input(BenchmarkId::new("cold_run", name), &name, |b, _| {
            b.iter(|| {
                black_box(
                    orchestrator
                        .run_cross_binary(&bin_refs, &input, &config, "bench cold")
                        .expect("pipeline runs"),
                )
            })
        });
        let _ = std::fs::remove_dir_all(&dir);

        // Warm: one priming run, then every stage is a cache hit.
        let (store, dir) = temp_store(&format!("warm-{name}"));
        let orchestrator = Orchestrator::new(&store, CachePolicy::ReadWrite);
        let (_, report) = orchestrator
            .run_cross_binary(&bin_refs, &input, &config, "bench prime")
            .expect("pipeline runs");
        assert_eq!(report.hits(), 0, "priming run starts cold");
        group.bench_with_input(BenchmarkId::new("warm_run", name), &name, |b, _| {
            b.iter(|| {
                let (result, report) = orchestrator
                    .run_cross_binary(&bin_refs, &input, &config, "bench warm")
                    .expect("pipeline runs");
                assert_eq!(report.misses(), 0, "warm run is fully cached");
                black_box(result)
            })
        });
        let _ = std::fs::remove_dir_all(&dir);

        // Baseline: the pipeline with the store bypassed entirely.
        let (store, dir) = temp_store(&format!("bypass-{name}"));
        let orchestrator = Orchestrator::new(&store, CachePolicy::Bypass);
        group.bench_with_input(BenchmarkId::new("no_store", name), &name, |b, _| {
            b.iter(|| {
                black_box(
                    orchestrator
                        .run_cross_binary(&bin_refs, &input, &config, "bench bypass")
                        .expect("pipeline runs"),
                )
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// A/B comparison of the two on-disk trace formats: each iteration
/// builds a fresh trace cache (empty memory tier) over a primed store
/// and loads all four recorded binaries' traces — the cold-process
/// read path. `blob_cold` reads the binary blob tier (header check,
/// checksum pass, bytes adopted verbatim); `json_cold` reads legacy
/// schema-2 envelopes (JSON parse plus base64 decode), with read-through
/// migration disabled so every iteration pays the legacy cost.
fn bench_blob_vs_json_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    group.sample_size(10);
    for name in ["gzip", "gcc"] {
        let (binaries, input, _) = setup(name);

        let (store, dir) = temp_store(&format!("blob-cold-{name}"));
        let primer = TraceCache::new(Some(&store));
        for bin in &binaries {
            primer.get_or_record(bin, &input).expect("store usable");
        }
        group.bench_with_input(BenchmarkId::new("blob_cold", name), &name, |b, _| {
            b.iter(|| {
                let cache = TraceCache::new(Some(&store));
                for bin in &binaries {
                    black_box(cache.get_or_record(bin, &input).expect("store usable"));
                }
            })
        });
        let _ = std::fs::remove_dir_all(&dir);

        let (store, dir) = temp_store(&format!("json-cold-{name}"));
        for bin in &binaries {
            let trace = record_trace(bin, &input);
            put_trace_legacy(&store, bin, &input, &trace).expect("store usable");
        }
        group.bench_with_input(BenchmarkId::new("json_cold", name), &name, |b, _| {
            b.iter(|| {
                let cache = TraceCache::new(Some(&store)).without_migration();
                for bin in &binaries {
                    black_box(cache.get_or_record(bin, &input).expect("store usable"));
                }
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, bench_cold_vs_warm, bench_blob_vs_json_cold);
criterion_main!(benches);
