//! Text rendering of the paper's tables and figures.
//!
//! Each function prints one artifact in the same row/series structure
//! the paper reports, so a run of the `experiments` binary can be read
//! side by side with the paper.

use crate::experiment::{Pair, PhaseBias};
use crate::suite::SuiteResults;
use cbsp_sim::MemoryConfig;
use std::fmt::Write as _;

/// Renders Table 1 (the memory-system configuration).
pub fn table1(mem: &MemoryConfig) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 1: Memory System Configuration\n\
         {:<10} {:>9} {:>7} {:>10} {:>12} {:>10}",
        "Level", "Capacity", "Assoc", "Line Size", "Hit Latency", "Type"
    );
    for (name, l) in [
        ("FLC(L1D)", &mem.l1),
        ("MLC(L2D)", &mem.l2),
        ("LLC(L3D)", &mem.l3),
    ] {
        let _ = writeln!(
            s,
            "{:<10} {:>7}KB {:>6}-way {:>8}B {:>10} cy {:>10}",
            name,
            l.capacity_bytes / 1024,
            l.associativity,
            l.line_bytes,
            l.hit_latency,
            "WriteBack"
        );
    }
    let _ = writeln!(
        s,
        "{:<10} {:>9} {:>7} {:>10} {:>9} cy",
        "DRAM", "-", "-", "-", mem.dram_latency
    );
    s
}

/// Renders Figure 1 (number of SimPoints, FLI vs VLI, per benchmark;
/// bars are averages across the four binaries).
pub fn fig1(r: &SuiteResults) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 1: Number of SimPoints (avg across 4 binaries)\n\
         {:<10} {:>6} {:>6}",
        "benchmark", "FLI", "VLI"
    );
    for e in &r.benchmarks {
        let _ = writeln!(
            s,
            "{:<10} {:>6.1} {:>6.1}",
            e.name,
            e.fli.avg_num_points(),
            e.vli.avg_num_points()
        );
    }
    let _ = writeln!(
        s,
        "{:<10} {:>6.1} {:>6.1}",
        "Avg",
        r.average(|e| e.fli.avg_num_points()),
        r.average(|e| e.vli.avg_num_points())
    );
    s
}

/// Renders Figure 2 (average VLI interval size; FLI is fixed at the
/// target by construction).
pub fn fig2(r: &SuiteResults) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 2: Average Interval Size for mappable SimPoint (VLI)\n\
         (target = {} instructions; per-binary FLI is fixed at the target)\n\
         {:<10} {:>14} {:>8} {:>14}",
        r.interval_target, "benchmark", "avg interval", "x target", "max interval"
    );
    for e in &r.benchmarks {
        let _ = writeln!(
            s,
            "{:<10} {:>14.0} {:>7.2}x {:>14}",
            e.name,
            e.vli_avg_interval,
            e.vli_avg_interval / r.interval_target as f64,
            e.vli_max_interval
        );
    }
    let _ = writeln!(
        s,
        "{:<10} {:>14.0} {:>7.2}x",
        "Avg",
        r.average(|e| e.vli_avg_interval),
        r.average(|e| e.vli_avg_interval) / r.interval_target as f64
    );
    s
}

/// Renders Figure 3 (CPI error vs. full simulation, FLI vs VLI,
/// averaged across the four binaries).
pub fn fig3(r: &SuiteResults) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 3: CPI Error (avg across 4 binaries)\n\
         {:<10} {:>8} {:>8}",
        "benchmark", "FLI", "VLI"
    );
    for e in &r.benchmarks {
        let _ = writeln!(
            s,
            "{:<10} {:>7.2}% {:>7.2}%",
            e.name,
            100.0 * e.fli.avg_cpi_err(),
            100.0 * e.vli.avg_cpi_err()
        );
    }
    let _ = writeln!(
        s,
        "{:<10} {:>7.2}% {:>7.2}%",
        "Avg",
        100.0 * r.average(|e| e.fli.avg_cpi_err()),
        100.0 * r.average(|e| e.vli.avg_cpi_err())
    );
    s
}

fn speedup_figure(r: &SuiteResults, title: &str, pairs: [Pair; 2]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = write!(s, "{:<10}", "benchmark");
    for p in pairs {
        let _ = write!(
            s,
            " {:>11} {:>11}",
            format!("fli_{}", p.label()),
            format!("vli_{}", p.label())
        );
    }
    let _ = writeln!(s);
    for e in &r.benchmarks {
        let _ = write!(s, "{:<10}", e.name);
        for p in pairs {
            let _ = write!(
                s,
                " {:>10.2}% {:>10.2}%",
                100.0 * e.speedup_err(false, p),
                100.0 * e.speedup_err(true, p)
            );
        }
        let _ = writeln!(s);
    }
    let _ = write!(s, "{:<10}", "Avg");
    for p in pairs {
        let _ = write!(
            s,
            " {:>10.2}% {:>10.2}%",
            100.0 * r.avg_speedup_err(false, p),
            100.0 * r.avg_speedup_err(true, p)
        );
    }
    let _ = writeln!(s);
    s
}

/// Renders Figure 4 (speedup error across optimization levels on the
/// same platform).
pub fn fig4(r: &SuiteResults) -> String {
    speedup_figure(
        r,
        "Figure 4: Speedup error, same platform (unopt vs opt)",
        [Pair::P32u32o, Pair::P64u64o],
    )
}

/// Renders Figure 5 (speedup error across platforms at the same
/// optimization level).
pub fn fig5(r: &SuiteResults) -> String {
    speedup_figure(
        r,
        "Figure 5: Speedup error, cross platform (32-bit vs 64-bit)",
        [Pair::P32u64u, Pair::P32o64o],
    )
}

/// Renders a phase-bias table (Tables 2 and 3) for one benchmark pair.
pub fn phase_table(t: &PhaseBias, binary_labels: (&str, &str)) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Phase comparison for {} across {} and {} binaries",
        t.name, binary_labels.0, binary_labels.1
    );
    let _ = writeln!(
        s,
        "{:<6} {:<6} | {:>7} {:>9} {:>8} {:>8} | {:>7} {:>9} {:>8} {:>8}",
        "scheme",
        "phase",
        "weight",
        "true CPI",
        "SP CPI",
        "err",
        "weight",
        "true CPI",
        "SP CPI",
        "err"
    );
    for (scheme, rows) in [("VLI", &t.vli), ("FLI", &t.fli)] {
        for i in 0..rows[0].len().max(rows[1].len()) {
            let left = rows[0].get(i);
            let right = rows[1].get(i);
            let cell = |r: Option<&crate::experiment::PhaseRow>| match r {
                Some(r) => format!(
                    "{:>7.2} {:>9.2} {:>8.2} {:>7.1}%",
                    r.weight,
                    r.true_cpi,
                    r.sp_cpi,
                    100.0 * r.cpi_error()
                ),
                None => format!("{:>7} {:>9} {:>8} {:>8}", "-", "-", "-", "-"),
            };
            let phase = left.or(right).map(|r| r.phase).unwrap_or(0);
            let _ = writeln!(
                s,
                "{:<6} {:<6} | {} | {}",
                if i == 0 { scheme } else { "" },
                i + 1,
                cell(left),
                cell(right)
            );
            let _ = phase;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{evaluate_benchmark, phase_bias};
    use crate::suite::run_suite;
    use cbsp_program::Scale;

    #[test]
    fn table1_mentions_every_level() {
        let s = table1(&MemoryConfig::table1());
        for needle in ["FLC(L1D)", "MLC(L2D)", "LLC(L3D)", "DRAM", "32KB", "250"] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    fn figures_render_for_a_small_suite() {
        let r = run_suite(
            &["gzip".to_string()],
            Scale::Test,
            20_000,
            &MemoryConfig::table1(),
            1,
        );
        for s in [fig1(&r), fig2(&r), fig3(&r), fig4(&r), fig5(&r)] {
            assert!(s.contains("gzip"));
            assert!(s.contains("Avg"));
        }
    }

    #[test]
    fn phase_table_renders() {
        let run = evaluate_benchmark("apsi", Scale::Test, 20_000, &MemoryConfig::table1());
        let t = phase_bias(&run, crate::experiment::Pair::P32o64o, 3);
        let s = phase_table(&t, ("32o", "64o"));
        assert!(s.contains("VLI"));
        assert!(s.contains("FLI"));
        assert!(s.contains("apsi"));
    }
}
