//! Performance baseline: per-stage wall time of the cross-binary
//! pipeline at 1 thread vs N threads (the `perf` artifact,
//! `BENCH_simpoint.json`).
//!
//! Runs the pipeline stage by stage — compile, profile, mappable, VLI,
//! SimPoint clustering, boundary mapping, detailed simulation, sliced
//! CPI estimation — once serially and once on a pool, timing each
//! stage, and checks that the two runs produce identical results (the
//! engine's determinism guarantee, measured rather than assumed). The
//! `estimate` stage doubles as the sliced-trace cold/warm lane: the
//! serial run materializes each binary's slice manifest, the parallel
//! run answers from cached slices alone.

use cbsp_core::{
    map_stage, mappable_stage, profile_stage_all, simpoint_stage, vli_stage, CbspConfig,
    MappableStage, MappedSlicing,
};
use cbsp_par::Pool;
use cbsp_program::{
    compile, compile_cost_estimate_ns, workloads, Binary, CompileTarget, Input, Scale,
};
use cbsp_sim::{replay_marker_sliced, MemoryConfig};
use cbsp_simpoint::{SimPointConfig, SimPointResult};
use cbsp_store::{ArtifactStore, CpiEstimate, TraceCache};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Wall time of one pipeline stage at both thread counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTime {
    /// Stage name.
    pub stage: String,
    /// Milliseconds with one thread.
    pub serial_ms: f64,
    /// Milliseconds with the full pool.
    pub parallel_ms: f64,
    /// `serial_ms / parallel_ms`.
    pub speedup: f64,
}

/// The full perf baseline (serialized to `BENCH_simpoint.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Benchmark measured.
    pub benchmark: String,
    /// Scale the run used.
    pub scale: String,
    /// Interval-size target in instructions.
    pub interval_target: u64,
    /// Threads in the parallel configuration.
    pub threads: usize,
    /// Per-stage times, in pipeline order.
    pub stages: Vec<StageTime>,
    /// End-to-end serial milliseconds.
    pub total_serial_ms: f64,
    /// End-to-end parallel milliseconds.
    pub total_parallel_ms: f64,
    /// End-to-end speedup.
    pub total_speedup: f64,
    /// `true` — the serial and parallel runs produced identical
    /// clusterings and weights (checked, not assumed).
    pub results_identical: bool,
    /// Counter snapshot from the parallel run (`cbsp-trace`): pool
    /// queue-wait/exec nanoseconds, k-means iterations, Hamerly bound
    /// skips, intervals produced, … — the *why* behind the timings.
    pub metrics: BTreeMap<String, u64>,
    /// Warm-daemon vs cold-pipeline lane, merged in by
    /// `cbsp-serve-bench` (absent until that load generator has run;
    /// [`compare`] ignores it, so the perf gate is unaffected).
    pub serve: Option<crate::serve_lane::ServeLane>,
    /// Warm-capacity scaling across 1/2/4 cluster workers, merged in
    /// by `cbsp-cluster-bench` (absent until that load generator has
    /// run; [`compare`] ignores it, so the perf gate is unaffected).
    pub cluster: Option<crate::cluster_lane::ClusterLane>,
}

struct MeasuredRun {
    times: Vec<(&'static str, f64)>,
    simpoint: SimPointResult,
    weights: Vec<Vec<f64>>,
    estimates: Vec<CpiEstimate>,
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn measure(
    name: &str,
    scale: Scale,
    interval_target: u64,
    threads: usize,
    mem: &MemoryConfig,
    traces: &TraceCache<'_>,
) -> MeasuredRun {
    let workload = workloads::by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let prog = workload.build(scale);
    let input = match scale {
        Scale::Test => Input::test(),
        Scale::Train => Input::train(),
        Scale::Reference => Input::reference(),
    };
    let pool = Pool::new(threads);
    let config = CbspConfig {
        interval_target,
        simpoint: SimPointConfig {
            threads,
            ..SimPointConfig::default()
        },
        ..CbspConfig::default()
    };
    let mut times = Vec::new();

    let t = Instant::now();
    let binaries: Vec<Binary> = {
        let _span = cbsp_trace::span_labeled("stage/compile", || name.to_string());
        let est = compile_cost_estimate_ns(&prog) * CompileTarget::ALL_FOUR.len() as u64;
        pool.for_work(est)
            .run_indexed(CompileTarget::ALL_FOUR.len(), |i| {
                compile(&prog, CompileTarget::ALL_FOUR[i])
            })
    };
    times.push(("compile", ms(t)));
    let bin_refs: Vec<&Binary> = binaries.iter().collect();

    let t = Instant::now();
    let profiles = profile_stage_all(&bin_refs, &input, &pool);
    times.push(("profile", ms(t)));

    let t = Instant::now();
    let MappableStage { set: mappable, .. } = mappable_stage(&bin_refs, &profiles);
    times.push(("mappable", ms(t)));

    let t = Instant::now();
    let vli = vli_stage(&bin_refs, &input, &config, &mappable, &profiles);
    times.push(("vli", ms(t)));

    let t = Instant::now();
    let simpoint = simpoint_stage(&vli, &config.simpoint, &config.estimator);
    times.push(("simpoint", ms(t)));

    let t = Instant::now();
    let MappedSlicing {
        boundaries,
        weights,
        ..
    } = map_stage(
        &bin_refs,
        &input,
        config.primary,
        &mappable,
        &vli,
        &simpoint,
        &pool,
    )
    .expect("same-program binaries map cleanly");
    times.push(("map", ms(t)));

    let t = Instant::now();
    let event_traces = traces
        .get_or_record_all(&bin_refs, &input, &pool)
        .expect("trace cache records and serves the event traces");
    let sims = pool.run_indexed(binaries.len(), |b| {
        replay_marker_sliced(&event_traces[b], mem, &boundaries[b]).expect("recorded trace decodes")
    });
    times.push(("detailed_sim", ms(t)));
    drop(sims);

    // CPI estimation from per-simpoint trace slices: the serial (first)
    // run materializes the slice manifests — one cutting replay per
    // binary — and the parallel run replays only the cached slices, so
    // this stage measures the sliced-trace warm path against its own
    // cold materialization.
    let t = Instant::now();
    let estimates = {
        let _span = cbsp_trace::span_labeled("stage/estimate", || name.to_string());
        pool.run_indexed(binaries.len(), |b| {
            traces
                .estimate_cpi_sliced(
                    &binaries[b],
                    &input,
                    mem,
                    &boundaries[b],
                    &simpoint.points,
                    Some(&weights[b]),
                    boundaries[b].len() + 1,
                )
                .expect("trace cache serves the sliced estimate")
        })
    };
    times.push(("estimate", ms(t)));

    MeasuredRun {
        times,
        simpoint,
        weights,
        estimates,
    }
}

/// Measures the pipeline at 1 thread and at `threads`, returning the
/// per-stage comparison.
///
/// # Panics
///
/// Panics if `name` is not in the workload suite.
pub fn run_perf(
    name: &str,
    scale: Scale,
    interval_target: u64,
    threads: usize,
    mem: &MemoryConfig,
) -> PerfReport {
    let threads = threads.max(2);
    // One on-disk artifact store spans both runs, but each run gets its
    // own trace cache (empty memory tier): the serial run pays the
    // interpret+record cost once and persists blob-tier traces and
    // slice manifests; the parallel run answers from the blob tier
    // alone — exactly how a fresh experiment process re-simulates, so
    // the detailed_sim and estimate rows measure the blob read path
    // (including the slice-prefetch fan-out) rather than a same-process
    // memory hit.
    static STORE_SEQ: AtomicU64 = AtomicU64::new(0);
    let store_dir = std::env::temp_dir().join(format!(
        "cbsp-perf-store-{}-{}",
        std::process::id(),
        STORE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let store = ArtifactStore::open(&store_dir).expect("perf baseline store opens in temp dir");
    let serial = {
        let traces = TraceCache::new(Some(&store));
        measure(name, scale, interval_target, 1, mem, &traces)
    };

    // Trace only the parallel run, so the embedded counters explain the
    // numbers the gate actually guards (queue wait, bound skips, cache
    // traffic at N threads). Restore the collector state afterwards.
    let was_enabled = cbsp_trace::enabled();
    cbsp_trace::reset();
    cbsp_trace::enable();
    let parallel = {
        let traces = TraceCache::new(Some(&store));
        measure(name, scale, interval_target, threads, mem, &traces)
    };
    let mut metrics = cbsp_trace::snapshot().counters;
    if !was_enabled {
        cbsp_trace::disable();
    }
    cbsp_trace::reset();
    let _ = std::fs::remove_dir_all(&store_dir);

    // The store-tier counters are part of the report schema even when
    // zero (no legacy envelopes to migrate, prefetch gated serial), so
    // downstream tooling can always read them.
    for key in [
        "store/blob_reads",
        "store/legacy_migrations",
        "store/prefetch_fanouts",
    ] {
        metrics.entry(key.to_string()).or_insert(0);
    }

    let stages: Vec<StageTime> = serial
        .times
        .iter()
        .zip(&parallel.times)
        .map(|(&(stage, s_ms), &(_, p_ms))| StageTime {
            stage: stage.to_string(),
            serial_ms: s_ms,
            parallel_ms: p_ms,
            speedup: if p_ms > 0.0 { s_ms / p_ms } else { 1.0 },
        })
        .collect();
    let total_serial_ms: f64 = stages.iter().map(|s| s.serial_ms).sum();
    let total_parallel_ms: f64 = stages.iter().map(|s| s.parallel_ms).sum();
    PerfReport {
        benchmark: name.to_string(),
        scale: format!("{scale:?}"),
        interval_target,
        threads,
        stages,
        total_serial_ms,
        total_parallel_ms,
        total_speedup: if total_parallel_ms > 0.0 {
            total_serial_ms / total_parallel_ms
        } else {
            1.0
        },
        results_identical: serial.simpoint == parallel.simpoint
            && serial.weights == parallel.weights
            && serial.estimates == parallel.estimates,
        metrics,
        serve: None,
        cluster: None,
    }
}

/// One stage of a baseline-vs-current comparison ([`compare`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompareRow {
    /// Stage name (or `"total"`).
    pub stage: String,
    /// Baseline parallel milliseconds.
    pub base_ms: f64,
    /// Current parallel milliseconds.
    pub cur_ms: f64,
    /// `cur_ms / base_ms` (1.0 when the baseline is zero).
    pub ratio: f64,
    /// `true` when the stage slowed down beyond tolerance *and* is big
    /// enough to matter (see [`compare`]).
    pub regressed: bool,
    /// `true` when the baseline stage ran gated-serial — its speedup is
    /// below [`GATED_SERIAL_MAX_SPEEDUP`], meaning `Pool::for_work`
    /// (or the stage's own structure) deliberately kept it on one
    /// thread. Gated rows are judged against the *slower* of the
    /// baseline's serial/parallel times, so scheduling jitter between
    /// "inlined" and "dispatched once" does not fail the gate.
    pub gated: bool,
}

/// Stages faster than this (in both baseline and current) are reported
/// but never fail the gate: timer noise on sub-5 ms stages dwarfs any
/// real regression, and CI runners are noisy.
pub const COMPARE_MIN_MS: f64 = 5.0;

/// Baseline speedup below which a stage counts as gated-serial: the
/// pool decided (via `Pool::for_work`'s cost estimate, or because the
/// stage is memory-bandwidth-bound) that fan-out would not pay, so its
/// parallel time *is* its serial time plus noise. `profile` and `vli`
/// sit here at Reference scale by design — see DESIGN.md, "Stages that
/// stay near 1× on purpose".
pub const GATED_SERIAL_MAX_SPEEDUP: f64 = 1.05;

/// Result of comparing a current perf run against a committed baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfComparison {
    /// Allowed fractional slowdown (0.25 = current may be 25% slower).
    pub tolerance: f64,
    /// Per-stage rows in baseline order, then a `"total"` row.
    pub rows: Vec<CompareRow>,
    /// Stages present in only one of the two reports (schema drift —
    /// always a failure, a silently dropped stage is not a speedup).
    pub mismatched_stages: Vec<String>,
    /// `false` if the current run lost cross-thread determinism.
    pub results_identical: bool,
}

impl PerfComparison {
    /// `true` when the gate should fail the build.
    pub fn regressed(&self) -> bool {
        !self.results_identical
            || !self.mismatched_stages.is_empty()
            || self.rows.iter().any(|r| r.regressed)
    }
}

/// Compares the current report's parallel wall times against the
/// committed baseline, flagging any stage (or the total) that got more
/// than `tolerance` slower. Stages under [`COMPARE_MIN_MS`] in both
/// reports are shown but exempt from failing; the total row never is.
///
/// Stages whose baseline speedup is below [`GATED_SERIAL_MAX_SPEEDUP`]
/// ran gated-serial in the baseline; for those the regression limit is
/// `(1 + tolerance) × max(baseline serial, baseline parallel)` rather
/// than the parallel time alone, because which of the two essentially
/// equal times the scheduler lands on is noise, not signal.
pub fn compare(baseline: &PerfReport, current: &PerfReport, tolerance: f64) -> PerfComparison {
    let row =
        |stage: &str, base_ms: f64, limit_ms: f64, cur_ms: f64, exemptable: bool, gated: bool| {
            let ratio = if base_ms > 0.0 { cur_ms / base_ms } else { 1.0 };
            let too_small = exemptable && base_ms < COMPARE_MIN_MS && cur_ms < COMPARE_MIN_MS;
            CompareRow {
                stage: stage.to_string(),
                base_ms,
                cur_ms,
                ratio,
                regressed: cur_ms > limit_ms * (1.0 + tolerance) && !too_small,
                gated,
            }
        };

    let mut rows = Vec::new();
    let mut mismatched = Vec::new();
    let cur_stage = |name: &str| current.stages.iter().find(|s| s.stage == name);
    for b in &baseline.stages {
        match cur_stage(&b.stage) {
            Some(c) => {
                let gated = b.speedup < GATED_SERIAL_MAX_SPEEDUP;
                let limit = if gated {
                    b.parallel_ms.max(b.serial_ms)
                } else {
                    b.parallel_ms
                };
                rows.push(row(
                    &b.stage,
                    b.parallel_ms,
                    limit,
                    c.parallel_ms,
                    true,
                    gated,
                ));
            }
            None => mismatched.push(b.stage.clone()),
        }
    }
    for c in &current.stages {
        if !baseline.stages.iter().any(|b| b.stage == c.stage) {
            mismatched.push(c.stage.clone());
        }
    }
    rows.push(row(
        "total",
        baseline.total_parallel_ms,
        baseline.total_parallel_ms,
        current.total_parallel_ms,
        false,
        false,
    ));

    PerfComparison {
        tolerance,
        rows,
        mismatched_stages: mismatched,
        results_identical: current.results_identical,
    }
}

/// Renders a comparison as an aligned table with a PASS/FAIL verdict.
pub fn render_compare(c: &PerfComparison) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Perf gate — parallel wall time vs committed baseline (tolerance {:.0}%)\n",
        c.tolerance * 100.0
    ));
    out.push_str(&format!(
        "{:<14} {:>12} {:>12} {:>8}  {}\n",
        "stage", "baseline ms", "current ms", "ratio", "verdict"
    ));
    for r in &c.rows {
        let verdict = if r.regressed {
            "REGRESSED"
        } else if r.gated {
            "ok (gated-serial)"
        } else if r.ratio > 1.0 + c.tolerance {
            "ok (below min size)"
        } else {
            "ok"
        };
        out.push_str(&format!(
            "{:<14} {:>12.1} {:>12.1} {:>7.2}x  {}\n",
            r.stage, r.base_ms, r.cur_ms, r.ratio, verdict
        ));
    }
    for s in &c.mismatched_stages {
        out.push_str(&format!("stage {s:?} present in only one report — FAIL\n"));
    }
    if !c.results_identical {
        out.push_str("current run lost cross-thread determinism — FAIL\n");
    }
    out.push_str(if c.regressed() {
        "perf gate: FAIL\n"
    } else {
        "perf gate: PASS\n"
    });
    out
}

/// Renders a perf report as an aligned text table.
pub fn render(r: &PerfReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Pipeline stage wall time — {} ({} scale, interval {}), 1 vs {} threads\n",
        r.benchmark, r.scale, r.interval_target, r.threads
    ));
    out.push_str(&format!(
        "{:<14} {:>12} {:>12} {:>9}\n",
        "stage", "serial ms", "parallel ms", "speedup"
    ));
    for s in &r.stages {
        out.push_str(&format!(
            "{:<14} {:>12.1} {:>12.1} {:>8.2}x\n",
            s.stage, s.serial_ms, s.parallel_ms, s.speedup
        ));
    }
    out.push_str(&format!(
        "{:<14} {:>12.1} {:>12.1} {:>8.2}x\n",
        "total", r.total_serial_ms, r.total_parallel_ms, r.total_speedup
    ));
    out.push_str(&format!(
        "results identical across thread counts: {}\n",
        r.results_identical
    ));
    let key = |name: &str| r.metrics.get(name).copied().unwrap_or(0);
    if !r.metrics.is_empty() {
        out.push_str(&format!(
            "parallel-run counters: {} fan-outs, {} pool jobs ({} inline), \
             queue wait {:.1} ms, {} k-means iterations, {} bound skips\n",
            key("pool/fan_outs"),
            key("pool/jobs_executed"),
            key("pool/jobs_inline"),
            key("pool/queue_wait_ns") as f64 / 1e6,
            key("simpoint/kmeans_iterations"),
            key("simpoint/hamerly_bound_skips"),
        ));
        out.push_str(&format!(
            "replay engine: {} replays ({} events), trace cache {} hits / {} misses\n",
            key("sim/replays"),
            key("sim/replay_events"),
            key("sim/trace_cache_hits"),
            key("sim/trace_cache_misses"),
        ));
        out.push_str(&format!(
            "sliced estimates: {} slice replays reading {} bytes, \
             {} full replays avoided\n",
            key("sim/slice_replays"),
            key("sim/slice_bytes_read"),
            key("sim/full_replay_avoided"),
        ));
    }
    if let Some(lane) = &r.serve {
        out.push('\n');
        out.push_str(&crate::serve_lane::render(lane));
    }
    if let Some(lane) = &r.cluster {
        out.push('\n');
        out.push_str(&crate::cluster_lane::render(lane));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_report_is_complete_and_identical() {
        let _guard = cbsp_trace::test_lock();
        let r = run_perf("gzip", Scale::Test, 20_000, 4, &MemoryConfig::table1());
        assert_eq!(r.stages.len(), 8);
        assert!(r.total_serial_ms > 0.0);
        assert!(r.total_parallel_ms > 0.0);
        assert!(
            r.results_identical,
            "serial and parallel runs must produce identical results"
        );
        assert!(
            r.metrics.contains_key("pipeline/intervals_produced"),
            "parallel run must embed trace counters, got {:?}",
            r.metrics.keys().collect::<Vec<_>>()
        );
        assert!(r.metrics.contains_key("simpoint/kmeans_iterations"));
        assert!(
            r.metrics.contains_key("sim/replays"),
            "parallel detailed sim must be replay-driven, got {:?}",
            r.metrics.keys().collect::<Vec<_>>()
        );
        assert!(
            r.metrics.get("sim/trace_cache_hits").copied().unwrap_or(0) >= 4,
            "parallel run must hit the traces recorded by the serial run"
        );
        assert!(
            r.metrics
                .get("sim/full_replay_avoided")
                .copied()
                .unwrap_or(0)
                >= 4,
            "parallel estimates must answer from the slice manifests \
             the serial run materialized, got {:?}",
            r.metrics.keys().collect::<Vec<_>>()
        );
        assert!(
            r.metrics.get("sim/slice_replays").copied().unwrap_or(0) > 0,
            "warm estimates replay slices"
        );
        assert!(r.metrics.contains_key("sim/slice_bytes_read"));
        assert!(
            r.metrics.get("store/blob_reads").copied().unwrap_or(0) >= 4,
            "parallel run must answer from the blob tier the serial run \
             wrote, got {:?}",
            r.metrics.get("store/blob_reads")
        );
        assert!(
            r.metrics.contains_key("store/legacy_migrations"),
            "store counters are embedded even at zero"
        );
        assert!(r.metrics.contains_key("store/prefetch_fanouts"));
        let text = render(&r);
        assert!(text.contains("simpoint"));
        assert!(text.contains("detailed_sim"));
        assert!(text.contains("estimate"));
        assert!(text.contains("parallel-run counters"));
        assert!(text.contains("replay engine"));
        assert!(text.contains("sliced estimates"));
        let json = serde_json::to_string(&r).expect("serializes");
        assert!(json.contains("total_speedup"));
        assert!(json.contains("kmeans_iterations"));
        let back: PerfReport = serde_json::from_str(&json).expect("round-trips");
        assert_eq!(back, r);
    }

    fn toy_report(parallel_ms: &[(&str, f64)], identical: bool) -> PerfReport {
        let stages: Vec<StageTime> = parallel_ms
            .iter()
            .map(|&(stage, p)| StageTime {
                stage: stage.to_string(),
                serial_ms: p * 2.0,
                parallel_ms: p,
                speedup: 2.0,
            })
            .collect();
        let total: f64 = stages.iter().map(|s| s.parallel_ms).sum();
        PerfReport {
            benchmark: "gcc".into(),
            scale: "Reference".into(),
            interval_target: 100_000,
            threads: 8,
            stages,
            total_serial_ms: total * 2.0,
            total_parallel_ms: total,
            total_speedup: 2.0,
            results_identical: identical,
            metrics: BTreeMap::new(),
            serve: None,
            cluster: None,
        }
    }

    #[test]
    fn compare_passes_within_tolerance() {
        let base = toy_report(&[("compile", 10.0), ("simpoint", 100.0)], true);
        let cur = toy_report(&[("compile", 11.0), ("simpoint", 120.0)], true);
        let c = compare(&base, &cur, 0.25);
        assert!(!c.regressed(), "{}", render_compare(&c));
        assert!(render_compare(&c).contains("PASS"));
    }

    #[test]
    fn compare_fails_on_regression_beyond_tolerance() {
        let base = toy_report(&[("compile", 10.0), ("simpoint", 100.0)], true);
        let cur = toy_report(&[("compile", 10.0), ("simpoint", 140.0)], true);
        let c = compare(&base, &cur, 0.25);
        assert!(c.regressed());
        let text = render_compare(&c);
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("FAIL"), "{text}");
        // The 40% simpoint regression also drags the total past 25%.
        assert!(c.rows.iter().any(|r| r.stage == "total" && r.regressed));
    }

    #[test]
    fn compare_exempts_sub_minimum_stages_but_not_total() {
        // 2 ms -> 4 ms is a 2x "regression" that is pure timer noise.
        let base = toy_report(&[("mappable", 2.0), ("simpoint", 100.0)], true);
        let cur = toy_report(&[("mappable", 4.0), ("simpoint", 100.0)], true);
        let c = compare(&base, &cur, 0.25);
        assert!(
            !c.rows.iter().any(|r| r.stage == "mappable" && r.regressed),
            "sub-{COMPARE_MIN_MS} ms stages must not fail the gate"
        );
        assert!(render_compare(&c).contains("below min size"));
    }

    /// A report whose named stage runs gated-serial: serial and
    /// parallel wall times are essentially equal (speedup ~1×).
    fn gated_report(stage: &str, serial_ms: f64, parallel_ms: f64) -> PerfReport {
        let mut r = toy_report(&[("simpoint", 100.0)], true);
        r.stages.push(StageTime {
            stage: stage.to_string(),
            serial_ms,
            parallel_ms,
            speedup: if parallel_ms > 0.0 {
                serial_ms / parallel_ms
            } else {
                1.0
            },
        });
        r.total_parallel_ms += parallel_ms;
        r.total_serial_ms += serial_ms;
        r
    }

    #[test]
    fn compare_tolerates_gated_serial_stages_up_to_their_serial_time() {
        // Baseline profile ran gated: 44 ms serial, 42 ms parallel
        // (1.05x — which of the two the scheduler lands on is noise).
        // Current lands at 54 ms parallel: 1.29x against the baseline
        // parallel time, but within tolerance of the 44 ms serial
        // limit (44 × 1.25 = 55 ms).
        let base = gated_report("profile", 44.0, 42.0);
        let cur = gated_report("profile", 44.0, 54.0);
        let c = compare(&base, &cur, 0.25);
        let profile = c.rows.iter().find(|r| r.stage == "profile").unwrap();
        assert!(profile.gated, "~1x baseline speedup marks the row gated");
        assert!(profile.ratio > 1.25, "ratio still reports the raw slowdown");
        assert!(
            !profile.regressed,
            "gated rows are judged against max(serial, parallel): {}",
            render_compare(&c)
        );
        assert!(render_compare(&c).contains("gated-serial"));
    }

    #[test]
    fn compare_marks_sub_1x_stages_gated() {
        // profile at Reference scale: 0.8x "speedup" — parallel is the
        // slower of the two, so the limit stays the parallel time and
        // only the gated annotation changes.
        let base = gated_report("profile", 32.0, 40.0);
        let cur = gated_report("profile", 32.0, 40.0);
        let c = compare(&base, &cur, 0.25);
        let profile = c.rows.iter().find(|r| r.stage == "profile").unwrap();
        assert!(profile.gated);
        assert!(!profile.regressed);
        assert!(render_compare(&c).contains("gated-serial"));
    }

    #[test]
    fn compare_still_fails_gated_stages_beyond_the_serial_limit() {
        let base = gated_report("profile", 44.0, 42.0);
        let cur = gated_report("profile", 44.0, 60.0); // > 44 * 1.25
        let c = compare(&base, &cur, 0.25);
        let profile = c.rows.iter().find(|r| r.stage == "profile").unwrap();
        assert!(profile.gated);
        assert!(
            profile.regressed,
            "a real slowdown past the serial limit must still fail: {}",
            render_compare(&c)
        );
    }

    #[test]
    fn compare_does_not_gate_stages_with_real_speedups() {
        let base = toy_report(&[("simpoint", 100.0)], true);
        let cur = toy_report(&[("simpoint", 140.0)], true);
        let c = compare(&base, &cur, 0.25);
        let row = c.rows.iter().find(|r| r.stage == "simpoint").unwrap();
        assert!(!row.gated, "2x baseline speedup is not gated-serial");
        assert!(row.regressed);
    }

    #[test]
    fn compare_fails_on_schema_drift_and_lost_determinism() {
        let base = toy_report(&[("compile", 10.0), ("simpoint", 100.0)], true);
        let cur = toy_report(&[("compile", 10.0)], true);
        let c = compare(&base, &cur, 0.25);
        assert_eq!(c.mismatched_stages, vec!["simpoint".to_string()]);
        assert!(c.regressed());

        let cur = toy_report(&[("compile", 10.0), ("simpoint", 100.0)], false);
        let c = compare(&base, &cur, 0.25);
        assert!(c.regressed());
        assert!(render_compare(&c).contains("determinism"));
    }
}
