//! Performance baseline: per-stage wall time of the cross-binary
//! pipeline at 1 thread vs N threads (the `perf` artifact,
//! `BENCH_simpoint.json`).
//!
//! Runs the pipeline stage by stage — compile, profile, mappable, VLI,
//! SimPoint clustering, boundary mapping, detailed simulation — once
//! serially and once on a pool, timing each stage, and checks that the
//! two runs produce identical results (the engine's determinism
//! guarantee, measured rather than assumed).

use cbsp_core::{
    map_stage, mappable_stage, profile_stage_all, simpoint_stage, vli_stage, CbspConfig,
    MappableStage, MappedSlicing,
};
use cbsp_par::Pool;
use cbsp_program::{compile, workloads, Binary, CompileTarget, Input, Scale};
use cbsp_sim::{simulate_marker_sliced_all, MemoryConfig};
use cbsp_simpoint::{SimPointConfig, SimPointResult};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Wall time of one pipeline stage at both thread counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTime {
    /// Stage name.
    pub stage: String,
    /// Milliseconds with one thread.
    pub serial_ms: f64,
    /// Milliseconds with the full pool.
    pub parallel_ms: f64,
    /// `serial_ms / parallel_ms`.
    pub speedup: f64,
}

/// The full perf baseline (serialized to `BENCH_simpoint.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Benchmark measured.
    pub benchmark: String,
    /// Scale the run used.
    pub scale: String,
    /// Interval-size target in instructions.
    pub interval_target: u64,
    /// Threads in the parallel configuration.
    pub threads: usize,
    /// Per-stage times, in pipeline order.
    pub stages: Vec<StageTime>,
    /// End-to-end serial milliseconds.
    pub total_serial_ms: f64,
    /// End-to-end parallel milliseconds.
    pub total_parallel_ms: f64,
    /// End-to-end speedup.
    pub total_speedup: f64,
    /// `true` — the serial and parallel runs produced identical
    /// clusterings and weights (checked, not assumed).
    pub results_identical: bool,
}

struct MeasuredRun {
    times: Vec<(&'static str, f64)>,
    simpoint: SimPointResult,
    weights: Vec<Vec<f64>>,
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn measure(
    name: &str,
    scale: Scale,
    interval_target: u64,
    threads: usize,
    mem: &MemoryConfig,
) -> MeasuredRun {
    let workload = workloads::by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let prog = workload.build(scale);
    let input = match scale {
        Scale::Test => Input::test(),
        Scale::Train => Input::train(),
        Scale::Reference => Input::reference(),
    };
    let pool = Pool::new(threads);
    let config = CbspConfig {
        interval_target,
        simpoint: SimPointConfig {
            threads,
            ..SimPointConfig::default()
        },
        ..CbspConfig::default()
    };
    let mut times = Vec::new();

    let t = Instant::now();
    let binaries: Vec<Binary> = pool.run_indexed(CompileTarget::ALL_FOUR.len(), |i| {
        compile(&prog, CompileTarget::ALL_FOUR[i])
    });
    times.push(("compile", ms(t)));
    let bin_refs: Vec<&Binary> = binaries.iter().collect();

    let t = Instant::now();
    let profiles = profile_stage_all(&bin_refs, &input, &pool);
    times.push(("profile", ms(t)));

    let t = Instant::now();
    let MappableStage { set: mappable, .. } = mappable_stage(&bin_refs, &profiles);
    times.push(("mappable", ms(t)));

    let t = Instant::now();
    let vli = vli_stage(&bin_refs, &input, &config, &mappable);
    times.push(("vli", ms(t)));

    let t = Instant::now();
    let simpoint = simpoint_stage(&vli, &config.simpoint);
    times.push(("simpoint", ms(t)));

    let t = Instant::now();
    let MappedSlicing {
        boundaries,
        weights,
        ..
    } = map_stage(
        &bin_refs,
        &input,
        config.primary,
        &mappable,
        &vli,
        &simpoint,
        &pool,
    )
    .expect("same-program binaries map cleanly");
    times.push(("map", ms(t)));

    let t = Instant::now();
    let sims = simulate_marker_sliced_all(&bin_refs, &input, mem, &boundaries, &pool);
    times.push(("detailed_sim", ms(t)));
    drop(sims);

    MeasuredRun {
        times,
        simpoint,
        weights,
    }
}

/// Measures the pipeline at 1 thread and at `threads`, returning the
/// per-stage comparison.
///
/// # Panics
///
/// Panics if `name` is not in the workload suite.
pub fn run_perf(
    name: &str,
    scale: Scale,
    interval_target: u64,
    threads: usize,
    mem: &MemoryConfig,
) -> PerfReport {
    let threads = threads.max(2);
    let serial = measure(name, scale, interval_target, 1, mem);
    let parallel = measure(name, scale, interval_target, threads, mem);

    let stages: Vec<StageTime> = serial
        .times
        .iter()
        .zip(&parallel.times)
        .map(|(&(stage, s_ms), &(_, p_ms))| StageTime {
            stage: stage.to_string(),
            serial_ms: s_ms,
            parallel_ms: p_ms,
            speedup: if p_ms > 0.0 { s_ms / p_ms } else { 1.0 },
        })
        .collect();
    let total_serial_ms: f64 = stages.iter().map(|s| s.serial_ms).sum();
    let total_parallel_ms: f64 = stages.iter().map(|s| s.parallel_ms).sum();
    PerfReport {
        benchmark: name.to_string(),
        scale: format!("{scale:?}"),
        interval_target,
        threads,
        stages,
        total_serial_ms,
        total_parallel_ms,
        total_speedup: if total_parallel_ms > 0.0 {
            total_serial_ms / total_parallel_ms
        } else {
            1.0
        },
        results_identical: serial.simpoint == parallel.simpoint
            && serial.weights == parallel.weights,
    }
}

/// Renders a perf report as an aligned text table.
pub fn render(r: &PerfReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Pipeline stage wall time — {} ({} scale, interval {}), 1 vs {} threads\n",
        r.benchmark, r.scale, r.interval_target, r.threads
    ));
    out.push_str(&format!(
        "{:<14} {:>12} {:>12} {:>9}\n",
        "stage", "serial ms", "parallel ms", "speedup"
    ));
    for s in &r.stages {
        out.push_str(&format!(
            "{:<14} {:>12.1} {:>12.1} {:>8.2}x\n",
            s.stage, s.serial_ms, s.parallel_ms, s.speedup
        ));
    }
    out.push_str(&format!(
        "{:<14} {:>12.1} {:>12.1} {:>8.2}x\n",
        "total", r.total_serial_ms, r.total_parallel_ms, r.total_speedup
    ));
    out.push_str(&format!(
        "results identical across thread counts: {}\n",
        r.results_identical
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_report_is_complete_and_identical() {
        let r = run_perf("gzip", Scale::Test, 20_000, 4, &MemoryConfig::table1());
        assert_eq!(r.stages.len(), 7);
        assert!(r.total_serial_ms > 0.0);
        assert!(r.total_parallel_ms > 0.0);
        assert!(
            r.results_identical,
            "serial and parallel runs must produce identical results"
        );
        let text = render(&r);
        assert!(text.contains("simpoint"));
        assert!(text.contains("detailed_sim"));
        let json = serde_json::to_string(&r).expect("serializes");
        assert!(json.contains("total_speedup"));
    }
}
