//! `cbsp-cluster-bench` — load generator for the cluster router.
//!
//! Drives one working set of `pipeline.run` requests (distinct
//! intervals, sized to overflow a single worker's result cache)
//! against three topologies — a plain single daemon, a 2-worker
//! cluster, and a 4-worker cluster — and records warm throughput at
//! each point. The resulting lane is merged into the committed perf
//! baseline (`BENCH_simpoint.json`, the `cluster` field) next to the
//! serve lane and the per-stage thread-scaling numbers.
//!
//! ```text
//! cargo run --release -p cbsp-bench --bin cbsp-cluster-bench -- \
//!     [--benchmark gcc] [--scale ref] [--interval 100000] \
//!     [--digests 40] [--warmup-rounds 2] [--rounds 6] \
//!     [--cache-dir DIR] [--json BENCH_simpoint.json]
//! ```
//!
//! Exits non-zero unless warm throughput is monotone non-decreasing
//! from 1 to 2 to 4 workers AND every routed response is
//! byte-identical to the single-process daemon's — the same bar the
//! acceptance criteria set.

use cbsp_bench::PerfReport;
use cbsp_program::Scale;
use std::path::PathBuf;
use std::process::exit;

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    exit(2);
}

fn main() {
    let mut benchmark = "gcc".to_string();
    let mut scale = Scale::Reference;
    let mut interval: u64 = 100_000;
    let mut digests: usize = 40;
    let mut warmup_rounds: u64 = 2;
    let mut rounds: u64 = 6;
    let mut cache_dir: Option<PathBuf> = None;
    let mut json = "BENCH_simpoint.json".to_string();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| die(&format!("flag {flag} needs a value")))
        };
        match flag.as_str() {
            "--benchmark" => benchmark = value(),
            "--scale" => {
                scale = match value().as_str() {
                    "test" => Scale::Test,
                    "train" => Scale::Train,
                    "ref" | "reference" => Scale::Reference,
                    other => die(&format!("bad scale {other} (test|train|ref)")),
                }
            }
            "--interval" => {
                interval = value()
                    .parse()
                    .unwrap_or_else(|e| die(&format!("bad --interval: {e}")))
            }
            "--digests" => {
                digests = value()
                    .parse()
                    .unwrap_or_else(|e| die(&format!("bad --digests: {e}")))
            }
            "--warmup-rounds" => {
                warmup_rounds = value()
                    .parse()
                    .unwrap_or_else(|e| die(&format!("bad --warmup-rounds: {e}")))
            }
            "--rounds" => {
                rounds = value()
                    .parse()
                    .unwrap_or_else(|e| die(&format!("bad --rounds: {e}")))
            }
            "--cache-dir" => cache_dir = Some(PathBuf::from(value())),
            "--json" => json = value(),
            other => die(&format!("unknown flag {other}")),
        }
    }

    let cache_dir = cache_dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("cbsp-cluster-bench-{}", std::process::id()))
    });
    eprintln!(
        "cluster lane: {benchmark} at {scale:?} scale, {digests} digests from interval \
         {interval}, {warmup_rounds} warm-up + {rounds} timed rounds at 1/2/4 workers..."
    );
    let lane = cbsp_bench::run_cluster_lane(
        &benchmark,
        scale,
        interval,
        digests,
        warmup_rounds,
        rounds,
        &cache_dir,
    );
    let _ = std::fs::remove_dir_all(&cache_dir);
    print!("{}", cbsp_bench::cluster_lane::render(&lane));

    let text = std::fs::read_to_string(&json).unwrap_or_else(|e| {
        die(&format!(
            "reading {json}: {e} (run `experiments perf` first)"
        ))
    });
    let mut report: PerfReport =
        serde_json::from_str(&text).unwrap_or_else(|e| die(&format!("parsing {json}: {e}")));
    report.cluster = Some(lane.clone());
    let out = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&json, out).unwrap_or_else(|e| die(&format!("writing {json}: {e}")));
    eprintln!("merged cluster lane into {json}");

    if !lane.results_identical {
        eprintln!("cluster lane: FAIL — routed responses drifted from single-process serving");
        exit(1);
    }
    if !lane.monotone {
        eprintln!("cluster lane: FAIL — warm throughput did not scale monotonically 1 -> 2 -> 4");
        exit(1);
    }
    let rps: Vec<String> = lane
        .points
        .iter()
        .map(|p| format!("{}w {:.0} rps", p.workers, p.warm_rps))
        .collect();
    eprintln!("cluster lane: PASS ({})", rps.join(" -> "));
}
