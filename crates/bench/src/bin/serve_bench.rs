//! `cbsp-serve-bench` — load generator for the query daemon.
//!
//! Times a cold full-pipeline run against an empty store, then starts
//! a `cbsp-serve` daemon over the populated store and replays the same
//! `pipeline.run` request over TCP, recording per-request latency.
//! The resulting lane is merged into the committed perf baseline
//! (`BENCH_simpoint.json`, the `serve` field) next to the per-stage
//! thread-scaling numbers.
//!
//! ```text
//! cargo run --release -p cbsp-bench --bin cbsp-serve-bench -- \
//!     [--benchmark gcc] [--scale ref] [--interval 100000] \
//!     [--requests 32] [--cache-dir DIR] [--json BENCH_simpoint.json]
//! ```
//!
//! Exits non-zero if the warm daemon is not at least 5x faster than
//! the cold run, or if the served results drift from the cold run —
//! the same bar the acceptance criteria set.

use cbsp_bench::PerfReport;
use cbsp_program::Scale;
use std::path::PathBuf;
use std::process::exit;

/// Minimum acceptable `cold_ms / warm_mean_ms` ratio.
const MIN_SPEEDUP: f64 = 5.0;

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    exit(2);
}

fn main() {
    let mut benchmark = "gcc".to_string();
    let mut scale = Scale::Reference;
    let mut interval: u64 = 100_000;
    let mut requests: usize = 32;
    let mut cache_dir: Option<PathBuf> = None;
    let mut json = "BENCH_simpoint.json".to_string();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| die(&format!("flag {flag} needs a value")))
        };
        match flag.as_str() {
            "--benchmark" => benchmark = value(),
            "--scale" => {
                scale = match value().as_str() {
                    "test" => Scale::Test,
                    "train" => Scale::Train,
                    "ref" | "reference" => Scale::Reference,
                    other => die(&format!("bad scale {other} (test|train|ref)")),
                }
            }
            "--interval" => {
                interval = value()
                    .parse()
                    .unwrap_or_else(|e| die(&format!("bad --interval: {e}")))
            }
            "--requests" => {
                requests = value()
                    .parse()
                    .unwrap_or_else(|e| die(&format!("bad --requests: {e}")))
            }
            "--cache-dir" => cache_dir = Some(PathBuf::from(value())),
            "--json" => json = value(),
            other => die(&format!("unknown flag {other}")),
        }
    }

    let cache_dir = cache_dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("cbsp-serve-bench-{}", std::process::id()))
    });
    eprintln!(
        "serve lane: {benchmark} at {scale:?} scale, interval {interval}, \
         cold run then {requests} warm requests..."
    );
    let lane = cbsp_bench::run_serve_lane(&benchmark, scale, interval, requests, &cache_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);
    print!("{}", cbsp_bench::serve_lane::render(&lane));

    let text = std::fs::read_to_string(&json).unwrap_or_else(|e| {
        die(&format!(
            "reading {json}: {e} (run `experiments perf` first)"
        ))
    });
    let mut report: PerfReport =
        serde_json::from_str(&text).unwrap_or_else(|e| die(&format!("parsing {json}: {e}")));
    report.serve = Some(lane.clone());
    let out = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&json, out).unwrap_or_else(|e| die(&format!("writing {json}: {e}")));
    eprintln!("merged serve lane into {json}");

    if !lane.results_identical {
        eprintln!("serve lane: FAIL — served results drifted from the cold run");
        exit(1);
    }
    if lane.speedup < MIN_SPEEDUP {
        eprintln!(
            "serve lane: FAIL — warm speedup {:.1}x is below the {MIN_SPEEDUP:.0}x bar",
            lane.speedup
        );
        exit(1);
    }
    eprintln!("serve lane: PASS ({:.1}x warm speedup)", lane.speedup);
}
