//! Command-line driver regenerating the paper's tables and figures.
//!
//! ```text
//! experiments [all|table1|fig1|fig2|fig3|fig4|fig5|table2|table3]
//!             [--scale test|train|ref] [--interval N]
//!             [--benchmarks a,b,c] [--threads N] [--json FILE]
//!             [--cache-dir DIR] [--no-trace-cache]
//! ```
//!
//! CI regression gates (exit 0 = pass, 1 = regression, 2 = usage):
//!
//! ```text
//! experiments perf compare [--baseline BENCH_simpoint.json]
//!                          [--current FILE] [--tolerance 0.25]
//! experiments accuracy-gate [--ref results_ref.json] [--tolerance 0.02]
//!                           [--benchmarks a,b,c] [--cache-dir DIR]
//!                           [--estimators bbv,bbv+mav,stratified]
//!                           [--fuzzy[=THRESHOLD]]
//! ```
//!
//! `--estimators` adds head-to-head estimator lanes: each lane
//! re-clusters the shared detailed simulations under its own
//! methodology, the gate prints the per-benchmark comparison table,
//! and every lane is gated against its own committed reference column.
//!
//! `--fuzzy` adds the fuzzy-mapping lane: each of its benchmarks is
//! evaluated on marker-destroyed optimized binaries (the paper's
//! `applu` failure mode) and gated on a hard ≥ 80% mapped-fraction
//! floor plus a CPI-error bound 5× looser than `--tolerance` (see
//! `docs/MAPPING.md`). `fuzzy` alone (no gate) runs just the lane and
//! prints its table.

use cbsp_bench::{
    evaluate_benchmark_with, mpki_eval, phase_bias, render_lanes, report, run_ablations,
    run_suite_opts, standard_archs, sweep_benchmark, Pair, PerfReport, SuiteResults,
};
use cbsp_program::Scale;
use cbsp_sim::MemoryConfig;
use cbsp_simpoint::EstimatorConfig;
use cbsp_store::ArtifactStore;

struct Options {
    artifact: String,
    /// Second positional, e.g. the `compare` in `perf compare`.
    sub: Option<String>,
    scale: Scale,
    interval: u64,
    benchmarks: Vec<String>,
    threads: usize,
    json: Option<String>,
    cache_dir: Option<String>,
    /// `false` disables persisting/reusing event traces in the store.
    trace_cache: bool,
    /// Estimator lanes to evaluate head-to-head (empty = none).
    estimators: Vec<EstimatorConfig>,
    /// Fuzzy-mapping lane acceptance threshold (`None` = lane off).
    fuzzy: Option<f64>,
    baseline: String,
    current: Option<String>,
    reference: String,
    tolerance: Option<f64>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        artifact: "all".to_string(),
        sub: None,
        scale: Scale::Reference,
        interval: 100_000,
        benchmarks: Vec::new(),
        threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        json: None,
        cache_dir: None,
        trace_cache: true,
        estimators: Vec::new(),
        fuzzy: None,
        baseline: "BENCH_simpoint.json".to_string(),
        current: None,
        reference: "results_ref.json".to_string(),
        tolerance: None,
    };
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                opts.scale = match args.next().as_deref() {
                    Some("test") => Scale::Test,
                    Some("train") => Scale::Train,
                    Some("ref") | Some("reference") => Scale::Reference,
                    other => die(&format!("bad --scale {other:?}")),
                }
            }
            "--interval" => {
                opts.interval = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("bad --interval"));
            }
            "--benchmarks" => {
                opts.benchmarks = args
                    .next()
                    .unwrap_or_else(|| die("--benchmarks needs a list"))
                    .split(',')
                    .map(str::to_string)
                    .collect();
            }
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("bad --threads"));
            }
            "--json" => {
                opts.json = Some(args.next().unwrap_or_else(|| die("--json needs a path")));
            }
            "--cache-dir" => {
                opts.cache_dir = Some(
                    args.next()
                        .unwrap_or_else(|| die("--cache-dir needs a path")),
                );
            }
            "--no-trace-cache" => {
                opts.trace_cache = false;
            }
            "--estimators" => {
                opts.estimators = args
                    .next()
                    .unwrap_or_else(|| die("--estimators needs a list"))
                    .split(',')
                    .map(|tag| {
                        EstimatorConfig::parse(tag).unwrap_or_else(|| {
                            die(&format!(
                                "bad estimator {tag} ({})",
                                EstimatorConfig::KNOWN_TAGS.join("|")
                            ))
                        })
                    })
                    .collect();
            }
            "--fuzzy" => {
                opts.fuzzy = Some(cbsp_core::FuzzyConfig::DEFAULT_THRESHOLD);
            }
            flag if flag.starts_with("--fuzzy=") => {
                let v = &flag["--fuzzy=".len()..];
                let threshold: f64 = v
                    .parse()
                    .unwrap_or_else(|_| die(&format!("bad --fuzzy threshold {v}")));
                if !(threshold > 0.0 && threshold <= 1.0) {
                    die(&format!("--fuzzy threshold {threshold} outside (0, 1]"));
                }
                opts.fuzzy = Some(threshold);
            }
            "--baseline" => {
                opts.baseline = args
                    .next()
                    .unwrap_or_else(|| die("--baseline needs a path"));
            }
            "--current" => {
                opts.current = Some(args.next().unwrap_or_else(|| die("--current needs a path")));
            }
            "--ref" => {
                opts.reference = args.next().unwrap_or_else(|| die("--ref needs a path"));
            }
            "--tolerance" => {
                opts.tolerance = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("bad --tolerance")),
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [all|table1|fig1..fig5|table2|table3|mpki|ablation|archsweep|warmup|softmarkers|seeds|fuzzy|perf [compare]|accuracy-gate] \
                     [--scale test|train|ref] [--interval N] \
                     [--benchmarks a,b,c] [--threads N] [--json FILE] [--cache-dir DIR] \
                     [--no-trace-cache] [--estimators a,b,c] [--fuzzy[=T]] [--baseline FILE] \
                     [--current FILE] [--ref FILE] [--tolerance T]"
                );
                std::process::exit(0);
            }
            name if !name.starts_with('-') => positional.push(name.to_string()),
            other => die(&format!("unknown option {other}")),
        }
    }
    let mut positional = positional.into_iter();
    if let Some(artifact) = positional.next() {
        opts.artifact = artifact;
    }
    opts.sub = positional.next();
    if let Some(extra) = positional.next() {
        die(&format!("unexpected argument {extra}"));
    }
    opts
}

fn read_json<T: serde::de::DeserializeOwned>(path: &str) -> T {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("reading {path}: {e}")));
    serde_json::from_str(&text).unwrap_or_else(|e| die(&format!("parsing {path}: {e}")))
}

fn parse_scale(name: &str) -> Scale {
    match name {
        "Test" | "test" => Scale::Test,
        "Train" | "train" => Scale::Train,
        "Reference" | "ref" | "reference" => Scale::Reference,
        other => die(&format!("unknown scale {other:?} in baseline file")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let opts = parse_args();
    if opts.sub.is_some() && opts.artifact != "perf" {
        die(&format!(
            "unexpected argument {}",
            opts.sub.as_deref().unwrap_or_default()
        ));
    }
    let mem = MemoryConfig::table1();
    let store: Option<ArtifactStore> = opts
        .cache_dir
        .as_ref()
        .map(|dir| ArtifactStore::open(dir.as_str()).unwrap_or_else(|e| die(&e.to_string())));
    let store = store.as_ref();

    match opts.artifact.as_str() {
        "table1" => {
            print!("{}", report::table1(&mem));
            return;
        }
        "table2" | "table3" => {
            let (name, pair, labels) = if opts.artifact == "table2" {
                (
                    "gcc",
                    Pair::P32u64u,
                    ("32-bit Unoptimized", "64-bit Unoptimized"),
                )
            } else {
                (
                    "apsi",
                    Pair::P32o64o,
                    ("32-bit Optimized", "64-bit Optimized"),
                )
            };
            eprintln!("evaluating {name} at {:?} scale...", opts.scale);
            let run = evaluate_benchmark_with(name, opts.scale, opts.interval, &mem, store);
            let t = phase_bias(&run, pair, 3);
            print!("{}", report::phase_table(&t, labels));
            return;
        }
        "mpki" => {
            // Second-metric extrapolation: DRAM accesses per kilo-instruction.
            let names: Vec<&str> = if opts.benchmarks.is_empty() {
                vec!["mcf", "swim", "gcc", "crafty", "apsi", "equake"]
            } else {
                opts.benchmarks.iter().map(String::as_str).collect()
            };
            println!(
                "DRAM MPKI extrapolation (avg relative error across 4 binaries)\n{:<10} {:>10} {:>8} {:>8}",
                "benchmark", "true@32o", "FLI", "VLI"
            );
            for name in names {
                eprintln!("  evaluating {name}...");
                let run = evaluate_benchmark_with(name, opts.scale, opts.interval, &mem, store);
                let m = mpki_eval(&run);
                println!(
                    "{:<10} {:>10.3} {:>7.2}% {:>7.2}%",
                    name,
                    m.true_mpki[1],
                    100.0 * m.avg_err(false),
                    100.0 * m.avg_err(true)
                );
            }
            return;
        }
        "seeds" => {
            let names: Vec<&str> = if opts.benchmarks.is_empty() {
                vec!["gzip", "gcc", "mcf", "apsi"]
            } else {
                opts.benchmarks.iter().map(String::as_str).collect()
            };
            let mut rows = Vec::new();
            for name in names {
                eprintln!("  seed stability on {name}...");
                rows.push(cbsp_bench::seed_stability(
                    name,
                    opts.scale,
                    opts.interval,
                    5,
                ));
            }
            print!("{}", cbsp_bench::seeds::render(&rows));
            return;
        }
        "softmarkers" => {
            let names: Vec<&str> = if opts.benchmarks.is_empty() {
                vec!["swim", "sixtrack", "art", "gzip", "mesa"]
            } else {
                opts.benchmarks.iter().map(String::as_str).collect()
            };
            let mut rows = Vec::new();
            for name in names {
                eprintln!("  phase-marker study on {name}...");
                rows.push(cbsp_bench::softmark_benchmark(
                    name,
                    opts.scale,
                    opts.interval,
                ));
            }
            print!("{}", cbsp_bench::softmark_study::render(&rows));
            return;
        }
        "warmup" => {
            let names: Vec<&str> = if opts.benchmarks.is_empty() {
                vec!["gzip", "mcf", "swim", "equake"]
            } else {
                opts.benchmarks.iter().map(String::as_str).collect()
            };
            let mut rows = Vec::new();
            for name in names {
                eprintln!("  warmup study on {name}...");
                rows.push(cbsp_bench::warmup_benchmark(
                    name,
                    opts.scale,
                    opts.interval,
                ));
            }
            print!("{}", cbsp_bench::warmup::render(&rows));
            return;
        }
        "archsweep" => {
            let names: Vec<&str> = if opts.benchmarks.is_empty() {
                vec!["gzip", "mcf", "swim", "gcc", "twolf"]
            } else {
                opts.benchmarks.iter().map(String::as_str).collect()
            };
            let archs = standard_archs();
            let mut rows = Vec::new();
            for name in names {
                eprintln!("  sweeping {name}...");
                rows.push(sweep_benchmark(name, opts.scale, opts.interval, &archs));
            }
            print!("{}", cbsp_bench::archsweep::render(&rows, &archs));
            return;
        }
        "perf" if opts.sub.as_deref() == Some("compare") => {
            // CI perf gate: current parallel wall times vs the
            // committed baseline, within --tolerance (default 25%).
            let baseline: PerfReport = read_json(&opts.baseline);
            let current: PerfReport = match &opts.current {
                Some(path) => read_json(path),
                None => {
                    // No --current: measure now, at the baseline's own
                    // configuration so the comparison is apples-to-apples.
                    eprintln!(
                        "perf compare: measuring {} at {} scale, 1 vs {} threads...",
                        baseline.benchmark, baseline.scale, baseline.threads
                    );
                    cbsp_bench::run_perf(
                        &baseline.benchmark,
                        parse_scale(&baseline.scale),
                        baseline.interval_target,
                        baseline.threads,
                        &mem,
                    )
                }
            };
            if let Some(path) = &opts.json {
                // Persist the measured report so CI can attach it to
                // failed runs.
                let json = serde_json::to_string_pretty(&current).expect("report serializes");
                std::fs::write(path, json).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
            }
            let tolerance = opts.tolerance.unwrap_or(0.25);
            let c = cbsp_bench::compare(&baseline, &current, tolerance);
            print!("{}", cbsp_bench::render_compare(&c));
            std::process::exit(i32::from(c.regressed()));
        }
        "perf" => {
            if let Some(sub) = &opts.sub {
                die(&format!("unknown perf subcommand {sub}"));
            }
            // Performance baseline: pipeline stage wall times at 1 vs N
            // threads, written to BENCH_simpoint.json.
            let name = opts
                .benchmarks
                .first()
                .map_or("gcc", String::as_str)
                .to_string();
            eprintln!(
                "perf baseline on {name} at {:?} scale, 1 vs {} threads...",
                opts.scale, opts.threads
            );
            let r = cbsp_bench::run_perf(&name, opts.scale, opts.interval, opts.threads, &mem);
            print!("{}", cbsp_bench::perf::render(&r));
            let path = opts.json.as_deref().unwrap_or("BENCH_simpoint.json");
            let json = serde_json::to_string_pretty(&r).expect("report serializes");
            std::fs::write(path, json).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
            eprintln!("wrote {path}");
            return;
        }
        "fuzzy" => {
            // Standalone fuzzy-mapping lane: marker-destroyed binary
            // sets, similarity fallback, CPI error vs full simulation.
            let threshold = opts
                .fuzzy
                .unwrap_or(cbsp_core::FuzzyConfig::DEFAULT_THRESHOLD);
            eprintln!(
                "fuzzy lane at {:?} scale, interval {}, threshold {threshold}...",
                opts.scale, opts.interval
            );
            let lane = cbsp_bench::run_fuzzy_lane(
                &opts.benchmarks,
                opts.scale,
                opts.interval,
                threshold,
                &mem,
                opts.threads,
            );
            print!("{}", cbsp_bench::render_fuzzy(&lane));
            if let Some(path) = &opts.json {
                let json = serde_json::to_string_pretty(&lane).expect("lane serializes");
                std::fs::write(path, json).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
                eprintln!("wrote {path}");
            }
            return;
        }
        "accuracy-gate" => {
            // CI accuracy gate: rerun the suite at the reference's own
            // scale/interval and require per-benchmark CPI and speedup
            // errors within --tolerance (default 0.02 absolute) of the
            // committed results_ref.json.
            let mut reference: SuiteResults = read_json(&opts.reference);
            if !opts.benchmarks.is_empty() {
                // Local spot-check: gate only the requested subset.
                reference
                    .benchmarks
                    .retain(|b| opts.benchmarks.contains(&b.name));
                for lane in &mut reference.estimators {
                    lane.benchmarks
                        .retain(|b| opts.benchmarks.contains(&b.name));
                }
                if let Some(lane) = &mut reference.fuzzy {
                    lane.benchmarks
                        .retain(|b| opts.benchmarks.contains(&b.name));
                }
            }
            let scale = parse_scale(&reference.scale);
            eprintln!(
                "accuracy gate: rerunning suite at {scale:?} scale, interval {}...",
                reference.interval_target
            );
            let mut current = run_suite_opts(
                &opts.benchmarks,
                scale,
                reference.interval_target,
                &mem,
                opts.threads,
                store,
                opts.trace_cache,
                &opts.estimators,
            );
            if let Some(threshold) = opts.fuzzy {
                // The fuzzy lane runs its default benchmark subset
                // (or the --benchmarks intersection with it) on
                // marker-destroyed binary sets at the reference's own
                // scale/interval, mirroring the reference column.
                let names: Vec<String> = cbsp_bench::FUZZY_BENCHMARKS
                    .iter()
                    .filter(|n| {
                        opts.benchmarks.is_empty() || opts.benchmarks.iter().any(|b| b == *n)
                    })
                    .map(|n| n.to_string())
                    .collect();
                eprintln!(
                    "fuzzy lane: {} benchmarks, threshold {threshold}...",
                    names.len()
                );
                current.fuzzy = Some(cbsp_bench::run_fuzzy_lane(
                    &names,
                    scale,
                    reference.interval_target,
                    threshold,
                    &mem,
                    opts.threads,
                ));
            }
            if let Some(path) = &opts.json {
                // Persist the rerun results so CI can attach them to
                // failed runs (and so a passing rerun can become the
                // next committed reference).
                let json = serde_json::to_string_pretty(&current).expect("results serialize");
                std::fs::write(path, json).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
            }
            if !current.estimators.is_empty() {
                print!("{}", render_lanes(&current.estimators));
            }
            if let Some(lane) = &current.fuzzy {
                print!("{}", cbsp_bench::render_fuzzy(lane));
            }
            let slack = opts.tolerance.unwrap_or(0.02);
            let g = cbsp_bench::accuracy_gate(&current, &reference, slack);
            print!("{}", cbsp_bench::render_gate(&g));
            std::process::exit(i32::from(!g.passed()));
        }
        "ablation" => {
            let names: Vec<&str> = if opts.benchmarks.is_empty() {
                vec!["gzip", "gcc", "swim", "mcf", "applu"]
            } else {
                opts.benchmarks.iter().map(String::as_str).collect()
            };
            eprintln!(
                "running ablations over {names:?} at {:?} scale...",
                opts.scale
            );
            let results = run_ablations(&names, opts.scale, opts.interval, &mem);
            print!("{}", cbsp_bench::ablation::render(&results));
            return;
        }
        _ => {}
    }

    // Everything else needs the suite results.
    eprintln!(
        "running suite at {:?} scale, interval target {}...",
        opts.scale, opts.interval
    );
    let results = run_suite_opts(
        &opts.benchmarks,
        opts.scale,
        opts.interval,
        &mem,
        opts.threads,
        store,
        opts.trace_cache,
        &opts.estimators,
    );
    if !results.estimators.is_empty() {
        print!("{}", render_lanes(&results.estimators));
    }
    if let Some(path) = &opts.json {
        let json = serde_json::to_string_pretty(&results).expect("results serialize");
        std::fs::write(path, json).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        eprintln!("wrote {path}");
    }

    match opts.artifact.as_str() {
        "fig1" => print!("{}", report::fig1(&results)),
        "fig2" => print!("{}", report::fig2(&results)),
        "fig3" => print!("{}", report::fig3(&results)),
        "fig4" => print!("{}", report::fig4(&results)),
        "fig5" => print!("{}", report::fig5(&results)),
        "all" => {
            println!("{}", report::table1(&mem));
            println!("{}", report::fig1(&results));
            println!("{}", report::fig2(&results));
            println!("{}", report::fig3(&results));
            println!("{}", report::fig4(&results));
            println!("{}", report::fig5(&results));
            for (name, pair, labels) in [
                ("gcc", Pair::P32u64u, ("32u", "64u")),
                ("apsi", Pair::P32o64o, ("32o", "64o")),
            ] {
                let run = evaluate_benchmark_with(name, opts.scale, opts.interval, &mem, store);
                let t = phase_bias(&run, pair, 3);
                println!("{}", report::phase_table(&t, labels));
            }
        }
        other => die(&format!("unknown artifact {other}")),
    }
}
