use cbsp_bench::evaluate_benchmark;
use cbsp_program::Scale;
use cbsp_sim::MemoryConfig;

fn main() {
    let name = std::env::args().nth(1).unwrap_or("vpr".into());
    let run = evaluate_benchmark(&name, Scale::Reference, 100_000, &MemoryConfig::table1());
    let e = &run.eval;
    println!("=== {} ===", name);
    for b in 0..4 {
        println!(
            "bin{}: instrs={} true_cpi={:.3} fli_est={:.3} vli_est={:.3}",
            b,
            e.true_stats[b].instructions,
            e.true_stats[b].cpi(),
            e.fli.cpi_est[b],
            e.vli.cpi_est[b]
        );
    }
    // VLI phase details for binary 0
    println!(
        "-- VLI k={} intervals={}",
        run.cross.simpoint.k,
        run.cross.interval_count()
    );
    for pt in &run.cross.simpoint.points {
        for b in [0usize, 1] {
            let stats = &run.vli_interval_stats[b];
            let mut cyc = 0.0;
            let mut ins = 0.0;
            let mut n = 0;
            for (i, &l) in run.cross.simpoint.labels.iter().enumerate() {
                if l == pt.phase {
                    cyc += stats[i].cycles as f64;
                    ins += stats[i].instructions as f64;
                    n += 1;
                }
            }
            println!(
                "  phase {} bin{} w={:.3} true_cpi={:.3} sp_cpi={:.3} rep={} members={}",
                pt.phase,
                b,
                run.cross.weights[b][pt.phase as usize],
                if ins > 0.0 { cyc / ins } else { 0.0 },
                stats[pt.interval].cpi(),
                pt.interval,
                n
            );
        }
    }
    // First interval CPIs per binary (VLI slicing)
    for b in 0..4 {
        let stats = &run.vli_interval_stats[b];
        let cpis: Vec<String> = stats
            .iter()
            .take(12)
            .map(|s| format!("{:.2}", s.cpi()))
            .collect();
        println!("bin{} first-12 interval CPIs: {}", b, cpis.join(" "));
        let labels = &run.cross.simpoint.labels;
        let l12: Vec<String> = labels.iter().take(12).map(|l| l.to_string()).collect();
        println!("     labels: {}", l12.join(" "));
    }
    // FLI phase details binary 0
    for b in [0usize, 1] {
        let pb = &run.per_binary[b];
        println!(
            "-- FLI bin{} k={} intervals={}",
            b,
            pb.simpoint.k,
            pb.intervals.len()
        );
        for pt in &pb.simpoint.points {
            let stats = &run.fli_interval_stats[b];
            let mut cyc = 0.0;
            let mut ins = 0.0;
            for (i, &l) in pb.simpoint.labels.iter().enumerate() {
                if l == pt.phase {
                    cyc += stats[i].cycles as f64;
                    ins += stats[i].instructions as f64;
                }
            }
            println!(
                "  phase {} w={:.3} true_cpi={:.3} sp_cpi={:.3} rep={}",
                pt.phase,
                pt.weight,
                if ins > 0.0 { cyc / ins } else { 0.0 },
                stats[pt.interval].cpi(),
                pt.interval
            );
        }
    }
}
// (extended diagnostics appended at build time)
