//! Software-phase-marker study: compares the related-work approach
//! (slice at a single low-variability code construct — Lau et al., the
//! paper's reference \[4\]) against fixed-length slicing on the same
//! binary, by the quality of the SimPoint estimates built on top of
//! each slicing.

use cbsp_core::{
    marker_period_stats, relative_error, select_phase_markers, slice_at_marker, weighted_cpi,
};
use cbsp_profile::MarkerRef;
use cbsp_program::{compile, workloads, CompileTarget, Input, Scale};
use cbsp_sim::{record_trace, replay_fli_sliced, replay_marker_sliced, IntervalSim, MemoryConfig};
use cbsp_simpoint::{analyze, SimPointConfig};
use std::fmt::Write as _;

/// Result row for one benchmark.
#[derive(Debug, Clone)]
pub struct SoftMarkRow {
    /// Benchmark name.
    pub name: String,
    /// The chosen marker (None when no candidate qualified).
    pub marker: Option<MarkerRef>,
    /// Its period coefficient of variation.
    pub marker_cv: f64,
    /// Intervals produced by marker-aligned slicing.
    pub aligned_intervals: usize,
    /// CPI error of SimPoint on marker-aligned intervals.
    pub aligned_err: f64,
    /// CPI error of SimPoint on fixed-length intervals (same binary).
    pub fli_err: f64,
}

/// Runs the study for one benchmark on its optimized 64-bit binary.
pub fn softmark_benchmark(name: &str, scale: Scale, interval_target: u64) -> SoftMarkRow {
    let prog = workloads::by_name(name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"))
        .build(scale);
    let input = match scale {
        Scale::Test => Input::test(),
        Scale::Train => Input::train(),
        Scale::Reference => Input::reference(),
    };
    let bin = compile(&prog, CompileTarget::W64_O2);
    let mem = MemoryConfig::table1();
    let sp_config = SimPointConfig::default();

    // One recording of the 64o binary serves both detailed runs below.
    let trace = record_trace(&bin, &input);

    // FLI baseline.
    let (full, fli_ivs) =
        replay_fli_sliced(&trace, &mem, interval_target).expect("recorded trace decodes");
    let fli_profile = cbsp_profile::profile_fli(&bin, &input, interval_target);
    let vectors: Vec<Vec<f64>> = fli_profile.iter().map(|i| i.bbv.clone()).collect();
    let instrs: Vec<u64> = fli_profile.iter().map(|i| i.instrs).collect();
    let fli_sp = analyze(&vectors, &instrs, &sp_config);
    let fli_cpis: Vec<f64> = fli_ivs.iter().map(IntervalSim::cpi).collect();
    let fli_err = relative_error(full.cpi(), weighted_cpi(&fli_sp.points, &fli_cpis));

    // Marker-aligned slicing at the most regular candidate. Unlike the
    // VLI pitch, a phase marker's natural period may be much smaller
    // than the interval target — each execution then bounds one (small)
    // phase-aligned interval, which is fine for clustering.
    let stats = marker_period_stats(&bin, &input);
    let picked = select_phase_markers(&stats, interval_target / 64, 2_000.0, 0.6);
    let Some(best) = picked.first().copied() else {
        return SoftMarkRow {
            name: name.to_string(),
            marker: None,
            marker_cv: f64::NAN,
            aligned_intervals: 0,
            aligned_err: f64::NAN,
            fli_err,
        };
    };
    let aligned = slice_at_marker(&bin, &input, best.marker);
    let vectors: Vec<Vec<f64>> = aligned.iter().map(|i| i.bbv.clone()).collect();
    let instrs: Vec<u64> = aligned.iter().map(|i| i.instrs).collect();
    let aligned_sp = analyze(&vectors, &instrs, &sp_config);
    // Reuse the marker-sliced simulator for in-context interval stats:
    // boundaries are every execution of the marker from 1..execs.
    let boundaries: Vec<cbsp_profile::ExecPoint> = (1..=best.execs)
        .map(|count| cbsp_profile::ExecPoint {
            marker: best.marker,
            count,
        })
        .collect();
    let (_, mut aligned_ivs) =
        replay_marker_sliced(&trace, &mem, &boundaries).expect("recorded trace decodes");
    aligned_ivs.resize(aligned.len(), IntervalSim::default());
    let aligned_cpis: Vec<f64> = aligned_ivs.iter().map(IntervalSim::cpi).collect();
    let aligned_err = relative_error(full.cpi(), weighted_cpi(&aligned_sp.points, &aligned_cpis));

    SoftMarkRow {
        name: name.to_string(),
        marker: Some(best.marker),
        marker_cv: best.cv,
        aligned_intervals: aligned.len(),
        aligned_err,
        fli_err,
    }
}

/// Renders the study table.
pub fn render(rows: &[SoftMarkRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Software-phase-marker study (64o binary): slice at one regular\n\
         code construct vs fixed-length slicing, SimPoint CPI error on each\n\
         {:<10} {:<14} {:>8} {:>10} {:>12} {:>9}",
        "benchmark", "marker", "CV", "intervals", "aligned err", "FLI err"
    );
    for r in rows {
        let marker = r
            .marker
            .map(|m| m.to_string())
            .unwrap_or_else(|| "<none>".to_string());
        let _ = writeln!(
            s,
            "{:<10} {:<14} {:>8.3} {:>10} {:>11.2}% {:>8.2}%",
            r.name,
            marker,
            r.marker_cv,
            r.aligned_intervals,
            100.0 * r.aligned_err,
            100.0 * r.fli_err
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swim_aligned_slicing_is_competitive() {
        let row = softmark_benchmark("swim", Scale::Train, 50_000);
        assert!(row.marker.is_some(), "swim has regular markers");
        assert!(row.marker_cv < 0.3);
        assert!(row.aligned_intervals > 10);
        assert!(
            row.aligned_err < 0.10,
            "aligned slicing err {}",
            row.aligned_err
        );
    }
}
